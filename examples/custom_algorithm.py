#!/usr/bin/env python3
"""Writing your own algorithm: a CGM histogram / group-by aggregation.

The whole point of the paper is that you write an ordinary coarse-grained
*parallel* algorithm and get the external-memory algorithm for free.  This
example builds a word-frequency (group-by-count) algorithm from scratch in
~40 lines of superstep code, checks it against plain Python, and runs it on
three machines — no I/O code anywhere in the algorithm.

The CGM pattern: local aggregation, hash-route the partial counts to
owners, merge — one h-relation, ``lambda = 2``.

Run:  python examples/custom_algorithm.py
"""

import random
from collections import Counter

from repro import MachineParams
from repro.bsp.collectives import share_bounds
from repro.bsp.program import BSPAlgorithm, VPContext
from repro.core.simulator import simulate


class CGMHistogram(BSPAlgorithm):
    """Count occurrences of each key; output j holds the counts for the
    keys that hash to virtual processor j."""

    def __init__(self, items, v):
        self.items = list(items)
        self.v = v
        self.n = len(items)

    # -- resource declarations (how much disk the simulation reserves) -----
    def context_size(self) -> int:
        return 512 + 6 * -(-self.n // self.v) * 2

    def comm_bound(self) -> int:
        return 128 + 4 * -(-self.n // self.v)

    # -- the algorithm -------------------------------------------------------
    def initial_state(self, pid: int, nprocs: int):
        lo, hi = share_bounds(self.n, nprocs, pid)
        return {"mine": self.items[lo:hi], "result": None}

    def superstep(self, ctx: VPContext) -> None:
        if ctx.step == 0:
            # Local aggregation, then route each key's partial count to
            # its owner (hash partitioning).
            local = Counter(ctx.state["mine"])
            ctx.charge(len(ctx.state["mine"]))
            by_owner = {}
            for key, cnt in sorted(local.items()):
                owner = hash(key) % ctx.nprocs
                by_owner.setdefault(owner, []).extend((key, cnt))
            ctx.send_all(by_owner)
            ctx.state["mine"] = []
        else:
            total = Counter()
            for m in ctx.incoming:
                it = iter(m.payload)
                for key in it:
                    total[key] += next(it)
            ctx.charge(sum(total.values()))
            ctx.state["result"] = dict(sorted(total.items()))
            ctx.vote_halt()

    def output(self, pid: int, state):
        return state["result"] or {}


def main() -> None:
    rng = random.Random(7)
    words = ["disk", "block", "track", "superstep", "router", "context",
             "bucket", "packet"]
    data = [rng.choice(words) for _ in range(5000)]
    truth = Counter(data)
    v = 8

    print(f"counting {len(data)} records over {len(words)} keys, v={v}:\n")
    mu = CGMHistogram(data, v).context_size()
    for name, machine in (
        ("laptop (D=1, B=32)", MachineParams(p=1, M=2 * mu, D=1, B=32, b=32)),
        ("array  (D=4, B=64)", MachineParams(p=1, M=2 * mu, D=4, B=64, b=64)),
        ("cluster (p=4, D=2)", MachineParams(p=4, M=2 * mu, D=2, B=64, b=64)),
    ):
        out, report = simulate(CGMHistogram(data, v), machine, v=v, seed=1)
        merged = {}
        for part in out:
            merged.update(part)
        assert merged == dict(truth), "transparent on every machine"
        print(f"  {name:<20} lambda={report.num_supersteps}  "
              f"io_ops={report.io_ops:>4}  "
              f"comm_packets={report.ledger.total_comm_packets:>3}")
    print("\ncorrect everywhere — the algorithm never mentioned a disk.")
    top = truth.most_common(3)
    print("top words:", ", ".join(f"{w} x{c}" for w, c in top))


if __name__ == "__main__":
    main()
