#!/usr/bin/env python3
"""Observability walkthrough — spans, metrics, and a Perfetto-loadable trace.

Attaches a telemetry :class:`~repro.obs.Collector` to a run of the generated
EM sort, then:

* walks the span tree (superstep -> per-phase children with counted I/O),
* prints the run metrics (context-cache hit rate, Lemma 2 load-ratio
  histogram, per-superstep I/O distribution),
* exports a Chrome trace-event file to load in https://ui.perfetto.dev and
  a JSONL event log for jq/pandas,
* re-runs on the p=2 parallel engine with the process backend to show the
  merged multi-processor timeline (one track per real processor).

Unlike ``IOTrace`` (examples/io_anatomy.py), the observer never hooks the
disk arrays' data plane: counted costs and outputs are byte-identical with
and without it, and the fast path stays enabled.

Run:  python examples/observability.py
"""

from repro import MachineParams
from repro.algorithms import CGMSampleSort
from repro.core.simulator import simulate
from repro.obs import Collector, write_chrome_trace, write_jsonl
from repro.workloads import uniform_keys


def main() -> None:
    n, v = 4096, 8
    data = uniform_keys(n, seed=3)
    machine = MachineParams(p=1, M=1 << 18, D=4, B=64, b=64)

    # --- (a) an observed sequential run -------------------------------------
    obs = Collector()
    out, report = simulate(
        CGMSampleSort(data, v), machine, v=v, seed=1,
        fast_io=True, context_cache=True, observer=obs,
    )
    assert [x for part in out for x in part] == sorted(data)

    print(f"observed sort of {n} keys: {len(obs.spans)} spans, "
          f"{len(obs.samples)} counter samples\n")

    print("span tree (wall-clock ms, counted I/O ops per span):")
    tops = [i for i, s in enumerate(obs.spans) if s.parent is None]
    for i in tops:
        _print_span(obs, i, depth=1)
    print()

    print("metrics:")
    snap = obs.metrics.snapshot()
    hits = snap["ctx_cache/hits"]["value"]
    misses = snap["ctx_cache/misses"]["value"]
    print(f"  context-cache hit rate  : {hits}/{hits + misses} loads")
    h = snap["lemma2_load_ratio"]
    print(f"  Lemma 2 load ratio      : max {h['max']:.2f} over {h['count']} "
          f"supersteps (log2 buckets {h['buckets']})")
    h = snap["superstep_io_ops"]
    print(f"  I/O ops per superstep   : min {h['min']}, max {h['max']}, "
          f"mean {h['sum'] / h['count']:.0f}")
    print()

    nev = write_chrome_trace(obs, "sort_trace.json")
    nln = write_jsonl(obs, "sort_run.jsonl")
    print(f"wrote sort_trace.json ({nev} events) - load it in "
          "https://ui.perfetto.dev")
    print(f"wrote sort_run.jsonl ({nln} lines) - one JSON object per "
          "span/sample/metric\n")

    # --- (b) a merged p=2 process-backend timeline ---------------------------
    obs2 = Collector()
    simulate(
        CGMSampleSort(data, v), machine.with_(p=2), v=v, seed=1,
        backend="process", observer=obs2,
    )
    procs = sorted({s.proc for s in obs2.spans if s.proc is not None})
    tx = obs2.metrics.snapshot().get("backend/tx_bytes", {}).get("value", 0)
    rx = obs2.metrics.snapshot().get("backend/rx_bytes", {}).get("value", 0)
    print(f"p=2 process backend: {len(obs2.spans)} spans merged from the "
          f"engine + workers {procs}")
    print(f"  pipe traffic: {tx} bytes to workers, {rx} bytes back")
    nev = write_chrome_trace(obs2, "sort_trace_p2.json")
    print(f"wrote sort_trace_p2.json ({nev} events) - one Perfetto track per "
          "real processor")


def _print_span(obs: Collector, i: int, depth: int, max_children: int = 6) -> None:
    s = obs.spans[i]
    attrs = "".join(f" {k}={v}" for k, v in s.attrs.items())
    print(f"  {'  ' * depth}{s.name:<16} {s.duration * 1e3:7.2f} ms{attrs}")
    kids = obs.children_of(i)
    for j in kids[:max_children]:
        _print_span(obs, j, depth + 1)
    if len(kids) > max_children:
        print(f"  {'  ' * (depth + 1)}... {len(kids) - max_children} more")


if __name__ == "__main__":
    main()
