#!/usr/bin/env python3
"""GIS pipeline: the paper's motivating application domain.

"Important applications in Geographic Information Systems (GIS) ... fall
into this category."  This example runs a small end-to-end spatial analysis
on an out-of-core dataset through the simulation:

1. locate every facility in the road-segment subdivision
   (batched next-element search — the point-location primitive),
2. find each facility's nearest other facility (all nearest neighbors),
3. measure the total developed area (union of parcel rectangles),
4. check whether two land-use classes are linearly separable.

Every step is an ordinary CGM algorithm; the EM machine description is the
only thing that changes between a workstation (1 disk) and a disk array.

Run:  python examples/gis_pipeline.py
"""

from repro import MachineParams
from repro.algorithms.geometry import (
    CGMAllNearestNeighbors,
    CGMDelaunay,
    CGMNextElementSearch,
    CGMRectangleUnionArea,
    CGMSeparability,
    voronoi_edges,
)
from repro.core.simulator import simulate
from repro.workloads import random_points, random_rectangles, random_segments


def run_step(name, alg_factory, machine, v=8, seed=0):
    alg = alg_factory()
    m = machine.with_(M=max(machine.M, 2 * alg.context_size()))
    outputs, report = simulate(alg_factory(), m, v=v, seed=seed)
    print(
        f"  {name:<28} lambda={report.num_supersteps:>2}  "
        f"io_ops={report.io_ops:>5}  io_time={report.io_time:>8.0f}  "
        f"comm_packets={report.ledger.total_comm_packets:>4}"
    )
    return outputs


def main() -> None:
    v = 8
    n_road, n_fac, n_parcel = 400, 256, 300
    roads = random_segments(n_road, seed=1)
    facilities = random_points(n_fac, seed=2)
    parcels = random_rectangles(n_parcel, seed=3)
    residential = random_points(64, seed=4)
    industrial = [(x + 3000.0, y) for x, y in random_points(64, seed=5)]

    machine = MachineParams(p=1, M=1 << 15, D=4, B=32, b=32, G=50.0)
    print(f"EM machine: D={machine.D} disks, B={machine.B}, G={machine.G} "
          f"(I/O is 50x slower than compute, as on real hardware)\n")

    print("pipeline (all through the BSP*-to-EM simulation):")
    loc = run_step(
        "1. point location",
        lambda: CGMNextElementSearch(roads, facilities, v),
        machine,
        seed=11,
    )
    located = sum(1 for part in loc for _qi, sid in part if sid >= 0)

    ann = run_step(
        "2. nearest facility",
        lambda: CGMAllNearestNeighbors(facilities, v),
        machine,
        seed=12,
    )

    area = run_step(
        "3. developed area",
        lambda: CGMRectangleUnionArea(parcels, v),
        machine,
        seed=13,
    )

    sep = run_step(
        "4. land-use separability",
        lambda: CGMSeparability(
            residential, industrial, [(1.0, 0.0), (0.0, 1.0)], v
        ),
        machine,
        seed=14,
    )

    tri = run_step(
        "5. facility Delaunay mesh",
        lambda: CGMDelaunay(facilities, v),
        machine,
        seed=15,
    )

    print()
    print(f"facilities with a road segment above : {located}/{n_fac}")
    nn_pairs = {qi: ni for part in ann for qi, ni in part}
    mutual = sum(1 for a, b in nn_pairs.items() if nn_pairs.get(b) == a) // 2
    print(f"mutual nearest-neighbour pairs       : {mutual}")
    print(f"total developed area                 : {area[0][0]:.0f}")
    print(f"separable east-west / north-south    : {sep[0][0]} / {sep[0][1]}")
    triangles = sorted(t for part in tri for t in part)
    vor = voronoi_edges(facilities, triangles)
    print(f"service-area mesh                    : {len(triangles)} Delaunay "
          f"triangles, {len(vor)} Voronoi edges")


if __name__ == "__main__":
    main()
