#!/usr/bin/env python3
"""Machine adaptation: one algorithm, many machines.

The paper's conclusion: "an application that is based on our method could
adapt dynamically to the operating parameters and numbers of the available
resources such as processors, memory, and disks."  This example runs the
*same* CGM permutation on a range of machine descriptions — a laptop with
one disk, a workstation with a small array, a 4-processor cluster — and
prints how the generated EM algorithm's counted costs respond.  It also
shows the two baselines the paper improves upon on the laptop machine.

Run:  python examples/machine_tuning.py
"""

from repro import MachineParams
from repro.algorithms import CGMPermutation
from repro.baselines import NaiveEMPermute, SibeynKaufmannSimulation
from repro.core.simulator import simulate
from repro.workloads import random_permutation


def main() -> None:
    n, v = 4096, 8
    vals = list(range(n))
    perm = random_permutation(n, seed=3)
    alg_mu = CGMPermutation(vals, perm, v).context_size()

    machines = {
        "laptop   (p=1, D=1, B=32)": MachineParams(
            p=1, M=2 * alg_mu, D=1, B=32, b=32, G=100.0
        ),
        "workstn  (p=1, D=4, B=64)": MachineParams(
            p=1, M=2 * alg_mu, D=4, B=64, b=64, G=100.0
        ),
        "diskarray(p=1, D=8, B=128)": MachineParams(
            p=1, M=2 * alg_mu, D=8, B=128, b=128, G=100.0
        ),
        "cluster  (p=4, D=2, B=64)": MachineParams(
            p=4, M=2 * alg_mu, D=2, B=64, b=64, G=100.0
        ),
    }

    print(f"permuting n={n} records with the same CGM algorithm, v={v}:\n")
    print(f"{'machine':<28} {'k':>3} {'io_ops':>7} {'io_time':>9} "
          f"{'comm_pkts':>9} {'model time':>11}")
    results = {}
    for name, machine in machines.items():
        outputs, report = simulate(
            CGMPermutation(vals, perm, v), machine, v=v, k=2, seed=1
        )
        y = [x for part in outputs for x in part]
        assert all(y[perm[i]] == vals[i] for i in range(n))
        led = report.ledger
        results[name] = report
        print(
            f"{name:<28} {report.params.k:>3} {report.io_ops:>7} "
            f"{report.io_time:>9.0f} {led.total_comm_packets:>9} "
            f"{led.total_time():>11.0f}"
        )

    laptop = machines["laptop   (p=1, D=1, B=32)"]
    print("\nbaselines on the laptop machine:")
    _, naive = NaiveEMPermute(laptop).permute(vals, perm)
    print(f"  naive record-at-a-time : {naive.io_ops:>7} I/O ops "
          f"({naive.io_ops / results['laptop   (p=1, D=1, B=32)'].io_ops:.1f}x "
          "the generated algorithm)")
    _, sk = SibeynKaufmannSimulation(
        CGMPermutation(vals, perm, v), v, laptop
    ).run()
    wk = results["workstn  (p=1, D=4, B=64)"]
    print(f"  Sibeyn-Kaufmann sim    : {sk.io_ops:>7} I/O ops")
    print("\nnote: on a single disk the prior simulation is competitive (it")
    print("skips the reorganization step) — but it CANNOT use the disk")
    print(f"array: on D=4 it still pays {sk.io_ops} ops where this paper's")
    print(f"simulation pays {wk.io_ops} ({sk.io_ops / wk.io_ops:.1f}x less).")
    print("\nmoving to the disk array costs zero code changes — only the")
    print("MachineParams line differs; blocking and disk parallelism are")
    print("handled by the simulation (Theorem 1).")


if __name__ == "__main__":
    main()
