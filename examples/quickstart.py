#!/usr/bin/env python3
"""Quickstart: run a parallel algorithm as an external-memory algorithm.

The point of the paper in one script: take an ordinary coarse-grained
parallel (CGM) algorithm — here sample sort — describe the EM machine you
have (memory M, D disks of block size B, p processors), and the simulation
*generates* a parallel external-memory algorithm: fully blocked I/O, all
disks used in parallel, virtual processors swapped through memory in
memory-filling groups.

Run:  python examples/quickstart.py
"""

from repro import MachineParams
from repro.algorithms import CGMSampleSort
from repro.core.simulator import simulate
from repro.workloads import uniform_keys


def main() -> None:
    n, v = 4096, 8
    data = uniform_keys(n, seed=42)

    # The machine: one real processor, 4 disks, 32-record blocks, and room
    # for two virtual-processor contexts in memory (the paper's k = 2).
    alg = CGMSampleSort(data, v)
    machine = MachineParams(p=1, M=2 * alg.context_size(), D=4, B=32, b=32)

    outputs, report = simulate(CGMSampleSort(data, v), machine, v=v, seed=1)

    result = [x for part in outputs for x in part]
    assert result == sorted(data), "the simulation is transparent — always"

    print(f"sorted {n} records with v={v} virtual processors on:")
    print(f"  M={machine.M} records, D={machine.D} disks, B={machine.B}, "
          f"k={report.params.k} contexts per group")
    print()
    print(f"compound supersteps (lambda) : {report.num_supersteps}")
    print(f"parallel I/O operations      : {report.io_ops}")
    print(f"  = {report.io_ops / (n / machine.io_bandwidth):.1f} scans of the data")
    print(f"theoretical bound l*v*mu*lambda/BD : {report.theoretical_io_bound():.0f}")
    print(f"worst disk-balance deviation (Lemma 2) : {report.max_load_ratio:.2f}")
    print()
    print("per-superstep phase breakdown (parallel I/O ops):")
    print("  step  fetch_ctx  fetch_msg  write_msg  write_ctx  reorganize")
    for s in report.supersteps:
        ph = s.phases
        print(
            f"  {s.index:>4}  {ph.fetch_context:>9}  {ph.fetch_messages:>9}  "
            f"{ph.write_messages:>9}  {ph.write_context:>9}  {ph.reorganize:>10}"
        )


if __name__ == "__main__":
    main()
