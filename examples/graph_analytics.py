#!/usr/bin/env python3
"""Out-of-core graph analytics through the simulation (Table 1, Group C).

Runs the Group C toolchain on data that — conceptually — lives on disk:

* list ranking of a long linked list (the Group C workhorse),
* Euler-tour tree statistics (depths, subtree sizes) of a random tree,
* connected components and a spanning forest of a road-network-like graph,

and compares the list-ranking I/O against the PRAM-simulation route
(Chiang et al.: one external sort per PRAM step).

Run:  python examples/graph_analytics.py
"""

from repro import MachineParams
from repro.algorithms.graphs import (
    CGMConnectedComponents,
    CGMExpressionEval,
    CGMListRanking,
    CGMSpanningForest,
    batched_lca,
    biconnected_components,
    subtree_sizes,
    tree_depths,
)
from repro.baselines import PRAMListRanking
from repro.core.simulator import simulate
from repro.workloads import (
    random_graph_edges,
    random_linked_list,
    random_tree_edges,
)


def main() -> None:
    v = 8
    machine_base = MachineParams(p=1, M=1 << 15, D=4, B=32, b=32)

    # --- 1. list ranking -------------------------------------------------
    n = 2048
    succ = random_linked_list(n, seed=7)
    alg = CGMListRanking(succ, v)
    machine = machine_base.with_(M=2 * alg.context_size())
    out, report = simulate(CGMListRanking(succ, v), machine, v=v, seed=1)
    ranks = {node: r for part in out for node, r in part}
    head = max(ranks, key=ranks.get)
    print(f"list ranking, n={n}:")
    print(f"  head node {head} is {ranks[head]} hops from the tail")
    print(f"  generated EM algorithm: {report.num_supersteps} supersteps, "
          f"{report.io_ops} parallel I/O ops")

    _, pram_stats = PRAMListRanking(machine).rank(succ)
    print(f"  PRAM-simulation route : {pram_stats.steps} PRAM steps, "
          f"{pram_stats.io_ops} parallel I/O ops "
          f"({pram_stats.io_ops / report.io_ops:.1f}x more)\n")

    # --- 2. tree statistics via Euler tour --------------------------------
    nt = 512
    edges = random_tree_edges(nt, seed=8)

    def em_run(algorithm, vv):
        m = machine_base.with_(M=2 * algorithm.context_size())
        return simulate(algorithm, m, v=vv, seed=2)[0]

    depths = tree_depths(edges, 0, v, run=em_run)
    sizes = subtree_sizes(edges, 0, v, run=em_run)
    deepest = max(depths, key=depths.get)
    print(f"tree statistics via Euler tour + list ranking, n={nt}:")
    print(f"  height {depths[deepest]} (node {deepest}); "
          f"root subtree size {sizes[0]} (= n, sanity)")
    big = sorted(sizes, key=sizes.get, reverse=True)[1]
    print(f"  largest proper subtree: node {big} with {sizes[big]} nodes\n")

    # --- 3. connectivity ---------------------------------------------------
    nv, ne = 600, 900
    gedges = random_graph_edges(nv, ne, seed=9)
    alg = CGMConnectedComponents(nv, gedges, v)
    machine = machine_base.with_(M=2 * alg.context_size())
    out, report = simulate(CGMConnectedComponents(nv, gedges, v), machine, v=v)
    labels = {vtx: lbl for part in out for vtx, lbl in part}
    ncomp = len(set(labels.values()))
    print(f"connectivity, V={nv}, E={ne}:")
    print(f"  {ncomp} connected components "
          f"({report.num_supersteps} supersteps, {report.io_ops} I/O ops)")

    alg = CGMSpanningForest(nv, gedges, v)
    machine = machine_base.with_(M=2 * alg.context_size())
    out, _ = simulate(CGMSpanningForest(nv, gedges, v), machine, v=v)
    print(f"  spanning forest with {len(out[0])} edges "
          f"(= V - components = {nv - ncomp}, sanity)\n")

    # --- 4. LCA queries on the tree ----------------------------------------
    import random as _random

    rng = _random.Random(11)
    queries = [(rng.randrange(nt), rng.randrange(nt)) for _ in range(8)]
    lcas = batched_lca(edges, 0, queries, v, run=em_run)
    print("batched LCA on the statistics tree (via tour + ranking + RMQ):")
    for (a, b), c in zip(queries[:4], lcas[:4]):
        print(f"  lca({a}, {b}) = {c}")

    # --- 5. biconnectivity of the densest component -------------------------
    comps = biconnected_components(nv, gedges, v, run=em_run)
    big = max(comps, key=len)
    print(f"\nbiconnected components of the road network: {len(comps)}; "
          f"largest has {len(big)} edges")

    # --- 6. an expression tree, evaluated by tree contraction ----------------
    from repro.workloads import random_expression_tree

    eedges, ops, leaves = random_expression_tree(64, seed=12)
    alg = CGMExpressionEval(eedges, ops, leaves, v)
    machine = machine_base.with_(M=2 * alg.context_size())
    out, report = simulate(CGMExpressionEval(eedges, ops, leaves, v), machine, v=v)
    print(f"\nexpression tree with 64 leaves evaluates to {out[0][0]} "
          f"({report.num_supersteps} supersteps of rake/compress)")


if __name__ == "__main__":
    main()
