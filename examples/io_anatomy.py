#!/usr/bin/env python3
"""Anatomy of the simulation's I/O — see the blocking and parallelism.

Attaches an I/O trace to the simulated disks and renders the operation
timeline for (a) this paper's simulation and (b) the Sibeyn–Kaufmann-style
prior simulation, making the difference the paper claims *visible*: the
generated algorithm drives all D disks nearly every operation, the prior
technique touches one disk at a time.

Also demonstrates the technique's stated boundary (Section 7): simulated
multisearch versus the direct EM batched search.

Run:  python examples/io_anatomy.py
"""

import bisect

from repro import MachineParams
from repro.algorithms import CGMMultisearch, CGMSampleSort
from repro.baselines import EMBatchedSearch, SibeynKaufmannSimulation
from repro.core.seqsim import SequentialEMSimulation
from repro.core.simulator import build_params
from repro.emio.trace import IOTrace
from repro.workloads import uniform_keys


def main() -> None:
    n, v = 2048, 8
    data = uniform_keys(n, seed=3)
    alg = CGMSampleSort(data, v)
    machine = MachineParams(p=1, M=2 * alg.context_size(), D=4, B=64, b=64)

    # --- (a) this paper's simulation, traced -------------------------------
    params = build_params(CGMSampleSort(data, v), machine, v=v)
    sim = SequentialEMSimulation(CGMSampleSort(data, v), params, seed=1)
    trace = IOTrace.attach(sim.array)
    out, report = sim.run()
    assert [x for part in out for x in part] == sorted(data)

    print("generated EM sort (Algorithm 1), first 72 parallel I/O ops:")
    print(trace.render(start=0, width=72))
    print()

    # --- (b) the prior simulation -------------------------------------------
    sk = SibeynKaufmannSimulation(CGMSampleSort(data, v), v, machine)
    sk_trace = IOTrace.attach(sk.array)
    sk.run()
    print("Sibeyn-Kaufmann-style simulation (one vp at a time, one disk):")
    print(sk_trace.render(start=0, width=72))
    print()
    print(f"disk utilization: generated {trace.utilization():.0%} vs "
          f"prior {sk_trace.utilization():.0%} — the factor-D claim, visible.")
    print()

    # --- (c) the boundary: multisearch (Section 7) ---------------------------
    keys = sorted(uniform_keys(n, seed=5, hi=100 * n))
    queries = uniform_keys(128, seed=6, hi=110 * n)
    ms = CGMMultisearch(keys, queries, v)
    m2 = machine.with_(M=2 * ms.context_size())
    params = build_params(CGMMultisearch(keys, queries, v), m2, v=v)
    sim = SequentialEMSimulation(CGMMultisearch(keys, queries, v), params, seed=2)
    _, ms_rep = sim.run()
    _, direct = EMBatchedSearch(m2).search(keys, queries)
    print(f"multisearch, n={n} keys / {len(queries)} queries:")
    print(f"  simulated CGM multisearch : {ms_rep.io_ops:>5} I/O ops "
          f"({ms_rep.num_supersteps} supersteps - one per tree level)")
    print(f"  direct EM batched search  : {direct.io_ops:>5} I/O ops "
          "(sort + one merge scan)")
    print("  -> sublinear data-structure search does not amortize the")
    print("     context sweeps: the open problem of Section 7, measured.")


if __name__ == "__main__":
    main()
