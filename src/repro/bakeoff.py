"""Differential bake-off: modern EM competitors vs the simulated CGM engine.

Extends Table 1 with the rivals the 1997 paper predates (PAPERS.md):
Hagerup's Guidesort, the textbook ``M/B``-way merge sort and Arge's
buffer tree, each implemented in :mod:`repro.baselines` against the same
counted :class:`~repro.emio.diskarray.DiskArray` substrate.  One sweep
row runs every engine on the *same* machine ``(n, M, B, D)`` and the
*same* seeded input, then referees three ways:

* **output equality** — every engine's result must be byte-identical
  (pickled) to the in-memory reference;
* **bound compliance** — each competitor's measured ``io_ops`` must stay
  within its own closed-form ``predicted_io_ops`` bound, and the CGM
  side must pass the per-superstep ``theorem1_io`` oracle;
* **comparability** (DESIGN §13) — all engines charge through the same
  parallel-I/O ledger, input loading and output unloading included, so
  the columns are directly comparable counted costs.

Sweep rows come in two modes.  ``joint`` rows size ``M`` large enough for
the simulation's context residence (``mu <= M``), so every engine runs;
``deep`` rows shrink ``M`` into the multi-pass regime
(``log_{M/B}(n/M) > 1``) where the competitors' asymptotics separate but
the coarse-grained simulation cannot hold a context, so they run the
competitors only.  ``repro bakeoff`` and ``benchmarks/bench_bakeoff.py``
drive this module; ``BENCH_BAKEOFF.json`` is the committed artifact.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Iterable, Sequence

from . import workloads as wl
from .baselines import SORTING_BASELINES
from .conform.oracles import check_theorem1_io, theorem1_io_bound
from .core.simulator import build_params, simulate
from .params import MachineParams

__all__ = [
    "SCHEMA_VERSION",
    "TASKS",
    "ENGINES",
    "BakeoffConfig",
    "default_sweep",
    "pick_v",
    "run_row",
    "run_sweep",
    "validate_bakeoff_dict",
    "format_table",
]

SCHEMA_VERSION = 1
TASKS = ("sort", "permute")
#: the CGM simulation plus every registered counted-cost sorter
ENGINES = ("cgm", *SORTING_BASELINES)


@dataclass(frozen=True)
class BakeoffConfig:
    """One sweep point: problem size and machine shape."""

    n: int
    M: int
    B: int
    D: int
    mode: str = "joint"  # "joint": all engines; "deep": competitors only
    seed: int = 0

    def machine(self, p: int = 1) -> MachineParams:
        return MachineParams(p=p, M=self.M, D=self.D, B=self.B, b=self.B)

    def label(self) -> str:
        return f"n={self.n} M={self.M} B={self.B} D={self.D} [{self.mode}]"


def default_sweep(quick: bool = False) -> list[BakeoffConfig]:
    """The standard (n, M, B, D) sweep: joint rows where the simulation's
    context fits (``mu <= M``), deep rows in the competitors' multi-pass
    regime.  ``quick`` is the CI/test subset."""
    if quick:
        return [
            BakeoffConfig(1024, 4096, 16, 2, "joint"),
            BakeoffConfig(2048, 8192, 16, 4, "joint"),
            BakeoffConfig(4096, 128, 8, 2, "deep"),
            BakeoffConfig(4096, 256, 16, 4, "deep"),
        ]
    sweep = []
    for n, M in ((4096, 8192), (8192, 16384), (16384, 32768)):
        for B, D in ((16, 2), (32, 4), (64, 1)):
            sweep.append(BakeoffConfig(n, M, B, D, "joint"))
    sweep += [
        BakeoffConfig(8192, 128, 8, 2, "deep"),
        BakeoffConfig(16384, 128, 16, 1, "deep"),
        BakeoffConfig(16384, 256, 8, 2, "deep"),
        BakeoffConfig(16384, 512, 16, 4, "deep"),
        BakeoffConfig(32768, 256, 8, 4, "deep"),
        BakeoffConfig(32768, 512, 16, 2, "deep"),
    ]
    return sweep


# -- the CGM side ---------------------------------------------------------------------


def _cgm_algorithm(task: str, v: int, data: list, perm: "list | None"):
    if task == "sort":
        from .algorithms import CGMSampleSort

        return CGMSampleSort(data, v)
    if task == "permute":
        from .algorithms import CGMPermutation

        return CGMPermutation(data, perm, v)
    raise ValueError(f"unknown bakeoff task {task!r}")


def pick_v(
    task: str, cfg: BakeoffConfig, machine: MachineParams, data: list, perm
) -> "int | None":
    """Smallest admissible virtual-processor count for the CGM run:
    ``v`` divides ``n``, is a multiple of ``p``, satisfies the sort's
    ``n >= v^2`` coarseness and fits one context in ``M``."""
    v = max(2, machine.p)
    while v <= cfg.n:
        if cfg.n % v == 0 and v % machine.p == 0 and (
            task != "sort" or cfg.n >= v * v
        ):
            try:
                alg = _cgm_algorithm(task, v, data, perm)
                if alg.context_size() <= machine.M:
                    build_params(alg, machine, v)
                    return v
            except (ValueError, AssertionError):
                pass
        v *= 2
    return None


# -- one sweep row --------------------------------------------------------------------


def _reference(task: str, data: list, perm) -> list:
    if task == "sort":
        return sorted(data)
    out = [None] * len(data)
    for i, dest in enumerate(perm):
        out[dest] = data[i]
    return out


def run_row(
    cfg: BakeoffConfig,
    task: str,
    *,
    backend: str = "inline",
    storage: str = "memory",
    p_cgm: int = 1,
    engines: "Sequence[str] | None" = None,
) -> dict:
    """Run every engine on one (config, task) cell; referee the outputs."""
    data = wl.uniform_keys(cfg.n, seed=cfg.seed)
    perm = (
        wl.random_permutation(cfg.n, seed=cfg.seed + 1)
        if task == "permute"
        else None
    )
    reference = _reference(task, data, perm)
    ref_bytes = pickle.dumps(reference, protocol=4)

    wanted = tuple(engines) if engines is not None else ENGINES
    row: dict = {
        "task": task,
        "n": cfg.n,
        "M": cfg.M,
        "B": cfg.B,
        "D": cfg.D,
        "mode": cfg.mode,
        "seed": cfg.seed,
        "engines": {},
    }

    for name in wanted:
        if name == "cgm":
            if cfg.mode == "deep":
                row["engines"][name] = {"skipped": "context exceeds M (deep row)"}
                continue
            row["engines"][name] = _run_cgm(
                cfg, task, data, perm, ref_bytes, backend, storage, p_cgm
            )
        else:
            row["engines"][name] = _run_competitor(
                name, cfg, task, data, perm, ref_bytes, storage
            )
    return row


def _run_competitor(
    name: str,
    cfg: BakeoffConfig,
    task: str,
    data: list,
    perm,
    ref_bytes: bytes,
    storage: str,
) -> dict:
    cls = SORTING_BASELINES[name]
    machine = cfg.machine(p=1)
    if task == "sort":
        sorter = cls(machine, storage=storage)
        out, stats = sorter.sort(data)
    else:
        sorter = cls(machine, key=itemgetter(0), storage=storage)
        tagged = list(zip(perm, data))
        ordered, stats = sorter.sort(tagged)
        out = [val for _dest, val in ordered]
    bound = sorter.predicted_io_ops(cfg.n)
    entry = {
        "io_ops": int(stats.io_ops),
        "bound": float(bound),
        "ok": bool(stats.io_ops <= bound),
        "match": pickle.dumps(out, protocol=4) == ref_bytes,
    }
    mism = getattr(stats, "guide_mismatches", None)
    if mism is not None:
        entry["guide_mismatches"] = int(mism)
    return entry


def _run_cgm(
    cfg: BakeoffConfig,
    task: str,
    data: list,
    perm,
    ref_bytes: bytes,
    backend: str,
    storage: str,
    p_cgm: int,
) -> dict:
    machine = cfg.machine(p=p_cgm)
    v = pick_v(task, cfg, machine, data, perm)
    if v is None:
        return {"skipped": "no admissible v for this machine"}
    alg = _cgm_algorithm(task, v, data, perm)
    outputs, report = simulate(
        alg, machine, v, seed=0, backend=backend, storage=storage
    )
    flat = [x for part in outputs for x in part]
    params = build_params(_cgm_algorithm(task, v, data, perm), machine, v)
    failures, checked = check_theorem1_io(params, report)
    sim_bound = theorem1_io_bound(params, report)
    measured = report.io_ops + report.init_io_ops + report.output_io_ops
    bound = float(sim_bound + report.init_io_ops + report.output_io_ops)
    return {
        "io_ops": int(measured),
        "bound": bound,
        "ok": not failures and measured <= bound,
        "match": pickle.dumps(flat, protocol=4) == ref_bytes,
        "v": v,
        "supersteps": len(report.supersteps),
        "theorem1_failures": [f.detail for f in failures],
        "theorem1_checked": int(checked),
    }


# -- the sweep ------------------------------------------------------------------------


def run_sweep(
    configs: "Iterable[BakeoffConfig] | None" = None,
    tasks: Sequence[str] = TASKS,
    *,
    backend: str = "inline",
    storage: str = "memory",
    p_cgm: int = 1,
    engines: "Sequence[str] | None" = None,
    quick: bool = False,
) -> dict:
    """Run the sweep and return the BENCH_BAKEOFF payload (schema v1)."""
    configs = list(configs) if configs is not None else default_sweep(quick)
    rows = []
    violations: list[str] = []
    mismatches: list[str] = []
    for cfg in configs:
        for task in tasks:
            row = run_row(
                cfg,
                task,
                backend=backend,
                storage=storage,
                p_cgm=p_cgm,
                engines=engines,
            )
            rows.append(row)
            where = f"{task} {cfg.label()}"
            for name, entry in row["engines"].items():
                if "skipped" in entry:
                    continue
                if not entry["match"]:
                    mismatches.append(f"{where} {name}: output differs from reference")
                if not entry["ok"]:
                    violations.append(
                        f"{where} {name}: io_ops {entry['io_ops']} exceeds "
                        f"bound {entry['bound']:.0f}"
                    )
                if entry.get("guide_mismatches"):
                    violations.append(
                        f"{where} {name}: {entry['guide_mismatches']} guide "
                        "schedule mismatches"
                    )
    return {
        "schema_version": SCHEMA_VERSION,
        "tasks": list(tasks),
        "engines": list(engines) if engines is not None else list(ENGINES),
        "backend": backend,
        "storage": storage,
        "p_cgm": p_cgm,
        "configs": len(configs),
        "rows": rows,
        "violations": violations,
        "mismatches": mismatches,
    }


# -- schema ---------------------------------------------------------------------------

_ROW_KEYS = {"task", "n", "M", "B", "D", "mode", "seed", "engines"}


def validate_bakeoff_dict(payload: Any) -> dict:
    """Structurally validate a BENCH_BAKEOFF payload; raise ``ValueError``
    on any shape problem, return the payload unchanged otherwise."""
    if not isinstance(payload, dict):
        raise ValueError("bakeoff payload must be a dict")
    if payload.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported bakeoff schema {payload.get('schema_version')!r}"
        )
    for field in ("tasks", "engines", "rows", "violations", "mismatches"):
        if not isinstance(payload.get(field), list):
            raise ValueError(f"bakeoff field {field!r} must be a list")
    if not isinstance(payload.get("configs"), int) or payload["configs"] < 0:
        raise ValueError("bakeoff field 'configs' must be a non-negative int")
    if len(payload["rows"]) != payload["configs"] * len(payload["tasks"]):
        raise ValueError("row count does not match configs x tasks")
    for row in payload["rows"]:
        if not isinstance(row, dict) or not _ROW_KEYS <= set(row):
            raise ValueError(f"malformed bakeoff row: {row!r}")
        if row["task"] not in payload["tasks"]:
            raise ValueError(f"row task {row['task']!r} not in payload tasks")
        for name, entry in row["engines"].items():
            if name not in payload["engines"]:
                raise ValueError(f"row engine {name!r} not in payload engines")
            if "skipped" in entry:
                continue
            if not isinstance(entry.get("io_ops"), int) or entry["io_ops"] < 0:
                raise ValueError(f"engine {name}: io_ops must be a counted int")
            if not isinstance(entry.get("bound"), (int, float)):
                raise ValueError(f"engine {name}: bound must be numeric")
            for flag in ("ok", "match"):
                if not isinstance(entry.get(flag), bool):
                    raise ValueError(f"engine {name}: {flag} must be a bool")
    for msg in payload["violations"] + payload["mismatches"]:
        if not isinstance(msg, str):
            raise ValueError("violations/mismatches must be strings")
    return payload


def format_table(payload: dict) -> list[list[str]]:
    """Render the sweep as rows for ``benchmarks.common.emit``."""
    out = []
    for row in payload["rows"]:
        cells = [
            row["task"],
            str(row["n"]),
            str(row["M"]),
            str(row["B"]),
            str(row["D"]),
            row["mode"],
        ]
        for name in payload["engines"]:
            entry = row["engines"].get(name, {"skipped": "-"})
            if "skipped" in entry:
                cells.append("-")
            else:
                mark = "" if entry["ok"] and entry["match"] else "!"
                cells.append(f"{entry['io_ops']}{mark}/{entry['bound']:.0f}")
        out.append(cells)
    return out
