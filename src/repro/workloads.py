"""Reproducible workload generators for every experiment in EXPERIMENTS.md.

All generators take an explicit ``seed`` and return plain Python structures
(the record granularity of the simulation); NumPy is used internally for
speed where convenient.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

__all__ = [
    "uniform_keys",
    "random_permutation",
    "reversing_permutation",
    "bit_reversal_permutation",
    "matrix_entries",
    "random_segments",
    "random_points",
    "random_rectangles",
    "random_linked_list",
    "random_tree_edges",
    "random_expression_tree",
    "random_graph_edges",
    "random_forest_edges",
]


def uniform_keys(n: int, seed: int = 0, lo: int = 0, hi: int = 1 << 30) -> list[int]:
    """``n`` uniform random integer keys (duplicates possible)."""
    rng = np.random.default_rng(seed)
    return rng.integers(lo, hi, size=n).tolist()


def random_permutation(n: int, seed: int = 0) -> list[int]:
    """A uniform random permutation ``pi`` of ``0..n-1`` (``pi[i]`` = target of ``i``)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).tolist()


def reversing_permutation(n: int) -> list[int]:
    """The permutation mapping ``i -> n-1-i`` (an adversarial, structured case)."""
    return list(range(n - 1, -1, -1))


def bit_reversal_permutation(log_n: int) -> list[int]:
    """Bit-reversal permutation of ``2**log_n`` items — the classical worst
    case for naive (unblocked) external permutation."""
    n = 1 << log_n
    return [int(format(i, f"0{log_n}b")[::-1], 2) for i in range(n)]


def matrix_entries(r: int, c: int, seed: int = 0) -> list[int]:
    """Row-major entries of an ``r x c`` matrix with distinct values."""
    rng = np.random.default_rng(seed)
    return rng.permutation(r * c).tolist()


def random_segments(
    n: int, seed: int = 0, span: float = 1000.0, nonintersecting: bool = True
) -> list[tuple[float, float, float, float]]:
    """``n`` segments ``(x1, y1, x2, y2)`` with ``x1 < x2``.

    With ``nonintersecting=True`` the segments are horizontal slices at
    distinct heights (guaranteed non-crossing), the input class required by
    the lower-envelope algorithm of Table 1.
    """
    rng = random.Random(seed)
    segs = []
    if nonintersecting:
        heights = rng.sample(range(1, 100 * n + 1), n)
        for h in heights:
            x1 = rng.uniform(0, span * 0.8)
            x2 = x1 + rng.uniform(span * 0.05, span * 0.2)
            segs.append((x1, float(h), x2, float(h)))
    else:
        for _ in range(n):
            x1, x2 = sorted((rng.uniform(0, span), rng.uniform(0, span)))
            if x1 == x2:
                x2 += 1e-6
            segs.append((x1, rng.uniform(0, span), x2, rng.uniform(0, span)))
    return segs


def random_points(
    n: int, seed: int = 0, dims: int = 2, span: float = 1000.0
) -> list[tuple[float, ...]]:
    """``n`` random points in ``dims`` dimensions with distinct coordinates."""
    rng = np.random.default_rng(seed)
    # Distinct coordinates per axis avoid degenerate ties in geometry code.
    cols = [rng.permutation(n * 4)[:n] * (span / (n * 4)) for _ in range(dims)]
    return [tuple(float(cols[d][i]) for d in range(dims)) for i in range(n)]


def random_rectangles(
    n: int, seed: int = 0, span: float = 1000.0
) -> list[tuple[float, float, float, float]]:
    """``n`` axis-parallel rectangles ``(x1, y1, x2, y2)``, ``x1<x2, y1<y2``."""
    rng = random.Random(seed)
    rects = []
    for _ in range(n):
        x1 = rng.uniform(0, span * 0.9)
        y1 = rng.uniform(0, span * 0.9)
        rects.append(
            (x1, y1, x1 + rng.uniform(1.0, span * 0.1), y1 + rng.uniform(1.0, span * 0.1))
        )
    return rects


def random_linked_list(n: int, seed: int = 0) -> list[int]:
    """``succ`` array of a random singly linked list over nodes ``0..n-1``.

    Returns ``succ`` with ``succ[tail] == tail`` (self-loop marks the tail).
    The list visits all ``n`` nodes in a random order.
    """
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    succ = [0] * n
    for a, b in zip(order, order[1:]):
        succ[a] = b
    succ[order[-1]] = order[-1]
    return succ


def random_tree_edges(n: int, seed: int = 0) -> list[tuple[int, int]]:
    """Edges (parent, child) of a random rooted tree on ``0..n-1`` rooted at 0."""
    rng = random.Random(seed)
    edges = []
    for child in range(1, n):
        edges.append((rng.randrange(child), child))
    return edges


def random_expression_tree(
    n_leaves: int, seed: int = 0
) -> tuple[list[tuple[int, int]], dict[int, str], dict[int, int]]:
    """A random binary expression tree.

    Returns ``(edges, ops, leaf_values)`` where internal nodes carry an
    operator in ``{+, *}`` and leaves carry small integers.  Node 0 is the
    root; nodes are ``0..2*n_leaves-2``.
    """
    rng = random.Random(seed)
    # Build a random full binary tree top-down.
    nodes = [0]
    next_id = 1
    leaves = []
    internal = []
    frontier = [0]
    while len(leaves) + len(frontier) < n_leaves:
        idx = rng.randrange(len(frontier))
        node = frontier.pop(idx)
        internal.append(node)
        left, right = next_id, next_id + 1
        next_id += 2
        nodes.extend([left, right])
        frontier.extend([left, right])
    leaves.extend(frontier)
    edges = []
    ops = {}
    child_count: dict[int, int] = {}
    # Reconstruct parent edges from the generation order.
    # (Regenerate deterministically: easier to track during construction.)
    rng = random.Random(seed)
    frontier = [0]
    next_id = 1
    edges = []
    while next_id < 2 * n_leaves - 1:
        idx = rng.randrange(len(frontier))
        node = frontier.pop(idx)
        left, right = next_id, next_id + 1
        next_id += 2
        edges.append((node, left))
        edges.append((node, right))
        ops[node] = rng.choice("+*")
        frontier.extend([left, right])
    leaf_values = {leaf: rng.randrange(1, 4) for leaf in frontier}
    return edges, ops, leaf_values


def random_graph_edges(
    n: int, m: int, seed: int = 0, connected: bool = False
) -> list[tuple[int, int]]:
    """``m`` distinct undirected edges over ``n`` vertices (no self-loops).

    With ``connected=True`` a random spanning tree is included first.
    """
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    if connected:
        order = list(range(n))
        rng.shuffle(order)
        for a, b in zip(order, order[1:]):
            edges.add((min(a, b), max(a, b)))
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return sorted(edges)


def random_forest_edges(
    n: int, ncomponents: int, seed: int = 0
) -> tuple[list[tuple[int, int]], list[int]]:
    """A forest of ``ncomponents`` random trees over ``n`` vertices.

    Returns ``(edges, component_of)`` for ground truth in connectivity tests.
    """
    rng = random.Random(seed)
    verts = list(range(n))
    rng.shuffle(verts)
    # Split the shuffled vertices into ncomponents non-empty parts.
    cuts = sorted(rng.sample(range(1, n), ncomponents - 1)) if ncomponents > 1 else []
    parts = []
    prev = 0
    for c in cuts + [n]:
        parts.append(verts[prev:c])
        prev = c
    edges = []
    component_of = [0] * n
    for ci, part in enumerate(parts):
        for vtx in part:
            component_of[vtx] = ci
        for i in range(1, len(part)):
            edges.append((part[rng.randrange(i)], part[i]))
    rng.shuffle(edges)
    return edges, component_of
