"""Exporters: JSONL event log and Chrome trace-event format.

The JSONL log is the lossless form — one JSON object per line (a ``meta``
header, then ``span`` / ``sample`` / ``metric`` records) — meant for ad-hoc
``jq``/pandas analysis and for round-tripping (:func:`read_jsonl` restores
the structured view).

The Chrome trace is the visual form: :func:`chrome_trace` produces a JSON
object in the trace-event format that Perfetto (https://ui.perfetto.dev) and
``chrome://tracing`` load directly — complete ``X`` (duration) events on one
track per real processor plus the engine track, and ``C`` (counter) events
for the timestamped samples, one counter track per disk.  Timestamps are
normalized to microseconds since the first recorded event, as the format
expects.

:func:`validate_chrome_trace` / :func:`validate_trace_file` check a produced
trace against the subset of the trace-event schema this exporter emits; CI's
observability smoke job runs the file validator on a real instrumented run.
"""

from __future__ import annotations

import json
from typing import Any

from .profile import CATEGORY_COLORS
from .spans import Collector, SpanRecord

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "validate_trace_file",
]

JSONL_VERSION = 1


# -- JSONL ---------------------------------------------------------------------


def _span_obj(i: int, s: SpanRecord) -> dict:
    obj = {
        "type": "span",
        "id": i,
        "name": s.name,
        "parent": s.parent,
        "proc": s.proc,
        "t0": s.t0,
        "t1": s.t1,
        "attrs": s.attrs,
    }
    if s.cat is not None:
        obj["cat"] = s.cat
    return obj


def write_jsonl(collector: Collector, path: str) -> int:
    """Write the collector's contents as JSON lines; returns the line count."""
    lines = [
        {
            "type": "meta",
            "version": JSONL_VERSION,
            "clock": "perf_counter",
            "nspans": len(collector.spans),
            "nsamples": len(collector.samples),
            "nmetrics": len(collector.metrics),
        }
    ]
    lines.extend(_span_obj(i, s) for i, s in enumerate(collector.spans))
    lines.extend(
        {"type": "sample", "t": t, "name": name, "value": value}
        for t, name, value in collector.samples
    )
    lines.extend(
        {
            "type": "metric",
            "name": name,
            "kind": data["type"],
            **{k: v for k, v in data.items() if k != "type"},
        }
        for name, data in collector.metrics.snapshot().items()
    )
    with open(path, "w") as fh:
        for obj in lines:
            fh.write(json.dumps(obj) + "\n")
    return len(lines)


def read_jsonl(path: str) -> dict:
    """Parse a :func:`write_jsonl` file back into a structured view.

    Returns ``{"meta": ..., "spans": [...], "samples": [...], "metrics":
    {name: ...}}`` with spans in id order; raises :class:`ValueError` on a
    malformed or version-mismatched file.
    """
    meta: dict | None = None
    spans: list[dict] = []
    samples: list[dict] = []
    metrics: dict[str, dict] = {}
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            kind = obj.get("type")
            if kind == "meta":
                if obj.get("version") != JSONL_VERSION:
                    raise ValueError(
                        f"{path}: version {obj.get('version')} != {JSONL_VERSION}"
                    )
                meta = obj
            elif kind == "span":
                spans.append(obj)
            elif kind == "sample":
                samples.append(obj)
            elif kind == "metric":
                metrics[obj["name"]] = obj
            else:
                raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
    if meta is None:
        raise ValueError(f"{path}: missing meta header line")
    if (
        len(spans) != meta["nspans"]
        or len(samples) != meta["nsamples"]
        or len(metrics) != meta.get("nmetrics", len(metrics))
    ):
        raise ValueError(
            f"{path}: truncated ({len(spans)}/{meta['nspans']} spans, "
            f"{len(samples)}/{meta['nsamples']} samples, "
            f"{len(metrics)}/{meta.get('nmetrics', '?')} metrics)"
        )
    spans.sort(key=lambda s: s["id"])
    return {"meta": meta, "spans": spans, "samples": samples, "metrics": metrics}


# -- Chrome trace-event format --------------------------------------------------


def _tid_of(proc: int | None) -> int:
    return 0 if proc is None else proc + 1


def chrome_trace(collector: Collector) -> dict:
    """Render the collector as a Chrome trace-event JSON object.

    One thread track per real processor (plus track 0, the engine), spans as
    complete (``"ph": "X"``) events carrying their attrs, and every
    timestamped sample as a counter (``"ph": "C"``) event — per-disk samples
    become the per-disk tracks.  Open spans (a crashed run) are closed at the
    trace's end so the file still loads.
    """
    events: list[dict] = []
    t_base = min(
        [s.t0 for s in collector.spans] + [t for t, _n, _v in collector.samples],
        default=0.0,
    )
    t_end = max(
        [s.t1 for s in collector.spans if s.t1 is not None]
        + [t for t, _n, _v in collector.samples]
        + [t_base],
    )

    def us(t: float) -> float:
        return round((t - t_base) * 1e6, 3)

    procs = sorted(
        {s.proc for s in collector.spans}, key=lambda x: -1 if x is None else x
    )
    events.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "em-simulation"},
        }
    )
    for proc in procs:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": _tid_of(proc),
                "args": {"name": "engine" if proc is None else f"proc {proc}"},
            }
        )
    for s in collector.spans:
        t1 = s.t1 if s.t1 is not None else t_end
        cat = getattr(s, "cat", None)
        ev = {
            "ph": "X",
            # Attribution category as the trace-event category (filterable
            # in Perfetto); uncategorized spans keep the generic "span".
            "cat": cat if cat is not None else "span",
            "name": s.name,
            "pid": 0,
            "tid": _tid_of(s.proc),
            "ts": us(s.t0),
            "dur": round(max(t1 - s.t0, 0.0) * 1e6, 3),
            "args": s.attrs,
        }
        if cat in CATEGORY_COLORS:
            ev["cname"] = CATEGORY_COLORS[cat]
        events.append(ev)
    for t, name, value in collector.samples:
        events.append(
            {
                "ph": "C",
                "name": name,
                "pid": 0,
                "ts": us(t),
                "args": {"value": value},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(collector: Collector, path: str) -> int:
    """Write :func:`chrome_trace` JSON to ``path``; returns the event count."""
    trace = chrome_trace(collector)
    with open(path, "w") as fh:
        json.dump(trace, fh)
        fh.write("\n")
    return len(trace["traceEvents"])


def validate_chrome_trace(obj: Any) -> int:
    """Check ``obj`` against the trace-event schema subset this package emits.

    Returns the number of events; raises :class:`ValueError` on the first
    violation.  Checked: the JSON-object container shape, required fields and
    field types per phase (``M``/``X``/``C``), non-negative durations, and
    numeric timestamps.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace must be a JSON object, got {type(obj).__name__}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace object lacks a 'traceEvents' array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in ("M", "X", "C"):
            raise ValueError(f"{where}: unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"{where}: missing/non-string 'name'")
        if not isinstance(ev.get("pid"), int):
            raise ValueError(f"{where}: missing/non-int 'pid'")
        if ph in ("X", "C"):
            if not isinstance(ev.get("ts"), (int, float)):
                raise ValueError(f"{where}: missing/non-numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: 'X' event needs a non-negative 'dur'")
            if not isinstance(ev.get("tid"), int):
                raise ValueError(f"{where}: 'X' event needs an int 'tid'")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise ValueError(f"{where}: 'args' must be an object")
    return len(events)


def validate_trace_file(path: str) -> int:
    """Load ``path`` as JSON and :func:`validate_chrome_trace` it."""
    with open(path) as fh:
        obj = json.load(fh)
    return validate_chrome_trace(obj)
