"""Observability: structured run telemetry for the simulation engines.

The paper's argument is an accounting argument — Theorem 1 bounds I/O time
phase-by-phase through Algorithm 1's fetch/compute/route cycle.  This package
makes that accounting *visible inside a run*:

* :mod:`repro.obs.spans` — a span API (``collector.span("superstep", index=i)``)
  that the engines, routing, context store, checkpoint/recovery, and disk
  arrays emit into, with parent/child nesting, wall-clock timing, and counted
  cost attributes per span.
* :mod:`repro.obs.metrics` — a lightweight metrics registry (counters, gauges,
  log2 histograms) with near-zero overhead when no collector is attached
  (the :data:`NULL_OBSERVER` fast path).
* :mod:`repro.obs.export` — exporters: a JSONL event log and the Chrome
  trace-event format (loadable in Perfetto / ``chrome://tracing``), one track
  per real processor plus per-disk counter tracks.
* :mod:`repro.obs.profile` — the wall-clock attribution profiler: exclusive
  time per category (``kernel``, ``syscall_io``, ``serialize``, ``layout``,
  ``routing``, ``ipc``, ``barrier_wait``, ``checkpoint``) aggregated
  per-superstep into a :class:`~repro.obs.profile.ProfileReport`
  (``repro perf report``, DESIGN §11).
* :mod:`repro.obs.live` — :class:`~repro.obs.live.RunEventLog`, an
  append-only line-flushed JSONL heartbeat/event bus written *during* the
  run (``repro watch <file>`` tails it).
* :mod:`repro.obs.trend` — bench-trajectory regression tracking over the
  schema-versioned, host-fingerprinted ``BENCH_HISTORY.jsonl`` that
  ``benchmarks/bench_perf.py`` appends to (``repro perf trend``).

Attach via ``simulate(..., observer=Collector())`` or the CLI flags
``--trace-out FILE`` / ``--jsonl-out FILE`` / ``--metrics`` / ``--profile``
/ ``--events FILE``.

The layer honors the dual-accounting invariant: attaching an observer never
changes any counted cost — spans only *read* the arrays' counters at phase
boundaries, so ledgers, routing stats, and outputs stay byte-identical, and
(unlike :meth:`~repro.emio.trace.IOTrace.attach`) the disk arrays' fast data
plane stays enabled.
"""

from .export import (
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from .live import RunEventLog, read_events, tail_events
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import (
    CATEGORIES,
    NULL_PROFILER,
    CategoryProfiler,
    NullProfiler,
    ProfileReport,
    build_report,
)
from .spans import NULL_OBSERVER, Collector, NullObserver, SpanRecord

__all__ = [
    "Collector",
    "NullObserver",
    "NULL_OBSERVER",
    "SpanRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CATEGORIES",
    "CategoryProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "ProfileReport",
    "build_report",
    "RunEventLog",
    "read_events",
    "tail_events",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "validate_chrome_trace",
    "validate_trace_file",
]
