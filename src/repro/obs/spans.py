"""Span API: nested, timed, attributed records of where a run spends itself.

A :class:`Collector` hands out context-manager spans::

    with collector.span("superstep", index=3) as sp:
        with collector.span("fetch_context", group=0) as inner:
            ...
            inner.add(io_ops=delta)

Each span records wall-clock enter/exit times, its parent (the innermost
open span of the same collector), the emitting real processor, and arbitrary
counted-cost attributes added at exit (parallel I/O operations, packets,
retry events, ...).  Spans never *write* to the objects they observe — they
sample counters at phase boundaries — so attaching a collector cannot change
ledgers, routing stats, or outputs (the golden suite asserts byte identity).

:data:`NULL_OBSERVER` is the detached fast path: its ``span()`` returns one
shared no-op context manager and its metrics registry hands out shared no-op
instruments, so un-instrumented runs pay a dict-build and an attribute call
per phase and nothing else.

Per-worker collection: under the process backend every real processor owns a
worker-side :class:`Collector`; :meth:`Collector.drain` turns its spans,
counter samples, and metrics into one picklable payload and
:meth:`Collector.ingest` folds such payloads into the engine's collector,
remapping span parent links and prefixing metric names with ``p{proc}/``.
Timestamps are ``time.perf_counter`` values — ``CLOCK_MONOTONIC`` on Linux,
shared by all processes of a host — so the merged spans form one coherent
timeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from .metrics import MetricsRegistry, NullMetricsRegistry
from .profile import NULL_PROFILER, CategoryProfiler

__all__ = ["SpanRecord", "Collector", "NullObserver", "NULL_OBSERVER"]

_now = time.perf_counter


@dataclass
class SpanRecord:
    """One completed (or still-open) span."""

    name: str
    t0: float
    t1: float | None = None
    parent: int | None = None  # index into the owning collector's span list
    proc: int | None = None  # real-processor index; None = engine/host
    attrs: dict[str, Any] = field(default_factory=dict)
    cat: str | None = None  # attribution category (repro.obs.profile)

    @property
    def duration(self) -> float:
        return (self.t1 if self.t1 is not None else _now()) - self.t0


class _Span:
    """Live handle for one open span (the context manager)."""

    __slots__ = ("_collector", "_id")

    def __init__(self, collector: "Collector", span_id: int):
        self._collector = collector
        self._id = span_id

    @property
    def record(self) -> SpanRecord:
        return self._collector.spans[self._id]

    def add(self, **attrs: Any) -> None:
        """Attach counted-cost attributes (merged into the span's attrs)."""
        self._collector.spans[self._id].attrs.update(attrs)

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._collector._close(self._id)


class _NullSpan:
    """Shared no-op span of the null observer."""

    __slots__ = ()

    def add(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullObserver:
    """The detached observer: every operation is a no-op.

    Engines hold this when ``simulate(..., observer=None)`` so the
    instrumentation points cost (nearly) nothing; hot loops additionally
    guard metric sampling with ``observer.enabled``.
    """

    enabled = False

    profile = NULL_PROFILER

    def __init__(self) -> None:
        self.metrics = NullMetricsRegistry()

    def span(self, name: str, cat: str | None = None, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def sample(self, name: str, value: float) -> None:
        pass


NULL_OBSERVER = NullObserver()


class Collector:
    """Collects spans, timestamped counter samples, and metrics for one run.

    Parameters
    ----------
    proc:
        Real-processor index when this collector lives inside a worker
        (stamped on every span it records); ``None`` for the engine-side
        collector, whose spans form the engine track.
    profile:
        Attach a :class:`~repro.obs.profile.CategoryProfiler`: spans opened
        with a ``cat=`` push that category onto the profiler's scope stack
        for the span's duration, and the storage/backend layers bill their
        fine-grained scopes to the same stack.  Off by default —
        :data:`~repro.obs.profile.NULL_PROFILER` keeps every hook a no-op.
    """

    enabled = True

    def __init__(self, proc: int | None = None, profile: bool = False):
        self.proc = proc
        self.spans: list[SpanRecord] = []
        #: timestamped counter samples ``(t, name, value)`` — the time series
        #: behind the Chrome trace's per-disk counter tracks.
        self.samples: list[tuple[float, str, float]] = []
        self.metrics = MetricsRegistry()
        self._stack: list[int] = []
        self.profile = CategoryProfiler() if profile else NULL_PROFILER
        self._profile_shared = False
        #: per-processor profiler snapshots drained from process-backend
        #: workers (proc -> {"totals", "counts", "wall"}).
        self.proc_profiles: dict[int, dict] = {}

    def share_profile(self, profile) -> None:
        """Bill this collector's categorized spans to ``profile``.

        Used for inline-backend workers: they run on the engine's thread,
        so their scopes nest inside the engine's scope stack and carve
        exclusive time out of the same timeline (one coherent track
        instead of overlapping ones).  A shared profiler is never drained
        by this collector — the owner snapshots it.
        """
        self.profile = profile
        self._profile_shared = True

    # -- recording ------------------------------------------------------------

    def span(self, name: str, cat: str | None = None, **attrs: Any) -> _Span:
        span_id = len(self.spans)
        self.spans.append(
            SpanRecord(
                name=name,
                t0=_now(),
                parent=self._stack[-1] if self._stack else None,
                proc=self.proc,
                attrs=attrs,
                cat=cat,
            )
        )
        self._stack.append(span_id)
        if cat is not None:
            self.profile.push(cat)
        return _Span(self, span_id)

    def _close(self, span_id: int) -> None:
        self.spans[span_id].t1 = _now()
        # Exception-safe: unwind past spans abandoned by a raise.
        while self._stack:
            top = self._stack.pop()
            if self.spans[top].cat is not None:
                self.profile.pop()
            if top == span_id:
                break

    def sample(self, name: str, value: float) -> None:
        """Record one timestamped counter sample (a point on a track)."""
        self.samples.append((_now(), name, value))

    # -- worker merge ----------------------------------------------------------

    def drain(self) -> dict:
        """Return this collector's contents as one picklable payload and reset.

        Called inside workers at the end of a run (or whenever the engine
        asks); repeated drains yield disjoint payloads, so ingest-side
        accumulation is exact.
        """
        if self.profile.enabled and not self._profile_shared:
            # A worker's private profiler ships as a per-processor snapshot;
            # a shared (inline) profiler already billed the engine's track.
            self.profile.stop()
            profile = self.profile.snapshot()
            self.profile.reset()
            self.profile.start()
        else:
            profile = None
        payload = {
            "proc": self.proc,
            "spans": self.spans,
            "samples": self.samples,
            "metrics": self.metrics.snapshot(),
            "profile": profile,
        }
        self.spans = []
        self.samples = []
        self.metrics = MetricsRegistry()
        self._stack = []
        return payload

    def ingest(self, payload: dict) -> None:
        """Fold a worker's :meth:`drain` payload into this collector.

        Span parent links are remapped to this collector's id space; metric
        and sample names get a ``p{proc}/`` prefix so per-worker series stay
        distinguishable in one merged registry.
        """
        proc = payload["proc"]
        prefix = f"p{proc}/" if proc is not None else ""
        offset = len(self.spans)
        for rec in payload["spans"]:
            self.spans.append(
                SpanRecord(
                    name=rec.name,
                    t0=rec.t0,
                    t1=rec.t1,
                    parent=None if rec.parent is None else rec.parent + offset,
                    proc=rec.proc if rec.proc is not None else proc,
                    attrs=rec.attrs,
                    cat=getattr(rec, "cat", None),
                )
            )
        for t, name, value in payload["samples"]:
            self.samples.append((t, prefix + name, value))
        self.metrics.merge_snapshot(payload["metrics"], prefix=prefix)
        snap = payload.get("profile")
        if snap and proc is not None:
            # Accumulate: repeated drains are disjoint, so totals add.
            acc = self.proc_profiles.setdefault(
                proc, {"totals": {}, "counts": {}, "wall": 0.0}
            )
            for cat, sec in snap["totals"].items():
                acc["totals"][cat] = acc["totals"].get(cat, 0.0) + sec
            for cat, n in snap["counts"].items():
                acc["counts"][cat] = acc["counts"].get(cat, 0) + n
            acc["wall"] += snap.get("wall", 0.0)

    # -- views -----------------------------------------------------------------

    def children_of(self, span_id: int | None) -> list[int]:
        return [i for i, s in enumerate(self.spans) if s.parent == span_id]

    def by_name(self, name: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    def total_time(self, name: str) -> float:
        """Summed wall-clock duration of every completed span named ``name``."""
        return sum(s.duration for s in self.spans if s.name == name)
