"""Metrics registry: counters, gauges, and log2 histograms.

Instruments are created on first use (``registry.counter("ctx_cache.hits")``)
and are plain mutable cells — incrementing one is an attribute add, nothing
more.  When no collector is attached the engines hold the
:data:`~repro.obs.spans.NULL_OBSERVER`, whose registry hands out shared no-op
instruments, so un-observed runs pay only an attribute lookup on the few code
paths that are not already guarded by ``observer.enabled``.

Histograms use power-of-two buckets (bucket ``i`` counts values in
``[2^(i-1), 2^i)``, bucket 0 counts values ``< 1``), which is enough to see
the *shape* of e.g. the Lemma 2 bucket-load imbalance or per-phase span
durations without configuring bucket boundaries per metric.
"""

from __future__ import annotations

import math

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-set value (e.g. a cumulative counter sampled at a barrier)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Log2-bucketed distribution with exact count/sum/min/max."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, v: float) -> None:
        b = max(0, math.frexp(v)[1]) if v > 0 else 0
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": dict(sorted(self.buckets.items())),
        }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram of the null registry."""

    __slots__ = ()

    def inc(self, n: int | float = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def record(self, v: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls()
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} is a {type(inst).__name__}, not a {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """JSON-able ``{name: {type, ...}}`` view of every instrument."""
        return {name: inst.snapshot() for name, inst in self._instruments.items()}

    def merge_snapshot(self, snap: dict, prefix: str = "") -> None:
        """Fold a :meth:`snapshot` in (worker merge); names get ``prefix``.

        Counters add, gauges keep the incoming value, histograms merge
        bucket-wise — so draining the same worker twice with disjoint
        activity accumulates correctly.
        """
        for name, data in snap.items():
            full = prefix + name
            kind = data["type"]
            if kind == "counter":
                self.counter(full).inc(data["value"])
            elif kind == "gauge":
                self.gauge(full).set(data["value"])
            elif kind == "histogram":
                h = self.histogram(full)
                for b, c in data["buckets"].items():
                    b = int(b)
                    h.buckets[b] = h.buckets.get(b, 0) + c
                h.count += data["count"]
                h.total += data["sum"]
                if data["min"] is not None and data["min"] < h.min:
                    h.min = data["min"]
                if data["max"] is not None and data["max"] > h.max:
                    h.max = data["max"]
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")


class NullMetricsRegistry(MetricsRegistry):
    """Registry of the null observer: every accessor returns the shared no-op."""

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]
