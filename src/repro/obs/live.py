"""Live run streaming: an append-only JSONL heartbeat/event bus.

A :class:`RunEventLog` is handed to an engine (``simulate(...,
events=RunEventLog(path))`` or ``repro <workload> --events FILE``) and
receives one event per lifecycle boundary — run started, superstep
started/finished, run finished — written as **line-flushed JSON** so a
concurrent reader (``repro watch <file>``, a job server's SSE endpoint, a
plain ``tail -f``) sees each event the moment the engine emits it.

Events are append-only and schema-versioned.  Every line is an object with
at least::

    {"schema": 1, "kind": "...", "t": <unix seconds>, "elapsed": <seconds>}

``superstep_finished`` events additionally carry the counted parallel I/O
operations of the superstep, the host bytes moved through the storage plane
(or the process backend's pipes), and a trend-based ETA: the mean duration
of completed supersteps times the steps remaining when the caller declared
an ``expected_steps`` hint (``eta_s`` is ``null`` without one — compound
superstep counts are algorithm-dependent and the log does not guess).

Like every ``repro.obs`` surface, the event log is read-only with respect
to the simulation: emitting events never changes counted costs, ledgers,
or outputs (the golden suite proves byte identity with the bus on or off).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Iterator

__all__ = [
    "EVENT_SCHEMA",
    "RunEventLog",
    "read_events",
    "tail_events",
    "format_event",
]

#: Version stamped on every event line.
EVENT_SCHEMA = 1


class RunEventLog:
    """Append-only line-flushed JSONL event bus for one run.

    Parameters
    ----------
    path:
        File to append to.  Created (with parents) on first emit; an
        existing file is appended, so sequential runs into one log file
        form one stream (each run re-emits ``run_started``).
    expected_steps:
        Optional hint for ETA computation: the number of compound
        supersteps the caller expects.  Without it ``eta_s`` stays null.
    meta:
        Run description merged into the ``run_started`` event
        (workload, machine shape, engine, ...).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        expected_steps: int | None = None,
        meta: dict[str, Any] | None = None,
    ):
        self.path = os.fspath(path)
        self.expected_steps = expected_steps
        self.meta = dict(meta or {})
        self._fh = None
        self._t0 = time.perf_counter()
        self._step_t0: dict[int, float] = {}
        self._durations: list[float] = []

    # -- raw emission ---------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> dict:
        """Append one event line and flush it to the OS immediately."""
        if self._fh is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        event = {
            "schema": EVENT_SCHEMA,
            "kind": kind,
            "t": time.time(),
            "elapsed": round(time.perf_counter() - self._t0, 6),
        }
        event.update(fields)
        self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._fh.flush()
        return event

    # -- lifecycle events (called by the engines) ------------------------------

    def run_started(self, **meta: Any) -> None:
        merged = dict(self.meta)
        merged.update(meta)
        self._t0 = time.perf_counter()
        self._durations = []
        self._step_t0 = {}
        self.emit("run_started", meta=merged,
                  expected_steps=self.expected_steps)

    def superstep_started(self, step: int) -> None:
        self._step_t0[step] = time.perf_counter()
        self.emit("superstep_started", step=step)

    def superstep_finished(
        self,
        step: int,
        *,
        io_ops: int | None = None,
        bytes_moved: int | None = None,
        **fields: Any,
    ) -> None:
        now = time.perf_counter()
        dur = now - self._step_t0.pop(step, now)
        self._durations.append(dur)
        avg = sum(self._durations) / len(self._durations)
        eta = None
        if self.expected_steps is not None:
            remaining = max(0, self.expected_steps - len(self._durations))
            eta = round(avg * remaining, 6)
        self.emit(
            "superstep_finished",
            step=step,
            io_ops=io_ops,
            bytes_moved=bytes_moved,
            step_s=round(dur, 6),
            avg_step_s=round(avg, 6),
            steps_done=len(self._durations),
            eta_s=eta,
            **fields,
        )

    def run_finished(self, status: str = "ok", **fields: Any) -> None:
        self.emit("run_finished", status=status, **fields)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunEventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self._fh is not None:
            self.emit("run_finished", status="error", error=repr(exc))
        self.close()


# -- reading ------------------------------------------------------------------


def read_events(path: str | os.PathLike, strict: bool = False) -> list[dict]:
    """Parse every complete event line of ``path``.

    A trailing partial line (the writer is mid-append) is skipped; a
    malformed *complete* line raises ``ValueError`` when ``strict`` and is
    skipped otherwise.  Events of an unknown schema version are always
    rejected under ``strict``.
    """
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        data = fh.read()
    lines = data.split("\n")
    if lines and lines[-1] != "":
        lines = lines[:-1]  # incomplete trailing line: writer mid-append
    else:
        lines = lines[:-1] if lines else lines
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError:
            if strict:
                raise ValueError(f"{path}: line {i + 1} is not valid JSON")
            continue
        if not isinstance(ev, dict) or "kind" not in ev:
            if strict:
                raise ValueError(f"{path}: line {i + 1} is not an event object")
            continue
        if strict and ev.get("schema") != EVENT_SCHEMA:
            raise ValueError(
                f"{path}: line {i + 1} has schema {ev.get('schema')!r}, "
                f"expected {EVENT_SCHEMA}"
            )
        events.append(ev)
    return events


def tail_events(
    path: str | os.PathLike,
    *,
    follow: bool = False,
    poll: float = 0.2,
    timeout: float | None = None,
) -> Iterator[dict]:
    """Yield events from ``path``; with ``follow``, keep polling for more.

    Following stops at a ``run_finished`` event, after ``timeout`` seconds
    without the file appearing/growing, or when the caller stops iterating.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    pos = 0
    buffer = ""
    while True:
        grew = False
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                fh.seek(pos)
                chunk = fh.read()
                pos = fh.tell()
            if chunk:
                grew = True
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    if not line.strip():
                        continue
                    try:
                        ev = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(ev, dict) and "kind" in ev:
                        yield ev
                        if ev["kind"] == "run_finished" and follow:
                            return
        if not follow:
            return
        if grew:
            deadline = None if timeout is None else time.monotonic() + timeout
        elif deadline is not None and time.monotonic() > deadline:
            return
        time.sleep(poll)


def format_event(ev: dict) -> str:
    """One human line per event (the ``repro watch`` renderer)."""
    kind = ev.get("kind", "?")
    elapsed = ev.get("elapsed", 0.0)
    prefix = f"[{elapsed:8.2f}s]"
    if kind == "run_started":
        meta = ev.get("meta") or {}
        desc = " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        return f"{prefix} run started {desc}"
    if kind == "superstep_started":
        return f"{prefix} superstep {ev.get('step')} ..."
    if kind == "superstep_finished":
        parts = [f"superstep {ev.get('step')} done in {ev.get('step_s', 0):.3f}s"]
        if ev.get("io_ops") is not None:
            parts.append(f"io_ops={ev['io_ops']}")
        if ev.get("bytes_moved") is not None:
            parts.append(f"bytes={ev['bytes_moved']}")
        if ev.get("eta_s") is not None:
            parts.append(f"eta={ev['eta_s']:.1f}s")
        return f"{prefix} " + " ".join(parts)
    if kind == "run_finished":
        extra = "" if ev.get("status") == "ok" else f" ({ev.get('status')})"
        fields = {k: v for k, v in ev.items()
                  if k not in ("schema", "kind", "t", "elapsed", "status")}
        desc = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
        return f"{prefix} run finished{extra} {desc}".rstrip()
    return f"{prefix} {kind} " + json.dumps(
        {k: v for k, v in ev.items()
         if k not in ("schema", "kind", "t", "elapsed")},
        separators=(",", ":"),
    )
