"""Bench-trajectory regression tracking over ``BENCH_HISTORY.jsonl``.

``benchmarks/bench_perf.py`` appends one schema-versioned, host-fingerprinted
entry per run::

    {"schema": 1, "t": <unix seconds>, "host": {...fingerprint...},
     "results": {"<config key>": {"wall_s": ..., "io_ops": ...}, ...}}

This module compares the latest entry against the **trajectory** — the
median of the preceding same-host entries inside a sliding window — and
returns a *soft* regression verdict: wall-clock is hostage to machine load,
thermal state, and scheduler noise, so a single slow run warns (CI's
perf-smoke job prints ``::warning::``) instead of failing the build.
Counted-cost fields (``io_ops``) get a hard verdict: the model charges the
same I/O on every host, so any drift there is a real behavioural change.

Entries from other hosts are kept in the file (history survives moving
between machines) but never compared against: a laptop's wall-clock says
nothing about a CI runner's.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import statistics
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "HISTORY_SCHEMA",
    "host_fingerprint",
    "append_history",
    "load_history",
    "TrendVerdict",
    "compare_trend",
]

#: Version stamped on every history entry.
HISTORY_SCHEMA = 1

#: A run slower than ``threshold`` times the trajectory median regresses.
DEFAULT_THRESHOLD = 1.5

#: Number of prior same-host entries the trajectory median is taken over.
DEFAULT_WINDOW = 8


def host_fingerprint() -> dict[str, Any]:
    """A stable description of the benchmarking host.

    The ``id`` field is a short digest of the stable components — wall-clock
    entries are only comparable when it matches.
    """
    info = {
        "platform": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
        "node": platform.node(),
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode()
    ).hexdigest()[:12]
    return {**info, "id": digest}


def append_history(
    path: str | os.PathLike,
    results: dict[str, dict[str, Any]],
    *,
    t: float,
    meta: dict[str, Any] | None = None,
) -> dict:
    """Append one run's results as a history entry; returns the entry.

    ``results`` maps a config key (e.g. ``"seq_fast n=65536 sort"``) to its
    measurements — ``wall_s`` is what the trend compares; ``io_ops`` (and
    any other counted field) rides along for hard drift checks.
    """
    entry = {
        "schema": HISTORY_SCHEMA,
        "t": t,
        "host": host_fingerprint(),
        "results": results,
    }
    if meta:
        entry["meta"] = meta
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")
        fh.flush()
    return entry


def load_history(path: str | os.PathLike, strict: bool = False) -> list[dict]:
    """Parse the history file, oldest first.

    Malformed lines and unknown schema versions are skipped (``strict``
    raises instead): the history file outlives schema migrations and a
    half-written line from a crashed bench run must not poison CI.
    """
    entries: list[dict] = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as fh:
        for i, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if strict:
                    raise ValueError(f"{path}: line {i + 1} is not valid JSON")
                continue
            if not isinstance(entry, dict) or "results" not in entry:
                if strict:
                    raise ValueError(f"{path}: line {i + 1} is not an entry")
                continue
            if entry.get("schema") != HISTORY_SCHEMA:
                if strict:
                    raise ValueError(
                        f"{path}: line {i + 1} has schema "
                        f"{entry.get('schema')!r}, expected {HISTORY_SCHEMA}"
                    )
                continue
            entries.append(entry)
    return entries


@dataclass
class TrendVerdict:
    """Outcome of comparing the latest run against its trajectory.

    ``status`` is one of ``"ok"``, ``"regressed"`` (some config's wall-clock
    exceeded ``threshold`` × trajectory median — soft, advisory),
    ``"counted_drift"`` (a counted cost changed — hard), or
    ``"insufficient"`` (fewer than two same-host entries).
    """

    status: str
    lines: list[str] = field(default_factory=list)
    regressions: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def render(self) -> str:
        head = f"trend: {self.status}"
        return "\n".join([head] + [f"  {ln}" for ln in self.lines])


def compare_trend(
    history: list[dict],
    *,
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
) -> TrendVerdict:
    """Compare the newest history entry against its same-host trajectory."""
    if not history:
        return TrendVerdict("insufficient", ["history is empty"])
    latest = history[-1]
    host_id = latest.get("host", {}).get("id")
    prior = [
        e for e in history[:-1] if e.get("host", {}).get("id") == host_id
    ][-window:]
    if not prior:
        return TrendVerdict(
            "insufficient",
            [f"no prior entries for host {host_id} — baseline recorded"],
        )
    lines: list[str] = []
    regressions: list[dict] = []
    counted_drift = False
    for key, res in sorted(latest["results"].items()):
        walls = [
            e["results"][key]["wall_s"]
            for e in prior
            if key in e["results"] and "wall_s" in e["results"][key]
        ]
        if walls and "wall_s" in res:
            med = statistics.median(walls)
            ratio = res["wall_s"] / med if med > 0 else float("inf")
            marker = ""
            if ratio > threshold:
                marker = f"  <-- regressed (> {threshold:.2f}x median)"
                regressions.append(
                    {"key": key, "kind": "wall", "ratio": ratio,
                     "latest": res["wall_s"], "median": med}
                )
            lines.append(
                f"{key}: wall {res['wall_s']:.3f}s vs median "
                f"{med:.3f}s over {len(walls)} runs "
                f"({ratio:.2f}x){marker}"
            )
        # Counted costs must match the trajectory exactly: the model charges
        # the same I/O on every host and every run.
        ios = {
            e["results"][key]["io_ops"]
            for e in prior
            if key in e["results"] and "io_ops" in e["results"][key]
        }
        if ios and "io_ops" in res and res["io_ops"] not in ios:
            counted_drift = True
            regressions.append(
                {"key": key, "kind": "counted", "latest": res["io_ops"],
                 "seen": sorted(ios)}
            )
            lines.append(
                f"{key}: counted io_ops {res['io_ops']} drifted from "
                f"history {sorted(ios)}  <-- counted drift"
            )
    if counted_drift:
        return TrendVerdict("counted_drift", lines, regressions)
    if regressions:
        return TrendVerdict("regressed", lines, regressions)
    return TrendVerdict("ok", lines, regressions)
