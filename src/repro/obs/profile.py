"""Wall-clock attribution profiler: where does host time actually go?

The counted-cost model says how many parallel I/O operations a run charges;
this module says which *host-side activity* the wall-clock between those
charges was spent on.  A :class:`CategoryProfiler` keeps an explicit scope
stack and accrues **exclusive (self) time** to the innermost open category,
so categories never overlap and their totals sum to at most the profiled
wall-clock — an attribution table whose shares are honest fractions.

Category taxonomy (see DESIGN.md §11):

``kernel``
    Algorithm supersteps — the simulated computation itself.
``syscall_io``
    Raw storage-plane data movement: ``pread``/``pwrite``/``fsync`` on the
    file plane, page-cache copies on the mmap plane.  *Foreground* time —
    the engine thread was blocked for its duration.
``syscall_io_bg``
    Storage-plane transfers performed by the overlapped-I/O flusher pool
    (DESIGN §12) concurrently with computation.  Hidden time: it overlaps
    other categories and is excluded from the exclusive-time invariant
    (accrued via :meth:`CategoryProfiler.add` at quiesce points, not via
    the scope stack), so ``engine`` totals may exceed attributed wall-clock
    only through this category.
``serialize``
    Encoding/decoding between objects and bytes: block image
    encode/decode, context pickling, record codec conversions.
``layout``
    Block/track bookkeeping around the data: region addressing, greedy
    round packing, bucket appends, message chopping — the EM simulation's
    own glue.
``routing``
    Algorithm 2 reorganization (bucket scans, destination grouping).
``ipc``
    Process-backend pipe framing and sends.
``barrier_wait``
    Engine-side blocking on worker replies (includes result unframing —
    the engine cannot observe the boundary between waiting and reading).
``checkpoint``
    Superstep-barrier checkpoint capture, journal commits, and recovery.

The profiler is threaded through the stack as plain object references —
``Collector(profile=True)`` owns one, engines install it into their disk
arrays (and therefore storages) and backends — never as module-global
state.  Like the span layer, profiling is strictly read-only: the golden
suite proves counted costs, ledgers, and outputs are byte-identical with
profiling enabled or disabled, and :data:`NULL_PROFILER` keeps the
disabled path at a few no-op attribute calls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "CATEGORIES",
    "CATEGORY_COLORS",
    "PROFILE_SCHEMA",
    "CategoryProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "ProfileReport",
    "build_report",
    "validate_report_dict",
]

#: Every named category, in report display order.
CATEGORIES = (
    "kernel",
    "syscall_io",
    "syscall_io_bg",
    "serialize",
    "layout",
    "routing",
    "ipc",
    "barrier_wait",
    "checkpoint",
)

#: Perfetto ``cname`` per category (stable palette from the trace-viewer
#: color map, chosen for contrast between neighbouring categories).
CATEGORY_COLORS = {
    "kernel": "thread_state_running",
    "syscall_io": "rail_load",
    "syscall_io_bg": "thread_state_sleeping",
    "serialize": "thread_state_iowait",
    "layout": "rail_idle",
    "routing": "rail_animation",
    "ipc": "thread_state_runnable",
    "barrier_wait": "grey",
    "checkpoint": "rail_response",
}

#: Version of :meth:`ProfileReport.to_dict` payloads.
PROFILE_SCHEMA = 1

_now = time.perf_counter


class _Scope:
    """Context manager pushing one category for its body."""

    __slots__ = ("_prof", "_cat")

    def __init__(self, prof: "CategoryProfiler", cat: str):
        self._prof = prof
        self._cat = cat

    def __enter__(self) -> "_Scope":
        self._prof.push(self._cat)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._prof.pop()


class CategoryProfiler:
    """Exclusive-time scope-stack profiler over the category taxonomy.

    ``push(cat)`` / ``pop()`` accrue the elapsed time since the previous
    transition to the category on top of the stack, so nested scopes carve
    their time *out* of their parent's total (a ``serialize`` scope inside
    a ``layout`` phase bills serialize, not both).  Time spent with an
    empty stack is unattributed; :meth:`ProfileReport.render` reports it as
    ``(other)``.

    One profiler belongs to one OS process/thread — the engines and their
    inline workers share the single-threaded engine loop, while process
    backend workers each own a private profiler whose snapshot is drained
    and merged as a per-processor track.
    """

    enabled = True

    __slots__ = ("totals", "counts", "steps", "_stack", "_last", "_t0", "_t1")

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        #: per-superstep cumulative marks: ``(step, t, dict(totals))``
        self.steps: list[tuple[int, float, dict[str, float]]] = []
        self._stack: list[str] = []
        self._last = 0.0
        self._t0: float | None = None
        self._t1: float | None = None

    # -- scope stack ----------------------------------------------------------

    def push(self, cat: str) -> None:
        now = _now()
        stack = self._stack
        if stack:
            top = stack[-1]
            self.totals[top] = self.totals.get(top, 0.0) + (now - self._last)
        self._last = now
        stack.append(cat)
        self.counts[cat] = self.counts.get(cat, 0) + 1

    def pop(self) -> None:
        now = _now()
        stack = self._stack
        if not stack:  # unbalanced pop: ignore rather than corrupt totals
            self._last = now
            return
        top = stack.pop()
        self.totals[top] = self.totals.get(top, 0.0) + (now - self._last)
        self._last = now

    def scope(self, cat: str) -> _Scope:
        """Context-manager form of ``push``/``pop`` (cold paths)."""
        return _Scope(self, cat)

    def add(self, cat: str, seconds: float, count: int = 1) -> None:
        """Accrue pre-measured time to ``cat`` outside the scope stack.

        For *overlapped* activity (``syscall_io_bg``) whose duration was
        measured on another thread and is drained at a quiesce point: the
        scope stack would double-bill the engine's concurrent category, so
        the seconds are added directly.  Callers must only drain from the
        thread that owns this profiler.
        """
        self.totals[cat] = self.totals.get(cat, 0.0) + seconds
        self.counts[cat] = self.counts.get(cat, 0) + count

    # -- run lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Open the profiled window (engine run start)."""
        if self._t0 is None:
            self._t0 = _now()
            self._last = self._t0

    def stop(self) -> None:
        """Close the profiled window; idempotent."""
        while self._stack:  # unwind scopes abandoned by an exception
            self.pop()
        self._t1 = _now()

    @property
    def wall(self) -> float:
        """Profiled wall-clock (start to stop, or to now while open)."""
        if self._t0 is None:
            return 0.0
        return (self._t1 if self._t1 is not None else _now()) - self._t0

    def attributed(self) -> float:
        """Seconds attributed to named categories."""
        return sum(self.totals.values())

    def mark_superstep(self, step: int) -> None:
        """Record cumulative totals at the end of superstep ``step``."""
        self.steps.append((step, _now(), dict(self.totals)))

    # -- worker merge ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable totals payload (worker drain); resets nothing."""
        return {
            "totals": dict(self.totals),
            "counts": dict(self.counts),
            "wall": self.wall,
        }

    def reset(self) -> None:
        self.totals = {}
        self.counts = {}
        self.steps = []
        self._stack = []
        self._t0 = None
        self._t1 = None


class _NullScope:
    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SCOPE = _NullScope()


class NullProfiler:
    """The detached profiler: every operation is a no-op.

    Storage and backend hot paths call ``push``/``pop`` unconditionally;
    with this object installed each call is one attribute lookup and an
    empty method — the observer-overhead guard test bounds the cost.
    """

    enabled = False

    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    steps: list = []
    wall = 0.0

    def push(self, cat: str) -> None:
        pass

    def pop(self) -> None:
        pass

    def scope(self, cat: str) -> _NullScope:
        return _NULL_SCOPE

    def add(self, cat: str, seconds: float, count: int = 1) -> None:
        pass

    def start(self) -> None:
        pass

    def stop(self) -> None:
        pass

    def mark_superstep(self, step: int) -> None:
        pass

    def attributed(self) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"totals": {}, "counts": {}, "wall": 0.0}

    def reset(self) -> None:
        pass


NULL_PROFILER = NullProfiler()


# -- the report ---------------------------------------------------------------


@dataclass
class ProfileReport:
    """Aggregated wall-clock attribution for one run.

    ``tracks`` maps a track name (``"engine"``, ``"p0"``, ...) to
    ``{"wall": float, "totals": {cat: sec}, "counts": {cat: int}}``.  The
    ``"engine"`` track is the headline: for the sequential engine and the
    inline backend it covers the whole single-threaded run (worker scopes
    carve their categories out of the same stack's timeline), so its
    attributed fraction is the run's.  Process-backend workers overlap the
    engine in time and are therefore kept as separate tracks — there the
    engine's ``barrier_wait`` is the window the per-processor tracks fill.

    ``supersteps`` holds per-superstep deltas of the engine track:
    ``{"step": int, "wall": float, "totals": {cat: sec}}``.
    """

    wall: float
    tracks: dict[str, dict[str, Any]]
    supersteps: list[dict[str, Any]] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)
    schema: int = PROFILE_SCHEMA

    # -- derived views --------------------------------------------------------

    def track_totals(self, track: str = "engine") -> dict[str, float]:
        return dict(self.tracks.get(track, {}).get("totals", {}))

    def attributed_fraction(self, track: str = "engine") -> float:
        """Share of the run's wall-clock attributed to named categories."""
        tr = self.tracks.get(track)
        if tr is None or self.wall <= 0:
            return 0.0
        return min(1.0, sum(tr["totals"].values()) / self.wall)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "wall": self.wall,
            "tracks": self.tracks,
            "supersteps": self.supersteps,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProfileReport":
        validate_report_dict(payload)
        return cls(
            wall=payload["wall"],
            tracks=payload["tracks"],
            supersteps=payload.get("supersteps", []),
            meta=payload.get("meta", {}),
            schema=payload["schema"],
        )

    # -- rendering -------------------------------------------------------------

    def render(self) -> str:
        """The ``repro perf report`` breakdown table."""
        out: list[str] = []
        meta = " ".join(f"{k}={v}" for k, v in sorted(self.meta.items()))
        out.append(f"wall-clock attribution ({meta})" if meta else
                   "wall-clock attribution")
        for name in sorted(self.tracks, key=lambda t: (t != "engine", t)):
            tr = self.tracks[name]
            denom = self.wall if name == "engine" else (tr["wall"] or self.wall)
            denom = max(denom, 1e-12)
            out.append(f"  [{name}] wall {tr['wall']:.3f}s")
            out.append(f"    {'category':<14}{'seconds':>10}{'share':>8}"
                       f"{'scopes':>10}")
            attributed = 0.0
            for cat in CATEGORIES:
                sec = tr["totals"].get(cat, 0.0)
                if not sec and not tr["counts"].get(cat):
                    continue
                attributed += sec
                out.append(f"    {cat:<14}{sec:>10.3f}{sec / denom:>7.1%}"
                           f"{tr['counts'].get(cat, 0):>10}")
            other = max(0.0, denom - attributed)
            out.append(f"    {'(other)':<14}{other:>10.3f}"
                       f"{other / denom:>7.1%}{'':>10}")
            out.append(f"    {'attributed':<14}{attributed:>10.3f}"
                       f"{attributed / denom:>7.1%}")
        if self.supersteps:
            out.append(f"  per-superstep (engine track, seconds):")
            cats = [c for c in CATEGORIES
                    if any(row["totals"].get(c) for row in self.supersteps)]
            head = "".join(f"{c[:10]:>11}" for c in cats)
            out.append(f"    {'step':<6}{'wall':>8}{head}")
            for row in self.supersteps:
                cells = "".join(f"{row['totals'].get(c, 0.0):>11.3f}"
                                for c in cats)
                out.append(f"    {row['step']:<6}{row['wall']:>8.3f}{cells}")
        return "\n".join(out)


def validate_report_dict(payload: dict) -> None:
    """Schema check for a serialized :class:`ProfileReport` (CI gate)."""
    if not isinstance(payload, dict):
        raise ValueError("profile report payload is not an object")
    if payload.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            f"profile report schema {payload.get('schema')!r}, "
            f"expected {PROFILE_SCHEMA}"
        )
    if not isinstance(payload.get("wall"), (int, float)):
        raise ValueError("profile report wall is not a number")
    tracks = payload.get("tracks")
    if not isinstance(tracks, dict) or "engine" not in tracks:
        raise ValueError("profile report has no engine track")
    for name, tr in tracks.items():
        for key in ("wall", "totals", "counts"):
            if key not in tr:
                raise ValueError(f"track {name!r} is missing {key!r}")
        for cat in tr["totals"]:
            if cat not in CATEGORIES:
                raise ValueError(f"track {name!r} holds unknown category {cat!r}")
    for row in payload.get("supersteps", []):
        if "step" not in row or "totals" not in row:
            raise ValueError("superstep row missing step/totals")


def build_report(collector, meta: dict | None = None) -> ProfileReport:
    """Assemble the :class:`ProfileReport` from a run's collector.

    The engine track is the collector's own profiler; per-processor
    snapshots drained from process-backend workers (see
    ``Collector.ingest``) become ``p{i}`` tracks.  Inline workers share
    the engine's single-threaded timeline, so their profilers were merged
    into the engine track at drain time and no separate tracks appear.
    """
    prof = collector.profile
    tracks: dict[str, dict[str, Any]] = {
        "engine": {
            "wall": prof.wall,
            "totals": dict(prof.totals),
            "counts": dict(prof.counts),
        }
    }
    for proc, snap in sorted(getattr(collector, "proc_profiles", {}).items()):
        tracks[f"p{proc}"] = {
            "wall": snap.get("wall", 0.0),
            "totals": dict(snap.get("totals", {})),
            "counts": dict(snap.get("counts", {})),
        }
    supersteps: list[dict[str, Any]] = []
    prev_t = prof._t0 if prof._t0 is not None else 0.0
    prev_tot: dict[str, float] = {}
    for step, t, cum in prof.steps:
        totals = {
            cat: cum.get(cat, 0.0) - prev_tot.get(cat, 0.0)
            for cat in cum
            if cum.get(cat, 0.0) - prev_tot.get(cat, 0.0) > 0.0
        }
        supersteps.append({"step": step, "wall": t - prev_t, "totals": totals})
        prev_t, prev_tot = t, cum
    return ProfileReport(
        wall=prof.wall, tracks=tracks, supersteps=supersteps, meta=meta or {}
    )
