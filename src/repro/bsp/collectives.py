"""Helpers shared by the CGM algorithm library.

These are pure functions used inside superstep code: balanced block
distributions of the input across virtual processors, deterministic regular
sampling for sample-sort-style splitting, and partitioning by splitters.
They perform no communication themselves — communication always goes through
:meth:`VPContext.send` so the simulations can observe it.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Sequence

__all__ = [
    "share_bounds",
    "share_size",
    "owner_of_index",
    "regular_samples",
    "partition_by_splitters",
    "merge_sorted",
]


def share_bounds(n: int, v: int, pid: int) -> tuple[int, int]:
    """Global index range ``[lo, hi)`` of vp ``pid``'s share of ``n`` items.

    Balanced block distribution: the first ``n mod v`` processors get
    ``ceil(n/v)`` items, the rest ``floor(n/v)``.
    """
    base, extra = divmod(n, v)
    lo = pid * base + min(pid, extra)
    hi = lo + base + (1 if pid < extra else 0)
    return lo, hi


def share_size(n: int, v: int, pid: int) -> int:
    lo, hi = share_bounds(n, v, pid)
    return hi - lo


def owner_of_index(i: int, n: int, v: int) -> int:
    """The vp owning global index ``i`` under the balanced block distribution."""
    if not (0 <= i < n):
        raise IndexError(f"index {i} outside [0, {n})")
    base, extra = divmod(n, v)
    boundary = extra * (base + 1)
    if i < boundary:
        return i // (base + 1)
    if base == 0:
        return extra  # pragma: no cover - unreachable: i >= boundary == n
    return extra + (i - boundary) // base


def regular_samples(sorted_items: Sequence[Any], count: int) -> list[Any]:
    """``count`` regularly spaced samples of a locally sorted sequence.

    Deterministic regular sampling (as in communication-efficient parallel
    sorting): sample ``i`` is the item at position ``floor((i+1)*n/(count+1))``.
    Fewer samples are returned if the sequence is shorter than ``count``.
    """
    n = len(sorted_items)
    if n == 0 or count <= 0:
        return []
    idxs = sorted({min(n - 1, (i + 1) * n // (count + 1)) for i in range(count)})
    return [sorted_items[i] for i in idxs]


def partition_by_splitters(
    sorted_items: Sequence[Any],
    splitters: Sequence[Any],
    key: Callable[[Any], Any] | None = None,
) -> list[list[Any]]:
    """Split a locally sorted sequence into ``len(splitters)+1`` runs.

    Run ``j`` holds the items with ``splitters[j-1] <= key(item) < splitters[j]``
    (run 0 has everything below ``splitters[0]``).  Both inputs must be sorted.
    """
    if key is None:
        keys = list(sorted_items)
    else:
        keys = [key(x) for x in sorted_items]
    parts: list[list[Any]] = []
    lo = 0
    for s in splitters:
        hi = bisect.bisect_left(keys, s, lo)
        parts.append(list(sorted_items[lo:hi]))
        lo = hi
    parts.append(list(sorted_items[lo:]))
    return parts


def merge_sorted(
    runs: Sequence[Sequence[Any]], key: Callable[[Any], Any] | None = None
) -> list[Any]:
    """Merge already-sorted runs into one sorted list."""
    import heapq

    if key is None:
        return list(heapq.merge(*runs))
    return list(heapq.merge(*runs, key=key))
