"""Messages exchanged between virtual processors, and their blocked form.

A :class:`Message` carries a run of *records* from one virtual processor to
another within one communication superstep.  For external-memory simulation a
message is cut into blocks of the disk block size ``B`` ("we cut the messages
into blocks of size ``B``.  Each block inherits the destination address from
its original message", Section 5.1); :func:`message_to_blocks` and
:func:`blocks_to_messages` implement that round trip.

Payloads come in two flavours.  The reference plane uses Python lists (one
object per record); the vectorized plane uses 1-D numpy arrays of a codec
dtype.  Both flavours block into *slices* — for ndarrays these are zero-copy
views over the message buffer — and reassemble with a single concatenate.
Record counts are logical (``len``) either way, so the counted cost model
cannot tell the flavours apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from ..emio.disk import Block

__all__ = [
    "Message",
    "Packet",
    "message_to_blocks",
    "blocks_to_messages",
    "message_to_packets",
    "packet_to_blocks",
]


def _slice(records, i: int, j: int):
    """One block/packet payload: list slice (copy) or ndarray view."""
    if isinstance(records, np.ndarray):
        return records[i:j]
    return list(records[i:j])


def _join(parts: list):
    """Concatenate part payloads in order, preserving the flavour."""
    if parts and all(isinstance(p, np.ndarray) for p in parts):
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)
    payload: list[Any] = []
    for p in parts:
        payload.extend(p)
    return payload


@dataclass
class Message:
    """A point-to-point message of ``len(payload)`` records."""

    src: int
    dest: int
    payload: Any = field(default_factory=list)

    @property
    def size(self) -> int:
        """Message size in records."""
        return len(self.payload)

    def __iter__(self):
        return iter(self.payload)


def message_to_blocks(msg: Message, B: int, msg_id: int) -> list[Block]:
    """Cut one message into blocks of size ``B`` (blocked format).

    Empty messages still produce one (empty) block so that their arrival is
    observable; the cost model charges them one packet, consistent with BSP*.
    """
    if len(msg.payload) == 0:
        return [Block(records=[], dest=msg.dest, src=msg.src, msg=msg_id, seq=0)]
    return [
        Block(
            records=_slice(msg.payload, i, i + B),
            dest=msg.dest,
            src=msg.src,
            msg=msg_id,
            seq=seq,
        )
        for seq, i in enumerate(range(0, len(msg.payload), B))
    ]


@dataclass
class Packet:
    """A BSP* packet: up to ``b`` records of one message.

    The parallel simulation (Algorithm 3) splits generated messages into
    packets of the router's packet size ``b`` and scatters each packet to a
    randomly chosen real processor; ``offset`` is the packet's record offset
    within the original message so blocks cut from it later keep globally
    consistent sequence numbers.
    """

    src: int
    dest: int
    msg: int
    offset: int
    records: Any = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.records)


def message_to_packets(msg: Message, b: int, msg_id: int) -> list[Packet]:
    """Split one message into packets of at most ``b`` records.

    Empty messages yield one empty packet (charged one packet by BSP*).
    """
    if len(msg.payload) == 0:
        return [Packet(src=msg.src, dest=msg.dest, msg=msg_id, offset=0)]
    return [
        Packet(
            src=msg.src,
            dest=msg.dest,
            msg=msg_id,
            offset=i,
            records=_slice(msg.payload, i, i + b),
        )
        for i in range(0, len(msg.payload), b)
    ]


def packet_to_blocks(pkt: Packet, B: int) -> list[Block]:
    """Cut one packet into disk blocks of at most ``B`` records.

    Block sequence numbers are the record offsets within the original
    message, so :func:`blocks_to_messages` reassembles payloads in order no
    matter which real processors the packets travelled through.
    """
    if len(pkt.records) == 0:
        return [
            Block(records=[], dest=pkt.dest, src=pkt.src, msg=pkt.msg, seq=pkt.offset)
        ]
    return [
        Block(
            records=_slice(pkt.records, i, i + B),
            dest=pkt.dest,
            src=pkt.src,
            msg=pkt.msg,
            seq=pkt.offset + i,
        )
        for i in range(0, len(pkt.records), B)
    ]


def blocks_to_messages(blocks: Iterable[Block | None]) -> list[Message]:
    """Reassemble messages from a pile of (possibly unordered) blocks.

    Blocks are grouped by ``(src, msg)``, each group's parts concatenated in
    ``seq`` order.  Dummy and empty slots are ignored.  The result is sorted
    by ``(src, msg)`` so delivery order is deterministic.  All-ndarray parts
    rejoin into one array (empty list-payload markers from the empty-message
    path are dropped first when array parts are present).
    """
    groups: dict[tuple[int, int], list[Block]] = {}
    for b in blocks:
        if b is None or b.dummy or b.dest < 0:
            continue
        groups.setdefault((b.src, b.msg), []).append(b)
    out = []
    for (src, _mid), parts in sorted(groups.items()):
        parts.sort(key=lambda blk: blk.seq)
        payloads = [p.records for p in parts]
        if any(isinstance(p, np.ndarray) for p in payloads):
            payloads = [p for p in payloads if len(p)] or payloads[:1]
        out.append(Message(src=src, dest=parts[0].dest, payload=_join(payloads)))
    return out
