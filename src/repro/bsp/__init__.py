"""BSP*/CGM programming model and in-memory reference execution."""

from .collectives import (
    merge_sorted,
    owner_of_index,
    partition_by_splitters,
    regular_samples,
    share_bounds,
    share_size,
)
from .message import Message, blocks_to_messages, message_to_blocks
from .program import AlgorithmError, BSPAlgorithm, VPContext
from .runner import ReferenceRunner, run_reference

__all__ = [
    "BSPAlgorithm",
    "VPContext",
    "AlgorithmError",
    "Message",
    "ReferenceRunner",
    "run_reference",
    "message_to_blocks",
    "blocks_to_messages",
    "share_bounds",
    "share_size",
    "owner_of_index",
    "regular_samples",
    "partition_by_splitters",
    "merge_sorted",
]
