"""In-memory reference runner for BSP*/CGM algorithms.

Runs an algorithm exactly as a BSP* machine would — all virtual processors
resident in memory, messages delivered through an in-memory router — while
charging BSP* costs (Section 2.2): per superstep, computation cost is the
maximum over processors of reported operations, and communication cost is
``g`` times the maximum over processors of ``ceil(sent/b) + ceil(received/b)``
packets, with a floor of ``L``.

The reference runner is the ground truth for invariant **I3** (simulation
transparency): for every algorithm and input, the EM simulations must produce
bit-identical outputs to this runner.
"""

from __future__ import annotations

from typing import Any

from ..costs import CostLedger, packets_for
from ..params import MachineParams
from .message import Message
from .program import AlgorithmError, BSPAlgorithm, VPContext

__all__ = ["ReferenceRunner", "run_reference"]


class ReferenceRunner:
    """Executes a :class:`BSPAlgorithm` on ``v`` in-memory virtual processors."""

    def __init__(
        self,
        algorithm: BSPAlgorithm,
        v: int,
        machine: MachineParams | None = None,
        enforce_comm_bound: bool = True,
    ):
        if v < 1:
            raise ValueError(f"v must be >= 1, got {v}")
        self.algorithm = algorithm
        self.v = v
        self.machine = machine if machine is not None else MachineParams()
        self.enforce_comm_bound = enforce_comm_bound
        self.ledger = CostLedger(self.machine)
        self.supersteps_executed = 0

    def run(self) -> tuple[list[Any], CostLedger]:
        """Run to completion; return (per-vp outputs, cost ledger)."""
        alg, v = self.algorithm, self.v
        states = [alg.initial_state(pid, v) for pid in range(v)]
        inboxes: list[list[Message]] = [[] for _ in range(v)]
        gamma = alg.comm_bound() if self.enforce_comm_bound else None

        for step in range(alg.MAX_SUPERSTEPS):
            cost = self.ledger.begin_superstep(label=f"superstep {step}")
            next_inboxes: list[list[Message]] = [[] for _ in range(v)]
            all_halted = True
            any_message = False
            max_comp = 0.0
            max_packets = 0
            received_records = [0] * v
            sent_packets = [0] * v
            total_sent = 0

            contexts = []
            for pid in range(v):
                ctx = VPContext(
                    pid, v, step, states[pid], inboxes[pid], comm_bound=gamma
                )
                alg.superstep(ctx)
                contexts.append(ctx)
                states[pid] = ctx.state
                if not ctx.halted:
                    all_halted = False
                max_comp = max(max_comp, ctx.comp_ops)
                for m in ctx.outbox:
                    any_message = True
                    next_inboxes[m.dest].append(m)
                    received_records[m.dest] += m.size
                    sent_packets[pid] += packets_for(max(m.size, 1), self.machine.b)
                    total_sent += m.size

            if gamma is not None:
                for pid, r in enumerate(received_records):
                    if r > gamma:
                        raise AlgorithmError(
                            f"vp {pid} received {r} records in superstep {step}, "
                            f"exceeding gamma={gamma}"
                        )

            for pid in range(v):
                recv_packets = sum(
                    packets_for(max(m.size, 1), self.machine.b)
                    for m in next_inboxes[pid]
                )
                max_packets = max(max_packets, sent_packets[pid] + recv_packets)

            cost.comp_ops = max_comp
            cost.comm_packets = max_packets
            cost.records_sent = total_sent
            self.supersteps_executed += 1
            inboxes = next_inboxes

            if all_halted and not any_message:
                break
        else:
            raise AlgorithmError(
                f"algorithm did not halt within MAX_SUPERSTEPS="
                f"{alg.MAX_SUPERSTEPS}"
            )

        self.ledger.close()
        outputs = [alg.output(pid, states[pid]) for pid in range(v)]
        return outputs, self.ledger


def run_reference(
    algorithm: BSPAlgorithm, v: int, machine: MachineParams | None = None
) -> tuple[list[Any], CostLedger]:
    """Convenience wrapper: run ``algorithm`` on ``v`` in-memory processors."""
    return ReferenceRunner(algorithm, v, machine=machine).run()
