"""The BSP*/CGM programming model: how user algorithms are written.

An algorithm is a subclass of :class:`BSPAlgorithm`.  Its per-virtual-
processor state (the *context* of the paper) is created by
:meth:`BSPAlgorithm.initial_state` and threaded through successive calls to
:meth:`BSPAlgorithm.superstep`.  Inside a superstep the algorithm may only
touch its own state and the messages that arrived at the *beginning* of the
superstep — exactly the BSP discipline — and communicates by
:meth:`VPContext.send`, which takes effect at the next superstep.

The same algorithm object runs unchanged on

* the in-memory reference runner (:mod:`repro.bsp.runner`),
* the sequential EM simulation (:mod:`repro.core.seqsim`, Algorithm 1), and
* the parallel EM simulation (:mod:`repro.core.parsim`, Algorithm 3),

which is the whole point of the paper: EM algorithms are *generated*, not
hand-crafted.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np

from .message import Message

__all__ = ["BSPAlgorithm", "VPContext", "AlgorithmError"]


class AlgorithmError(RuntimeError):
    """Raised when an algorithm violates the model (e.g. exceeds gamma)."""


class VPContext:
    """Execution context handed to one virtual processor for one superstep.

    Attributes
    ----------
    pid:
        This virtual processor's id, ``0 <= pid < nprocs``.
    nprocs:
        Number of virtual processors ``v``.
    step:
        Superstep index, starting at 0.
    state:
        The mutable per-processor state returned by ``initial_state`` (and
        round-tripped through disk by the EM simulations).
    incoming:
        Messages received at the beginning of this superstep, sorted by
        ``(src, arrival)``.
    """

    __slots__ = (
        "pid",
        "nprocs",
        "step",
        "state",
        "incoming",
        "_outbox",
        "_halted",
        "_comp_ops",
        "_sent_records",
        "_comm_bound",
    )

    def __init__(
        self,
        pid: int,
        nprocs: int,
        step: int,
        state: Any,
        incoming: Sequence[Message],
        comm_bound: int | None = None,
    ):
        self.pid = pid
        self.nprocs = nprocs
        self.step = step
        self.state = state
        self.incoming = list(incoming)
        self._outbox: list[Message] = []
        self._halted = False
        self._comp_ops = 0.0
        self._sent_records = 0
        self._comm_bound = comm_bound

    # -- communication -----------------------------------------------------------

    def send(self, dest: int, payload: Sequence[Any]) -> None:
        """Queue a message of ``len(payload)`` records for delivery next superstep.

        List payloads are copied (the caller may keep mutating its list);
        ndarray payloads pass through as contiguous 1-D views — the
        vectorized plane's zero-copy path.  The record count, and hence
        every communication charge, is ``len(payload)`` either way.
        """
        if not (0 <= dest < self.nprocs):
            raise AlgorithmError(
                f"vp {self.pid} sends to invalid destination {dest} "
                f"(v={self.nprocs})"
            )
        if isinstance(payload, np.ndarray):
            payload = np.ascontiguousarray(payload).reshape(-1)
        else:
            payload = list(payload)
        self._sent_records += len(payload)
        if self._comm_bound is not None and self._sent_records > self._comm_bound:
            raise AlgorithmError(
                f"vp {self.pid} sent {self._sent_records} records in superstep "
                f"{self.step}, exceeding the declared comm bound gamma="
                f"{self._comm_bound}"
            )
        self._outbox.append(Message(src=self.pid, dest=dest, payload=payload))

    def send_all(self, payload_by_dest: dict[int, Sequence[Any]]) -> None:
        """Send one message per entry of ``payload_by_dest`` (skips empties)."""
        for dest in sorted(payload_by_dest):
            payload = payload_by_dest[dest]
            if len(payload):
                self.send(dest, payload)

    # -- cost reporting ------------------------------------------------------------

    def charge(self, ops: float) -> None:
        """Report ``ops`` basic computation operations performed this superstep."""
        self._comp_ops += ops

    # -- control -----------------------------------------------------------------

    def vote_halt(self) -> None:
        """Vote to end the computation.

        The run stops after a superstep in which *every* virtual processor
        voted halt and no messages were generated.
        """
        self._halted = True

    # -- results collected by the runners -------------------------------------------

    @property
    def outbox(self) -> list[Message]:
        return self._outbox

    @property
    def halted(self) -> bool:
        return self._halted

    @property
    def comp_ops(self) -> float:
        return self._comp_ops

    @property
    def sent_records(self) -> int:
        return self._sent_records


class BSPAlgorithm(abc.ABC):
    """Base class for BSP*/CGM algorithms.

    Subclasses implement the four abstract methods and, for EM simulation,
    should override :meth:`context_size` and :meth:`comm_bound` with tight
    values: the simulation preallocates ``mu`` records of disk per virtual
    processor and ``gamma`` records of message area per virtual processor per
    superstep.
    """

    #: safety cap on supersteps (runaway-algorithm guard)
    MAX_SUPERSTEPS = 10_000

    #: record planes this algorithm implements.  Algorithms that port their
    #: hot supersteps onto a RecordCodec advertise ("object", "vector");
    #: everything else runs only on the reference object plane.
    RECORD_MODES: tuple[str, ...] = ("object",)

    #: active record plane; switch with :meth:`set_record_mode`.
    record_mode: str = "object"

    def set_record_mode(self, mode: str) -> None:
        """Select the record plane ("object" or "vector") for this run.

        The mode travels with the algorithm object — including through
        pickling to process-backend workers — and must be golden-invisible:
        counted costs, ledgers, and outputs are identical across modes.
        """
        if mode not in self.RECORD_MODES:
            raise AlgorithmError(
                f"{type(self).__name__} does not implement record mode "
                f"{mode!r} (supported: {self.RECORD_MODES})"
            )
        self.record_mode = mode

    @abc.abstractmethod
    def initial_state(self, pid: int, nprocs: int) -> Any:
        """Create virtual processor ``pid``'s initial context (incl. its input)."""

    @abc.abstractmethod
    def superstep(self, ctx: VPContext) -> None:
        """Execute one compound superstep for one virtual processor."""

    @abc.abstractmethod
    def output(self, pid: int, state: Any) -> Any:
        """Extract virtual processor ``pid``'s share of the result."""

    # -- resource declarations ------------------------------------------------------

    def context_size(self) -> int:
        """Declared maximum context size ``mu`` in records.

        The default is deliberately generous; override for honest space
        accounting (EM disk space is ``v * mu`` records).
        """
        return 1 << 16

    def comm_bound(self) -> int:
        """Declared maximum records sent (or received) per vp per superstep (gamma)."""
        return self.context_size()

    # -- conveniences ---------------------------------------------------------------

    def run_reference(self, v: int, **kwargs):
        """Run on the in-memory reference runner; returns (outputs, ledger)."""
        from .runner import ReferenceRunner

        return ReferenceRunner(self, v, **kwargs).run()
