"""Out-of-core workloads: datasets generated on the fly, digested on output.

The file/mmap storage planes (:mod:`repro.emio.storage`) only demonstrate
anything if the *host* process never holds the dataset either.  A plain
:class:`~repro.algorithms.sorting.CGMSampleSort` defeats that by
construction: it materializes ``list(data)`` in ``__init__`` and every
virtual processor's output is its full sorted slice.  The algorithms here
close both ends:

* **Inputs** are generated per virtual processor inside ``initial_state``
  from a seeded stream (``random.Random(f"ooc/{seed}/{pid}")``), so no
  process — engine or worker — ever holds more than one share.
* **Outputs** are order-respecting digests (count, sortedness, boundary
  keys, order-independent checksums), so collecting ``v`` outputs costs
  O(v), not O(n).

With those two fixed, the peak resident heap of a run under
``FileStorage`` is one context group plus a round of ``D`` blocks —
independent of ``n`` — which is exactly what ``tests/test_storage_oom.py``
asserts with tracemalloc and an RSS rlimit.  The digests still verify the
sort globally: every share digest must report sorted data, adjacent shares
must have non-decreasing boundary keys, and the merged (sum, sum-of-squares,
count) checksums must equal the input stream's, which the seeds make
recomputable without materializing anything.
"""

from __future__ import annotations

import random
from typing import Any

import numpy as np

from .algorithms.sorting import CGMSampleSort
from .algorithms._vec import I64
from .bsp.collectives import share_bounds
from .emio.codec import get_codec

__all__ = [
    "OutOfCoreSort",
    "share_stream",
    "stream_checksum",
    "verify_digests",
    "serialized_size",
]


def _key(x) -> int:
    """A checksum key for a record: the int itself, or a bytes prefix."""
    return x if isinstance(x, int) else int.from_bytes(x[:8], "big")


def share_stream(seed: int, pid: int, count: int, reclen: int | None = None):
    """Virtual processor ``pid``'s input share as a fresh generator.

    Deterministic in ``(seed, pid)`` alone, so any process can regenerate
    any share — the property that lets checkpoints resume and checksums
    verify without a materialized dataset anywhere.  ``reclen`` switches
    from int keys to fixed-length random byte strings, whose in-heap cost
    is much closer to their pickled size (an int costs ~7x its pickle in
    RAM; 64-byte ``bytes`` cost ~1.7x) — the right record shape when the
    point is heap-vs-dataset ratios.
    """
    rng = random.Random(f"ooc/{seed}/{pid}")
    if reclen is None:
        return (rng.randrange(1 << 30) for _ in range(count))
    return (rng.randbytes(reclen) for _ in range(count))


def stream_checksum(seed: int, n: int, v: int, reclen: int | None = None) -> tuple:
    """(count, sum, sum of squares) of record keys over the input stream."""
    total = cnt = sq = 0
    for pid in range(v):
        lo, hi_b = share_bounds(n, v, pid)
        for x in share_stream(seed, pid, hi_b - lo, reclen):
            k = _key(x)
            cnt += 1
            total += k
            sq += k * k
    return cnt, total, sq


class OutOfCoreSort(CGMSampleSort):
    """CGM sample sort whose data lives nowhere but the storage plane.

    Same supersteps, counted costs, and balance guarantees as
    :class:`CGMSampleSort`; only the endpoints differ — shares are
    generated inside ``initial_state`` and outputs are digests (see module
    docstring).  ``n >= v*v`` is still required.
    """

    def __init__(self, n: int, v: int, seed: int = 0, reclen: int | None = None):
        if v < 1:
            raise ValueError("v must be >= 1")
        if n < v * v:
            raise ValueError(f"CGM sort needs n >= v^2 (n={n}, v={v})")
        self.data = ()  # never materialized; kept for repr-compat only
        self.v = v
        self.key = None
        self.n = n
        self.seed = seed
        self.reclen = reclen
        # Int streams draw from randrange(1 << 30): exactly int64, so the
        # codec planes apply; byte-string records keep the legacy path.
        self._codec = "i64" if reclen is None else None
        if self._codec is not None:
            self.RECORD_MODES = ("object", "vector")

    def context_size(self) -> int:
        if self.reclen is None:
            return super().context_size()
        per_item = self.reclen + 8
        return 256 + per_item * (4 * -(-self.n // self.v) + 2 * self.v * self.v)

    def comm_bound(self) -> int:
        if self.reclen is None:
            return super().comm_bound()
        per_item = self.reclen + 4
        return 64 + per_item * max(
            self.v * self.v, 4 * -(-self.n // self.v) + self.v
        )

    def initial_state(self, pid: int, nprocs: int):
        lo, hi_b = share_bounds(self.n, nprocs, pid)
        items = list(share_stream(self.seed, pid, hi_b - lo, self.reclen))
        if self._codec is None:
            return {"items": items, "result": None}
        return {
            "enc": self._codec,
            "items": np.asarray(items, I64).tobytes(),
            "result": None,
        }

    def output(self, pid: int, state) -> dict[str, Any]:
        if self._codec is not None and self.record_mode == "vector":
            return self._output_vector(state)
        if self._codec is None:
            run = state["result"] if state["result"] is not None else []
        else:
            codec = get_codec(state["enc"])
            raw = state["result"]
            run = codec.decode(codec.from_bytes(raw)) if raw is not None else []
        keys = [_key(x) for x in run]
        digest = {
            "count": len(run),
            "sorted": all(a <= b for a, b in zip(run, run[1:])),
            "lo": run[0] if run else None,
            "hi": run[-1] if run else None,
            "sum": sum(keys),
            "sq": sum(k * k for k in keys),
        }
        state["result"] = None  # drop the run before contexts are collected
        return digest

    def _output_vector(self, state) -> dict[str, Any]:
        """The digest over array kernels — same Python values, no decode.

        Keys are < 2**30 (``share_stream`` draws) so the plain sum fits
        int64 even at n=10M; the sum of squares does not, and is computed
        via the split ``x**2 = a**2*2**30 + a*b*2**16 + b**2`` with
        ``a = x >> 15``, ``b = x & 0x7fff`` — each partial sum stays below
        2**54 and the combination happens in Python ints.
        """
        codec = get_codec(state["enc"])
        raw = state["result"]
        arr = codec.from_bytes(raw) if raw is not None else np.empty(0, I64)
        a = arr >> 15
        b = arr & 0x7FFF
        sq = (
            (int(np.sum(a * a)) << 30)
            + (int(np.sum(a * b)) << 16)
            + int(np.sum(b * b))
        )
        digest = {
            "count": len(arr),
            "sorted": bool(np.all(arr[:-1] <= arr[1:])),
            "lo": int(arr[0]) if len(arr) else None,
            "hi": int(arr[-1]) if len(arr) else None,
            "sum": int(np.sum(arr)),
            "sq": sq,
        }
        state["result"] = None  # drop the run before contexts are collected
        return digest


def verify_digests(digests: list[dict], seed: int, n: int, v: int,
                   reclen: int | None = None) -> None:
    """Assert that ``v`` share digests describe a correct global sort."""
    if len(digests) != v:
        raise AssertionError(f"expected {v} digests, got {len(digests)}")
    for i, d in enumerate(digests):
        if not d["sorted"]:
            raise AssertionError(f"share {i} is not sorted")
    bounds = [(d["lo"], d["hi"]) for d in digests if d["count"]]
    for (_, prev_hi), (nxt_lo, _) in zip(bounds, bounds[1:]):
        if prev_hi > nxt_lo:
            raise AssertionError("shares are not globally ordered")
    cnt = sum(d["count"] for d in digests)
    total = sum(d["sum"] for d in digests)
    sq = sum(d["sq"] for d in digests)
    if (cnt, total, sq) != stream_checksum(seed, n, v, reclen):
        raise AssertionError("digest checksums do not match the input stream")


def serialized_size(seed: int, n: int, v: int, reclen: int | None = None) -> int:
    """Honest pickled size of the dataset, one share at a time."""
    import pickle

    total = 0
    for pid in range(v):
        lo, hi_b = share_bounds(n, v, pid)
        share = list(share_stream(seed, pid, hi_b - lo, reclen))
        total += len(pickle.dumps(share, protocol=pickle.HIGHEST_PROTOCOL))
    return total


def _main(argv: list[str] | None = None) -> int:
    """Demo: sort an out-of-core dataset under an enforced heap budget.

    ``python -m repro.outofcore --n 200000 --budget-mb 4`` runs the sort on
    the file plane with tracemalloc enforcing that peak Python heap stays
    under the budget while the serialized dataset is several times larger.
    """
    import argparse
    import tracemalloc

    from .core.simulator import simulate
    from .params import MachineParams

    ap = argparse.ArgumentParser(description=_main.__doc__)
    ap.add_argument("--n", type=int, default=250_000)
    ap.add_argument("--v", type=int, default=64)
    ap.add_argument("--reclen", type=int, default=64,
                    help="record length in bytes (0: int keys)")
    ap.add_argument("--disks", "-D", type=int, default=8)
    ap.add_argument("--block", "-B", type=int, default=1024)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--budget-mb", type=float, default=5.0,
                    help="peak-heap budget enforced via tracemalloc")
    ap.add_argument("--storage", choices=("memory", "file", "mmap"),
                    default="file")
    ap.add_argument("--storage-dir", default=None)
    args = ap.parse_args(argv)

    reclen = args.reclen or None
    alg = OutOfCoreSort(args.n, args.v, seed=args.seed, reclen=reclen)
    machine = MachineParams(
        p=1, M=alg.context_size(), D=args.disks, B=args.block,
    )
    serialized = serialized_size(args.seed, args.n, args.v, reclen)
    budget = int(args.budget_mb * (1 << 20))
    tracemalloc.start()
    tracemalloc.reset_peak()
    outputs, report = simulate(
        alg, machine, v=args.v, seed=args.seed,
        storage=args.storage, storage_dir=args.storage_dir,
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    verify_digests(outputs, args.seed, args.n, args.v, reclen)
    print(f"sorted n={args.n} ({serialized / (1 << 20):.1f} MiB serialized) "
          f"on the {args.storage} plane")
    print(f"peak traced heap: {peak / (1 << 20):.2f} MiB "
          f"(budget {args.budget_mb:g} MiB, "
          f"dataset/peak ratio {serialized / max(peak, 1):.1f}x)")
    print(f"parallel I/O ops: {report.io_ops}")
    if args.storage != "memory" and peak > budget:
        print("FAIL: peak heap exceeded the budget")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
