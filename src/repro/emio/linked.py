"""*Standard linked format*: the randomized bucket store of Section 5.1.

After the computation phase of a group, the generated message blocks are
written to disk immediately, one random permutation of disks per write cycle:

    "In each round a group of ``D`` blocks ``b_i`` is written in parallel to
    the disks by choosing a random permutation ``pi`` of ``{0..D-1}`` and
    writing block ``b_i`` to disk ``pi(i)``."

Blocks are partitioned into ``D`` *buckets* by destination: bucket ``i`` holds
the blocks destined for the ``i``-th contiguous range of virtual processors.
On each disk, the blocks of a bucket form a linked list; the paper maintains
"a table of ``D`` pointers on each disk" pointing at the list heads.  We keep
the equivalent table in memory (one integer per stored block); its maintenance
piggybacks on block writes exactly as in the paper and incurs no extra I/O.

Lemma 2 shows that the random permutation writes leave every bucket spread
almost evenly over the disks — the property the reorganization step
(:mod:`repro.core.routing`) relies on, and which the ``LEM2`` benchmark
measures empirically.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Sequence

from .disk import Block, DiskError
from .diskarray import DiskArray
from .layout import RegionAllocator

__all__ = ["LinkedBuckets"]


class LinkedBuckets:
    """``nbuckets`` buckets of message blocks in standard linked format.

    Free tracks are drawn from ``allocator`` in chunks of ``chunk`` tracks
    per disk, so the store grows with actual traffic and releases everything
    back with :meth:`free` at the end of the superstep.

    Parameters
    ----------
    array:
        The disk array to write to.
    allocator:
        Source of track ranges.
    nbuckets:
        Number of buckets (the paper uses ``D``).
    bucket_of:
        Mapping from a block's destination virtual processor to its bucket.
    rng:
        Source of the random write permutations.
    schedule:
        Disk-assignment policy per write cycle — ablation modes for what
        Lemma 2's randomization buys:

        * ``"random"`` (the paper): a fresh uniform permutation per cycle;
          balance holds whp for *every* traffic pattern.
        * ``"rotate"``: deterministic rotation by the cycle index; balanced
          for benign traffic but defeatable by adversarial correlation.
        * ``"static"``: the identity permutation every cycle; traffic whose
          in-cycle position correlates with the bucket piles whole buckets
          onto single disks (load ratio ``D``).
        * ``"balance"``: deterministic greedy least-loaded assignment — the
          paper's remark that "for communication of predetermined size,
          such as occurs in a CGM, our simulation result can be made
          deterministic": each block goes to the cycle-free disk where its
          bucket currently has the smallest load.
    """

    def __init__(
        self,
        array: DiskArray,
        allocator: RegionAllocator,
        nbuckets: int,
        bucket_of: Callable[[int], int],
        rng: random.Random,
        chunk: int = 16,
        schedule: str = "random",
    ):
        if schedule not in ("random", "rotate", "static", "balance"):
            raise ValueError(f"unknown write schedule {schedule!r}")
        self.array = array
        self.allocator = allocator
        self.nbuckets = nbuckets
        self.bucket_of = bucket_of
        self.rng = rng
        self.chunk = max(1, chunk)
        self.schedule = schedule
        self._cycle = 0
        # Reserved track ranges (base, size) and the per-disk next-free pointer.
        self._ranges: list[tuple[int, int]] = []
        self._free_tracks: list[list[int]] = [[] for _ in range(array.D)]
        # table[bucket][disk] = list of (track, dest) pairs for that bucket's
        # blocks on that disk (the per-disk pointer tables of the paper,
        # augmented with the block's destination so the reorganization step
        # can size the target region without extra I/O).
        self.table: list[list[list[tuple[int, int]]]] = [
            [[] for _ in range(array.D)] for _ in range(nbuckets)
        ]
        self.blocks_written = 0

    def _grab_chunk(self) -> None:
        base = self.allocator.allocate(self.chunk)
        self._ranges.append((base, self.chunk))
        for d in range(self.array.D):
            self._free_tracks[d].extend(range(base, base + self.chunk))

    def _next_track(self, disk: int) -> int:
        if not self._free_tracks[disk]:
            self._grab_chunk()
        return self._free_tracks[disk].pop(0)

    # -- writing (Step 1(d) of Algorithm 1) -----------------------------------

    def append_blocks(self, blocks: Sequence[Block]) -> int:
        """Write message blocks in random-permutation cycles of ``D`` blocks.

        Returns the number of parallel I/O operations used
        (``ceil(len(blocks)/D)``).

        In degraded mode (a dead drive, see
        :meth:`repro.emio.diskarray.DiskArray.mark_dead`) cycles shrink to
        the ``D-1`` surviving disks and the permutation ranges over those
        only, so every bucket stays spread evenly over the drives that can
        actually serve it — Lemma 2 balance at ``D-1``.
        """
        ops_before = self.array.parallel_ops
        live = self.array.live_disks
        D = len(live)
        for start in range(0, len(blocks), D):
            cycle = blocks[start : start + D]
            perm = list(range(D))
            if self.schedule == "rotate":
                r = self._cycle % D
                perm = perm[r:] + perm[:r]
            elif self.schedule == "random":
                self.rng.shuffle(perm)
            elif self.schedule == "balance":
                perm = self._balanced_assignment(cycle, live)
            self._cycle += 1
            writes = []
            for i, blk in enumerate(cycle):
                disk = live[perm[i]]
                track = self._next_track(disk)
                bucket = self.bucket_of(blk.dest)
                if not (0 <= bucket < self.nbuckets):
                    raise DiskError(
                        f"block dest {blk.dest} maps to invalid bucket {bucket}"
                    )
                self.table[bucket][disk].append((track, blk.dest))
                writes.append((disk, track, blk))
            self.array.parallel_write(writes)
            self.blocks_written += len(cycle)
        return self.array.parallel_ops - ops_before

    def _balanced_assignment(
        self, cycle: Sequence[Block], live: Sequence[int]
    ) -> list[int]:
        """Deterministic least-loaded disk assignment for one write cycle.

        Greedy: process blocks in bucket order; each takes the still-free
        disk where its bucket's current load is smallest (ties to the lowest
        disk id).  For predetermined uniform traffic — the CGM case — this
        keeps every bucket's per-disk loads within 1 of each other, making
        the whole simulation deterministic as the paper notes.  Returns
        indices into ``live`` (the surviving drives).
        """
        free = set(range(len(live)))
        perm = [0] * len(cycle)
        order = sorted(range(len(cycle)), key=lambda i: self.bucket_of(cycle[i].dest))
        for i in order:
            bucket = self.bucket_of(cycle[i].dest)
            loads = self.table[bucket]
            li = min(free, key=lambda j: (len(loads[live[j]]), live[j]))
            free.remove(li)
            perm[i] = li
        return perm

    # -- inspection --------------------------------------------------------------

    def bucket_size(self, bucket: int) -> int:
        """Total blocks currently held by ``bucket`` across all disks."""
        return sum(len(tr) for tr in self.table[bucket])

    def bucket_disk_loads(self, bucket: int) -> list[int]:
        """Per-disk block counts of ``bucket`` — the ``X_{j,k}`` of Lemma 2."""
        return [len(tr) for tr in self.table[bucket]]

    def max_load_ratio(self) -> float:
        """max over (bucket, disk) of load / (R/D), the Lemma 2 deviation factor.

        ``R`` is taken per bucket as that bucket's actual size.  Buckets with
        no blocks are skipped.
        """
        worst = 0.0
        for j in range(self.nbuckets):
            R = self.bucket_size(j)
            if R == 0:
                continue
            expected = R / self.array.D
            worst = max(worst, max(self.bucket_disk_loads(j)) / expected)
        return worst

    def iter_bucket_tracks(self, bucket: int) -> Iterable[tuple[int, int, int]]:
        """Yield (disk, track, dest) triples of a bucket's blocks."""
        for disk, entries in enumerate(self.table[bucket]):
            for t, dest in entries:
                yield disk, t, dest

    @property
    def total_blocks(self) -> int:
        return sum(self.bucket_size(j) for j in range(self.nbuckets))

    def free(self) -> None:
        """Release all reserved track ranges back to the allocator."""
        for base, size in self._ranges:
            self.allocator.release(base, size)
        self._ranges.clear()
        self._free_tracks = [[] for _ in range(self.array.D)]
