"""An array of ``D`` disks supporting *parallel I/O operations*.

Section 3 of the paper: "Each processor can use all of its ``D`` disk drives
concurrently, and transfer ``D x B`` items from the local disks to its local
memory in a single I/O operation and at cost ``G``.  In such an operation, we
permit only one track per disk to be accessed ...  An operation involving
fewer disk drives incurs the same cost."

:class:`DiskArray` is the only interface through which the simulation touches
disks.  It enforces the one-track-per-disk rule per operation and counts the
number of parallel I/O operations — the quantity ``t_I/O / G`` the paper's
theorems bound.

Robustness (see :mod:`repro.emio.faults`): when a :class:`FaultPlan` is
attached, the array masks transient errors with a bounded
:class:`RetryPolicy` (each retry round is one extra counted parallel I/O,
plus deterministic backoff stalls), and survives a permanent disk death in
*degraded mode*: writes bound for the dead disk are remapped round-robin
across the surviving ``D-1`` drives into a shadow track namespace, so the
Lemma 2 balance accounting degrades gracefully instead of collapsing.  Data
written to a disk *before* it died is gone — reading it raises
:class:`DataLossError`, which the engines answer with checkpoint recovery.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..obs.profile import NULL_PROFILER
from .disk import SHADOW_TRACK_BASE, Block, Disk, DiskError
from .storage import StorageSpec
from .faults import (
    DataLossError,
    FaultInjector,
    FaultPlan,
    FaultyDisk,
    PermanentDiskError,
    RetryExhaustedError,
    RetryPolicy,
    TransientDiskError,
)

__all__ = ["DiskArray"]


class DiskArray:
    """``D`` simulated disks with parallel-operation accounting.

    Parameters
    ----------
    D:
        Number of drives.
    B:
        Block (track) size in records.
    ntracks:
        Optional per-disk capacity, to assert the paper's space bounds.
    faults:
        A :class:`~repro.emio.faults.FaultPlan` (instantiated for processor
        ``proc``) or an already-built :class:`FaultInjector`.  When given,
        the array's disks become :class:`FaultyDisk` instances.
    retry:
        Retry policy masking transient faults.  Defaults to
        :class:`RetryPolicy()` whenever ``faults`` is given.
    proc:
        Real-processor index this array belongs to (selects the fault
        streams and the plan's ``dead_proc`` target).
    storage:
        A :class:`~repro.emio.storage.StorageSpec` choosing where the
        drives' tracks live (memory / file / mmap).  Defaults to the
        in-heap memory plane.  The plane never changes counted costs.
    """

    def __init__(
        self,
        D: int,
        B: int,
        ntracks: int | None = None,
        faults: "FaultPlan | FaultInjector | None" = None,
        retry: RetryPolicy | None = None,
        proc: int = 0,
        fast_io: bool = False,
        storage: "StorageSpec | None" = None,
    ):
        if D < 1:
            raise DiskError(f"D must be >= 1, got {D}")
        self.D = D
        self.B = B
        self.proc = proc
        if isinstance(faults, FaultPlan):
            faults = faults.injector(proc)
        self.injector: FaultInjector | None = faults
        if (
            faults is not None
            and faults.plan.dead_disk is not None
            and faults.plan.dead_proc == proc
            and faults.plan.dead_disk >= D
        ):
            raise DiskError(
                f"FaultPlan.dead_disk={faults.plan.dead_disk} is out of range "
                f"for a {D}-disk array (disk ids are 0..{D - 1})"
            )
        self.retry = retry if retry is not None else (RetryPolicy() if faults else None)
        self.storage_spec = storage if storage is not None else StorageSpec()
        spec = self.storage_spec
        if faults is not None:
            self.disks: list[Disk] = [
                FaultyDisk(d, B, ntracks, injector=faults, storage=spec.make(d, B))
                for d in range(D)
            ]
        else:
            self.disks = [Disk(d, B, ntracks, storage=spec.make(d, B)) for d in range(D)]
        self.parallel_ops = 0
        # -- fast data plane ----------------------------------------------------
        # When enabled (and the array is healthy, unbounded, and untraced)
        # the parallel primitives take a short-circuit that produces the
        # *identical* counted costs (parallel_ops, per-disk reads/writes,
        # high-water marks, stored blocks) while skipping the fault/remap/
        # retry machinery that provably cannot fire on a healthy array.
        # ``hooked`` is set by IOTrace.attach: a traced array always runs the
        # full physical-attempt path so traces stay byte-identical.
        self._fast = bool(fast_io) and faults is None and ntracks is None
        self.hooked = False
        # -- robustness state ---------------------------------------------------
        self.dead_disks: set[int] = set()
        self.retry_reads = 0  # extra parallel ops spent re-reading
        self.retry_writes = 0  # extra parallel ops spent re-writing
        self.stall_ops = 0  # backoff stalls (op-equivalents), see RetryPolicy
        self.degraded_writes = 0  # writes remapped away from dead disks
        self._remap: dict[tuple[int, int], tuple[int, int]] = {}
        self._shadow_next: dict[int, int] = {}
        self._remap_rr = 0

    #: Wall-clock attribution profiler shared with this array's storages
    #: (installed by :meth:`set_profiler`; the no-op by default).
    profiler = NULL_PROFILER

    @property
    def fast_data_plane(self) -> bool:
        """True when the counted-cost short-circuits are active."""
        return self._fast and not self.hooked and not self.dead_disks

    def set_profiler(self, profiler) -> None:
        """Install an attribution profiler on the array and its storages.

        Threading is by object reference, never module state: each drive's
        storage bills its ``pread``/``pwrite``/``fsync`` and image
        encode/decode to the given profiler's scope stack.  Profiling is
        read-only — nothing about counted costs or stored bytes changes.
        """
        self.profiler = profiler
        for d in self.disks:
            st = d.storage
            # CrashyStorage wraps the real plane; the raw I/O happens on
            # the inner object, so the scopes must live there.
            getattr(st, "_inner", st).profiler = profiler

    # -- degraded mode ---------------------------------------------------------

    @property
    def live_disks(self) -> list[int]:
        """Ids of the drives still alive (all of them in the healthy case)."""
        if not self.dead_disks:
            return list(range(self.D))
        return [d for d in range(self.D) if d not in self.dead_disks]

    def mark_dead(self, disk_id: int) -> None:
        """Take ``disk_id`` out of service permanently (degraded mode)."""
        if disk_id in self.dead_disks:
            return
        if len(self.dead_disks) + 1 >= self.D:
            # Total array failure (the last drive died).  Fatal but *orderly*:
            # raising a FATAL_IO_FAULTS member routes the run through the
            # engines' checkpoint machinery (SimulationAborted carrying the
            # last checkpoint) instead of an unclassified DiskError crash.
            raise PermanentDiskError(
                f"disk {disk_id}: cannot enter degraded mode, no surviving "
                "drives (total array failure)"
            )
        self.dead_disks.add(disk_id)
        disk = self.disks[disk_id]
        if isinstance(disk, FaultyDisk):
            disk.dead = True

    def _resolve_read(self, disk: int, track: int) -> tuple[int, int]:
        return self._remap.get((disk, track), (disk, track))

    def _resolve_write(self, disk: int, track: int) -> tuple[int, int]:
        """Physical address for a write; remaps dead-disk targets.

        Remapped targets are spread round-robin over the surviving drives
        (preserving balance in the Lemma 2 sense up to the D/(D-1) factor)
        and live in the shadow track namespace so they can never collide
        with allocator-managed ranges.  The mapping is stable: rewriting the
        same logical address overwrites the same shadow block.
        """
        if disk not in self.dead_disks:
            return disk, track
        key = (disk, track)
        target = self._remap.get(key)
        if target is None:
            live = self.live_disks
            tgt_disk = live[self._remap_rr % len(live)]
            self._remap_rr += 1
            shadow = self._shadow_next.get(tgt_disk, SHADOW_TRACK_BASE)
            self._shadow_next[tgt_disk] = shadow + 1
            target = (tgt_disk, shadow)
            self._remap[key] = target
        self.degraded_writes += 1
        return target

    # -- physical attempts (the unit the I/O trace records) ---------------------

    def _attempt_read(
        self, addrs: Sequence[tuple[int, int]], retry: bool = False
    ) -> list["Block | None | DiskError"]:
        """One physical parallel read; per-slot result is a block or an error."""
        self.parallel_ops += 1
        out: list[Block | None | DiskError] = []
        for d, t in addrs:
            try:
                if d in self.dead_disks:
                    raise PermanentDiskError(f"disk {d}: drive is dead")
                out.append(self.disks[d].read_track(t))
            except (TransientDiskError, PermanentDiskError) as exc:
                out.append(exc)
        return out

    def _attempt_write(
        self,
        ops: Sequence[tuple[int, int, Block | None]],
        retry: bool = False,
    ) -> list["None | DiskError"]:
        """One physical parallel write; per-slot result is None or an error."""
        self.parallel_ops += 1
        out: list[None | DiskError] = []
        for d, t, blk in ops:
            try:
                if d in self.dead_disks:
                    raise PermanentDiskError(f"disk {d}: drive is dead")
                self.disks[d].write_track(t, blk)
                out.append(None)
            except (TransientDiskError, PermanentDiskError) as exc:
                out.append(exc)
        return out

    # -- parallel primitives ---------------------------------------------------

    @staticmethod
    def _assert_one_per_disk(disk_ids: Sequence[int]) -> None:
        if len(set(disk_ids)) != len(disk_ids):
            raise DiskError(
                "parallel I/O operation touches a disk twice: "
                f"disk ids {sorted(disk_ids)}"
            )

    @staticmethod
    def _pack_round(items: list) -> tuple[list, list]:
        """Split pending items into one physically-valid round and the rest.

        ``items`` are ``(slot, (disk, ...))`` pairs; a round may touch each
        physical disk once.  In degraded mode remapping can direct two
        logical addresses at the same surviving disk — the extra rounds this
        costs are exactly the degraded array's I/O penalty.
        """
        used: set[int] = set()
        round_items, rest = [], []
        for item in items:
            d = item[1][0]
            if d in used:
                rest.append(item)
            else:
                used.add(d)
                round_items.append(item)
        return round_items, rest

    def _charge_backoff(self, attempt: int) -> None:
        if self.retry is not None:
            self.stall_ops += self.retry.backoff_ops(attempt)

    def _check_retry_budget(self, attempts: int, cause: DiskError) -> None:
        limit = self.retry.max_retries if self.retry is not None else 0
        if attempts > limit:
            raise RetryExhaustedError(
                f"access failed after {attempts - 1} retries: {cause}"
            ) from cause

    def parallel_read(self, ops: Sequence[tuple[int, int]]) -> list[Block | None]:
        """One parallel I/O operation reading ``(disk, track)`` pairs.

        At most one track per disk; 1 <= len(ops) <= D.  Returns the blocks in
        the order requested.  Counts as one parallel operation regardless of
        how many disks participate.  Transient faults are retried per the
        array's :class:`RetryPolicy` (each retry round counts as one extra
        parallel operation); reads of blocks lost with a dead disk raise
        :class:`DataLossError`.
        """
        ops = list(ops)
        if not ops:
            return []
        if len(ops) > self.D:
            raise DiskError(f"parallel read of {len(ops)} tracks exceeds D={self.D}")
        self._assert_one_per_disk([d for d, _ in ops])
        if self.fast_data_plane:
            self.parallel_ops += 1
            out: list[Block | None] = []
            for d, t in ops:
                disk = self.disks[d]
                disk.reads += 1
                out.append(disk.storage.get(t))
            return out
        results: list[Block | None] = [None] * len(ops)
        fresh = [(i, self._resolve_read(d, t)) for i, (d, t) in enumerate(ops)]
        retry_q: list[tuple[int, tuple[int, int]]] = []
        attempts = [0] * len(ops)
        while fresh or retry_q:
            if fresh:
                round_items, fresh = self._pack_round(fresh)
                is_retry = False
            else:
                round_items, retry_q = self._pack_round(retry_q)
                is_retry = True
                self.retry_reads += 1
            outcomes = self._attempt_read([a for _, a in round_items], retry=is_retry)
            for (idx, (d, t)), out in zip(round_items, outcomes):
                if isinstance(out, PermanentDiskError):
                    self.mark_dead(d)
                    target = self._remap.get((d, t))
                    if target is None:
                        raise DataLossError(
                            f"disk {d}: block at track {t} was lost with the drive"
                        ) from out
                    retry_q.append((idx, target))
                elif isinstance(out, TransientDiskError):
                    attempts[idx] += 1
                    self._check_retry_budget(attempts[idx], out)
                    self._charge_backoff(attempts[idx])
                    retry_q.append((idx, (d, t)))
                else:
                    results[idx] = out
        return results

    def parallel_write(self, ops: Sequence[tuple[int, int, Block | None]]) -> None:
        """One parallel I/O operation writing ``(disk, track, block)`` triples.

        Transient faults are retried; writes aimed at a dead disk are
        remapped onto the surviving drives (degraded mode), so no write is
        ever silently dropped.
        """
        ops = list(ops)
        if not ops:
            return
        if len(ops) > self.D:
            raise DiskError(f"parallel write of {len(ops)} tracks exceeds D={self.D}")
        self._assert_one_per_disk([d for d, _, _ in ops])
        if self.fast_data_plane:
            self.parallel_ops += 1
            B = self.B
            for d, t, blk in ops:
                disk = self.disks[d]
                if blk is not None:
                    blk.validate(B)
                disk.writes += 1
                disk._store(t, blk)
                if disk._high_water < t < SHADOW_TRACK_BASE:
                    disk._high_water = t
            return
        fresh = [
            (i, (*self._resolve_write(d, t), blk))
            for i, (d, t, blk) in enumerate(ops)
        ]
        retry_q: list[tuple[int, tuple[int, int, Block | None]]] = []
        attempts = [0] * len(ops)
        while fresh or retry_q:
            if fresh:
                round_items, fresh = self._pack_round(fresh)
                is_retry = False
            else:
                round_items, retry_q = self._pack_round(retry_q)
                is_retry = True
                self.retry_writes += 1
            outcomes = self._attempt_write(
                [triple for _, triple in round_items], retry=is_retry
            )
            for (idx, (d, t, blk)), out in zip(round_items, outcomes):
                if isinstance(out, PermanentDiskError):
                    self.mark_dead(d)
                    retry_q.append((idx, (*self._resolve_write(d, t), blk)))
                elif isinstance(out, TransientDiskError):
                    attempts[idx] += 1
                    self._check_retry_budget(attempts[idx], out)
                    self._charge_backoff(attempts[idx])
                    retry_q.append((idx, (d, t, blk)))

    # -- batched helpers ---------------------------------------------------------

    def read_batched(self, addrs: Iterable[tuple[int, int]]) -> list[Block | None]:
        """Read many ``(disk, track)`` addresses using as few parallel ops as possible.

        Addresses are greedily packed into rounds with at most one access per
        disk per round, preserving the input order of the returned blocks.
        Layouts in *standard consecutive format* always pack perfectly
        (ceil(n/D) rounds).
        """
        addrs = list(addrs)
        if self.fast_data_plane:
            if not addrs:
                return []
            # The greedy packing below assigns the r-th occurrence of a disk
            # to round r (a round can never be closed by the D-item cap,
            # since it holds at most one item per disk and there are only D
            # disks), so it uses exactly max-per-disk-count rounds.
            # Loads are grouped per disk and handed to _load_many, so
            # file-backed planes coalesce one fetch's near-adjacent slot
            # extents into single preads instead of one syscall per track.
            counts = [0] * self.D
            disks = self.disks
            per_disk: list[list[int]] = [[] for _ in range(self.D)]
            for d, t in addrs:
                counts[d] += 1
                per_disk[d].append(t)
            loaded = [
                iter(disks[d]._load_many(ts)) if ts else None
                for d, ts in enumerate(per_disk)
            ]
            out: list[Block | None] = [next(loaded[d]) for d, _ in addrs]
            for d, c in enumerate(counts):
                disks[d].reads += c
            self.parallel_ops += max(counts)
            return out
        results: list[Block | None] = [None] * len(addrs)
        pending = list(enumerate(addrs))
        while pending:
            used: set[int] = set()
            round_ops: list[tuple[int, tuple[int, int]]] = []
            rest: list[tuple[int, tuple[int, int]]] = []
            for item in pending:
                d = item[1][0]
                if d in used or len(round_ops) == self.D:
                    rest.append(item)
                else:
                    used.add(d)
                    round_ops.append(item)
            blocks = self.parallel_read([a for _, a in round_ops])
            for (idx, _), blk in zip(round_ops, blocks):
                results[idx] = blk
            pending = rest
        return results

    def write_batched(self, ops: Iterable[tuple[int, int, Block | None]]) -> int:
        """Write many ``(disk, track, block)`` triples in packed parallel ops.

        Returns the number of parallel operations used.
        """
        before = self.parallel_ops
        pending = list(ops)
        if self.fast_data_plane:
            if not pending:
                return 0
            # Same round-count equivalence as read_batched.  Stores are
            # grouped per disk and handed to _store_many, so file-backed
            # planes coalesce one flush's adjacent-slot images into single
            # pwrites instead of one syscall per track.
            counts = [0] * self.D
            B = self.B
            disks = self.disks
            per_disk: list[list[tuple[int, Block | None]]] = [[] for _ in range(self.D)]
            for d, t, blk in pending:
                counts[d] += 1
                if blk is not None:
                    blk.validate(B)
                per_disk[d].append((t, blk))
                disk = disks[d]
                if disk._high_water < t < SHADOW_TRACK_BASE:
                    disk._high_water = t
            for d, items in enumerate(per_disk):
                if items:
                    disks[d]._store_many(items)
            for d, c in enumerate(counts):
                disks[d].writes += c
            self.parallel_ops += max(counts)
            return self.parallel_ops - before
        while pending:
            used: set[int] = set()
            round_ops: list[tuple[int, int, Block | None]] = []
            rest: list[tuple[int, int, Block | None]] = []
            for item in pending:
                if item[0] in used or len(round_ops) == self.D:
                    rest.append(item)
                else:
                    used.add(item[0])
                    round_ops.append(item)
            self.parallel_write(round_ops)
            pending = rest
        return self.parallel_ops - before

    def charge_batched(self, kind: str, addrs: Iterable[tuple[int, int]]) -> int:
        """Charge the counted cost of a batched transfer without moving data.

        ``kind`` is ``"R"`` or ``"W"``.  Increments ``parallel_ops`` by the
        exact number of rounds the greedy packing of :meth:`read_batched` /
        :meth:`write_batched` would use for ``addrs`` (max per-disk count;
        see the round-count equivalence note there), plus the per-disk
        access counters and, for writes, the high-water marks — but touches
        no block data.  This is the substrate of the context-swap fast path:
        a cached (clean) context swap charges the identical parallel I/O the
        reference path would, so Theorem 1 accounting is unchanged.

        Only legal on the fast data plane: a faulty, bounded, or traced
        array must run the physical path (faults may fire; traces record
        physical attempts), so charging silently would diverge.

        Returns the number of parallel operations charged.
        """
        if not self.fast_data_plane:
            raise DiskError(
                "charge_batched requires the fast data plane "
                "(healthy, unbounded, untraced array with fast_io=True)"
            )
        if kind not in ("R", "W"):
            raise DiskError(f"charge_batched kind must be 'R' or 'W', got {kind!r}")
        counts = [0] * self.D
        if kind == "R":
            for d, _t in addrs:
                counts[d] += 1
            for d, c in enumerate(counts):
                self.disks[d].reads += c
        else:
            maxt = [-1] * self.D
            for d, t in addrs:
                counts[d] += 1
                if t > maxt[d]:
                    maxt[d] = t
            for d, c in enumerate(counts):
                disk = self.disks[d]
                disk.writes += c
                if disk._high_water < maxt[d] < SHADOW_TRACK_BASE:
                    disk._high_water = maxt[d]
        rounds = max(counts) if any(counts) else 0
        self.parallel_ops += rounds
        return rounds

    # -- storage plane -----------------------------------------------------------

    def sync_storage(self) -> None:
        """Flush every drive's storage to stable media (fsync on file planes)."""
        for d in self.disks:
            d.storage.sync()

    def crash_storage(self, stage: str) -> None:
        """Inflict one crash stage's byte damage on every crash-wrapped drive."""
        for d in self.disks:
            apply = getattr(d.storage, "apply_crash", None)
            if apply is not None:
                apply(stage)

    def close_storage(self) -> None:
        """Release every drive's storage resources (file descriptors, maps)."""
        for d in self.disks:
            d.storage.close()

    def snapshot_storage(self) -> list[dict | None]:
        """Per-drive storage snapshots for checkpoint-by-reference (or Nones)."""
        return [d.storage.snapshot() for d in self.disks]

    def restore_storage(self, snaps: Sequence[dict | None]) -> None:
        """Re-attach per-drive snapshots and rebuild derived disk statistics."""
        if len(snaps) != self.D:
            raise DiskError(
                f"storage restore carries {len(snaps)} drive snapshots, "
                f"array has D={self.D}"
            )
        for disk, snap in zip(self.disks, snaps):
            disk.storage.restore(snap)
            tracks = list(disk.storage.tracks())
            disk._occupied = len(tracks)
            disk._high_water = max(
                (t for t in tracks if t < SHADOW_TRACK_BASE), default=-1
            )

    @property
    def storage_read_bytes(self) -> int:
        """Payload bytes read from the storage plane (0 on the memory plane)."""
        return sum(d.storage.read_bytes for d in self.disks)

    @property
    def storage_write_bytes(self) -> int:
        """Payload bytes written to the storage plane (0 on the memory plane)."""
        return sum(d.storage.write_bytes for d in self.disks)

    # -- statistics ----------------------------------------------------------------

    @property
    def retry_ops(self) -> int:
        """Extra parallel operations spent on retries (reads + writes)."""
        return self.retry_reads + self.retry_writes

    @property
    def total_accesses(self) -> int:
        return sum(d.accesses for d in self.disks)

    @property
    def used_tracks_per_disk(self) -> list[int]:
        return [d.used_tracks for d in self.disks]

    @property
    def high_water_per_disk(self) -> list[int]:
        return [d.high_water for d in self.disks]

    def reset_stats(self) -> None:
        self.parallel_ops = 0
        self.retry_reads = 0
        self.retry_writes = 0
        self.stall_ops = 0
        self.degraded_writes = 0
        for d in self.disks:
            d.reset_stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskArray(D={self.D}, B={self.B}, parallel_ops={self.parallel_ops})"
