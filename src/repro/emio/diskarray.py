"""An array of ``D`` disks supporting *parallel I/O operations*.

Section 3 of the paper: "Each processor can use all of its ``D`` disk drives
concurrently, and transfer ``D x B`` items from the local disks to its local
memory in a single I/O operation and at cost ``G``.  In such an operation, we
permit only one track per disk to be accessed ...  An operation involving
fewer disk drives incurs the same cost."

:class:`DiskArray` is the only interface through which the simulation touches
disks.  It enforces the one-track-per-disk rule per operation and counts the
number of parallel I/O operations — the quantity ``t_I/O / G`` the paper's
theorems bound.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .disk import Block, Disk, DiskError

__all__ = ["DiskArray"]


class DiskArray:
    """``D`` simulated disks with parallel-operation accounting.

    Parameters
    ----------
    D:
        Number of drives.
    B:
        Block (track) size in records.
    ntracks:
        Optional per-disk capacity, to assert the paper's space bounds.
    """

    def __init__(self, D: int, B: int, ntracks: int | None = None):
        if D < 1:
            raise DiskError(f"D must be >= 1, got {D}")
        self.D = D
        self.B = B
        self.disks = [Disk(d, B, ntracks) for d in range(D)]
        self.parallel_ops = 0

    # -- parallel primitives ---------------------------------------------------

    @staticmethod
    def _assert_one_per_disk(disk_ids: Sequence[int]) -> None:
        if len(set(disk_ids)) != len(disk_ids):
            raise DiskError(
                "parallel I/O operation touches a disk twice: "
                f"disk ids {sorted(disk_ids)}"
            )

    def parallel_read(self, ops: Sequence[tuple[int, int]]) -> list[Block | None]:
        """One parallel I/O operation reading ``(disk, track)`` pairs.

        At most one track per disk; 1 <= len(ops) <= D.  Returns the blocks in
        the order requested.  Counts as one parallel operation regardless of
        how many disks participate.
        """
        if not ops:
            return []
        if len(ops) > self.D:
            raise DiskError(f"parallel read of {len(ops)} tracks exceeds D={self.D}")
        self._assert_one_per_disk([d for d, _ in ops])
        self.parallel_ops += 1
        return [self.disks[d].read_track(t) for d, t in ops]

    def parallel_write(self, ops: Sequence[tuple[int, int, Block | None]]) -> None:
        """One parallel I/O operation writing ``(disk, track, block)`` triples."""
        if not ops:
            return
        if len(ops) > self.D:
            raise DiskError(f"parallel write of {len(ops)} tracks exceeds D={self.D}")
        self._assert_one_per_disk([d for d, _, _ in ops])
        self.parallel_ops += 1
        for d, t, blk in ops:
            self.disks[d].write_track(t, blk)

    # -- batched helpers ---------------------------------------------------------

    def read_batched(self, addrs: Iterable[tuple[int, int]]) -> list[Block | None]:
        """Read many ``(disk, track)`` addresses using as few parallel ops as possible.

        Addresses are greedily packed into rounds with at most one access per
        disk per round, preserving the input order of the returned blocks.
        Layouts in *standard consecutive format* always pack perfectly
        (ceil(n/D) rounds).
        """
        addrs = list(addrs)
        results: list[Block | None] = [None] * len(addrs)
        pending = list(enumerate(addrs))
        while pending:
            used: set[int] = set()
            round_ops: list[tuple[int, tuple[int, int]]] = []
            rest: list[tuple[int, tuple[int, int]]] = []
            for item in pending:
                d = item[1][0]
                if d in used or len(round_ops) == self.D:
                    rest.append(item)
                else:
                    used.add(d)
                    round_ops.append(item)
            blocks = self.parallel_read([a for _, a in round_ops])
            for (idx, _), blk in zip(round_ops, blocks):
                results[idx] = blk
            pending = rest
        return results

    def write_batched(self, ops: Iterable[tuple[int, int, Block | None]]) -> int:
        """Write many ``(disk, track, block)`` triples in packed parallel ops.

        Returns the number of parallel operations used.
        """
        before = self.parallel_ops
        pending = list(ops)
        while pending:
            used: set[int] = set()
            round_ops: list[tuple[int, int, Block | None]] = []
            rest: list[tuple[int, int, Block | None]] = []
            for item in pending:
                if item[0] in used or len(round_ops) == self.D:
                    rest.append(item)
                else:
                    used.add(item[0])
                    round_ops.append(item)
            self.parallel_write(round_ops)
            pending = rest
        return self.parallel_ops - before

    # -- statistics ----------------------------------------------------------------

    @property
    def total_accesses(self) -> int:
        return sum(d.accesses for d in self.disks)

    @property
    def used_tracks_per_disk(self) -> list[int]:
        return [d.used_tracks for d in self.disks]

    @property
    def high_water_per_disk(self) -> list[int]:
        return [d.high_water for d in self.disks]

    def reset_stats(self) -> None:
        self.parallel_ops = 0
        for d in self.disks:
            d.reset_stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskArray(D={self.D}, B={self.B}, parallel_ops={self.parallel_ops})"
