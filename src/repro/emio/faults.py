"""Fault injection for the simulated disk subsystem.

The paper's machine model assumes perfect devices; real parallel-disk
machines (the PDM setting of Arge-Thorup, the STXXL systems work) must
survive transient I/O errors, silently corrupted blocks, slow drives, and
outright drive death.  This module supplies the fault model:

* :class:`FaultPlan` — a seeded, deterministic description of *what goes
  wrong*: per-access transient read/write error rates, a silent-corruption
  rate, a latency-spike rate, and at most one permanent disk death at a
  configured access count.  The same plan (same seed) always injects the
  same fault sequence, so every failure scenario is reproducible.
* :class:`FaultInjector` — one plan instantiated for one real processor's
  disk array; holds the per-disk random streams and the injected-fault
  counters.
* :class:`FaultyDisk` — a drop-in :class:`~repro.emio.disk.Disk` that
  consults the injector on every access and keeps a CRC32 checksum per
  written block, so corruption is *detected* at read time (raising
  :class:`ChecksumError`) instead of silently propagating wrong records
  into the routing fabric.
* :class:`RetryPolicy` — bounded retries with deterministic backoff, used
  by :class:`~repro.emio.diskarray.DiskArray` to mask transient faults.
* :class:`CrashPlan` / :class:`CrashyStorage` — the *byte-level* sibling of
  the above: instead of failing logical track accesses, it models what a
  hard host crash does to a file-backed storage plane (torn slot writes,
  unsynced writes reordered past the fsync and lost) at a deterministic,
  seeded crash point.  :class:`HostCrash` is the injected process death
  itself — deliberately *not* a ``DiskError``, because a dead host is not
  a fault the engines can retry or checkpoint-recover in-process.

Error taxonomy (all subclasses of :class:`~repro.emio.disk.DiskError`):

* :class:`TransientDiskError` — the access failed but a retry may succeed.
* :class:`ChecksumError` — a read returned data whose checksum does not
  match what was written; retriable (the medium, not the data, glitched).
* :class:`PermanentDiskError` — the drive is dead; no retry will help.
* :class:`DataLossError` — a block lived only on a now-dead drive; only a
  checkpoint (see :mod:`repro.core.checkpoint`) can recover the run.
* :class:`RetryExhaustedError` — the retry budget ran out.
"""

from __future__ import annotations

import pickle
import random
import zlib

import numpy as np
from dataclasses import dataclass, field

from .disk import Block, Disk, DiskError

__all__ = [
    "TransientDiskError",
    "ChecksumError",
    "PermanentDiskError",
    "DataLossError",
    "RetryExhaustedError",
    "FATAL_IO_FAULTS",
    "HostCrash",
    "CRASH_STAGES",
    "RetryPolicy",
    "FaultStats",
    "FaultPlan",
    "FaultInjector",
    "FaultyDisk",
    "CrashPlan",
    "CrashyStorage",
    "block_checksum",
]


class TransientDiskError(DiskError):
    """A disk access failed transiently; retrying may succeed."""


class ChecksumError(TransientDiskError):
    """A read returned a block whose checksum does not match the write."""


class PermanentDiskError(DiskError):
    """The disk is permanently dead; no retry will succeed."""


class DataLossError(DiskError):
    """A block was stored only on a now-dead disk and cannot be re-read."""


class RetryExhaustedError(DiskError):
    """The bounded retry budget was exhausted without a successful access."""


#: Faults a retry cannot mask; engines recover from these via checkpoints.
FATAL_IO_FAULTS = (DataLossError, PermanentDiskError, RetryExhaustedError)


class HostCrash(RuntimeError):
    """An injected hard process crash (a :class:`CrashPlan` point fired).

    Deliberately *not* a :class:`~repro.emio.disk.DiskError` and not in
    :data:`FATAL_IO_FAULTS`: a dead host cannot retry or restore anything
    in-process.  It propagates out of ``run()`` exactly like a real process
    death, leaving the storage plane in whatever byte state the crash left
    it; recovery means ``scrub()``-ing the storage root and resuming in a
    fresh engine (what ``repro crashcheck`` automates).
    """


#: The crash stages injected at every checkpoint barrier, in order.  A
#: :class:`CrashPlan`'s ``crash_point`` indexes the global stage sequence:
#: stage ``CRASH_STAGES[k % 5]`` of barrier ``k // 5``.
#:
#: * ``"torn"`` — die before the barrier sync with the most recent
#:   unsynced slot write only partially on the platter.
#: * ``"lost"`` — die before the barrier sync with a seeded subset of
#:   unsynced writes dropped (write-behind reordering).
#: * ``"postsync"`` — die after the track files are synced but before the
#:   checkpoint journal stages anything.
#: * ``"staged"`` — die after the journal's temp file is written and
#:   fsynced but before the commit rename.
#: * ``"committed"`` — die right after the rename + directory fsync.
CRASH_STAGES = ("torn", "lost", "postsync", "staged", "committed")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy for :class:`~repro.emio.diskarray.DiskArray`.

    Each failed access is retried up to ``max_retries`` times.  Before the
    ``r``-th retry of an access the array stalls for ``backoff_ops(r)``
    parallel-operation equivalents — a deterministic linear backoff counted
    in the cost ledger (every stall op costs ``G`` model time, like a real
    parallel I/O the drives spend waiting instead of transferring).
    """

    max_retries: int = 6
    backoff_base: int = 1

    def backoff_ops(self, attempt: int) -> int:
        """Stall ops charged before retry number ``attempt`` (1-based)."""
        return self.backoff_base * attempt


@dataclass
class FaultStats:
    """Counters of injected faults, kept per :class:`FaultInjector`."""

    transient_read_errors: int = 0
    transient_write_errors: int = 0
    corruptions_injected: int = 0
    checksum_errors: int = 0
    latency_spikes: int = 0
    stall_ops: int = 0  # op-equivalents lost to latency spikes
    disks_died: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic description of the faults to inject.

    All rates are per-access probabilities in ``[0, 1]``.  A plan is pure
    configuration; call :meth:`injector` to instantiate it for one real
    processor's disk array (each processor gets independent but
    deterministic fault streams derived from ``seed``).

    Parameters
    ----------
    seed:
        Root seed of every per-disk fault stream.
    read_error_rate, write_error_rate:
        Probability that a read/write access fails with a
        :class:`TransientDiskError` (nothing is transferred).
    corruption_rate:
        Probability that a read returns a silently corrupted copy of the
        stored block.  With ``checksums=True`` (the default) the corruption
        is detected and surfaces as a retriable :class:`ChecksumError`;
        with ``checksums=False`` the corrupted block is returned as-is —
        the failure mode the checksums exist to prevent.
    latency_rate:
        Probability that an access stalls its drive for
        ``latency_stall_ops`` parallel-operation equivalents (a slow-disk
        spike; counted as model I/O time, data still transfers).
    latency_stall_ops:
        Size of one latency spike, in parallel-op equivalents.
    dead_disk:
        Disk id (on processor ``dead_proc``) that dies permanently, or
        ``None`` for no death.
    dead_after:
        Number of accesses the doomed disk serves before dying.
    dead_proc:
        Real-processor index whose array contains the doomed disk.
    checksums:
        Maintain and verify per-block CRC32 checksums on the faulty disks.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    corruption_rate: float = 0.0
    latency_rate: float = 0.0
    latency_stall_ops: int = 2
    dead_disk: int | None = None
    dead_after: int = 0
    dead_proc: int = 0
    checksums: bool = True

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate",
            "write_error_rate",
            "corruption_rate",
            "latency_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"FaultPlan.{name} must be in [0, 1], got {rate}")
        if self.latency_stall_ops < 0:
            raise ValueError("FaultPlan.latency_stall_ops must be >= 0")
        if self.dead_after < 0:
            raise ValueError("FaultPlan.dead_after must be >= 0")
        if self.dead_disk is not None and self.dead_disk < 0:
            raise ValueError("FaultPlan.dead_disk must be a disk id >= 0")

    def injector(self, proc: int = 0) -> "FaultInjector":
        """Instantiate this plan for real processor ``proc``."""
        return FaultInjector(self, proc)


@dataclass
class _AccessDraw:
    """The injector's verdict for one disk access."""

    die: bool = False
    fail: bool = False
    corrupt: bool = False
    stall_ops: int = 0


class FaultInjector:
    """One :class:`FaultPlan` bound to one processor's disks.

    Every disk gets its own :class:`random.Random` stream seeded from
    ``(plan.seed, proc, disk_id)``, and every access draws the same number
    of variates regardless of the configured rates — so fault sequences
    are stable when rates change and identical across re-runs.
    """

    def __init__(self, plan: FaultPlan, proc: int = 0):
        self.plan = plan
        self.proc = proc
        self.stats = FaultStats()
        self._rngs: dict[int, random.Random] = {}
        self._accesses: dict[int, int] = {}

    def _rng(self, disk_id: int) -> random.Random:
        rng = self._rngs.get(disk_id)
        if rng is None:
            mix = (self.plan.seed * 1_000_003 + self.proc) * 1_000_003 + disk_id
            rng = self._rngs[disk_id] = random.Random(mix)
        return rng

    def draw(self, disk_id: int, kind: str) -> _AccessDraw:
        """Decide the fate of one access (``kind`` is ``"read"``/``"write"``)."""
        plan = self.plan
        count = self._accesses.get(disk_id, 0) + 1
        self._accesses[disk_id] = count
        rng = self._rng(disk_id)
        # Draw all variates unconditionally so the stream is rate-independent.
        fail_r, corrupt_r, stall_r = rng.random(), rng.random(), rng.random()

        draw = _AccessDraw()
        if (
            plan.dead_disk == disk_id
            and plan.dead_proc == self.proc
            and count > plan.dead_after
        ):
            draw.die = True
            self.stats.disks_died += 1
            return draw
        if stall_r < plan.latency_rate:
            draw.stall_ops = plan.latency_stall_ops
            self.stats.latency_spikes += 1
            self.stats.stall_ops += plan.latency_stall_ops
        if kind == "read":
            if fail_r < plan.read_error_rate:
                draw.fail = True
                self.stats.transient_read_errors += 1
            elif corrupt_r < plan.corruption_rate:
                draw.corrupt = True
                self.stats.corruptions_injected += 1
        else:
            if fail_r < plan.write_error_rate:
                draw.fail = True
                self.stats.transient_write_errors += 1
        return draw


def block_checksum(block: Block) -> int:
    """CRC32 over a block's payload and routing metadata."""
    header = (
        f"{block.dest},{block.src},{block.msg},{block.seq},{int(block.dummy)}|"
    ).encode()
    payload = block.records
    if isinstance(payload, (bytes, bytearray, memoryview)):
        data = bytes(payload)
    elif isinstance(payload, np.ndarray):
        # Canonical array bytes: same checksum whether the payload is a
        # view, a slice, or a reloaded copy of the same records.
        data = np.ascontiguousarray(payload).tobytes()
    else:
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return zlib.crc32(header + data)


def _corrupted_copy(block: Block) -> Block:
    """A copy of ``block`` whose payload differs (a flipped medium bit)."""
    payload = block.records
    if isinstance(payload, memoryview):
        payload = bytes(payload)
    if isinstance(payload, (bytes, bytearray)):
        data = bytes(payload)
        bad = (bytes([data[0] ^ 0xFF]) + data[1:]) if data else b"\xff"
    elif isinstance(payload, np.ndarray):
        if len(payload):
            # Flip every bit of the first record: always a different value,
            # for any dtype, and detected by the canonical-bytes checksum.
            bad = payload.copy()
            first = bytes(b ^ 0xFF for b in np.ascontiguousarray(bad[:1]).tobytes())
            bad[0] = np.frombuffer(first, dtype=payload.dtype)[0]
        else:
            bad = np.frombuffer(
                b"\xff" * payload.dtype.itemsize, dtype=payload.dtype
            )
    elif len(payload):
        bad = ["\x00CORRUPT"] + list(payload[1:])
    else:
        bad = ["\x00CORRUPT"]
    return Block(
        records=bad,
        dest=block.dest,
        src=block.src,
        msg=block.msg,
        seq=block.seq,
        dummy=block.dummy,
    )


class FaultyDisk(Disk):
    """A :class:`Disk` whose accesses pass through a :class:`FaultInjector`.

    The disk keeps a CRC32 checksum per written track (``checksums=True``
    in the plan) and verifies it on every read, so injected corruption is
    detected at the device boundary.  Failed accesses still count toward
    the drive's access statistics (the attempt occupied the device).
    """

    def __init__(
        self,
        disk_id: int,
        B: int,
        ntracks: int | None = None,
        injector: FaultInjector | None = None,
        storage=None,
    ):
        super().__init__(disk_id, B, ntracks, storage=storage)
        self.injector = injector
        self.dead = False
        self._sums: dict[int, int] = {}

    @property
    def checksums(self) -> bool:
        return self.injector is None or self.injector.plan.checksums

    def _check_alive(self) -> None:
        if self.dead:
            raise PermanentDiskError(f"disk {self.disk_id}: drive is dead")

    def _die(self) -> None:
        self.dead = True

    def read_track(self, track: int) -> Block | None:
        self._check_track(track)
        self._check_alive()
        draw = self.injector.draw(self.disk_id, "read") if self.injector else None
        if draw is not None:
            if draw.die:
                self._die()
                raise PermanentDiskError(
                    f"disk {self.disk_id}: drive died during read of track {track}"
                )
            if draw.fail:
                self.reads += 1  # the failed attempt occupied the device
                raise TransientDiskError(
                    f"disk {self.disk_id}: transient read error at track {track}"
                )
        blk = super().read_track(track)
        if blk is None:
            return None
        if draw is not None and draw.corrupt:
            bad = _corrupted_copy(blk)
            if self.checksums:
                self.injector.stats.checksum_errors += 1
                raise ChecksumError(
                    f"disk {self.disk_id}: checksum mismatch at track {track} "
                    "(corrupted block detected)"
                )
            return bad  # silent corruption: exactly what checksums prevent
        if self.checksums:
            expected = self._sums.get(track)
            if expected is not None and block_checksum(blk) != expected:
                if self.injector is not None:
                    self.injector.stats.checksum_errors += 1
                raise ChecksumError(
                    f"disk {self.disk_id}: checksum mismatch at track {track}"
                )
        return blk

    def write_track(self, track: int, block: Block | None) -> None:
        self._check_track(track)
        self._check_alive()
        draw = self.injector.draw(self.disk_id, "write") if self.injector else None
        if draw is not None:
            if draw.die:
                self._die()
                raise PermanentDiskError(
                    f"disk {self.disk_id}: drive died during write of track {track}"
                )
            if draw.fail:
                self.writes += 1  # the failed attempt occupied the device
                raise TransientDiskError(
                    f"disk {self.disk_id}: transient write error at track {track}"
                )
        super().write_track(track, block)
        if block is None:
            self._sums.pop(track, None)
        else:
            self._sums[track] = block_checksum(block)


@dataclass(frozen=True)
class CrashPlan:
    """Seeded, deterministic description of one injected host crash.

    Like :class:`FaultPlan`, a plan is pure configuration and replayable:
    the same plan against the same run always dies at the same point with
    the same bytes on disk.  Attach it via the engines' ``crash=`` knob
    (requires ``checkpoint=True`` and a non-memory storage plane).

    Parameters
    ----------
    seed:
        Root seed of the per-disk survival streams used by the ``"lost"``
        stage (mixed with ``(proc, disk_id)`` exactly like
        :class:`FaultInjector` streams are).
    crash_point:
        Global index of the stage at which the host dies.  Stages are
        counted in execution order across the run, :data:`CRASH_STAGES`
        per checkpoint barrier; an index past the last barrier never fires
        and the run completes normally.
    keep_rate:
        Probability that an individual unsynced write survives a
        ``"lost"`` crash (write-behind caches flush opportunistically, so
        an arbitrary subset may have hit the platter).
    """

    seed: int = 0
    crash_point: int = 0
    keep_rate: float = 0.5

    def __post_init__(self) -> None:
        if self.crash_point < 0:
            raise ValueError("CrashPlan.crash_point must be >= 0")
        if not 0.0 <= self.keep_rate <= 1.0:
            raise ValueError(
                f"CrashPlan.keep_rate must be in [0, 1], got {self.keep_rate}"
            )

    def stage_of(self, point: int) -> str:
        """The :data:`CRASH_STAGES` name of global crash point ``point``."""
        return CRASH_STAGES[point % len(CRASH_STAGES)]


class CrashyStorage:
    """A ``BlockStorage`` wrapper that models what a crash does to bytes.

    The byte-level sibling of :class:`FaultyDisk`, one layer down:
    ``FaultyDisk`` fails logical track accesses, ``CrashyStorage`` rewrites
    the underlying file the way an OS crash would have left it.  It shadows
    the wrapped storage's raw ``_write_at`` to log every write since the
    last ``sync()`` together with its preimage; :meth:`apply_crash` then
    inflicts the damage of one :data:`CRASH_STAGES` stage:

    * ``"torn"`` — the most recent unsynced write lands only partially
      (its first half hits the platter, the tail keeps the preimage).
    * ``"lost"`` — each unsynced write is independently dropped with
      probability ``1 - keep_rate`` (nothing after the last fsync is
      ordered), restoring its preimage newest-first.

    Both are deterministic in ``(plan.seed, proc, disk_id)``.  Because the
    engines sync at every checkpoint barrier (which clears the log), damage
    can only ever touch bytes written *after* the last committed barrier —
    and copy-on-write pinning keeps those disjoint from every extent a
    committed checkpoint references.  That is the invariant ``scrub()``
    verifies and the conformance fuzzer's ``crash_resume`` oracle enforces.
    """

    def __init__(self, inner, plan: CrashPlan, proc: int = 0, disk_id: int = 0):
        self._inner = inner
        self.plan = plan
        mix = (plan.seed * 1_000_003 + proc) * 1_000_003 + disk_id
        self._rng = random.Random(mix)
        self._wlog: list[tuple[int, bytes, bytes]] = []  # offset, new, preimage
        self._raw_write = inner._write_at
        inner._write_at = self._logged_write  # instance-level shadow

    def _logged_write(self, offset: int, data: bytes) -> None:
        pre = self._inner._read_at(offset, len(data))
        if len(pre) < len(data):
            pre = pre + b"\x00" * (len(data) - len(pre))
        self._wlog.append((offset, bytes(data), pre))
        self._raw_write(offset, data)

    def apply_crash(self, stage: str) -> None:
        """Damage the unsynced suffix of the write stream, then drop the log.

        Quiesce invariant (DESIGN §12): with the overlapped plane on, the
        write-behind queue is drained *first* and the damage lands through
        the raw platter primitive — injected wreckage models the platter at
        crash time and must never be queued behind (or superseded by) legit
        writes a later ``close()`` would flush over it.
        """
        quiesce = getattr(self._inner, "_quiesce", None)
        if quiesce is not None:
            quiesce()
        platter = getattr(self._inner, "_platter_write", self._raw_write)
        if stage == "torn" and self._wlog:
            offset, data, pre = self._wlog[-1]
            cut = max(1, len(data) // 2)
            platter(offset, data[:cut] + pre[cut:])
        elif stage == "lost":
            for offset, _data, pre in reversed(self._wlog):
                if self._rng.random() >= self.plan.keep_rate:
                    platter(offset, pre)
        self._wlog.clear()

    def sync(self) -> None:
        self._inner.sync()
        self._wlog.clear()  # everything up to here is on the platter

    # -- delegation: everything else is the wrapped storage's business ---------

    @property
    def kind(self) -> str:
        return self._inner.kind

    @property
    def read_bytes(self) -> int:
        return self._inner.read_bytes

    @read_bytes.setter
    def read_bytes(self, value: int) -> None:
        self._inner.read_bytes = value

    @property
    def write_bytes(self) -> int:
        return self._inner.write_bytes

    @write_bytes.setter
    def write_bytes(self, value: int) -> None:
        self._inner.write_bytes = value

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_inner"), name)
