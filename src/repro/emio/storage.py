"""Pluggable block-storage planes: where a drive's tracks actually live.

The simulation's *counted* I/O is defined entirely by the model (one access
per track touched, ``parallel_ops`` per round) and is charged in
:mod:`repro.emio.diskarray` before any data moves.  *Where* the block images
live is therefore a free choice — this module makes it a pluggable plane:

* :class:`MemoryStorage` — the historical behaviour: a dict of live
  ``Block`` objects.  Fast, identity-preserving, heap-bound.
* :class:`FileStorage` — one preallocated file per drive.  Tracks map to
  runs of fixed-size *slots*; each stored image is a length-prefixed pickle
  written with ``os.pwrite`` / read with ``os.pread``.  Slot runs freed by
  ``discard_track`` are reused (best-fit).  This is the true out-of-core
  plane: datasets are bounded by the filesystem, not the heap.
* :class:`MmapStorage` — the same on-disk format accessed through ``mmap``,
  for read-heavy phases where page-cache mapping beats syscalls.

The storage-plane invariant (DESIGN §8): outputs, the counted-cost ledger,
and the physical I/O trace are byte-identical across all three planes.
Storage only adds the ``read_bytes`` / ``write_bytes`` *observability*
counters, which live outside the model.

Durability: :meth:`FileStorage.sync` fsyncs the track file; the engines call
it at checkpoint barriers.  :meth:`FileStorage.snapshot` returns a metadata
snapshot (track map + allocation state) and *pins* the referenced slot runs:
overwrites of pinned tracks go to freshly allocated slots
(track-granularity copy-on-write), so a checkpoint that references the
snapshot stays readable even though the run continued.  Pins are held for a
*two-snapshot window*, so the previous checkpoint generation also stays
intact on disk — that is what lets ``scrub()`` fall back one barrier when
the newest generation fails verification.  :meth:`FileStorage.restore`
installs such a snapshot on a storage attached to the same files — that is
how ``resume_from_checkpoint`` re-attaches a crashed run's data without
rehydrating the array.

Crash consistency (DESIGN §9): every stored image is *framed* — a header
carrying a magic number, the write generation, and the payload length,
sealed with a CRC32 over header and payload.  A torn write (partial frame
on the platter) or a lost write (the slot still holds an older, internally
valid frame) is therefore *detected* at read time as a
:class:`~repro.emio.faults.ChecksumError` instead of deserializing garbage.
:func:`verify_extents` applies the same validation to a whole snapshot
without unpickling anything — the primitive ``scrub()`` is built on.

Overlapped I/O (DESIGN §12): with ``io_overlap=True`` a non-memory storage
owns a :class:`_FlusherPool` — one bounded background thread per drive that
performs the raw platter transfers.  ``_write_at`` then *enqueues* sealed
frames instead of calling ``pwrite`` (write-behind), ``_read_at`` overlays
any still-queued bytes over what the platter returns (read-after-write
stays exact), and sequential track streaks schedule readahead into a small
validated cache.  The queue and the readahead cache together are bounded
by ``overlap_budget`` bytes, which the engines derive from the declared
memory budget ``M`` — overlap never smuggles extra working set past the
model.  The *quiesce invariant*: ``sync``, ``close``, ``snapshot``,
``restore`` and ``CrashyStorage.apply_crash`` all drain the queue first,
so every fsync barrier, journal commit, COW pin set, and injected crash
observes exactly the platter state the synchronous plane would have — the
counted ledger, byte counters, and crash semantics are identical by
construction.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import shutil
import struct
import tempfile
import threading
import time
import weakref
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Protocol

from ..obs.profile import NULL_PROFILER

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a circular import
    from .disk import Block
    from .faults import CrashPlan

__all__ = [
    "STORAGE_KINDS",
    "STORAGE_MARKER",
    "FRAME_BYTES",
    "BlockStorage",
    "MemoryStorage",
    "FileStorage",
    "MmapStorage",
    "StorageSpec",
    "default_overlap_budget",
    "resolve_storage",
    "verify_extents",
]

#: Valid values of the ``storage=`` knob, in preference order.
STORAGE_KINDS = ("memory", "file", "mmap")

#: Marker file written into every claimed ``storage_dir``.  A pre-existing
#: non-empty directory *without* it is refused (it is somebody else's data);
#: one *with* it is reused, which is what crash-resume needs.
STORAGE_MARKER = ".em-storage.json"

# Per-slot frame: magic | write generation | payload length, then a CRC32
# sealing header + payload.  The generation tag distinguishes two
# internally-valid frames written to the same slot in different checkpoint
# generations — the "lost write" case a bare checksum cannot catch.
_FRAME = struct.Struct("<IIQ")  # magic, generation, payload length
_CRC = struct.Struct("<I")
FRAME_MAGIC = 0x454D5331  # "EMS1"
#: Bytes of framing overhead in front of every stored payload.
FRAME_BYTES = _FRAME.size + _CRC.size


def _seal_frame(payload: bytes, gen: int) -> bytes:
    """Frame ``payload`` for storage: sealed header + payload."""
    prefix = _FRAME.pack(FRAME_MAGIC, gen & 0xFFFFFFFF, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(prefix))
    return prefix + _CRC.pack(crc) + payload


def _open_frame(raw: bytes, path: str, base: int, length: int, gen: int) -> bytes:
    """Validate one framed slot image against the map's expectations.

    Returns the payload, or raises :class:`~repro.emio.faults.ChecksumError`
    (a retriable :class:`~repro.emio.disk.DiskError`) if the frame is short,
    the magic or CRC32 is wrong, or the stored generation/length disagree
    with what the track map recorded at write time.
    """
    from .faults import ChecksumError

    expect_gen = gen & 0xFFFFFFFF
    if len(raw) >= FRAME_BYTES + length:
        magic, stored_gen, stored_len = _FRAME.unpack_from(raw)
        (stored_crc,) = _CRC.unpack_from(raw, _FRAME.size)
        payload = raw[FRAME_BYTES : FRAME_BYTES + length]
        crc = zlib.crc32(payload, zlib.crc32(raw[: _FRAME.size]))
        if (
            magic == FRAME_MAGIC
            and stored_gen == expect_gen
            and stored_len == length
            and crc == stored_crc
        ):
            return payload
        detail = (
            f"stored (magic={magic:#x}, gen={stored_gen}, len={stored_len}, "
            f"crc={stored_crc:#x}), expected (magic={FRAME_MAGIC:#x}, "
            f"gen={expect_gen}, len={length}, crc={crc:#x})"
        )
    else:
        detail = f"short read ({len(raw)} of {FRAME_BYTES + length} bytes)"
    raise ChecksumError(
        f"storage file {path}: corrupt image at slot {base} ({detail})"
    )


#: First byte of a vectorized (raw fixed-width) slot image.  Pickle streams
#: of protocol >= 2 always start with 0x80, so the two image flavours are
#: distinguished by their first byte alone.
_VEC_TAG = b"V"
_VEC_HLEN = struct.Struct("<I")


def _descr_to_dtype(descr):
    """Rebuild a dtype from its JSON-round-tripped ``descr`` form."""
    import numpy as np

    if isinstance(descr, str):
        return np.dtype(descr)
    fields = []
    for f in descr:
        if len(f) == 3:
            fields.append((f[0], f[1], tuple(f[2])))
        else:
            fields.append((f[0], f[1]))
    return np.dtype(fields)


def _encode_block(block: "Block") -> bytes:
    """Serialize one block into a slot image.

    ndarray payloads become a tagged raw image — a one-byte tag, a small
    JSON header (dtype descr, record count, routing metadata) and the
    array's little-endian bytes — so the vectorized plane's storage path is
    a memcpy, not a pickle of boxed objects.  Everything else (lists,
    pickled-context bytes) keeps the historical pickle image byte-for-byte;
    memoryview payloads are materialized first since pickle refuses them.
    """
    import numpy as np

    records = block.records
    if isinstance(records, np.ndarray) and records.ndim == 1:
        arr = np.ascontiguousarray(records)
        if arr.dtype.byteorder == ">":  # canonical images are little-endian
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        descr = arr.dtype.descr if arr.dtype.names else arr.dtype.str
        header = json.dumps(
            {
                "d": descr,
                "n": int(arr.shape[0]),
                "b": [block.dest, block.src, block.msg, block.seq, int(block.dummy)],
            },
            separators=(",", ":"),
        ).encode("ascii")
        return _VEC_TAG + _VEC_HLEN.pack(len(header)) + header + arr.tobytes()
    if isinstance(records, memoryview):
        from .disk import Block as _Block

        block = _Block(
            records=bytes(records),
            dest=block.dest,
            src=block.src,
            msg=block.msg,
            seq=block.seq,
            dummy=block.dummy,
        )
    return pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_block(payload: bytes) -> "Block":
    """Inverse of :func:`_encode_block` (dispatch on the first byte)."""
    if payload[:1] == _VEC_TAG:
        import numpy as np

        from .disk import Block as _Block

        (hlen,) = _VEC_HLEN.unpack_from(payload, 1)
        head = json.loads(payload[1 + _VEC_HLEN.size : 1 + _VEC_HLEN.size + hlen])
        arr = np.frombuffer(
            payload,
            dtype=_descr_to_dtype(head["d"]),
            count=head["n"],
            offset=1 + _VEC_HLEN.size + hlen,
        )
        dest, src, msg, seq, dummy = head["b"]
        return _Block(
            records=arr, dest=dest, src=src, msg=msg, seq=seq, dummy=bool(dummy)
        )
    return pickle.loads(payload)


def _fsync_dir(path: str) -> None:
    """fsync a directory so freshly created entries survive a crash."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform cannot open directories
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem rejects directory fsync
        pass
    finally:
        os.close(fd)


class BlockStorage(Protocol):
    """Where one drive's tracks live.  All methods are model-cost-free.

    ``put``/``discard`` return whether a block was present before, so the
    :class:`~repro.emio.disk.Disk` occupancy counter stays O(1) on every
    plane.  ``read_bytes``/``write_bytes`` count payload bytes actually
    moved (0 forever on the memory plane) and feed the observer's
    ``storage_read_bytes``/``storage_write_bytes`` samples.
    """

    kind: str
    read_bytes: int
    write_bytes: int

    def get(self, track: int) -> "Block | None": ...  # pragma: no cover

    def peek(self, track: int) -> "Block | None": ...  # pragma: no cover

    def put(self, track: int, block: "Block | None") -> bool: ...  # pragma: no cover

    def discard(self, track: int) -> bool: ...  # pragma: no cover

    def tracks(self) -> Iterator[int]: ...  # pragma: no cover

    def sync(self) -> None: ...  # pragma: no cover

    def close(self) -> None: ...  # pragma: no cover

    def snapshot(self) -> dict | None: ...  # pragma: no cover

    def restore(self, snap: dict | None) -> None: ...  # pragma: no cover


class _ProfiledStorage:
    """Shared profiler plumbing: attribution scopes for the storage plane.

    ``profiler`` is installed by :meth:`~repro.emio.diskarray.DiskArray
    .set_profiler` (default: the no-op :data:`NULL_PROFILER`).  Storage
    methods bill raw data movement to ``syscall_io`` — ``pread``/``pwrite``
    /``fsync`` on the file plane, page-cache copies on the mmap plane — and
    image encode/decode to ``serialize``.  Scopes only *time* existing
    work; bytes written, counters, and frames are byte-identical with
    profiling on or off.
    """

    profiler = NULL_PROFILER


class MemoryStorage(_ProfiledStorage):
    """The historical in-heap plane: a dict of live ``Block`` objects.

    Reads return the *same object* that was written (no copy), matching the
    pre-storage-plane behaviour that parts of the test suite rely on.  Like
    the old dict, a ``put(track, None)`` keeps the key with a ``None``
    value; ``tracks()`` yields only tracks holding a real block.
    """

    kind = "memory"

    def __init__(self) -> None:
        self._tracks: dict[int, "Block | None"] = {}
        self.read_bytes = 0
        self.write_bytes = 0

    def get(self, track: int) -> "Block | None":
        return self._tracks.get(track)

    peek = get

    def put(self, track: int, block: "Block | None") -> bool:
        prev = self._tracks.get(track)
        self._tracks[track] = block
        return prev is not None

    def discard(self, track: int) -> bool:
        return self._tracks.pop(track, None) is not None

    def tracks(self) -> Iterator[int]:
        return (t for t, b in self._tracks.items() if b is not None)

    def tracks_view(self) -> dict[int, "Block | None"]:
        """The raw dict, for tests that plant blocks directly."""
        return self._tracks

    def sync(self) -> None:
        pass

    def close(self) -> None:
        pass

    def snapshot(self) -> dict | None:
        return None  # nothing on disk to reference; checkpoints carry the data

    def restore(self, snap: dict | None) -> None:
        from .disk import DiskError

        raise DiskError("MemoryStorage holds no on-disk state to restore from")


class _TracksView:
    """Dict-flavoured window over a non-memory storage (test compatibility)."""

    def __init__(self, storage: "FileStorage"):
        self._storage = storage

    def get(self, track: int, default=None):
        blk = self._storage.peek(track)
        return default if blk is None else blk

    __getitem__ = get

    def __setitem__(self, track: int, block: "Block | None") -> None:
        self._storage.put(track, block)

    def __contains__(self, track: int) -> bool:
        return self._storage.peek(track) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self._storage.tracks())


#: Tracks of readahead scheduled once a sequential streak is detected.
_RA_DEPTH = 8
#: Free slots a coalesced multi-track read may skip over (gap bytes are
#: read but never counted — only the per-frame spans are).
_COALESCE_GAP_SLOTS = 8

#: Live flusher pools in this process.  Diagnostics and torture tests reach
#: pools they have no handle on (e.g. inside a process-backend worker, to
#: stall the gates and die with a provably non-empty write-behind queue).
_LIVE_POOLS: "weakref.WeakSet[_FlusherPool]" = weakref.WeakSet()


class _FlusherPool:
    """One drive's bounded background I/O worker (write-behind + readahead).

    The pool owns a single thread — drives are independent devices, so one
    in-flight transfer per drive mirrors the machine model.  The engine
    thread *submits* raw platter writes (``submit``) and readahead requests
    (``ra_schedule``); the worker performs them through the storage's
    ``_platter_write``/``_read_at`` primitives, which release the GIL for
    the actual ``pwrite``/``pread``.

    Sequencing guarantees:

    * Writes flush in submission order.  A queued entry stays visible to
      :meth:`pending_in` until its platter write *completes* (it is held as
      ``_inflight`` meanwhile), so overlay reads can never observe a window
      where a write is neither queued nor on the platter.
    * A queued entry whose byte range is fully covered by a newer submission
      is superseded (dropped) — the dominant overwrite-before-flush case.
    * ``submit`` applies backpressure: it blocks while the queue holds more
      than ``budget`` bytes, so write-behind memory is hard-bounded.
    * A worker exception shuts the pool down; it re-raises on the next
      ``submit``/``quiesce``/``close`` so data loss can never pass silently.

    ``gate`` is a test hook: clearing it stalls the worker *before* each
    platter transfer, making "read-after-queued-write" and "quiesce drains
    first" deterministically observable.  It is set in production.
    """

    def __init__(self, storage: "FileStorage", budget: int):
        self._storage = storage
        self.budget = max(int(budget), 1 << 16)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        # Queue entries are mutable ``[seq, offset, data, alive]`` records:
        # superseding marks ``alive`` False in place (O(1) via ``_by_off``)
        # and the worker discards tombstones as it drains.
        self._writes: deque[list] = deque()
        self._by_off: dict[int, list] = {}  # offset -> latest queued entry
        self._inflight: list[list] | None = None
        self._queued_bytes = 0
        # Page-granular refcount of queued/in-flight byte ranges.  Reads
        # consult it lock-free: a page is only ever removed *after* its
        # bytes are on the platter (or superseded by a covering entry), so
        # observing every page of a read range absent proves the platter
        # image is current and the overlay scan can be skipped.
        self._q_pages: dict[int, int] = {}
        # Wakeup batching: waking the worker per small write costs two
        # context switches per frame and would make the overlapped plane
        # *slower* than a synchronous pwrite.  Submissions accumulate until
        # the unflushed bytes cross the kick threshold (or a quiesce/close
        # forces the drain); the worker then writes the whole backlog in
        # one wake.  Reads stay correct meanwhile via the pending overlay.
        self._kick = False
        self._kick_bytes = max(1 << 15, self.budget // 8)
        self._reads: deque[tuple[int, int, int, int, int]] = deque()
        self._ra_cache: OrderedDict[int, tuple[int, int, int, bytes]] = OrderedDict()
        self._ra_bytes = 0
        self._ra_epoch = 0
        self._ra_queued: set[int] = set()
        self._seq = 0
        self._error: BaseException | None = None
        self._stopping = False
        self.gate = threading.Event()
        self.gate.set()
        #: Background platter time/ops (drained into the profiler as
        #: ``syscall_io_bg`` by the owning storage at quiesce points).
        self.bg_seconds = 0.0
        self.bg_ops = 0
        self._thread = threading.Thread(
            target=self._run, name=f"em-flusher-{os.path.basename(storage.path)}",
            daemon=True,
        )
        _LIVE_POOLS.add(self)
        self._thread.start()

    @property
    def pending_bytes(self) -> int:
        """Bytes currently queued or in flight (0 when drained).

        ``_queued_bytes`` counts an entry until its platter write completes,
        so the in-flight item is already included.
        """
        with self._lock:
            return self._queued_bytes

    # -- engine-thread API ------------------------------------------------------

    def _check_error(self) -> None:
        if self._error is not None:
            raise self._error

    def _page_incr(self, offset: int, nbytes: int) -> None:
        pages = self._q_pages
        for p in range(offset >> 12, ((offset + nbytes - 1) >> 12) + 1):
            pages[p] = pages.get(p, 0) + 1

    def _page_decr(self, offset: int, nbytes: int) -> None:
        pages = self._q_pages
        for p in range(offset >> 12, ((offset + nbytes - 1) >> 12) + 1):
            left = pages[p] - 1
            if left:
                pages[p] = left
            else:
                del pages[p]

    def submit(self, offset: int, data: bytes) -> None:
        """Enqueue one raw platter write (blocks while over budget)."""
        with self._lock:
            self._check_error()
            while (
                self._queued_bytes + len(data) > self.budget
                and (self._writes or self._inflight is not None)
            ):
                if not self._kick:
                    self._kick = True
                    self._work.notify()
                self._idle.wait()
                self._check_error()
            # Supersede: a still-queued entry at this exact offset whose
            # range the new write covers never needs to reach the platter.
            # (Partial overlaps simply stack — both flush in order.)
            prev = self._by_off.get(offset)
            if prev is not None and prev[3] and len(prev[2]) <= len(data):
                prev[3] = False
                self._queued_bytes -= len(prev[2])
                self._page_decr(offset, len(prev[2]))
            self._seq += 1
            entry = [self._seq, offset, data, True]
            self._writes.append(entry)
            self._by_off[offset] = entry
            self._queued_bytes += len(data)
            self._page_incr(offset, len(data))
            if not self._kick and self._queued_bytes >= self._kick_bytes:
                self._kick = True
                self._work.notify()

    def pending_in(self, offset: int, nbytes: int) -> list[tuple[int, int, bytes]]:
        """Queued/in-flight writes intersecting ``[offset, offset+nbytes)``,
        in submission order (the overlay applies them oldest-first)."""
        # Lock-free fast paths: only the engine thread adds entries, and
        # the worker removes page refcounts strictly *after* a write hits
        # the platter, so observing the containers empty — or every page of
        # the read range absent from the index — proves the platter image
        # is current.
        if not self._writes and self._inflight is None:
            return []
        pages = self._q_pages
        if all(
            p not in pages
            for p in range(offset >> 12, ((offset + nbytes - 1) >> 12) + 1)
        ):
            return []
        end = offset + nbytes
        with self._lock:
            # Submission order needs no sort: the in-flight batch was popped
            # from the head of the queue, so its seqs precede every queued
            # entry's.
            entries = list(self._inflight) if self._inflight else []
            out = [
                (e[0], e[1], e[2])
                for e in entries
                if e[1] < end and e[1] + len(e[2]) > offset
            ]
            out += [
                (e[0], e[1], e[2])
                for e in self._writes
                if e[3] and e[1] < end and e[1] + len(e[2]) > offset
            ]
        return out

    def quiesce(self) -> None:
        """Block until every queued write is on the platter (the barrier)."""
        with self._lock:
            if self._writes and not self._kick:
                self._kick = True
                self._work.notify()
            while self._error is None and (
                self._writes or self._inflight is not None
            ):
                self._idle.wait()
            self._check_error()

    def close(self) -> None:
        """Drain, stop and join the worker; re-raises a deferred error."""
        with self._lock:
            self._stopping = True
            self._kick = True
            self._work.notify_all()
        self.gate.set()
        self._thread.join()
        self._check_error()

    # -- readahead --------------------------------------------------------------

    def ra_invalidate(self) -> None:
        """Drop the readahead cache and fence in-flight fills (any mutation
        of the track map calls this — stale platter bytes must never win)."""
        with self._lock:
            self._ra_epoch += 1
            self._ra_cache.clear()
            self._ra_queued.clear()
            self._ra_bytes = 0

    def ra_schedule(self, requests: list[tuple[int, int, int, int]]) -> None:
        """Queue background reads of ``(track, base, length, gen)`` extents."""
        with self._lock:
            if self._error is not None:
                return  # readahead is best-effort; the error surfaces on writes
            epoch = self._ra_epoch
            queued = False
            for track, base, length, gen in requests:
                if track in self._ra_cache or track in self._ra_queued:
                    continue
                if self._ra_bytes + FRAME_BYTES + length > self.budget:
                    break
                self._ra_queued.add(track)
                self._reads.append((track, base, length, gen, epoch))
                queued = True
            if queued:
                self._work.notify()

    def ra_take(self, track: int, base: int, length: int, gen: int) -> bytes | None:
        """Pop a cached readahead image iff it matches the live map entry."""
        with self._lock:
            hit = self._ra_cache.pop(track, None)
            if hit is None:
                return None
            self._ra_bytes -= len(hit[3])
            if hit[:3] == (base, length, gen):
                return hit[3]
            return None

    # -- worker -----------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._lock:
                while not (self._kick or self._reads or self._stopping):
                    self._work.wait()
                if self._writes:
                    # Drain a whole backlog per wake: the batch stays
                    # visible to the overlay as in-flight until every
                    # member is on the platter.  Publish ``_inflight``
                    # *before* popping — pending_in's lock-free drained
                    # check must never observe both containers empty while
                    # an entry is neither queued nor written (momentary
                    # double-listing is harmless: the overlay is
                    # idempotent).
                    n = min(len(self._writes), 64)
                    batch = [e for e in (self._writes[i] for i in range(n)) if e[3]]
                    if batch:
                        self._inflight = batch
                    for _ in range(n):
                        e = self._writes.popleft()
                        if self._by_off.get(e[1]) is e:
                            del self._by_off[e[1]]
                    if not batch:  # all tombstones: nothing to transfer
                        if not self._writes:
                            self._idle.notify_all()
                        continue
                    kind, item = "w", batch
                else:
                    self._kick = False
                    if self._stopping:
                        return
                    if not self._reads:
                        continue
                    kind, item = "r", self._reads.popleft()
            self.gate.wait()
            t0 = time.perf_counter()
            try:
                if kind == "w":
                    self._flush_batch(item)
                else:
                    self._fill_readahead(item)
            except BaseException as exc:  # noqa: BLE001 - reported at the barrier
                with self._lock:
                    self._error = exc
                    self._inflight = None
                    self._writes.clear()
                    self._by_off.clear()
                    self._q_pages.clear()
                    self._reads.clear()
                    self._queued_bytes = 0
                    self._idle.notify_all()
                return
            self.bg_seconds += time.perf_counter() - t0
            self.bg_ops += len(item) if kind == "w" else 1
            if kind == "w":
                with self._lock:
                    self._inflight = None
                    for entry in item:
                        self._queued_bytes -= len(entry[2])
                        self._page_decr(entry[1], len(entry[2]))
                    self._idle.notify_all()

    def _flush_batch(self, batch: list[list]) -> None:
        """Put a drained batch on the platter, merging byte-adjacent entries
        into single scatter writes (``pwritev``) — the multi-slot syscall
        batching of ``put_many``, applied again across queued frames."""
        storage = self._storage
        i = 0
        while i < len(batch):
            start = batch[i][1]
            end = start + len(batch[i][2])
            j = i + 1
            while j < len(batch) and batch[j][1] == end:
                end += len(batch[j][2])
                j += 1
            if j - i == 1:
                storage._platter_write(start, batch[i][2])
            else:
                storage._platter_writev(start, [e[2] for e in batch[i:j]])
            i = j

    def _fill_readahead(self, req: tuple[int, int, int, int, int]) -> None:
        track, base, length, gen, epoch = req
        # _read_at (not _platter_read): the overlay keeps a readahead that
        # races a still-queued write of the same extent byte-exact.
        raw = self._storage._read_at(
            base * self._storage.slot_bytes, FRAME_BYTES + length
        )
        with self._lock:
            self._ra_queued.discard(track)
            if self._ra_epoch != epoch or len(raw) != FRAME_BYTES + length:
                return
            self._ra_cache[track] = (base, length, gen, raw)
            self._ra_bytes += len(raw)
            while self._ra_bytes > self.budget and self._ra_cache:
                _t, old = self._ra_cache.popitem(last=False)
                self._ra_bytes -= len(old[3])


class FileStorage(_ProfiledStorage):
    """One preallocated track file per drive; pickled images in slot runs.

    Layout: the file is an array of ``slot_bytes``-sized slots.  A stored
    block occupies a *contiguous run* of slots holding a sealed frame
    (magic, write generation, payload length, CRC32 — see :func:`_seal_frame`)
    followed by the pickle of the block.  A track map (``track -> (base
    slot, run length, payload length, generation)``) lives in memory —
    tracks are sparse (the shadow namespace starts at ``1 << 40``) so
    positional addressing is impossible.  Freed runs enter a
    neighbour-coalescing free list and are reused best-fit; runs freed at
    the file tail shrink the bump pointer.

    ``slot_bytes`` is a power of two sized so one ``B``-record payload fits
    a single slot with pickling overhead to spare; oversized images simply
    span several slots, costing exactly one ``pread``/``pwrite`` either way.
    """

    kind = "file"

    def __init__(
        self,
        path: str | os.PathLike,
        B: int,
        slot_bytes: int | None = None,
        io_overlap: bool = False,
        overlap_budget: int = 0,
    ):
        from .disk import Block

        self.path = os.fspath(path)
        if slot_bytes is None:
            payload = max(1, B) * Block.BYTES_PER_RECORD
            slot_bytes = 256
            while slot_bytes < 2 * payload + FRAME_BYTES + 96:
                slot_bytes *= 2
        self.slot_bytes = int(slot_bytes)
        creating = not os.path.exists(self.path)
        # O_RDWR|O_CREAT without O_TRUNC: reopening an existing track file
        # (crash-resume) must keep its contents.
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        self._size = os.fstat(self._fd).st_size
        self._closed = False
        # track -> (base, nslots, payload len, write generation)
        self._map: dict[int, tuple[int, int, int, int]] = {}
        # Free runs as a neighbour-coalescing pair of maps (base -> nslots
        # and end -> base), so releasing a whole region track by track — the
        # dominant free pattern — merges in O(1) per track instead of
        # rescanning a sorted list.
        self._free_start: dict[int, int] = {}
        self._free_end: dict[int, int] = {}
        self._next_slot = 0
        # Slot runs referenced by the last two snapshots: never handed back
        # to the free list in place (copy-on-write pinning, see module
        # docstring).  The two-deep window keeps the previous checkpoint
        # generation intact for scrub()'s fall-back.
        self._pin_sets: deque[frozenset[tuple[int, int]]] = deque(maxlen=2)
        self._pinned: set[tuple[int, int]] = set()
        self._deferred: list[tuple[int, int]] = []  # pinned runs freed meanwhile
        self._gen = 0  # current write generation; bumped by snapshot()
        self.read_bytes = 0
        self.write_bytes = 0
        # Overlapped I/O (DESIGN §12): the pool is built last so its worker
        # never observes a half-initialized storage.  ``_ra_last``/``_ra_streak``
        # detect sequential track scans worth readahead.
        self.io_overlap = bool(io_overlap)
        self.overlap_budget = int(overlap_budget) if overlap_budget else (1 << 20)
        self._pool: _FlusherPool | None = None
        self._ra_last = -2
        self._ra_streak = 0
        self._bg_reported_ops = 0
        self._bg_reported_seconds = 0.0
        self._grow(self.slot_bytes)
        if creating:
            # A fresh storage root must survive a crash immediately after
            # creation: flush the preallocation, then the directory entry.
            os.fsync(self._fd)
            _fsync_dir(os.path.dirname(self.path) or ".")
        if self.io_overlap:
            self._pool = _FlusherPool(self, self.overlap_budget)

    # -- raw extent I/O --------------------------------------------------------
    #
    # Two layers: ``_platter_read``/``_platter_write`` are the raw device
    # primitives (overridden by MmapStorage), while ``_read_at``/``_write_at``
    # add the overlap dispatch — enqueue on write, pending-write overlay on
    # read.  CrashyStorage shadows ``_write_at`` on the *instance*, so its
    # write log records entries at submission time, in submission order,
    # with overlay-correct preimages — crash determinism is independent of
    # flusher timing.

    def _platter_read(self, offset: int, nbytes: int) -> bytes:
        return os.pread(self._fd, nbytes, offset)

    def _platter_write(self, offset: int, data: bytes) -> None:
        os.pwrite(self._fd, data, offset)

    def _platter_writev(self, offset: int, bufs: list[bytes]) -> None:
        """Write byte-contiguous buffers starting at ``offset`` in one
        syscall where the platform allows (the flusher pool merges adjacent
        queue entries into these scatter writes)."""
        if hasattr(os, "pwritev"):
            os.pwritev(self._fd, bufs, offset)
        else:  # pragma: no cover - non-POSIX fallback
            for buf in bufs:
                self._platter_write(offset, buf)
                offset += len(buf)

    def _read_at(self, offset: int, nbytes: int) -> bytes:
        pool = self._pool
        if pool is None:
            return self._platter_read(offset, nbytes)
        pending = pool.pending_in(offset, nbytes)
        if not pending:
            return self._platter_read(offset, nbytes)
        # The newest pending write covering the whole range serves the read
        # outright — the dominant write-then-read-back case needs no pread
        # and no overlay assembly.
        _seq, off, data = pending[-1]
        if off <= offset and off + len(data) >= offset + nbytes:
            return bytes(data[offset - off : offset - off + nbytes])
        buf = bytearray(self._platter_read(offset, nbytes))
        if len(buf) < nbytes:  # queued write past the platter's current data
            buf += b"\x00" * (nbytes - len(buf))
        for _seq, off, data in pending:
            lo, hi = max(off, offset), min(off + len(data), offset + nbytes)
            buf[lo - offset : hi - offset] = data[lo - off : hi - off]
        return bytes(buf)

    def _write_at(self, offset: int, data: bytes) -> None:
        pool = self._pool
        if pool is None:
            self._platter_write(offset, data)
        else:
            pool.submit(offset, bytes(data))

    def _quiesce(self) -> None:
        """Drain the write-behind queue (no-op on the synchronous plane)."""
        pool = self._pool
        if pool is not None:
            pool.quiesce()
            self._drain_bg_profile()

    def _drain_bg_profile(self, pool: "_FlusherPool | None" = None) -> None:
        """Fold the worker's platter time into the profiler (engine thread).

        The pool accumulates privately (the exclusive-time scope stack is
        single-threaded); deltas land in the ``syscall_io_bg`` category at
        quiesce points, so hidden-background time stays attributable.
        """
        pool = pool if pool is not None else self._pool
        prof = self.profiler
        if pool is None or not prof.enabled:
            return
        dsec = pool.bg_seconds - self._bg_reported_seconds
        dops = pool.bg_ops - self._bg_reported_ops
        if dops or dsec > 0.0:
            prof.add("syscall_io_bg", dsec, dops)
            self._bg_reported_seconds = pool.bg_seconds
            self._bg_reported_ops = pool.bg_ops

    def _grow(self, nbytes: int) -> None:
        if self._size >= nbytes:
            return
        # Geometric preallocation: truncate-up only, so reopened files never
        # lose data and growth costs O(log size) metadata operations.
        self._size = max(nbytes, 2 * self._size)
        os.ftruncate(self._fd, self._size)

    # -- slot-run allocation -----------------------------------------------------

    def _alloc(self, nslots: int) -> int:
        best = None
        for base, size in self._free_start.items():
            if size >= nslots and (best is None or (size, base) < best):
                best = (size, base)
        if best is not None:
            size, base = best
            del self._free_start[base]
            del self._free_end[base + size]
            if size > nslots:
                self._free_start[base + nslots] = size - nslots
                self._free_end[base + size] = base + nslots
            return base
        base = self._next_slot
        self._next_slot += nslots
        self._grow(self._next_slot * self.slot_bytes)
        return base

    def _release(self, base: int, nslots: int) -> None:
        if nslots <= 0:
            return
        if (base, nslots) in self._pinned:
            self._deferred.append((base, nslots))
            return
        prev = self._free_end.pop(base, None)
        if prev is not None:
            nslots += self._free_start.pop(prev)
            base = prev
        nxt = self._free_start.pop(base + nslots, None)
        if nxt is not None:
            del self._free_end[base + nslots + nxt]
            nslots += nxt
        if base + nslots == self._next_slot:
            self._next_slot = base
        else:
            self._free_start[base] = nslots
            self._free_end[base + nslots] = base

    # -- BlockStorage ------------------------------------------------------------

    def _load(self, track: int, count: bool) -> "Block | None":
        ext = self._map.get(track)
        if ext is None:
            return None
        base, _nslots, length, gen = ext
        prof = self.profiler
        pool = self._pool
        raw = None
        if pool is not None:
            raw = pool.ra_take(track, base, length, gen)
        if raw is None:
            prof.push("syscall_io")
            try:
                raw = self._read_at(base * self.slot_bytes, FRAME_BYTES + length)
            finally:
                prof.pop()
        payload = _open_frame(raw, self.path, base, length, gen)
        if count:
            self.read_bytes += len(raw)
        prof.push("serialize")
        try:
            return _decode_block(payload)
        finally:
            prof.pop()

    def _note_sequential(self, track: int) -> None:
        """Streak detection: two consecutive tracks arm readahead.

        Only while the write queue is drained — a write-heavy phase
        invalidates the cache on every put, so scheduling fills there is
        pure background churn that competes with the engine for the GIL.
        """
        if track == self._ra_last + 1:
            self._ra_streak += 1
        else:
            self._ra_streak = 1
        self._ra_last = track
        if self._ra_streak >= 2 and not self._pool._queued_bytes:
            ahead = []
            for t in range(track + 1, track + 1 + _RA_DEPTH):
                ext = self._map.get(t)
                if ext is None:
                    break
                ahead.append((t, ext[0], ext[2], ext[3]))
            if ahead:
                self._pool.ra_schedule(ahead)

    def get(self, track: int) -> "Block | None":
        if self._pool is not None:
            self._note_sequential(track)
        return self._load(track, count=True)

    def get_many(self, tracks: list[int]) -> list["Block | None"]:
        """Read several tracks, coalescing near-adjacent extents into single
        preads (the read-side mirror of :meth:`put_many`).

        Observability counters are byte-identical to per-track ``get`` calls:
        only each frame's span (``FRAME_BYTES + payload``) is counted, never
        the gap padding a coalesced read sweeps over.  Readahead-cached
        frames are consumed first; a trailing sequential streak schedules
        the next extents into the cache.
        """
        exts: list[tuple[int, int, int, int]] = []  # (base, track, length, gen)
        raws: dict[int, bytes] = {}
        pool = self._pool
        for t in set(tracks):
            ext = self._map.get(t)
            if ext is None:
                continue
            if pool is not None:
                hit = pool.ra_take(t, ext[0], ext[2], ext[3])
                if hit is not None:
                    raws[t] = hit
                    continue
            exts.append((ext[0], t, ext[2], ext[3]))
        exts.sort()
        slot_bytes = self.slot_bytes
        prof = self.profiler
        prof.push("syscall_io")
        try:
            i = 0
            while i < len(exts):
                start = exts[i][0]
                j = i
                end_slot = start + self._map[exts[i][1]][1]
                while j + 1 < len(exts) and (
                    exts[j + 1][0] <= end_slot + _COALESCE_GAP_SLOTS
                ):
                    j += 1
                    end_slot = exts[j][0] + self._map[exts[j][1]][1]
                last_base, _t, last_len, _g = exts[j]
                span = (last_base - start) * slot_bytes + FRAME_BYTES + last_len
                raw = self._read_at(start * slot_bytes, span)
                for base, t, length, _gen in exts[i : j + 1]:
                    off = (base - start) * slot_bytes
                    raws[t] = raw[off : off + FRAME_BYTES + length]
                i = j + 1
        finally:
            prof.pop()
        out: list["Block | None"] = []
        for t in tracks:
            ext = self._map.get(t)
            if ext is None:
                out.append(None)
                continue
            raw = raws[t]
            payload = _open_frame(raw, self.path, ext[0], ext[2], ext[3])
            self.read_bytes += len(raw)
            prof.push("serialize")
            try:
                out.append(_decode_block(payload))
            finally:
                prof.pop()
        if pool is not None and tracks:
            # Batch-granular streak: consecutive batches that chain track
            # ranges arm readahead past the batch's end.
            lo, hi = min(tracks), max(tracks)
            self._ra_streak = self._ra_streak + 1 if lo == self._ra_last + 1 else 1
            self._ra_last = hi
            if self._ra_streak >= 2 and not pool._queued_bytes:
                ahead = []
                for t in range(hi + 1, hi + 1 + _RA_DEPTH):
                    ext = self._map.get(t)
                    if ext is None:
                        break
                    ahead.append((t, ext[0], ext[2], ext[3]))
                if ahead:
                    pool.ra_schedule(ahead)
        return out

    def peek(self, track: int) -> "Block | None":
        return self._load(track, count=False)

    def _place(self, track: int, block: "Block | None") -> tuple[bool, tuple | None]:
        """Metadata half of a put: allocate/release and update the map.

        Returns ``(prev_present, pending_write)`` where ``pending_write``
        is ``(base slot, run length, sealed frame)`` — or ``None`` when the
        put was a deletion.  The caller performs the actual write, which is
        what lets :meth:`put_many` coalesce adjacent runs into one pwrite
        (allocation never depends on written bytes, so deferring the data
        movement leaves every map/free-list transition identical).
        """
        if self._pool is not None:
            # Any map mutation fences the readahead cache (a stale platter
            # image must never satisfy a later read).
            self._pool.ra_invalidate()
            self._ra_streak = 0
        prev = self._map.get(track)
        if block is None:
            if prev is None:
                return False, None
            del self._map[track]
            self._release(prev[0], prev[1])
            return True, None
        prof = self.profiler
        prof.push("serialize")
        try:
            payload = _encode_block(block)
        finally:
            prof.pop()
        need = -(-(FRAME_BYTES + len(payload)) // self.slot_bytes)
        if prev is not None and prev[1] == need and (prev[0], prev[1]) not in self._pinned:
            base = prev[0]  # overwrite in place
        else:
            if prev is not None:
                self._release(prev[0], prev[1])
            base = self._alloc(need)
        record = _seal_frame(payload, self._gen)
        self.write_bytes += len(record)
        self._map[track] = (base, need, len(payload), self._gen)
        return prev is not None, (base, need, record)

    def put(self, track: int, block: "Block | None") -> bool:
        prev_present, pending = self._place(track, block)
        if pending is not None:
            base, _need, record = pending
            prof = self.profiler
            prof.push("syscall_io")
            try:
                self._write_at(base * self.slot_bytes, record)
            finally:
                prof.pop()
        return prev_present

    def put_many(self, items: list[tuple[int, "Block | None"]]) -> list[bool]:
        """Store several tracks, coalescing adjacent slot runs into one pwrite.

        Map and free-list transitions are exactly those of in-order ``put``
        calls; only the data movement is batched.  Gaps between merged
        frames (intra-run slack past a frame's end) are zero-filled — those
        bytes belong to the runs being written, so no live or pinned extent
        is touched.  Duplicate tracks in one batch fall back to plain puts
        (a later put may free and reuse the earlier one's slots).
        """
        tracks = [t for t, _ in items]
        if len(set(tracks)) != len(tracks):
            return [self.put(t, b) for t, b in items]
        prev_flags: list[bool] = []
        writes: list[tuple[int, int, bytes]] = []
        for track, block in items:
            prev_present, pending = self._place(track, block)
            prev_flags.append(prev_present)
            if pending is not None:
                writes.append(pending)
        writes.sort(key=lambda w: w[0])
        prof = self.profiler
        prof.push("syscall_io")
        try:
            i = 0
            while i < len(writes):
                start, need, record = writes[i]
                end_slot = start + need
                buf = bytearray(record)
                j = i + 1
                while j < len(writes) and writes[j][0] == end_slot:
                    nbase, nneed, nrecord = writes[j]
                    pad = (nbase - start) * self.slot_bytes - len(buf)
                    if pad:
                        buf += b"\x00" * pad
                    buf += nrecord
                    end_slot = nbase + nneed
                    j += 1
                self._write_at(start * self.slot_bytes, bytes(buf))
                i = j
        finally:
            prof.pop()
        return prev_flags

    def discard(self, track: int) -> bool:
        ext = self._map.pop(track, None)
        if ext is None:
            return False
        if self._pool is not None:
            self._pool.ra_invalidate()
            self._ra_streak = 0
        self._release(ext[0], ext[1])
        return True

    def tracks(self) -> Iterator[int]:
        return iter(list(self._map))

    def tracks_view(self) -> "_TracksView":
        return _TracksView(self)

    def sync(self) -> None:
        # Quiesce invariant (DESIGN §12): the fsync barrier must cover every
        # queued write, so the durability point is exactly the sync plane's.
        self._quiesce()
        prof = self.profiler
        prof.push("syscall_io")
        try:
            os.fsync(self._fd)
        finally:
            prof.pop()

    def close(self) -> None:
        if not self._closed:
            try:
                pool = self._pool
                if pool is not None:
                    # Drain and join before the fd goes away; a deferred
                    # worker error still surfaces (after the fd is closed).
                    self._pool = None
                    try:
                        pool.close()
                    finally:
                        self._drain_bg_profile(pool)
            finally:
                os.close(self._fd)
                self._closed = True

    # -- snapshot / restore (checkpoint-by-reference) ----------------------------

    def snapshot(self) -> dict:
        """Pin the current track map and return it as checkpoint metadata.

        Opens a new write generation.  Pins are held for a two-snapshot
        window: runs pinned two barriers ago (and freed in the meantime)
        become reusable now, so the *previous* checkpoint generation's
        extents are never recycled while ``scrub()`` could still fall back
        to them.
        """
        self._quiesce()  # pins must reference platter-settled extents
        snap_gen = self._gen
        self._gen += 1
        live = frozenset(
            (base, nslots) for base, nslots, _len, _gen in self._map.values()
        )
        self._pin_sets.append(live)
        self._pinned = set().union(*self._pin_sets)
        deferred, self._deferred = self._deferred, []
        for base, nslots in deferred:
            self._release(base, nslots)  # re-defers runs that are still pinned
        return {
            "slot_bytes": self.slot_bytes,
            "gen": snap_gen,
            "map": {int(t): tuple(ext) for t, ext in self._map.items()},
            "next_slot": self._next_slot,
            "free": sorted(
                (size, base) for base, size in self._free_start.items()
            ),
        }

    def restore(self, snap: dict | None) -> None:
        from .disk import DiskError

        if snap is None:
            raise DiskError(
                f"storage file {self.path}: checkpoint carries no storage "
                "snapshot for this drive"
            )
        if snap["slot_bytes"] != self.slot_bytes:
            raise DiskError(
                f"storage file {self.path}: snapshot slot size "
                f"{snap['slot_bytes']} != {self.slot_bytes} (different B?)"
            )
        self._quiesce()
        if self._pool is not None:
            self._pool.ra_invalidate()
            self._ra_last, self._ra_streak = -2, 0
        self._map = {int(t): tuple(ext) for t, ext in snap["map"].items()}
        self._free_start = {base: size for size, base in snap["free"]}
        self._free_end = {base + size: base for size, base in snap["free"]}
        self._next_slot = int(snap["next_slot"])
        # Resume the write-generation clock where the snapshot left it, so
        # a resumed run stamps frames exactly like the original would have.
        self._gen = int(snap.get("gen", 0)) + 1
        self._grow(max(self._next_slot * self.slot_bytes, self.slot_bytes))
        # The restored checkpoint stays the rollback target until the next
        # barrier, so its extents are pinned exactly as after snapshot().
        live = frozenset(
            (base, nslots) for base, nslots, _len, _gen in self._map.values()
        )
        self._pin_sets = deque([live], maxlen=2)
        self._pinned = set(live)
        self._deferred = []


class MmapStorage(FileStorage):
    """The :class:`FileStorage` format accessed through a shared ``mmap``.

    The platter primitives slice the mapping under ``_mm_lock``: with the
    flusher pool on, a remap (growth closes and reopens the mapping) must
    never pull the pages out from under an in-flight background transfer.
    """

    kind = "mmap"

    def __init__(
        self,
        path: str | os.PathLike,
        B: int,
        slot_bytes: int | None = None,
        io_overlap: bool = False,
        overlap_budget: int = 0,
    ):
        self._mm: mmap.mmap | None = None
        self._mm_lock = threading.Lock()
        super().__init__(path, B, slot_bytes, io_overlap, overlap_budget)
        if self._mm is None:
            self._remap()

    def _remap(self) -> None:
        with self._mm_lock:
            if self._mm is not None:
                # Push dirty pages down before dropping the mapping: a crash
                # between remaps must not lose writes that only ever lived in
                # the old mapping's pages.
                self._mm.flush()
                self._mm.close()
            self._mm = mmap.mmap(self._fd, self._size)

    def _grow(self, nbytes: int) -> None:
        if self._size >= nbytes:
            return
        super()._grow(nbytes)
        self._remap()

    def _platter_read(self, offset: int, nbytes: int) -> bytes:
        with self._mm_lock:
            return bytes(self._mm[offset : offset + nbytes])

    def _platter_write(self, offset: int, data: bytes) -> None:
        with self._mm_lock:
            self._mm[offset : offset + len(data)] = data

    def _platter_writev(self, offset: int, bufs: list[bytes]) -> None:
        with self._mm_lock:
            for buf in bufs:
                self._mm[offset : offset + len(buf)] = buf
                offset += len(buf)

    def sync(self) -> None:
        self._quiesce()
        prof = self.profiler
        prof.push("syscall_io")
        try:
            self._mm.flush()
            os.fsync(self._fd)
        finally:
            prof.pop()

    def close(self) -> None:
        if self._closed:
            return
        try:
            pool = self._pool
            if pool is not None:
                self._pool = None
                try:
                    pool.close()
                finally:
                    self._drain_bg_profile(pool)
        finally:
            if self._mm is not None:
                self._mm.flush()
                self._mm.close()
                self._mm = None
            super().close()


def _claim_dir(root: str) -> None:
    """Create or adopt a storage directory, refusing foreign data."""
    from .disk import DiskError

    marker = os.path.join(root, STORAGE_MARKER)
    if os.path.exists(root):
        if not os.path.isdir(root):
            raise DiskError(f"storage_dir {root!r} exists and is not a directory")
        if os.listdir(root) and not os.path.exists(marker):
            raise DiskError(
                f"storage_dir {root!r} is not empty and carries no "
                f"{STORAGE_MARKER} marker; refusing to overwrite what looks "
                "like somebody else's data — point storage_dir at an empty "
                "directory or at a directory from a previous run"
            )
    else:
        os.makedirs(root, exist_ok=True)
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            json.dump({"format": "em-storage", "version": 1}, fh)
            fh.flush()
            os.fsync(fh.fileno())
        # Make the claim itself durable: the marker's directory entry (and
        # the freshly created root's entry in its parent) must survive a
        # crash right after creation, or resume would refuse the directory.
        _fsync_dir(root)
        _fsync_dir(os.path.dirname(root) or ".")


def verify_extents(path: str | os.PathLike, snap: dict) -> int:
    """Raw-verify every framed slot image a storage snapshot references.

    Reads each mapped extent directly off ``path`` and validates its frame
    (magic, generation, length, CRC32) without unpickling anything — torn
    or lost writes inside a checkpointed extent surface as
    :class:`~repro.emio.faults.ChecksumError` here, before a resume could
    attach to them.  Returns the number of extents verified.  This is the
    primitive :func:`repro.core.checkpoint.scrub` is built on.
    """
    path = os.fspath(path)
    slot_bytes = int(snap["slot_bytes"])
    extents = sorted(
        tuple(int(x) for x in ext) for ext in snap["map"].values()
    )
    checked = 0
    fd = os.open(path, os.O_RDONLY)
    try:
        # Coalesce adjacent slot runs into single preads: a snapshot taken
        # after bulk writes maps mostly-consecutive runs, so verifying a
        # checkpoint costs a few large sequential reads instead of one
        # syscall per track.
        i = 0
        while i < len(extents):
            start = extents[i][0]
            j = i
            end_slot = extents[i][0] + extents[i][1]
            while j + 1 < len(extents) and extents[j + 1][0] == end_slot:
                j += 1
                end_slot = extents[j][0] + extents[j][1]
            last_base, _n, last_len, _g = extents[j]
            span = (last_base - start) * slot_bytes + FRAME_BYTES + last_len
            raw = os.pread(fd, span, start * slot_bytes)
            for base, _nslots, length, gen in extents[i : j + 1]:
                off = (base - start) * slot_bytes
                _open_frame(raw[off : off + FRAME_BYTES + length], path, base, length, gen)
                checked += 1
            i = j + 1
    finally:
        os.close(fd)
    return checked


@dataclass(frozen=True)
class StorageSpec:
    """A picklable recipe for building one plane's per-drive storages.

    ``owned`` marks a temporary root created because the caller passed no
    ``storage_dir``; :meth:`cleanup` removes owned roots and leaves explicit
    ones in place (they are the user's durable data).

    ``crash`` optionally attaches a :class:`~repro.emio.faults.CrashPlan`:
    every non-memory storage built by :meth:`make` is then wrapped in a
    :class:`~repro.emio.faults.CrashyStorage` so the engines can inflict
    deterministic byte-level crash damage.  ``proc`` records which real
    processor this spec builds for (it seeds the per-disk crash streams).

    ``io_overlap``/``overlap_budget`` carry the overlapped-I/O knob: every
    non-memory storage then owns a :class:`_FlusherPool` bounded to
    ``overlap_budget`` bytes per drive.  The fields survive :meth:`for_proc`,
    so process-backend workers build their per-drive pools from the same
    recipe.
    """

    kind: str = "memory"
    root: str | None = None
    owned: bool = False
    crash: "CrashPlan | None" = None
    proc: int = 0
    io_overlap: bool = False
    overlap_budget: int = 0

    @classmethod
    def create(cls, kind: str = "memory", root: str | os.PathLike | None = None) -> "StorageSpec":
        from .disk import DiskError

        if kind not in STORAGE_KINDS:
            raise DiskError(
                f"unknown storage kind {kind!r} (expected one of {STORAGE_KINDS})"
            )
        if kind == "memory":
            return cls("memory", None, False)
        if root is None:
            root = tempfile.mkdtemp(prefix="em-storage-")
            owned = True
        else:
            root = os.path.abspath(os.fspath(root))
            owned = False
        _claim_dir(root)
        return cls(kind, root, owned)

    def proc_root(self, index: int) -> str | None:
        """Path of processor ``index``'s sub-root (not created)."""
        if self.kind == "memory":
            return None
        return os.path.join(self.root, f"proc{index}")

    def for_proc(self, index: int) -> "StorageSpec":
        """Derive (and claim) the per-worker spec of real processor ``index``."""
        if self.kind == "memory":
            return self
        sub = self.proc_root(index)
        _claim_dir(sub)
        # The engine-level root owns cleanup; per-proc specs never do.
        return StorageSpec(
            self.kind, sub, False, self.crash, index,
            self.io_overlap, self.overlap_budget,
        )

    def with_crash(self, plan: "CrashPlan | None") -> "StorageSpec":
        """This spec with a byte-level crash plan attached."""
        return StorageSpec(
            self.kind, self.root, self.owned, plan, self.proc,
            self.io_overlap, self.overlap_budget,
        )

    def with_overlap(self, budget: int) -> "StorageSpec":
        """This spec with the overlapped-I/O plane on (``budget`` bytes per
        drive bounding write-behind queue + readahead cache together)."""
        if self.kind == "memory":
            return self  # nothing to overlap; the dict plane has no platter
        return StorageSpec(
            self.kind, self.root, self.owned, self.crash, self.proc,
            True, int(budget),
        )

    def make(self, disk_id: int, B: int) -> BlockStorage:
        """Build the storage of drive ``disk_id``."""
        if self.kind == "memory":
            return MemoryStorage()
        path = os.path.join(self.root, f"disk{disk_id}.dat")
        impl = FileStorage if self.kind == "file" else MmapStorage
        store: BlockStorage = impl(
            path, B,
            io_overlap=self.io_overlap, overlap_budget=self.overlap_budget,
        )
        if self.crash is not None:
            from .faults import CrashyStorage

            store = CrashyStorage(store, self.crash, self.proc, disk_id)
        return store

    def cleanup(self) -> None:
        if self.owned and self.root:
            shutil.rmtree(self.root, ignore_errors=True)


def resolve_storage(
    storage: "str | StorageSpec | None", storage_dir: str | os.PathLike | None
) -> StorageSpec:
    """Normalize the engine-level ``storage=``/``storage_dir=`` knobs."""
    if storage is None:
        storage = "memory"
    if isinstance(storage, StorageSpec):
        return storage
    return StorageSpec.create(storage, storage_dir)


def default_overlap_budget(M: int, D: int, bytes_per_record: int = 8) -> int:
    """Per-drive byte budget for overlapped-I/O buffers.

    A quarter of the declared memory budget ``M`` (in record bytes), split
    evenly across the ``D`` drives, floored at 64 KiB so tiny test machines
    still overlap usefully.  Write-behind queue and readahead cache each
    stay under this bound per drive, keeping total buffer memory O(M).
    """
    return max(1 << 16, M * bytes_per_record // 4 // max(D, 1))
