"""Pluggable block-storage planes: where a drive's tracks actually live.

The simulation's *counted* I/O is defined entirely by the model (one access
per track touched, ``parallel_ops`` per round) and is charged in
:mod:`repro.emio.diskarray` before any data moves.  *Where* the block images
live is therefore a free choice — this module makes it a pluggable plane:

* :class:`MemoryStorage` — the historical behaviour: a dict of live
  ``Block`` objects.  Fast, identity-preserving, heap-bound.
* :class:`FileStorage` — one preallocated file per drive.  Tracks map to
  runs of fixed-size *slots*; each stored image is a length-prefixed pickle
  written with ``os.pwrite`` / read with ``os.pread``.  Slot runs freed by
  ``discard_track`` are reused (best-fit).  This is the true out-of-core
  plane: datasets are bounded by the filesystem, not the heap.
* :class:`MmapStorage` — the same on-disk format accessed through ``mmap``,
  for read-heavy phases where page-cache mapping beats syscalls.

The storage-plane invariant (DESIGN §8): outputs, the counted-cost ledger,
and the physical I/O trace are byte-identical across all three planes.
Storage only adds the ``read_bytes`` / ``write_bytes`` *observability*
counters, which live outside the model.

Durability: :meth:`FileStorage.sync` fsyncs the track file; the engines call
it at checkpoint barriers.  :meth:`FileStorage.snapshot` returns a metadata
snapshot (track map + allocation state) and *pins* the referenced slot runs:
overwrites of pinned tracks go to freshly allocated slots
(track-granularity copy-on-write), so a checkpoint that references the
snapshot stays readable even though the run continued.  Pins are held for a
*two-snapshot window*, so the previous checkpoint generation also stays
intact on disk — that is what lets ``scrub()`` fall back one barrier when
the newest generation fails verification.  :meth:`FileStorage.restore`
installs such a snapshot on a storage attached to the same files — that is
how ``resume_from_checkpoint`` re-attaches a crashed run's data without
rehydrating the array.

Crash consistency (DESIGN §9): every stored image is *framed* — a header
carrying a magic number, the write generation, and the payload length,
sealed with a CRC32 over header and payload.  A torn write (partial frame
on the platter) or a lost write (the slot still holds an older, internally
valid frame) is therefore *detected* at read time as a
:class:`~repro.emio.faults.ChecksumError` instead of deserializing garbage.
:func:`verify_extents` applies the same validation to a whole snapshot
without unpickling anything — the primitive ``scrub()`` is built on.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import shutil
import struct
import tempfile
import zlib
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Protocol

from ..obs.profile import NULL_PROFILER

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a circular import
    from .disk import Block
    from .faults import CrashPlan

__all__ = [
    "STORAGE_KINDS",
    "STORAGE_MARKER",
    "FRAME_BYTES",
    "BlockStorage",
    "MemoryStorage",
    "FileStorage",
    "MmapStorage",
    "StorageSpec",
    "resolve_storage",
    "verify_extents",
]

#: Valid values of the ``storage=`` knob, in preference order.
STORAGE_KINDS = ("memory", "file", "mmap")

#: Marker file written into every claimed ``storage_dir``.  A pre-existing
#: non-empty directory *without* it is refused (it is somebody else's data);
#: one *with* it is reused, which is what crash-resume needs.
STORAGE_MARKER = ".em-storage.json"

# Per-slot frame: magic | write generation | payload length, then a CRC32
# sealing header + payload.  The generation tag distinguishes two
# internally-valid frames written to the same slot in different checkpoint
# generations — the "lost write" case a bare checksum cannot catch.
_FRAME = struct.Struct("<IIQ")  # magic, generation, payload length
_CRC = struct.Struct("<I")
FRAME_MAGIC = 0x454D5331  # "EMS1"
#: Bytes of framing overhead in front of every stored payload.
FRAME_BYTES = _FRAME.size + _CRC.size


def _seal_frame(payload: bytes, gen: int) -> bytes:
    """Frame ``payload`` for storage: sealed header + payload."""
    prefix = _FRAME.pack(FRAME_MAGIC, gen & 0xFFFFFFFF, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(prefix))
    return prefix + _CRC.pack(crc) + payload


def _open_frame(raw: bytes, path: str, base: int, length: int, gen: int) -> bytes:
    """Validate one framed slot image against the map's expectations.

    Returns the payload, or raises :class:`~repro.emio.faults.ChecksumError`
    (a retriable :class:`~repro.emio.disk.DiskError`) if the frame is short,
    the magic or CRC32 is wrong, or the stored generation/length disagree
    with what the track map recorded at write time.
    """
    from .faults import ChecksumError

    expect_gen = gen & 0xFFFFFFFF
    if len(raw) >= FRAME_BYTES + length:
        magic, stored_gen, stored_len = _FRAME.unpack_from(raw)
        (stored_crc,) = _CRC.unpack_from(raw, _FRAME.size)
        payload = raw[FRAME_BYTES : FRAME_BYTES + length]
        crc = zlib.crc32(payload, zlib.crc32(raw[: _FRAME.size]))
        if (
            magic == FRAME_MAGIC
            and stored_gen == expect_gen
            and stored_len == length
            and crc == stored_crc
        ):
            return payload
        detail = (
            f"stored (magic={magic:#x}, gen={stored_gen}, len={stored_len}, "
            f"crc={stored_crc:#x}), expected (magic={FRAME_MAGIC:#x}, "
            f"gen={expect_gen}, len={length}, crc={crc:#x})"
        )
    else:
        detail = f"short read ({len(raw)} of {FRAME_BYTES + length} bytes)"
    raise ChecksumError(
        f"storage file {path}: corrupt image at slot {base} ({detail})"
    )


#: First byte of a vectorized (raw fixed-width) slot image.  Pickle streams
#: of protocol >= 2 always start with 0x80, so the two image flavours are
#: distinguished by their first byte alone.
_VEC_TAG = b"V"
_VEC_HLEN = struct.Struct("<I")


def _descr_to_dtype(descr):
    """Rebuild a dtype from its JSON-round-tripped ``descr`` form."""
    import numpy as np

    if isinstance(descr, str):
        return np.dtype(descr)
    fields = []
    for f in descr:
        if len(f) == 3:
            fields.append((f[0], f[1], tuple(f[2])))
        else:
            fields.append((f[0], f[1]))
    return np.dtype(fields)


def _encode_block(block: "Block") -> bytes:
    """Serialize one block into a slot image.

    ndarray payloads become a tagged raw image — a one-byte tag, a small
    JSON header (dtype descr, record count, routing metadata) and the
    array's little-endian bytes — so the vectorized plane's storage path is
    a memcpy, not a pickle of boxed objects.  Everything else (lists,
    pickled-context bytes) keeps the historical pickle image byte-for-byte;
    memoryview payloads are materialized first since pickle refuses them.
    """
    import numpy as np

    records = block.records
    if isinstance(records, np.ndarray) and records.ndim == 1:
        arr = np.ascontiguousarray(records)
        if arr.dtype.byteorder == ">":  # canonical images are little-endian
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        descr = arr.dtype.descr if arr.dtype.names else arr.dtype.str
        header = json.dumps(
            {
                "d": descr,
                "n": int(arr.shape[0]),
                "b": [block.dest, block.src, block.msg, block.seq, int(block.dummy)],
            },
            separators=(",", ":"),
        ).encode("ascii")
        return _VEC_TAG + _VEC_HLEN.pack(len(header)) + header + arr.tobytes()
    if isinstance(records, memoryview):
        from .disk import Block as _Block

        block = _Block(
            records=bytes(records),
            dest=block.dest,
            src=block.src,
            msg=block.msg,
            seq=block.seq,
            dummy=block.dummy,
        )
    return pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_block(payload: bytes) -> "Block":
    """Inverse of :func:`_encode_block` (dispatch on the first byte)."""
    if payload[:1] == _VEC_TAG:
        import numpy as np

        from .disk import Block as _Block

        (hlen,) = _VEC_HLEN.unpack_from(payload, 1)
        head = json.loads(payload[1 + _VEC_HLEN.size : 1 + _VEC_HLEN.size + hlen])
        arr = np.frombuffer(
            payload,
            dtype=_descr_to_dtype(head["d"]),
            count=head["n"],
            offset=1 + _VEC_HLEN.size + hlen,
        )
        dest, src, msg, seq, dummy = head["b"]
        return _Block(
            records=arr, dest=dest, src=src, msg=msg, seq=seq, dummy=bool(dummy)
        )
    return pickle.loads(payload)


def _fsync_dir(path: str) -> None:
    """fsync a directory so freshly created entries survive a crash."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform cannot open directories
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem rejects directory fsync
        pass
    finally:
        os.close(fd)


class BlockStorage(Protocol):
    """Where one drive's tracks live.  All methods are model-cost-free.

    ``put``/``discard`` return whether a block was present before, so the
    :class:`~repro.emio.disk.Disk` occupancy counter stays O(1) on every
    plane.  ``read_bytes``/``write_bytes`` count payload bytes actually
    moved (0 forever on the memory plane) and feed the observer's
    ``storage_read_bytes``/``storage_write_bytes`` samples.
    """

    kind: str
    read_bytes: int
    write_bytes: int

    def get(self, track: int) -> "Block | None": ...  # pragma: no cover

    def peek(self, track: int) -> "Block | None": ...  # pragma: no cover

    def put(self, track: int, block: "Block | None") -> bool: ...  # pragma: no cover

    def discard(self, track: int) -> bool: ...  # pragma: no cover

    def tracks(self) -> Iterator[int]: ...  # pragma: no cover

    def sync(self) -> None: ...  # pragma: no cover

    def close(self) -> None: ...  # pragma: no cover

    def snapshot(self) -> dict | None: ...  # pragma: no cover

    def restore(self, snap: dict | None) -> None: ...  # pragma: no cover


class _ProfiledStorage:
    """Shared profiler plumbing: attribution scopes for the storage plane.

    ``profiler`` is installed by :meth:`~repro.emio.diskarray.DiskArray
    .set_profiler` (default: the no-op :data:`NULL_PROFILER`).  Storage
    methods bill raw data movement to ``syscall_io`` — ``pread``/``pwrite``
    /``fsync`` on the file plane, page-cache copies on the mmap plane — and
    image encode/decode to ``serialize``.  Scopes only *time* existing
    work; bytes written, counters, and frames are byte-identical with
    profiling on or off.
    """

    profiler = NULL_PROFILER


class MemoryStorage(_ProfiledStorage):
    """The historical in-heap plane: a dict of live ``Block`` objects.

    Reads return the *same object* that was written (no copy), matching the
    pre-storage-plane behaviour that parts of the test suite rely on.  Like
    the old dict, a ``put(track, None)`` keeps the key with a ``None``
    value; ``tracks()`` yields only tracks holding a real block.
    """

    kind = "memory"

    def __init__(self) -> None:
        self._tracks: dict[int, "Block | None"] = {}
        self.read_bytes = 0
        self.write_bytes = 0

    def get(self, track: int) -> "Block | None":
        return self._tracks.get(track)

    peek = get

    def put(self, track: int, block: "Block | None") -> bool:
        prev = self._tracks.get(track)
        self._tracks[track] = block
        return prev is not None

    def discard(self, track: int) -> bool:
        return self._tracks.pop(track, None) is not None

    def tracks(self) -> Iterator[int]:
        return (t for t, b in self._tracks.items() if b is not None)

    def tracks_view(self) -> dict[int, "Block | None"]:
        """The raw dict, for tests that plant blocks directly."""
        return self._tracks

    def sync(self) -> None:
        pass

    def close(self) -> None:
        pass

    def snapshot(self) -> dict | None:
        return None  # nothing on disk to reference; checkpoints carry the data

    def restore(self, snap: dict | None) -> None:
        from .disk import DiskError

        raise DiskError("MemoryStorage holds no on-disk state to restore from")


class _TracksView:
    """Dict-flavoured window over a non-memory storage (test compatibility)."""

    def __init__(self, storage: "FileStorage"):
        self._storage = storage

    def get(self, track: int, default=None):
        blk = self._storage.peek(track)
        return default if blk is None else blk

    __getitem__ = get

    def __setitem__(self, track: int, block: "Block | None") -> None:
        self._storage.put(track, block)

    def __contains__(self, track: int) -> bool:
        return self._storage.peek(track) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self._storage.tracks())


class FileStorage(_ProfiledStorage):
    """One preallocated track file per drive; pickled images in slot runs.

    Layout: the file is an array of ``slot_bytes``-sized slots.  A stored
    block occupies a *contiguous run* of slots holding a sealed frame
    (magic, write generation, payload length, CRC32 — see :func:`_seal_frame`)
    followed by the pickle of the block.  A track map (``track -> (base
    slot, run length, payload length, generation)``) lives in memory —
    tracks are sparse (the shadow namespace starts at ``1 << 40``) so
    positional addressing is impossible.  Freed runs enter a
    neighbour-coalescing free list and are reused best-fit; runs freed at
    the file tail shrink the bump pointer.

    ``slot_bytes`` is a power of two sized so one ``B``-record payload fits
    a single slot with pickling overhead to spare; oversized images simply
    span several slots, costing exactly one ``pread``/``pwrite`` either way.
    """

    kind = "file"

    def __init__(self, path: str | os.PathLike, B: int, slot_bytes: int | None = None):
        from .disk import Block

        self.path = os.fspath(path)
        if slot_bytes is None:
            payload = max(1, B) * Block.BYTES_PER_RECORD
            slot_bytes = 256
            while slot_bytes < 2 * payload + FRAME_BYTES + 96:
                slot_bytes *= 2
        self.slot_bytes = int(slot_bytes)
        creating = not os.path.exists(self.path)
        # O_RDWR|O_CREAT without O_TRUNC: reopening an existing track file
        # (crash-resume) must keep its contents.
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        self._size = os.fstat(self._fd).st_size
        self._closed = False
        # track -> (base, nslots, payload len, write generation)
        self._map: dict[int, tuple[int, int, int, int]] = {}
        # Free runs as a neighbour-coalescing pair of maps (base -> nslots
        # and end -> base), so releasing a whole region track by track — the
        # dominant free pattern — merges in O(1) per track instead of
        # rescanning a sorted list.
        self._free_start: dict[int, int] = {}
        self._free_end: dict[int, int] = {}
        self._next_slot = 0
        # Slot runs referenced by the last two snapshots: never handed back
        # to the free list in place (copy-on-write pinning, see module
        # docstring).  The two-deep window keeps the previous checkpoint
        # generation intact for scrub()'s fall-back.
        self._pin_sets: deque[frozenset[tuple[int, int]]] = deque(maxlen=2)
        self._pinned: set[tuple[int, int]] = set()
        self._deferred: list[tuple[int, int]] = []  # pinned runs freed meanwhile
        self._gen = 0  # current write generation; bumped by snapshot()
        self.read_bytes = 0
        self.write_bytes = 0
        self._grow(self.slot_bytes)
        if creating:
            # A fresh storage root must survive a crash immediately after
            # creation: flush the preallocation, then the directory entry.
            os.fsync(self._fd)
            _fsync_dir(os.path.dirname(self.path) or ".")

    # -- raw extent I/O (overridden by MmapStorage) ----------------------------

    def _read_at(self, offset: int, nbytes: int) -> bytes:
        return os.pread(self._fd, nbytes, offset)

    def _write_at(self, offset: int, data: bytes) -> None:
        os.pwrite(self._fd, data, offset)

    def _grow(self, nbytes: int) -> None:
        if self._size >= nbytes:
            return
        # Geometric preallocation: truncate-up only, so reopened files never
        # lose data and growth costs O(log size) metadata operations.
        self._size = max(nbytes, 2 * self._size)
        os.ftruncate(self._fd, self._size)

    # -- slot-run allocation -----------------------------------------------------

    def _alloc(self, nslots: int) -> int:
        best = None
        for base, size in self._free_start.items():
            if size >= nslots and (best is None or (size, base) < best):
                best = (size, base)
        if best is not None:
            size, base = best
            del self._free_start[base]
            del self._free_end[base + size]
            if size > nslots:
                self._free_start[base + nslots] = size - nslots
                self._free_end[base + size] = base + nslots
            return base
        base = self._next_slot
        self._next_slot += nslots
        self._grow(self._next_slot * self.slot_bytes)
        return base

    def _release(self, base: int, nslots: int) -> None:
        if nslots <= 0:
            return
        if (base, nslots) in self._pinned:
            self._deferred.append((base, nslots))
            return
        prev = self._free_end.pop(base, None)
        if prev is not None:
            nslots += self._free_start.pop(prev)
            base = prev
        nxt = self._free_start.pop(base + nslots, None)
        if nxt is not None:
            del self._free_end[base + nslots + nxt]
            nslots += nxt
        if base + nslots == self._next_slot:
            self._next_slot = base
        else:
            self._free_start[base] = nslots
            self._free_end[base + nslots] = base

    # -- BlockStorage ------------------------------------------------------------

    def _load(self, track: int, count: bool) -> "Block | None":
        ext = self._map.get(track)
        if ext is None:
            return None
        base, _nslots, length, gen = ext
        prof = self.profiler
        prof.push("syscall_io")
        try:
            raw = self._read_at(base * self.slot_bytes, FRAME_BYTES + length)
        finally:
            prof.pop()
        payload = _open_frame(raw, self.path, base, length, gen)
        if count:
            self.read_bytes += len(raw)
        prof.push("serialize")
        try:
            return _decode_block(payload)
        finally:
            prof.pop()

    def get(self, track: int) -> "Block | None":
        return self._load(track, count=True)

    def peek(self, track: int) -> "Block | None":
        return self._load(track, count=False)

    def _place(self, track: int, block: "Block | None") -> tuple[bool, tuple | None]:
        """Metadata half of a put: allocate/release and update the map.

        Returns ``(prev_present, pending_write)`` where ``pending_write``
        is ``(base slot, run length, sealed frame)`` — or ``None`` when the
        put was a deletion.  The caller performs the actual write, which is
        what lets :meth:`put_many` coalesce adjacent runs into one pwrite
        (allocation never depends on written bytes, so deferring the data
        movement leaves every map/free-list transition identical).
        """
        prev = self._map.get(track)
        if block is None:
            if prev is None:
                return False, None
            del self._map[track]
            self._release(prev[0], prev[1])
            return True, None
        prof = self.profiler
        prof.push("serialize")
        try:
            payload = _encode_block(block)
        finally:
            prof.pop()
        need = -(-(FRAME_BYTES + len(payload)) // self.slot_bytes)
        if prev is not None and prev[1] == need and (prev[0], prev[1]) not in self._pinned:
            base = prev[0]  # overwrite in place
        else:
            if prev is not None:
                self._release(prev[0], prev[1])
            base = self._alloc(need)
        record = _seal_frame(payload, self._gen)
        self.write_bytes += len(record)
        self._map[track] = (base, need, len(payload), self._gen)
        return prev is not None, (base, need, record)

    def put(self, track: int, block: "Block | None") -> bool:
        prev_present, pending = self._place(track, block)
        if pending is not None:
            base, _need, record = pending
            prof = self.profiler
            prof.push("syscall_io")
            try:
                self._write_at(base * self.slot_bytes, record)
            finally:
                prof.pop()
        return prev_present

    def put_many(self, items: list[tuple[int, "Block | None"]]) -> list[bool]:
        """Store several tracks, coalescing adjacent slot runs into one pwrite.

        Map and free-list transitions are exactly those of in-order ``put``
        calls; only the data movement is batched.  Gaps between merged
        frames (intra-run slack past a frame's end) are zero-filled — those
        bytes belong to the runs being written, so no live or pinned extent
        is touched.  Duplicate tracks in one batch fall back to plain puts
        (a later put may free and reuse the earlier one's slots).
        """
        tracks = [t for t, _ in items]
        if len(set(tracks)) != len(tracks):
            return [self.put(t, b) for t, b in items]
        prev_flags: list[bool] = []
        writes: list[tuple[int, int, bytes]] = []
        for track, block in items:
            prev_present, pending = self._place(track, block)
            prev_flags.append(prev_present)
            if pending is not None:
                writes.append(pending)
        writes.sort(key=lambda w: w[0])
        prof = self.profiler
        prof.push("syscall_io")
        try:
            i = 0
            while i < len(writes):
                start, need, record = writes[i]
                end_slot = start + need
                buf = bytearray(record)
                j = i + 1
                while j < len(writes) and writes[j][0] == end_slot:
                    nbase, nneed, nrecord = writes[j]
                    pad = (nbase - start) * self.slot_bytes - len(buf)
                    if pad:
                        buf += b"\x00" * pad
                    buf += nrecord
                    end_slot = nbase + nneed
                    j += 1
                self._write_at(start * self.slot_bytes, bytes(buf))
                i = j
        finally:
            prof.pop()
        return prev_flags

    def discard(self, track: int) -> bool:
        ext = self._map.pop(track, None)
        if ext is None:
            return False
        self._release(ext[0], ext[1])
        return True

    def tracks(self) -> Iterator[int]:
        return iter(list(self._map))

    def tracks_view(self) -> "_TracksView":
        return _TracksView(self)

    def sync(self) -> None:
        prof = self.profiler
        prof.push("syscall_io")
        try:
            os.fsync(self._fd)
        finally:
            prof.pop()

    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    # -- snapshot / restore (checkpoint-by-reference) ----------------------------

    def snapshot(self) -> dict:
        """Pin the current track map and return it as checkpoint metadata.

        Opens a new write generation.  Pins are held for a two-snapshot
        window: runs pinned two barriers ago (and freed in the meantime)
        become reusable now, so the *previous* checkpoint generation's
        extents are never recycled while ``scrub()`` could still fall back
        to them.
        """
        snap_gen = self._gen
        self._gen += 1
        live = frozenset(
            (base, nslots) for base, nslots, _len, _gen in self._map.values()
        )
        self._pin_sets.append(live)
        self._pinned = set().union(*self._pin_sets)
        deferred, self._deferred = self._deferred, []
        for base, nslots in deferred:
            self._release(base, nslots)  # re-defers runs that are still pinned
        return {
            "slot_bytes": self.slot_bytes,
            "gen": snap_gen,
            "map": {int(t): tuple(ext) for t, ext in self._map.items()},
            "next_slot": self._next_slot,
            "free": sorted(
                (size, base) for base, size in self._free_start.items()
            ),
        }

    def restore(self, snap: dict | None) -> None:
        from .disk import DiskError

        if snap is None:
            raise DiskError(
                f"storage file {self.path}: checkpoint carries no storage "
                "snapshot for this drive"
            )
        if snap["slot_bytes"] != self.slot_bytes:
            raise DiskError(
                f"storage file {self.path}: snapshot slot size "
                f"{snap['slot_bytes']} != {self.slot_bytes} (different B?)"
            )
        self._map = {int(t): tuple(ext) for t, ext in snap["map"].items()}
        self._free_start = {base: size for size, base in snap["free"]}
        self._free_end = {base + size: base for size, base in snap["free"]}
        self._next_slot = int(snap["next_slot"])
        # Resume the write-generation clock where the snapshot left it, so
        # a resumed run stamps frames exactly like the original would have.
        self._gen = int(snap.get("gen", 0)) + 1
        self._grow(max(self._next_slot * self.slot_bytes, self.slot_bytes))
        # The restored checkpoint stays the rollback target until the next
        # barrier, so its extents are pinned exactly as after snapshot().
        live = frozenset(
            (base, nslots) for base, nslots, _len, _gen in self._map.values()
        )
        self._pin_sets = deque([live], maxlen=2)
        self._pinned = set(live)
        self._deferred = []


class MmapStorage(FileStorage):
    """The :class:`FileStorage` format accessed through a shared ``mmap``."""

    kind = "mmap"

    def __init__(self, path: str | os.PathLike, B: int, slot_bytes: int | None = None):
        self._mm: mmap.mmap | None = None
        super().__init__(path, B, slot_bytes)
        if self._mm is None:
            self._remap()

    def _remap(self) -> None:
        if self._mm is not None:
            # Push dirty pages down before dropping the mapping: a crash
            # between remaps must not lose writes that only ever lived in
            # the old mapping's pages.
            self._mm.flush()
            self._mm.close()
        self._mm = mmap.mmap(self._fd, self._size)

    def _grow(self, nbytes: int) -> None:
        if self._size >= nbytes:
            return
        super()._grow(nbytes)
        self._remap()

    def _read_at(self, offset: int, nbytes: int) -> bytes:
        return bytes(self._mm[offset : offset + nbytes])

    def _write_at(self, offset: int, data: bytes) -> None:
        self._mm[offset : offset + len(data)] = data

    def sync(self) -> None:
        prof = self.profiler
        prof.push("syscall_io")
        try:
            self._mm.flush()
            os.fsync(self._fd)
        finally:
            prof.pop()

    def close(self) -> None:
        if self._mm is not None:
            self._mm.flush()
            self._mm.close()
            self._mm = None
        super().close()


def _claim_dir(root: str) -> None:
    """Create or adopt a storage directory, refusing foreign data."""
    from .disk import DiskError

    marker = os.path.join(root, STORAGE_MARKER)
    if os.path.exists(root):
        if not os.path.isdir(root):
            raise DiskError(f"storage_dir {root!r} exists and is not a directory")
        if os.listdir(root) and not os.path.exists(marker):
            raise DiskError(
                f"storage_dir {root!r} is not empty and carries no "
                f"{STORAGE_MARKER} marker; refusing to overwrite what looks "
                "like somebody else's data — point storage_dir at an empty "
                "directory or at a directory from a previous run"
            )
    else:
        os.makedirs(root, exist_ok=True)
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            json.dump({"format": "em-storage", "version": 1}, fh)
            fh.flush()
            os.fsync(fh.fileno())
        # Make the claim itself durable: the marker's directory entry (and
        # the freshly created root's entry in its parent) must survive a
        # crash right after creation, or resume would refuse the directory.
        _fsync_dir(root)
        _fsync_dir(os.path.dirname(root) or ".")


def verify_extents(path: str | os.PathLike, snap: dict) -> int:
    """Raw-verify every framed slot image a storage snapshot references.

    Reads each mapped extent directly off ``path`` and validates its frame
    (magic, generation, length, CRC32) without unpickling anything — torn
    or lost writes inside a checkpointed extent surface as
    :class:`~repro.emio.faults.ChecksumError` here, before a resume could
    attach to them.  Returns the number of extents verified.  This is the
    primitive :func:`repro.core.checkpoint.scrub` is built on.
    """
    path = os.fspath(path)
    slot_bytes = int(snap["slot_bytes"])
    extents = sorted(
        tuple(int(x) for x in ext) for ext in snap["map"].values()
    )
    checked = 0
    fd = os.open(path, os.O_RDONLY)
    try:
        # Coalesce adjacent slot runs into single preads: a snapshot taken
        # after bulk writes maps mostly-consecutive runs, so verifying a
        # checkpoint costs a few large sequential reads instead of one
        # syscall per track.
        i = 0
        while i < len(extents):
            start = extents[i][0]
            j = i
            end_slot = extents[i][0] + extents[i][1]
            while j + 1 < len(extents) and extents[j + 1][0] == end_slot:
                j += 1
                end_slot = extents[j][0] + extents[j][1]
            last_base, _n, last_len, _g = extents[j]
            span = (last_base - start) * slot_bytes + FRAME_BYTES + last_len
            raw = os.pread(fd, span, start * slot_bytes)
            for base, _nslots, length, gen in extents[i : j + 1]:
                off = (base - start) * slot_bytes
                _open_frame(raw[off : off + FRAME_BYTES + length], path, base, length, gen)
                checked += 1
            i = j + 1
    finally:
        os.close(fd)
    return checked


@dataclass(frozen=True)
class StorageSpec:
    """A picklable recipe for building one plane's per-drive storages.

    ``owned`` marks a temporary root created because the caller passed no
    ``storage_dir``; :meth:`cleanup` removes owned roots and leaves explicit
    ones in place (they are the user's durable data).

    ``crash`` optionally attaches a :class:`~repro.emio.faults.CrashPlan`:
    every non-memory storage built by :meth:`make` is then wrapped in a
    :class:`~repro.emio.faults.CrashyStorage` so the engines can inflict
    deterministic byte-level crash damage.  ``proc`` records which real
    processor this spec builds for (it seeds the per-disk crash streams).
    """

    kind: str = "memory"
    root: str | None = None
    owned: bool = False
    crash: "CrashPlan | None" = None
    proc: int = 0

    @classmethod
    def create(cls, kind: str = "memory", root: str | os.PathLike | None = None) -> "StorageSpec":
        from .disk import DiskError

        if kind not in STORAGE_KINDS:
            raise DiskError(
                f"unknown storage kind {kind!r} (expected one of {STORAGE_KINDS})"
            )
        if kind == "memory":
            return cls("memory", None, False)
        if root is None:
            root = tempfile.mkdtemp(prefix="em-storage-")
            owned = True
        else:
            root = os.path.abspath(os.fspath(root))
            owned = False
        _claim_dir(root)
        return cls(kind, root, owned)

    def proc_root(self, index: int) -> str | None:
        """Path of processor ``index``'s sub-root (not created)."""
        if self.kind == "memory":
            return None
        return os.path.join(self.root, f"proc{index}")

    def for_proc(self, index: int) -> "StorageSpec":
        """Derive (and claim) the per-worker spec of real processor ``index``."""
        if self.kind == "memory":
            return self
        sub = self.proc_root(index)
        _claim_dir(sub)
        # The engine-level root owns cleanup; per-proc specs never do.
        return StorageSpec(self.kind, sub, False, self.crash, index)

    def with_crash(self, plan: "CrashPlan | None") -> "StorageSpec":
        """This spec with a byte-level crash plan attached."""
        return StorageSpec(self.kind, self.root, self.owned, plan, self.proc)

    def make(self, disk_id: int, B: int) -> BlockStorage:
        """Build the storage of drive ``disk_id``."""
        if self.kind == "memory":
            return MemoryStorage()
        path = os.path.join(self.root, f"disk{disk_id}.dat")
        impl = FileStorage if self.kind == "file" else MmapStorage
        store: BlockStorage = impl(path, B)
        if self.crash is not None:
            from .faults import CrashyStorage

            store = CrashyStorage(store, self.crash, self.proc, disk_id)
        return store

    def cleanup(self) -> None:
        if self.owned and self.root:
            shutil.rmtree(self.root, ignore_errors=True)


def resolve_storage(
    storage: "str | StorageSpec | None", storage_dir: str | os.PathLike | None
) -> StorageSpec:
    """Normalize the engine-level ``storage=``/``storage_dir=`` knobs."""
    if storage is None:
        storage = "memory"
    if isinstance(storage, StorageSpec):
        return storage
    return StorageSpec.create(storage, storage_dir)
