"""A single simulated disk drive: a sequence of track-addressable blocks.

Section 3 of the paper: "Each drive consists of a sequence of *tracks*
(consecutively numbered starting with 0) which can be accessed by direct
random access using their unique track number.  A track stores exactly one
block of ``B`` records."

The disk enforces the blocking discipline — the only I/O primitive is reading
or writing one whole track — and records access statistics so that higher
layers (and the Lemma 2 balance benchmarks) can audit behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .storage import BlockStorage

__all__ = ["Block", "Disk", "DiskError", "SHADOW_TRACK_BASE"]

#: First track number of the *shadow namespace*: when a disk dies, the array
#: remaps its writes onto surviving disks at tracks >= this base so remapped
#: blocks can never collide with allocator-managed ranges.  Shadow tracks are
#: excluded from the high-water statistic (they are not real capacity).
SHADOW_TRACK_BASE = 1 << 40


class DiskError(RuntimeError):
    """Raised on invalid disk operations (capacity overflow, bad track)."""


@dataclass
class Block:
    """One disk block: up to ``B`` records plus routing metadata.

    Attributes
    ----------
    records:
        The payload.  A list of at most ``B`` records (arbitrary objects;
        each list element counts as exactly one record), or a ``bytes``
        object of at most ``B * Block.BYTES_PER_RECORD`` bytes for opaque
        (pickled-context) payloads.
    dest:
        Destination virtual processor for message blocks; ``-1`` otherwise.
    src:
        Source virtual processor for message blocks; ``-1`` otherwise.
    msg:
        Message id (unique per (src, superstep)); lets the fetching phase
        reassemble multi-block messages.
    seq:
        Sequence number of this block within its message stream (used by the
        reorganization step to reassemble per-destination order).
    dummy:
        True for padding blocks introduced to reach the worst-case traffic
        the analysis assumes ("dummy blocks", Lemma 3).
    """

    BYTES_PER_RECORD = 8

    records: Any
    dest: int = -1
    src: int = -1
    msg: int = 0
    seq: int = 0
    dummy: bool = False

    def nrecords(self) -> int:
        """Number of records this block carries.

        Byte-flavoured payloads (``bytes``/``bytearray``/``memoryview``)
        count in 8-byte records; every other payload — lists and ndarray
        slices alike — counts one record per element (``len``).
        """
        records = self.records
        if isinstance(records, (bytes, bytearray)):
            return -(-len(records) // self.BYTES_PER_RECORD)
        if isinstance(records, memoryview):
            return -(-records.nbytes // self.BYTES_PER_RECORD)
        return len(records)

    def validate(self, B: int) -> None:
        if getattr(self, "_vB", None) == B:
            return
        n = self.nrecords()
        if n > B:
            raise DiskError(f"block holds {n} records, exceeds block size B={B}")
        # Blocks are immutable once written; memoize the passed bound so a
        # block travelling through several regions is not re-measured on
        # every write (hot in write_batched).
        self._vB = B


class Disk:
    """A simulated disk drive with ``ntracks`` tracks of one block each.

    The drive grows on demand (tracks are allocated lazily) but an explicit
    capacity can be given to test space bounds.  All accesses are counted.
    """

    def __init__(
        self,
        disk_id: int,
        B: int,
        ntracks: int | None = None,
        storage: "BlockStorage | None" = None,
    ):
        self.disk_id = disk_id
        self.B = B
        self.capacity = ntracks  # None = unbounded
        if storage is None:
            from .storage import MemoryStorage

            storage = MemoryStorage()
        self.storage = storage
        self.reads = 0
        self.writes = 0
        self._high_water = -1  # highest track ever written
        self._occupied = 0  # tracks currently holding a block (O(1) used_tracks)

    @property
    def _tracks(self):
        """Dict-flavoured window over the storage plane (tests plant blocks here)."""
        return self.storage.tracks_view()

    # -- primitives ------------------------------------------------------------

    def _check_track(self, track: int) -> None:
        if track < 0:
            raise DiskError(f"disk {self.disk_id}: negative track number {track}")
        if self.capacity is not None and track >= self.capacity:
            raise DiskError(
                f"disk {self.disk_id}: track {track} beyond capacity {self.capacity}"
            )

    def read_track(self, track: int) -> Block | None:
        """Read the block stored at ``track`` (one disk access)."""
        self._check_track(track)
        self.reads += 1
        return self.storage.get(track)

    def write_track(self, track: int, block: Block | None) -> None:
        """Write ``block`` to ``track`` (one disk access)."""
        self._check_track(track)
        if block is not None:
            block.validate(self.B)
        self.writes += 1
        self._store(track, block)
        if self._high_water < track < SHADOW_TRACK_BASE:
            self._high_water = track

    def _store(self, track: int, block: Block | None) -> None:
        """Place ``block`` at ``track``, maintaining the occupancy counter."""
        prev_present = self.storage.put(track, block)
        if prev_present != (block is not None):
            self._occupied += 1 if not prev_present else -1

    def _load_many(self, tracks: list[int]) -> list[Block | None]:
        """Read several tracks at once, coalescing backend reads.

        Storage planes that implement ``get_many`` (FileStorage/MmapStorage)
        merge near-adjacent slot extents into single preads; others fall
        back to per-track gets.  Access counters are the caller's business
        (``DiskArray.read_batched`` charges per address either way).
        """
        get_many = getattr(self.storage, "get_many", None)
        if get_many is not None:
            return get_many(tracks)
        get = self.storage.get
        return [get(t) for t in tracks]

    def _store_many(self, items: list[tuple[int, Block | None]]) -> None:
        """Place several blocks at once, coalescing backend writes.

        Storage planes that implement ``put_many`` (FileStorage/MmapStorage)
        merge adjacent-slot images into single pwrites; others fall back to
        per-track puts.  Occupancy bookkeeping is identical either way.
        """
        put_many = getattr(self.storage, "put_many", None)
        if put_many is not None:
            prev = put_many(items)
            for (track, block), prev_present in zip(items, prev):
                if prev_present != (block is not None):
                    self._occupied += 1 if not prev_present else -1
        else:
            for track, block in items:
                self._store(track, block)

    def discard_track(self, track: int) -> None:
        """Drop a track's contents (deallocation; no access is charged)."""
        if self.storage.discard(track):
            self._occupied -= 1

    # -- inspection (free of charge; simulator-internal) -----------------------

    def peek(self, track: int) -> Block | None:
        """Inspect a track without charging an access (for tests/assertions)."""
        return self.storage.peek(track)

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def used_tracks(self) -> int:
        """Number of tracks currently holding a block (O(1) counter)."""
        return self._occupied

    @property
    def high_water(self) -> int:
        """Highest track index ever written (-1 if never written)."""
        return self._high_water

    def occupied(self) -> Iterable[int]:
        """Track numbers currently holding blocks."""
        return self.storage.tracks()

    def reset_stats(self) -> None:
        self.reads = 0
        self.writes = 0
        self._high_water = -1
        self.storage.read_bytes = 0
        self.storage.write_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Disk(id={self.disk_id}, B={self.B}, used={self.used_tracks}, "
            f"reads={self.reads}, writes={self.writes})"
        )
