"""Disk data layouts: blocked format and *standard consecutive format*.

Definitions 1 and 2 of the paper:

* A collection of records is in **blocked format** if its records are grouped
  into blocks of size ``B``.
* A collection of records stored on ``D`` disks is in **standard consecutive
  format** if (i) it is blocked, (ii) the number of blocks per disk differs by
  at most one, and (iii) on each disk the blocks occupy consecutive tracks.

The simulation keeps the virtual-processor contexts and each group's incoming
messages in standard consecutive format so they can be read and written with
fully parallel I/O operations.  The context striping follows Section 5.1:
"we store the *i*-th block of ``V_j`` on disk ``(i + j*(mu/B)) mod D`` using
track ``floor((i + j*(mu/B)) / D)``".

Two region flavours are provided: :class:`ConsecutiveRegion` holds ``nslots``
*fixed-size* items (contexts; the paper's preallocated areas), while
:class:`StripedRegion` holds items of *per-slot sizes* (each superstep's
incoming-message areas, whose sizes are known exactly once the writing phase
of the previous superstep completes).  Both use the same linear striping and
therefore both satisfy Definition 2 and admit fully parallel access to any
run of consecutive slots.
"""

from __future__ import annotations

import pickle
from typing import Any, Iterable, Sequence

import numpy as np

from ..obs.profile import NULL_PROFILER
from .disk import Block, DiskError
from .diskarray import DiskArray

__all__ = [
    "RegionAllocator",
    "StripedRegion",
    "ConsecutiveRegion",
    "blocks_needed",
    "pack_records",
    "unpack_records",
    "bytes_to_blocks",
    "check_context_bound",
    "pickle_to_blocks",
    "blocks_to_object",
]


def blocks_needed(nrecords: int, B: int) -> int:
    """``ceil(nrecords / B)``: blocks required for ``nrecords`` records."""
    return -(-nrecords // B)


def pack_records(records: Sequence[Any], B: int, dest: int = -1) -> list[Block]:
    """Cut a record sequence into blocks of size ``B`` (blocked format).

    Every block inherits the destination address ``dest`` and carries a
    sequence number so the original order can be reassembled.
    """
    # ndarray payloads block into zero-copy views: each Block holds a slice
    # of the same buffer, so packing n records costs O(nblocks) regardless
    # of n.  Slicing a list already yields a fresh list; only other
    # sequences need one materializing copy up front (avoids the old
    # per-block double copy via list(records[i:i+B])).
    if not isinstance(records, (list, np.ndarray)):
        records = list(records)
    return [
        Block(records=records[i : i + B], dest=dest, seq=seq)
        for seq, i in enumerate(range(0, len(records), B))
    ]


def unpack_records(blocks: Iterable[Block | None]) -> list[Any] | np.ndarray:
    """Concatenate block payloads back into a record run (in ``seq`` order).

    All-ndarray payloads reassemble into one contiguous array (a single
    concatenate, or a zero-copy passthrough for a lone block); any other
    mix falls back to a Python list.
    """
    present = [b for b in blocks if b is not None and not b.dummy]
    present.sort(key=lambda b: b.seq)
    if present and all(isinstance(b.records, np.ndarray) for b in present):
        if len(present) == 1:
            return present[0].records
        return np.concatenate([b.records for b in present])
    records: list[Any] = []
    for b in present:
        records.extend(b.records)
    return records


def check_context_bound(data: bytes, max_records: int | None) -> int:
    """Records needed for a serialized context; raise if over ``max_records``.

    This is how the simulator enforces the declared context bound ``mu``.
    """
    nrec = -(-len(data) // Block.BYTES_PER_RECORD)
    if max_records is not None and nrec > max_records:
        raise DiskError(
            f"serialized context needs {nrec} records, exceeds declared bound "
            f"{max_records}; raise the algorithm's context_size()"
        )
    return nrec


def bytes_to_blocks(data: bytes | memoryview, B: int) -> list[Block]:
    """Split serialized bytes into blocks of ``B`` records (8 bytes each).

    Slicing preserves the input flavour: ``bytes`` input yields ``bytes``
    payloads (the pickled-context path, unchanged), while a ``memoryview``
    input yields zero-copy ``memoryview`` slices over the same buffer —
    the opt-in path for callers that hold a large canonical byte image.
    """
    chunk = B * Block.BYTES_PER_RECORD
    return [
        Block(records=data[i : i + chunk], seq=seq)
        for seq, i in enumerate(range(0, max(len(data), 1), chunk))
    ]


def pickle_to_blocks(
    obj: Any, B: int, max_records: int | None = None, *, profiler=NULL_PROFILER
) -> list[Block]:
    """Serialize ``obj`` and split the bytes into blocks of ``B`` records.

    One record carries :attr:`Block.BYTES_PER_RECORD` bytes of the pickle.
    If ``max_records`` is given and the serialized size exceeds it, a
    :class:`DiskError` is raised.  ``profiler`` bills the pickling to the
    ``serialize`` category (wall-clock attribution only; never counted).
    """
    profiler.push("serialize")
    try:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        profiler.pop()
    check_context_bound(data, max_records)
    return bytes_to_blocks(data, B)


def blocks_to_object(blocks: Iterable[Block | None], *, profiler=NULL_PROFILER) -> Any:
    """Inverse of :func:`pickle_to_blocks`."""
    present = sorted((b for b in blocks if b is not None), key=lambda b: b.seq)
    data = b"".join(bytes(b.records) for b in present)
    profiler.push("serialize")
    try:
        return pickle.loads(data)
    finally:
        profiler.pop()


class RegionAllocator:
    """Hands out disjoint track ranges (uniform across all disks) of a disk array.

    Released ranges are kept on a free list and reused, so alternating
    per-superstep scratch areas (message buckets, reorganization copies,
    incoming regions) occupy bounded disk space over a long run — matching
    the paper's ``O(v*mu/DB)`` blocks-per-disk space bound.
    """

    def __init__(self, array: DiskArray):
        self.array = array
        self.next_track = 0
        self._free: list[tuple[int, int]] = []  # (size, base), kept sorted

    def allocate(self, tracks_per_disk: int) -> int:
        """Reserve ``tracks_per_disk`` consecutive tracks on every disk.

        Returns the base track of the reserved range.
        """
        if tracks_per_disk < 0:
            raise DiskError(f"cannot allocate {tracks_per_disk} tracks")
        # Best-fit from the free list.
        for i, (size, base) in enumerate(self._free):
            if size >= tracks_per_disk:
                del self._free[i]
                if size > tracks_per_disk:
                    self._insert_free(size - tracks_per_disk, base + tracks_per_disk)
                return base
        base = self.next_track
        self.next_track += tracks_per_disk
        return base

    def release(self, base: int, tracks_per_disk: int) -> None:
        """Return a previously allocated range to the free list.

        Freed tracks are also cleared on every disk (metadata operation; no
        I/O is charged — deallocation touches no data).
        """
        if tracks_per_disk <= 0:
            return
        for disk in self.array.disks:
            for t in range(base, base + tracks_per_disk):
                disk.discard_track(t)
        if base + tracks_per_disk == self.next_track:
            self.next_track = base
            self._coalesce_tail()
        else:
            self._insert_free(tracks_per_disk, base)

    def _insert_free(self, size: int, base: int) -> None:
        import bisect

        bisect.insort(self._free, (size, base))

    def _coalesce_tail(self) -> None:
        # Fold free ranges that now touch the tail back into next_track.
        changed = True
        while changed:
            changed = False
            for i, (size, base) in enumerate(self._free):
                if base + size == self.next_track:
                    self.next_track = base
                    del self._free[i]
                    changed = True
                    break

    @property
    def high_water(self) -> int:
        """Tracks per disk ever reserved simultaneously (space bound check)."""
        return self.next_track


class StripedRegion:
    """A striped on-disk region holding ``len(slot_sizes)`` variable-size items.

    Item ``j``'s blocks occupy linear positions ``offset[j] .. offset[j+1])``
    of the region; linear position ``q`` lives on disk ``q mod D`` at track
    ``base + q div D``.  The layout satisfies Definition 2 (standard
    consecutive format) and any run of consecutive slots — in particular one
    simulation group's ``k`` incoming-message areas — maps to consecutive
    linear positions and is therefore transferable at full disk parallelism.
    """

    def __init__(
        self,
        array: DiskArray,
        allocator: RegionAllocator,
        slot_sizes: Sequence[int],
        name: str = "",
    ):
        self.array = array
        self.allocator = allocator
        self.name = name
        self.slot_sizes = list(slot_sizes)
        self.offsets = [0]
        for s in self.slot_sizes:
            if s < 0:
                raise DiskError(f"negative slot size in region {name!r}")
            self.offsets.append(self.offsets[-1] + s)
        self.total_blocks = self.offsets[-1]
        self.tracks_per_disk = (
            -(-self.total_blocks // array.D) if self.total_blocks else 0
        )
        self.base = allocator.allocate(self.tracks_per_disk)
        self._freed = False

    @classmethod
    def adopt(
        cls,
        array: DiskArray,
        allocator: RegionAllocator,
        slot_sizes: Sequence[int],
        base: int,
        name: str = "",
    ) -> "StripedRegion":
        """Rebuild a region over an *already allocated* track range.

        Used when re-attaching a storage-plane checkpoint: the blocks are
        still on disk at ``base``, and the allocator state is restored
        separately, so no fresh allocation must happen.
        """
        region = cls.__new__(cls)
        region.array = array
        region.allocator = allocator
        region.name = name
        region.slot_sizes = list(slot_sizes)
        region.offsets = [0]
        for s in region.slot_sizes:
            if s < 0:
                raise DiskError(f"negative slot size in region {name!r}")
            region.offsets.append(region.offsets[-1] + s)
        region.total_blocks = region.offsets[-1]
        region.tracks_per_disk = (
            -(-region.total_blocks // array.D) if region.total_blocks else 0
        )
        region.base = base
        region._freed = False
        return region

    @property
    def nslots(self) -> int:
        return len(self.slot_sizes)

    def _linear_addr(self, q: int) -> tuple[int, int]:
        return q % self.array.D, self.base + q // self.array.D

    def addr(self, slot: int, i: int) -> tuple[int, int]:
        """(disk, track) address of block ``i`` of slot ``slot``."""
        if self._freed:
            raise DiskError(f"region {self.name!r} used after free")
        if not (0 <= slot < self.nslots):
            raise DiskError(f"slot {slot} outside region {self.name!r}")
        if not (0 <= i < self.slot_sizes[slot]):
            raise DiskError(
                f"block index {i} outside slot {slot} of size "
                f"{self.slot_sizes[slot]} in region {self.name!r}"
            )
        return self._linear_addr(self.offsets[slot] + i)

    def slot_addrs(self, slot: int) -> list[tuple[int, int]]:
        return [self.addr(slot, i) for i in range(self.slot_sizes[slot])]

    # -- I/O ---------------------------------------------------------------------

    def read_slot(self, slot: int) -> list[Block | None]:
        """Read all blocks of one slot (fully parallel)."""
        return self.array.read_batched(self.slot_addrs(slot))

    def write_slot(self, slot: int, blocks: Sequence[Block | None]) -> None:
        """Write all blocks of one slot (fully parallel)."""
        if len(blocks) > self.slot_sizes[slot]:
            raise DiskError(
                f"slot {slot} of region {self.name!r}: {len(blocks)} blocks "
                f"exceed slot size {self.slot_sizes[slot]}"
            )
        padded = list(blocks) + [None] * (self.slot_sizes[slot] - len(blocks))
        self.array.write_batched(
            [(d, t, blk) for (d, t), blk in zip(self.slot_addrs(slot), padded)]
        )

    def read_slots(self, slots: Sequence[int]) -> list[list[Block | None]]:
        """Read several slots with jointly packed parallel operations."""
        addrs: list[tuple[int, int]] = []
        for s in slots:
            addrs.extend(self.slot_addrs(s))
        flat = self.array.read_batched(addrs)
        out, pos = [], 0
        for s in slots:
            out.append(flat[pos : pos + self.slot_sizes[s]])
            pos += self.slot_sizes[s]
        return out

    def write_slots(
        self, slots: Sequence[int], blocks_per: Sequence[Sequence[Block | None]]
    ) -> None:
        """Write several slots with jointly packed parallel operations."""
        ops: list[tuple[int, int, Block | None]] = []
        for s, blocks in zip(slots, blocks_per):
            if len(blocks) > self.slot_sizes[s]:
                raise DiskError(
                    f"slot {s} of region {self.name!r}: {len(blocks)} blocks "
                    f"exceed slot size {self.slot_sizes[s]}"
                )
            padded = list(blocks) + [None] * (self.slot_sizes[s] - len(blocks))
            ops.extend((d, t, blk) for (d, t), blk in zip(self.slot_addrs(s), padded))
        self.array.write_batched(ops)

    def free(self) -> None:
        """Release this region's track range back to the allocator."""
        if not self._freed:
            self.allocator.release(self.base, self.tracks_per_disk)
            self._freed = True

    # -- invariant check (used by property tests) ----------------------------------

    def check_standard_consecutive(self) -> None:
        """Assert Definition 2 for this region's address map."""
        per_disk: dict[int, list[int]] = {d: [] for d in range(self.array.D)}
        for q in range(self.total_blocks):
            d, t = self._linear_addr(q)
            per_disk[d].append(t)
        counts = [len(ts) for ts in per_disk.values()]
        if counts and max(counts) - min(counts) > 1:
            raise DiskError(
                f"region {self.name!r}: per-disk block counts {counts} differ by >1"
            )
        for d, ts in per_disk.items():
            for a, b in zip(ts, ts[1:]):
                if b != a + 1:
                    raise DiskError(
                        f"region {self.name!r}: non-consecutive tracks on disk {d}"
                    )
            if ts and ts[0] != self.base:
                raise DiskError(
                    f"region {self.name!r}: disk {d} does not start at base track"
                )


class ConsecutiveRegion(StripedRegion):
    """A striped region of ``nslots`` *fixed-size* items (the paper's
    preallocated context and message areas).

    Block ``i`` of item ``j`` lives at linear position ``j*blocks_per_item + i``
    — on disk ``(i + j*blocks_per_item) mod D``, matching the context striping
    formula of Section 5.1 verbatim.
    """

    def __init__(
        self,
        array: DiskArray,
        allocator: RegionAllocator,
        nslots: int,
        blocks_per_item: int,
        name: str = "",
    ):
        self.blocks_per_item = blocks_per_item
        super().__init__(array, allocator, [blocks_per_item] * nslots, name=name)

    # Backwards-compatible aliases used by the context store.
    def item_addrs(self, item: int) -> list[tuple[int, int]]:
        return self.slot_addrs(item)

    def read_item(self, item: int) -> list[Block | None]:
        return self.read_slot(item)

    def write_item(self, item: int, blocks: Sequence[Block | None]) -> None:
        self.write_slot(item, blocks)

    def read_items(self, items: Sequence[int]) -> list[list[Block | None]]:
        return self.read_slots(items)

    def write_items(
        self, items: Sequence[int], blocks_per: Sequence[Sequence[Block | None]]
    ) -> None:
        self.write_slots(items, blocks_per)
