"""I/O tracing: record and visualize the parallel operations of a run.

Attach a :class:`IOTrace` to a :class:`~repro.emio.diskarray.DiskArray` to
record every parallel operation (kind, participating disks, tracks).  The
trace renders as an ASCII utilization timeline — one column per operation,
one row per disk — which makes blocking and parallel-disk behaviour
*visible*: a fully parallel phase is a solid block of ``R``/``W`` columns,
a serialized phase (e.g. the Sibeyn–Kaufmann baseline, or a static write
schedule on adversarial traffic) shows as a single active row.

The trace hooks the array's *physical attempt* layer, so retried operations
(fault-injection runs, see :mod:`repro.emio.faults`) are recorded distinctly
— rendered lowercase (``r``/``w``) and counted separately — and operations
in degraded (``D-1``) mode show exactly the disks that physically
participated, keeping :meth:`IOTrace.utilization` honest.

    array = DiskArray(D=4, B=32)
    trace = IOTrace.attach(array)
    ... run something ...
    print(trace.render())
    print(f"mean utilization: {trace.utilization():.0%}")

Past ``limit`` operations the trace stops storing (``dropped`` counts what
was missed, and :meth:`IOTrace.render` flags the truncation).
:meth:`IOTrace.detach` restores the array's physical-attempt primitives and
clears ``hooked`` — re-enabling the fast data plane — and the trace is a
context manager that detaches on exit::

    with IOTrace.attach(array) as trace:
        ... run something ...
    print(trace.render())  # array untraced again here
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .diskarray import DiskArray

__all__ = ["IOTrace", "TraceOp"]


@dataclass
class TraceOp:
    """One recorded parallel I/O operation."""

    kind: str  # "R" or "W"
    disks: tuple[int, ...]
    tracks: tuple[int, ...]
    retry: bool = False  # True for retry rounds masking a transient fault


@dataclass
class IOTrace:
    """Recorder for a disk array's parallel operations."""

    D: int
    ops: list[TraceOp] = field(default_factory=list)
    limit: int = 100_000
    #: operations past ``limit`` that were executed but not stored
    dropped: int = 0

    def __post_init__(self) -> None:
        self._array: DiskArray | None = None
        self._orig_read = None
        self._orig_write = None

    @classmethod
    def attach(cls, array: DiskArray, limit: int = 100_000) -> "IOTrace":
        """Wrap the array's physical-attempt primitives to record every
        operation, including retry rounds."""
        trace = cls(D=array.D, limit=limit)
        # A traced array must run the full physical-attempt path (the fast
        # data plane bypasses it), so every op lands in the trace.
        array.hooked = True
        orig_read = array._attempt_read
        orig_write = array._attempt_write
        trace._array = array
        trace._orig_read = orig_read
        trace._orig_write = orig_write

        def record(op: TraceOp) -> None:
            if len(trace.ops) < trace.limit:
                trace.ops.append(op)
            else:
                trace.dropped += 1

        def traced_read(addrs, retry=False):
            addrs = list(addrs)
            if addrs:
                record(
                    TraceOp(
                        "R",
                        tuple(d for d, _t in addrs),
                        tuple(t for _d, t in addrs),
                        retry=retry,
                    )
                )
            return orig_read(addrs, retry=retry)

        def traced_write(ops, retry=False):
            ops = list(ops)
            if ops:
                record(
                    TraceOp(
                        "W",
                        tuple(d for d, _t, _b in ops),
                        tuple(t for _d, t, _b in ops),
                        retry=retry,
                    )
                )
            return orig_write(ops, retry=retry)

        array._attempt_read = traced_read  # type: ignore[method-assign]
        array._attempt_write = traced_write  # type: ignore[method-assign]
        return trace

    def detach(self) -> None:
        """Restore the array's physical-attempt primitives and un-hook it.

        Idempotent; safe on a never-attached trace.  After detaching, the
        array's fast data plane is available again (if it was enabled) and
        further operations are not recorded.
        """
        array = self._array
        if array is None:
            return
        array._attempt_read = self._orig_read  # type: ignore[method-assign]
        array._attempt_write = self._orig_write  # type: ignore[method-assign]
        array.hooked = False
        self._array = None
        self._orig_read = None
        self._orig_write = None

    def __enter__(self) -> "IOTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    # -- analysis -------------------------------------------------------------------

    def utilization(self) -> float:
        """Mean fraction of disks participating per operation (1.0 = fully
        parallel; 1/D = serialized single-disk access).  Retry rounds and
        degraded-mode rounds count like any other operation: they occupy
        the array while touching fewer disks."""
        if not self.ops:
            return 0.0
        return sum(len(op.disks) for op in self.ops) / (len(self.ops) * self.D)

    def counts(self) -> dict:
        reads = sum(1 for op in self.ops if op.kind == "R")
        return {
            "ops": len(self.ops),
            "reads": reads,
            "writes": len(self.ops) - reads,
            "retries": sum(1 for op in self.ops if op.retry),
            "dropped": self.dropped,
            "disk_accesses": sum(len(op.disks) for op in self.ops),
            "utilization": self.utilization(),
        }

    def render(self, start: int = 0, width: int = 72) -> str:
        """ASCII timeline: rows = disks, columns = operations.

        ``R``/``W`` marks a disk participating in a read/write operation
        (lowercase for retry rounds), ``.`` marks an idle disk.
        """
        window = self.ops[start : start + width]
        lines = []
        for d in range(self.D):
            row = "".join(
                (op.kind.lower() if op.retry else op.kind) if d in op.disks else "."
                for op in window
            )
            lines.append(f"disk {d:>2} |{row}|")
        truncated = f" ({self.dropped} ops dropped past limit)" if self.dropped else ""
        lines.append(
            f"          ops {start}..{start + len(window)} of {len(self.ops)}, "
            f"utilization {self.utilization():.0%}{truncated}"
        )
        return "\n".join(lines)
