"""I/O tracing: record and visualize the parallel operations of a run.

Attach a :class:`IOTrace` to a :class:`~repro.emio.diskarray.DiskArray` to
record every parallel operation (kind, participating disks, tracks).  The
trace renders as an ASCII utilization timeline — one column per operation,
one row per disk — which makes blocking and parallel-disk behaviour
*visible*: a fully parallel phase is a solid block of ``R``/``W`` columns,
a serialized phase (e.g. the Sibeyn–Kaufmann baseline, or a static write
schedule on adversarial traffic) shows as a single active row.

    array = DiskArray(D=4, B=32)
    trace = IOTrace.attach(array)
    ... run something ...
    print(trace.render())
    print(f"mean utilization: {trace.utilization():.0%}")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .diskarray import DiskArray

__all__ = ["IOTrace", "TraceOp"]


@dataclass
class TraceOp:
    """One recorded parallel I/O operation."""

    kind: str  # "R" or "W"
    disks: tuple[int, ...]
    tracks: tuple[int, ...]


@dataclass
class IOTrace:
    """Recorder for a disk array's parallel operations."""

    D: int
    ops: list[TraceOp] = field(default_factory=list)
    limit: int = 100_000

    @classmethod
    def attach(cls, array: DiskArray, limit: int = 100_000) -> "IOTrace":
        """Wrap the array's parallel primitives to record every operation."""
        trace = cls(D=array.D, limit=limit)
        orig_read = array.parallel_read
        orig_write = array.parallel_write

        def traced_read(ops):
            ops = list(ops)
            if ops and len(trace.ops) < trace.limit:
                trace.ops.append(
                    TraceOp(
                        "R",
                        tuple(d for d, _t in ops),
                        tuple(t for _d, t in ops),
                    )
                )
            return orig_read(ops)

        def traced_write(ops):
            ops = list(ops)
            if ops and len(trace.ops) < trace.limit:
                trace.ops.append(
                    TraceOp(
                        "W",
                        tuple(d for d, _t, _b in ops),
                        tuple(t for _d, t, _b in ops),
                    )
                )
            return orig_write(ops)

        array.parallel_read = traced_read  # type: ignore[method-assign]
        array.parallel_write = traced_write  # type: ignore[method-assign]
        return trace

    # -- analysis -------------------------------------------------------------------

    def utilization(self) -> float:
        """Mean fraction of disks participating per operation (1.0 = fully
        parallel; 1/D = serialized single-disk access)."""
        if not self.ops:
            return 0.0
        return sum(len(op.disks) for op in self.ops) / (len(self.ops) * self.D)

    def counts(self) -> dict:
        reads = sum(1 for op in self.ops if op.kind == "R")
        return {
            "ops": len(self.ops),
            "reads": reads,
            "writes": len(self.ops) - reads,
            "disk_accesses": sum(len(op.disks) for op in self.ops),
            "utilization": self.utilization(),
        }

    def render(self, start: int = 0, width: int = 72) -> str:
        """ASCII timeline: rows = disks, columns = operations.

        ``R``/``W`` marks a disk participating in a read/write operation,
        ``.`` marks an idle disk.
        """
        window = self.ops[start : start + width]
        lines = []
        for d in range(self.D):
            row = "".join(
                op.kind if d in op.disks else "." for op in window
            )
            lines.append(f"disk {d:>2} |{row}|")
        lines.append(
            f"          ops {start}..{start + len(window)} of {len(self.ops)}, "
            f"utilization {self.utilization():.0%}"
        )
        return "\n".join(lines)
