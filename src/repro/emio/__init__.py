"""Simulated external-memory subsystem: disks, parallel I/O, and disk layouts.

This package models the storage side of the EM-BSP machine of Section 3 of
the paper: track-addressable disks (:mod:`~repro.emio.disk`), parallel I/O
operations over ``D`` drives (:mod:`~repro.emio.diskarray`), the deterministic
*standard consecutive format* (:mod:`~repro.emio.layout`), and the randomized
*standard linked format* bucket store (:mod:`~repro.emio.linked`).
"""

from .disk import Block, Disk, DiskError
from .diskarray import DiskArray
from .faults import (
    ChecksumError,
    DataLossError,
    FaultInjector,
    FaultPlan,
    FaultyDisk,
    PermanentDiskError,
    RetryExhaustedError,
    RetryPolicy,
    TransientDiskError,
)
from .layout import (
    ConsecutiveRegion,
    RegionAllocator,
    StripedRegion,
    blocks_needed,
    blocks_to_object,
    pack_records,
    pickle_to_blocks,
    unpack_records,
)
from .linked import LinkedBuckets
from .trace import IOTrace, TraceOp

__all__ = [
    "Block",
    "Disk",
    "DiskError",
    "DiskArray",
    "FaultPlan",
    "FaultInjector",
    "FaultyDisk",
    "RetryPolicy",
    "TransientDiskError",
    "ChecksumError",
    "PermanentDiskError",
    "DataLossError",
    "RetryExhaustedError",
    "ConsecutiveRegion",
    "StripedRegion",
    "RegionAllocator",
    "LinkedBuckets",
    "IOTrace",
    "TraceOp",
    "blocks_needed",
    "pack_records",
    "unpack_records",
    "pickle_to_blocks",
    "blocks_to_object",
]
