"""Fixed-width record codecs: the dtype registry of the vectorized plane.

The reference ("object") data plane moves records as Python objects and
serializes whole contexts through :mod:`pickle`.  The vectorized plane
instead represents a run of records as a 1-D numpy array of a fixed-width
dtype, so a block payload is an array *slice* (zero-copy view), a context
field is ``array.tobytes()`` (one memcpy), and a storage image is the raw
buffer inside the existing CRC frame (see ``FileStorage``).

A :class:`RecordCodec` names one such representation and owns the exact
object<->array conversion.  The golden contract every codec must satisfy::

    codec.decode(codec.encode(records)) == records      (round trip)
    codec.encode(records).tobytes()                      (canonical bytes)

*Canonical bytes* is what makes the vectorized plane counted-cost identical
to the object plane: algorithms store codec bytes in their contexts in
**both** record modes, so pickled context sizes — the quantity the
simulation's I/O accounting derives block counts from — are equal by
construction, not by measurement.  Conversions happen only at the edges
(``encode`` on ingest, ``decode``/``tolist`` on output), which is the
"pickle at the edges" rule of DESIGN.md §10.

Dtypes are explicitly little-endian (``<``) so canonical bytes do not
depend on the host; ``decode`` always yields plain Python objects (never
numpy scalars) so outputs, digests, and ``repr``-based golden records are
byte-identical across planes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "RecordCodec",
    "register_codec",
    "get_codec",
    "codecs",
    "I64",
    "F64",
    "KV_I64",
]


def _tolist(arr: np.ndarray) -> list:
    """Plain-Python materialization (structured rows become tuples)."""
    return arr.tolist()


@dataclass(frozen=True)
class RecordCodec:
    """One fixed-width record representation.

    Attributes
    ----------
    name:
        Registry key (also stored in repro-case JSON and bench configs).
    dtype:
        The numpy dtype of one record.  Must be itemsize-stable and
        little-endian so encoded bytes are canonical across hosts.
    encode_fn / decode_fn:
        Optional overrides; the defaults are ``np.asarray(records, dtype)``
        and ``arr.tolist()``, which is exact for integer and structured
        dtypes (and IEEE-exact for float64).
    """

    name: str
    dtype: np.dtype
    encode_fn: Callable[[Sequence[Any]], np.ndarray] | None = field(
        default=None, compare=False
    )
    decode_fn: Callable[[np.ndarray], list] | None = field(
        default=None, compare=False
    )

    def encode(self, records: Sequence[Any]) -> np.ndarray:
        """Records -> contiguous 1-D array of :attr:`dtype`."""
        if self.encode_fn is not None:
            return self.encode_fn(records)
        if isinstance(records, np.ndarray):
            arr = records.astype(self.dtype, copy=False)
        else:
            # np.asarray() of an empty list guesses float64; force the dtype.
            arr = np.asarray(records, dtype=self.dtype)
        return np.ascontiguousarray(arr).reshape(-1)

    def decode(self, arr: np.ndarray) -> list:
        """Array -> list of plain Python records (the exact inverse)."""
        if self.decode_fn is not None:
            return self.decode_fn(arr)
        return _tolist(np.asarray(arr, dtype=self.dtype))

    # -- canonical byte form (what contexts and storage images hold) --------

    def to_bytes(self, records: Sequence[Any] | np.ndarray) -> bytes:
        """Canonical little-endian bytes of ``records``."""
        if isinstance(records, np.ndarray):
            return np.ascontiguousarray(
                records.astype(self.dtype, copy=False)
            ).tobytes()
        return self.encode(records).tobytes()

    def from_bytes(self, data: bytes | memoryview) -> np.ndarray:
        """Zero-copy (read-only) array view over canonical bytes."""
        return np.frombuffer(data, dtype=self.dtype)

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize


_REGISTRY: dict[str, RecordCodec] = {}


def register_codec(codec: RecordCodec) -> RecordCodec:
    """Register ``codec`` under its name (idempotent for equal codecs)."""
    existing = _REGISTRY.get(codec.name)
    if existing is not None and existing.dtype != codec.dtype:
        raise ValueError(
            f"codec {codec.name!r} already registered with dtype "
            f"{existing.dtype} (attempted {codec.dtype})"
        )
    _REGISTRY[codec.name] = codec
    return codec


def get_codec(name: str) -> RecordCodec:
    """Look up a registered codec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown record codec {name!r} (registered: {sorted(_REGISTRY)})"
        ) from None


def codecs() -> dict[str, RecordCodec]:
    """A snapshot of the registry (name -> codec)."""
    return dict(_REGISTRY)


#: int64 keys — the workhorse of the sort/permutation/list-ranking planes.
I64 = register_codec(RecordCodec("i64", np.dtype("<i8")))

#: float64 records (IEEE-exact round trip, including NaN payload bits
#: within a single canonical NaN — ``tolist`` preserves inf/-0.0 exactly).
F64 = register_codec(RecordCodec("f64", np.dtype("<f8")))

#: (key, value) int64 pairs as one structured record; decodes to tuples.
KV_I64 = register_codec(
    RecordCodec("kv_i64", np.dtype([("k", "<i8"), ("v", "<i8")]))
)
