"""Composing CGM algorithms into multi-stage EM pipelines.

Table 1's richer rows (LCA, biconnectivity, ear decomposition, the GIS
example) are *compositions* of CGM building blocks.  :class:`Pipeline`
packages the composition pattern: it exposes a ``run`` callable to hand to
any driver, executes every stage through the chosen EM engine on one
machine description, and accumulates the stages' reports into a combined
cost summary — the end-to-end counted cost of the generated EM program.

    pipe = Pipeline(machine, seed=7)
    lcas = batched_lca(edges, 0, queries, v, run=pipe.run)
    print(pipe.summary())   # stages, total io_ops, packets, model time
"""

from __future__ import annotations

from typing import Any

from .core.simulator import simulate
from .core.stats import SimulationReport
from .params import MachineParams

__all__ = ["Pipeline"]


class Pipeline:
    """Runs a sequence of CGM algorithms on one EM machine, keeping score.

    Parameters
    ----------
    machine:
        The target machine.  Per stage, ``M`` is raised to hold ``min_k``
        contexts of that stage's algorithm if the given ``M`` is smaller
        (CGM algorithms size their contexts as ``Theta(n/v)``).
    seed:
        Base seed; stage ``i`` uses ``seed + i`` so reruns are reproducible.
    engine:
        Passed to :func:`repro.core.simulator.simulate`.
    min_k:
        Minimum group size the memory must accommodate.
    """

    def __init__(
        self,
        machine: MachineParams,
        seed: int = 0,
        engine: str = "auto",
        min_k: int = 2,
    ):
        self.machine = machine
        self.seed = seed
        self.engine = engine
        self.min_k = min_k
        self.reports: list[tuple[str, SimulationReport]] = []

    def run(self, algorithm, v: int) -> list[Any]:
        """Execute one stage; drivers pass this as their ``run`` callable."""
        mu = algorithm.context_size()
        machine = self.machine
        if machine.M < self.min_k * mu:
            machine = machine.with_(M=self.min_k * mu)
        outputs, report = simulate(
            algorithm,
            machine,
            v=v,
            seed=self.seed + len(self.reports),
            engine=self.engine,
        )
        self.reports.append((type(algorithm).__name__, report))
        return outputs

    # -- accumulated costs -----------------------------------------------------------

    @property
    def stages(self) -> int:
        return len(self.reports)

    @property
    def io_ops(self) -> int:
        return sum(r.io_ops for _n, r in self.reports)

    @property
    def supersteps(self) -> int:
        return sum(r.num_supersteps for _n, r in self.reports)

    @property
    def comm_packets(self) -> int:
        return sum(r.ledger.total_comm_packets for _n, r in self.reports)

    def io_time(self) -> float:
        return sum(r.io_time for _n, r in self.reports)

    def total_time(self) -> float:
        return sum(r.ledger.total_time() for _n, r in self.reports)

    def summary(self) -> dict:
        return {
            "stages": self.stages,
            "supersteps": self.supersteps,
            "io_ops": self.io_ops,
            "comm_packets": self.comm_packets,
            "io_time": self.io_time(),
            "total_time": self.total_time(),
            "per_stage": [
                {"algorithm": name, "supersteps": r.num_supersteps, "io_ops": r.io_ops}
                for name, r in self.reports
            ],
        }

    def format_profile(self) -> str:
        """Human-readable per-stage cost table."""
        lines = [f"{'stage':<28}{'supersteps':>11}{'io_ops':>8}{'packets':>9}"]
        for name, r in self.reports:
            lines.append(
                f"{name:<28}{r.num_supersteps:>11}{r.io_ops:>8}"
                f"{r.ledger.total_comm_packets:>9}"
            )
        lines.append(
            f"{'TOTAL':<28}{self.supersteps:>11}{self.io_ops:>8}"
            f"{self.comm_packets:>9}"
        )
        return "\n".join(lines)
