"""repro — parallel external-memory algorithms by simulating coarse-grained
parallel algorithms.

A faithful, fully instrumented reproduction of

    F. Dehne, W. Dittrich, D. Hutchinson.
    *Efficient External Memory Algorithms by Simulating Coarse-Grained
    Parallel Algorithms.*  SPAA 1997 (Algorithmica 36:97-122, 2003).

Quick start::

    from repro import MachineParams, BSPParams, SimulationParams
    from repro import SequentialEMSimulation
    from repro.algorithms import CGMSampleSort

    data = [5, 3, 8, 1, ...]
    alg = CGMSampleSort(data, v=16)
    params = SimulationParams(
        machine=MachineParams(p=1, M=4096, D=4, B=32),
        bsp=BSPParams(v=16, mu=alg.context_size(), gamma=alg.comm_bound()),
    )
    outputs, report = SequentialEMSimulation(alg, params).run()
    print(report.summary())
"""

from .costs import CostLedger, SuperstepCost, packets_for
from .params import (
    BSPParams,
    MachineParams,
    ParameterError,
    SimulationParams,
    log_MB,
)

__version__ = "1.0.0"

__all__ = [
    "MachineParams",
    "BSPParams",
    "SimulationParams",
    "ParameterError",
    "log_MB",
    "CostLedger",
    "SuperstepCost",
    "packets_for",
    "__version__",
]


def __getattr__(name):
    # Lazy imports keep `import repro` light while exposing the full API.
    if name in ("SequentialEMSimulation", "SimulationReport"):
        from . import core

        return getattr(core, name)
    if name in ("BSPAlgorithm", "VPContext", "ReferenceRunner", "run_reference"):
        from . import bsp

        return getattr(bsp, name)
    if name == "ParallelEMSimulation":
        from .core.parsim import ParallelEMSimulation

        return ParallelEMSimulation
    if name == "Pipeline":
        from .pipeline import Pipeline

        return Pipeline
    if name == "simulate":
        from .core.simulator import simulate

        return simulate
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
