"""External-memory permutation baselines (Table 1, Group A, "Permutation").

Two classical strategies on the simulated disk substrate:

* :class:`NaiveEMPermute` — move each record independently: read its source
  block, read-modify-write its destination block.  ``Theta(n)`` I/O
  operations for a random permutation — the unblocked disaster the paper's
  introduction warns about ("if I/O is not fully blocked, the runtime can
  typically be up to a factor of 10^3 too high").  A one-block write-back
  cache gives sequential permutations their deserved discount.
* :class:`SortBasedEMPermute` — tag each record with its target index and
  run the external mergesort baseline.  ``Theta((n/DB) log_{M/DB}(n/M))``
  parallel I/O operations, the Aggarwal–Vitter bound.

The T1-A-PERM benchmark prints both against the simulated CGM permutation's
``O~(n/(DB))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..emio.disk import Block
from ..emio.diskarray import DiskArray
from ..params import MachineParams
from .emsort import EMMergeSort, EMSortStats

__all__ = ["NaiveEMPermute", "SortBasedEMPermute", "PermuteStats"]


@dataclass
class PermuteStats:
    n: int = 0
    io_ops: int = 0
    comp_ops: float = 0.0


class NaiveEMPermute:
    """Record-at-a-time external permutation (the unblocked baseline)."""

    def __init__(self, machine: MachineParams):
        if machine.p != 1:
            raise ValueError("NaiveEMPermute is the single-processor baseline")
        self.machine = machine

    def permute(
        self, values: Sequence[Any], perm: Sequence[int]
    ) -> tuple[list[Any], PermuteStats]:
        """Return ``y`` with ``y[perm[i]] = values[i]`` and counted I/O."""
        m = self.machine
        B, D = m.B, m.D
        n = len(values)
        stats = PermuteStats(n=n)
        array = DiskArray(D, B)
        nblocks = -(-n // B) if n else 0

        def addr(block_idx: int, base: int) -> tuple[int, int]:
            return block_idx % D, base + block_idx // D

        src_base, dst_base = 0, nblocks + 1
        # Load input (blocked, counted).
        array.write_batched(
            [
                (*addr(j, src_base), Block(records=list(values[j * B : (j + 1) * B])))
                for j in range(nblocks)
            ]
        )
        # Destination starts as empty blocks of the right shape.
        array.write_batched(
            [
                (*addr(j, dst_base), Block(records=[None] * min(B, n - j * B)))
                for j in range(nblocks)
            ]
        )

        # One-block caches: the classical naive algorithm still avoids
        # re-reading the block it just touched.
        src_cache: tuple[int, list[Any]] | None = None
        dst_cache: tuple[int, Block] | None = None
        for i in range(n):
            sb = i // B
            if src_cache is None or src_cache[0] != sb:
                (blk,) = array.parallel_read([addr(sb, src_base)])
                src_cache = (sb, list(blk.records))
            val = src_cache[1][i % B]
            target = perm[i]
            db = target // B
            if dst_cache is None or dst_cache[0] != db:
                if dst_cache is not None:
                    array.parallel_write(
                        [(*addr(dst_cache[0], dst_base), dst_cache[1])]
                    )
                (dblk,) = array.parallel_read([addr(db, dst_base)])
                dst_cache = (db, dblk)
            dst_cache[1].records[target % B] = val
            stats.comp_ops += 1
        if dst_cache is not None:
            array.parallel_write([(*addr(dst_cache[0], dst_base), dst_cache[1])])

        out: list[Any] = []
        for blk in array.read_batched([addr(j, dst_base) for j in range(nblocks)]):
            out.extend(blk.records)
        stats.io_ops = array.parallel_ops
        return out, stats


class SortBasedEMPermute:
    """Permutation as an external sort on the target index."""

    def __init__(self, machine: MachineParams):
        self.machine = machine
        self._sorter = EMMergeSort(machine, key=lambda pair: pair[0])

    def permute(
        self, values: Sequence[Any], perm: Sequence[int]
    ) -> tuple[list[Any], EMSortStats]:
        """Return ``y`` with ``y[perm[i]] = values[i]`` and the sort's stats."""
        tagged = [(perm[i], values[i]) for i in range(len(values))]
        ordered, stats = self._sorter.sort(tagged)
        return [val for _, val in ordered], stats
