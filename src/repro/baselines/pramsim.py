"""PRAM-simulation baseline (Chiang et al., SODA'95) on the EM substrate.

Section 2.1: "Chiang et al. explored simulation of PRAM algorithms as a
source of new EM techniques.  Their approach involves an EM sort with every
PRAM step."  Only PRAM algorithms with geometrically decreasing active size
simulate I/O-optimally; generic algorithms (pointer jumping, etc.) pay
``Theta(sort(n))`` I/O *per PRAM step* — the overhead the CGM simulation
avoids by exploiting coarse-grained supersteps.

:class:`EMPRAMSimulator` executes one PRAM step as the classical five-phase
technique, each phase blocked and striped on the simulated disks:

1. sort the read requests ``(addr, proc)`` by address,
2. scan shared memory in address order, answering requests,
3. sort the answers back by processor id,
4. run every processor's local compute (registers live on disk too and are
   streamed in and out with counted scans),
5. sort the write requests by address and scan-update memory.

Counted I/O per step is ``Theta(sort(n))`` parallel operations (three
external sorts plus the memory and register scans).  :class:`PRAMListRanking`
implements list ranking by pointer jumping on top (``2*ceil(log2 n)`` PRAM
steps, ``Theta(sort(n) log n)`` total I/O) — the Group C comparison row of
the T1-C-GRAPH benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..emio.disk import Block
from ..emio.diskarray import DiskArray
from ..params import MachineParams
from .emsort import EMMergeSort

__all__ = ["EMPRAMSimulator", "PRAMStats", "PRAMListRanking"]


@dataclass
class PRAMStats:
    """Counted costs of a PRAM simulation run."""

    steps: int = 0
    io_ops: int = 0
    sort_io_ops: int = 0
    scan_io_ops: int = 0
    comp_ops: float = 0.0

    def io_time(self, machine: MachineParams) -> float:
        return machine.G * self.io_ops


class EMPRAMSimulator:
    """Simulates an ``nprocs``-processor PRAM step by step on the EM substrate.

    Shared memory and the per-processor registers live on the simulated
    disks in blocked striped format; every step moves all requests through
    external sorts, exactly as the Chiang et al. reduction prescribes.  The
    record movement is performed (not just counted), so programs are
    functionally verified, and concurrent writes resolve deterministically
    by highest processor id (arbitrary-CRCW flavour).
    """

    def __init__(
        self, machine: MachineParams, memory: Sequence[Any], nprocs: int
    ):
        if machine.p != 1:
            raise ValueError("the PRAM baseline targets a single-processor EM machine")
        self.machine = machine
        self.nprocs = nprocs
        self.stats = PRAMStats()
        self.array = DiskArray(machine.D, machine.B)
        self._size = len(memory)
        self._mem_blocks = -(-self._size // machine.B) if self._size else 0
        self._reg_blocks = -(-nprocs // machine.B) if nprocs else 0
        self._reg_base = self._mem_blocks + 1
        self._write_stripe(0, list(memory), self._mem_blocks)
        self._write_stripe(self._reg_base, [None] * nprocs, self._reg_blocks)

    # -- blocked striped files ----------------------------------------------------

    def _addr(self, blk: int) -> tuple[int, int]:
        return blk % self.machine.D, blk // self.machine.D

    def _write_stripe(self, base: int, items: list[Any], nblocks: int) -> None:
        B = self.machine.B
        before = self.array.parallel_ops
        self.array.write_batched(
            [
                (*self._addr(base + j), Block(records=items[j * B : (j + 1) * B]))
                for j in range(nblocks)
            ]
        )
        delta = self.array.parallel_ops - before
        self.stats.scan_io_ops += delta
        self.stats.io_ops += delta

    def _read_stripe(self, base: int, nblocks: int, size: int) -> list[Any]:
        before = self.array.parallel_ops
        out: list[Any] = []
        for blk in self.array.read_batched(
            [self._addr(base + j) for j in range(nblocks)]
        ):
            out.extend(blk.records if blk is not None else [])
        delta = self.array.parallel_ops - before
        self.stats.scan_io_ops += delta
        self.stats.io_ops += delta
        return out[:size]

    def _external_sort(self, items: list[tuple]) -> list[tuple]:
        sorter = EMMergeSort(self.machine, key=lambda t: t[0])
        result, st = sorter.sort(items)
        self.stats.sort_io_ops += st.io_ops
        self.stats.io_ops += st.io_ops
        self.stats.comp_ops += st.comp_ops
        return result

    # -- one PRAM step ---------------------------------------------------------------

    def step(
        self,
        reads: Callable[[int, Any], Sequence[int]],
        compute: Callable[[int, Sequence[Any], Any], tuple[Sequence[tuple[int, Any]], Any]],
    ) -> None:
        """Execute one PRAM step.

        ``reads(i, reg)`` lists the addresses processor ``i`` reads given its
        register state; ``compute(i, values, reg)`` receives the values in
        the same order and returns ``(writes, new_reg)`` where writes are
        ``(addr, value)`` pairs.
        """
        self.stats.steps += 1
        regs = self._read_stripe(self._reg_base, self._reg_blocks, self.nprocs)
        # Phase 1: sort read requests by address.
        requests = [
            (addr, i, slot)
            for i in range(self.nprocs)
            for slot, addr in enumerate(reads(i, regs[i]))
        ]
        requests = self._external_sort(requests)
        # Phase 2: scan memory, answer requests.
        mem = self._read_stripe(0, self._mem_blocks, self._size)
        answers = [(i, slot, mem[addr]) for addr, i, slot in requests]
        # Phase 3: sort answers back by processor.
        answers = self._external_sort(answers)
        # Phase 4: local compute.
        writes: list[tuple[int, int, Any]] = []
        pos = 0
        for i in range(self.nprocs):
            vals = []
            while pos < len(answers) and answers[pos][0] == i:
                vals.append(answers[pos][2])
                pos += 1
            w, regs[i] = compute(i, vals, regs[i])
            writes.extend((addr, i, val) for addr, val in w)
            self.stats.comp_ops += 1 + len(vals)
        # Phase 5: sort writes by address, scan-update memory.
        for addr, _i, val in self._external_sort(writes):
            mem[addr] = val
        self._write_stripe(0, mem, self._mem_blocks)
        self._write_stripe(self._reg_base, regs, self._reg_blocks)

    def memory(self) -> list[Any]:
        """Current shared-memory contents (one counted scan)."""
        return self._read_stripe(0, self._mem_blocks, self._size)


class PRAMListRanking:
    """List ranking by pointer jumping on the PRAM baseline.

    ``2 * ceil(log2 n)`` PRAM steps (one to load ``(succ[i], rank[i])`` into
    registers, one to read through the indirection and jump), each a full
    sort-and-scan pass — the ``O(sort(n) log n)`` I/O behaviour that
    Table 1's Group C CGM algorithms improve upon.
    """

    def __init__(self, machine: MachineParams):
        self.machine = machine

    def rank(self, succ: Sequence[int]) -> tuple[list[int], PRAMStats]:
        """Distance of every node to the list tail (``succ[tail] == tail``)."""
        n = len(succ)
        if n == 0:
            return [], PRAMStats()
        # Memory layout: [succ(0..n-1), rank(0..n-1)].
        mem = list(succ) + [0 if succ[i] == i else 1 for i in range(n)]
        sim = EMPRAMSimulator(self.machine, mem, nprocs=n)

        def jump(i: int, vals: Sequence[Any], reg: Any):
            s, r = reg
            if s == i:  # already at the tail
                return [], reg
            succ_s, rank_s = vals
            return [(i, succ_s), (n + i, r + rank_s)], reg

        rounds = max(1, (n - 1).bit_length())
        for _ in range(rounds):
            # Step A: load own (succ, rank) into the register.
            sim.step(
                reads=lambda i, reg: (i, n + i),
                compute=lambda i, vals, reg: ([], (vals[0], vals[1])),
            )
            # Step B: read successor's (succ, rank); jump.
            sim.step(reads=lambda i, reg: (reg[0], n + reg[0]), compute=jump)
        final = sim.memory()
        return final[n : 2 * n], sim.stats
