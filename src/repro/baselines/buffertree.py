"""Buffer tree and bulk priority queue (Arge) on the counted disk array.

The buffer tree is the classical EM data structure behind time-forward
processing and the STXXL-style bulk priority queues (PAPERS.md): a B-tree
of degree ``Theta(M/B)`` whose nodes absorb operations into per-node disk
buffers that are emptied in bulk, so every operation costs an amortized
``O((1/B) log_{M/B}(n/B))`` I/Os instead of a per-op root-to-leaf walk.

This implementation keeps the skeleton (child pointers, splitters, block
addresses) in host memory — standard for buffer trees, where the skeleton
is a ``1/B`` fraction of the data — while all records and buffered
operations live in blocks on a :class:`~repro.emio.diskarray.DiskArray`,
charged through the batched paths like every other baseline (DESIGN §13).
Records are ``(key, seq, payload)`` triples: the insertion sequence number
makes every element distinct, so splitters are unambiguous and the
resulting sort (:class:`BufferTreeSort`) is stable.

:class:`BufferTreePQ` layers the bulk queue on top: an in-memory cache of
the globally smallest elements (a push at or below the cache maximum
enters the cache, everything else goes to the tree; refills structurally
consume leftmost leaves after flushing only the root-to-leftmost-leaf
buffer path, so routed deletions are never needed and none are
implemented).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..emio.disk import Block
from ..emio.storage import StorageSpec
from ..params import MachineParams
from .striping import baseline_array, open_array

__all__ = ["BufferTree", "BufferTreePQ", "BufferTreeSort", "BufferTreeStats"]


@dataclass
class BufferTreeStats:
    """Counted costs of one buffer-tree session."""

    n: int = 0
    inserts: int = 0
    empties: int = 0  # bulk buffer-emptying events
    leaf_splits: int = 0
    node_splits: int = 0
    io_ops: int = 0  # parallel I/O operations
    comp_ops: float = 0.0

    def io_time(self, machine: MachineParams) -> float:
        return machine.G * self.io_ops


class _Alloc:
    """Round-robin block allocator over the ``D`` drives, with free lists."""

    def __init__(self, D: int):
        self.D = D
        self._next = [0] * D
        self._free: list[list[int]] = [[] for _ in range(D)]
        self._rr = 0

    def get(self) -> tuple[int, int]:
        d = self._rr
        self._rr = (self._rr + 1) % self.D
        if self._free[d]:
            return d, self._free[d].pop()
        t = self._next[d]
        self._next[d] += 1
        return d, t

    def put(self, addr: tuple[int, int]) -> None:
        self._free[addr[0]].append(addr[1])


class _Node:
    __slots__ = ("leaf", "children", "splitters", "data_addrs", "buf_addrs", "count")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.children: list["_Node"] = []
        self.splitters: list[tuple[Any, int]] = []  # (key, seq) lower bounds
        self.data_addrs: list[tuple[int, int]] = []  # leaf record blocks
        self.buf_addrs: list[tuple[int, int]] = []  # buffered op blocks
        self.count = 0  # records in this leaf


class BufferTree:
    """An external-memory buffer tree of insert operations.

    Supports bulk insertion, full flushing, sorted traversal
    (:meth:`items`) and structural consumption of the leftmost leaf
    (:meth:`pop_leftmost_leaf` — the priority-queue refill primitive).
    """

    def __init__(
        self,
        machine: MachineParams,
        key: Callable | None = None,
        *,
        array=None,
        storage: "str | StorageSpec | None" = None,
        fast_io: bool = False,
    ):
        if machine.p != 1:
            raise ValueError("BufferTree is the single-processor baseline")
        self.machine = machine
        self.keyf = key if key is not None else (lambda x: x)
        self._owns_array = array is None
        self.array = (
            baseline_array(machine, storage=storage, fast_io=fast_io)
            if array is None
            else array
        )
        m = machine
        #: tree degree Theta(M/B)
        self.degree = max(2, m.M // (4 * m.B))
        #: records per leaf before splitting
        self.leaf_max = max(m.B, m.M // 4)
        #: buffered blocks per node before a bulk emptying
        self.buf_max = max(2, m.M // (2 * m.B))
        self.stats = BufferTreeStats()
        self._alloc = _Alloc(m.D)
        self._seq = 0
        self._staging: list[tuple[Any, int, Any]] = []  # root ops not yet on disk
        self.root = _Node(leaf=True)
        self._len = 0

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        if self._owns_array:
            self.array.close_storage()
            self.array.storage_spec.cleanup()

    def __enter__(self) -> "BufferTree":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return self._len

    @property
    def io_ops(self) -> int:
        return self.array.parallel_ops

    # -- block plumbing -------------------------------------------------------------

    def _write_blocks(self, chunks: Sequence[Sequence[Any]]) -> list[tuple[int, int]]:
        addrs = [self._alloc.get() for _ in chunks]
        self.array.write_batched(
            [(*a, Block(records=list(c))) for a, c in zip(addrs, chunks)]
        )
        return addrs

    def _read_blocks(
        self, addrs: Sequence[tuple[int, int]], free: bool = True
    ) -> list[Any]:
        if not addrs:
            return []
        out: list[Any] = []
        for blk in self.array.read_batched(list(addrs)):
            if blk is not None:
                out.extend(blk.records)
        if free:
            for a in addrs:
                self._alloc.put(a)
        return out

    # -- insertion ------------------------------------------------------------------

    def insert(self, record: Any) -> None:
        """Insert one record (amortized ``O((1/B) log) `` counted I/Os:
        ops stage in memory until a full stripe of blocks accumulates)."""
        self._insert_ops([(self.keyf(record), self._next_seq(), record)])

    def bulk_insert(self, records: Iterable[Any]) -> None:
        """Insert many records, flushing the staging tail to disk at the end."""
        self._insert_ops(
            (self.keyf(r), self._next_seq(), r) for r in records
        )
        self._flush_staging(partial=True)
        self._settle_root()

    def _next_seq(self) -> int:
        s = self._seq
        self._seq += 1
        return s

    def _insert_ops(self, triples: Iterable[tuple[Any, int, Any]]) -> None:
        D, B = self.machine.D, self.machine.B
        for t in triples:
            self._staging.append(t)
            self._len += 1
            self.stats.inserts += 1
            if len(self._staging) >= D * B:
                self._flush_staging()
                self._settle_root()

    def _flush_staging(self, partial: bool = False) -> None:
        B, D = self.machine.B, self.machine.D
        while len(self._staging) >= D * B or (partial and self._staging):
            take = self._staging[: D * B]
            self._staging = self._staging[D * B :]
            chunks = [take[i : i + B] for i in range(0, len(take), B)]
            self.root.buf_addrs.extend(self._write_blocks(chunks))

    def _settle_root(self) -> None:
        while len(self.root.buf_addrs) >= self.buf_max:
            reps, seps = self._empty(self.root, force=False)
            self.root = self._make_root(reps, seps)

    # -- bulk emptying --------------------------------------------------------------

    def _take_ops(self, node: _Node) -> list[tuple[Any, int, Any]]:
        ops = self._read_blocks(node.buf_addrs)
        node.buf_addrs = []
        if node is self.root and self._staging:
            ops.extend(self._staging)
            self._staging = []
        ops.sort(key=lambda t: (t[0], t[1]))
        self.stats.comp_ops += len(ops) * max(1, len(ops).bit_length())
        return ops

    def _distribute(self, node: _Node, ops: list[tuple[Any, int, Any]]) -> None:
        """Route sorted ``ops`` into the children's disk buffers (one
        batched write; at most one partial block per child)."""
        B = self.machine.B
        per_child: list[list] = [[] for _ in node.children]
        for op in ops:
            ci = bisect.bisect_right(node.splitters, (op[0], op[1]))
            per_child[ci].append(op)
        writes = []
        for child, child_ops in zip(node.children, per_child):
            if not child_ops:
                continue
            chunks = [child_ops[i : i + B] for i in range(0, len(child_ops), B)]
            addrs = [self._alloc.get() for _ in chunks]
            child.buf_addrs.extend(addrs)
            writes.extend(
                (*a, Block(records=list(c))) for a, c in zip(addrs, chunks)
            )
        if writes:
            self.array.write_batched(writes)

    def _empty(
        self, node: _Node, force: bool
    ) -> tuple[list[_Node], list[tuple[Any, int]]]:
        """Empty ``node``'s buffer downward; return its replacement nodes
        and the splitters separating them (the node may split)."""
        if node.leaf:
            ops = self._take_ops(node)
            if not ops:
                return [node], []
            self.stats.empties += 1
            return self._apply_leaf(node, ops)

        ops = self._take_ops(node)
        if ops:
            self.stats.empties += 1
            self._distribute(node, ops)

        new_children: list[_Node] = []
        new_splitters: list[tuple[Any, int]] = []
        for i, child in enumerate(node.children):
            if i > 0:
                new_splitters.append(node.splitters[i - 1])
            if force or len(child.buf_addrs) >= self.buf_max:
                reps, seps = self._empty(child, force)
                new_children.extend(reps)
                new_splitters.extend(seps)
            else:
                new_children.append(child)
        node.children = new_children
        node.splitters = new_splitters
        return self._split_internal(node)

    def _apply_leaf(
        self, node: _Node, ops: list[tuple[Any, int, Any]]
    ) -> tuple[list[_Node], list[tuple[Any, int]]]:
        items = self._read_blocks(node.data_addrs)
        node.data_addrs = []
        merged: list[tuple[Any, int, Any]] = []
        i = j = 0
        while i < len(items) and j < len(ops):
            if (items[i][0], items[i][1]) <= (ops[j][0], ops[j][1]):
                merged.append(items[i])
                i += 1
            else:
                merged.append(ops[j])
                j += 1
        merged.extend(items[i:])
        merged.extend(ops[j:])
        self.stats.comp_ops += len(merged)

        if len(merged) <= self.leaf_max:
            pieces = [merged]
        else:
            npieces = -(-len(merged) // self.leaf_max)
            size = -(-len(merged) // npieces)
            pieces = [merged[k : k + size] for k in range(0, len(merged), size)]
            self.stats.leaf_splits += len(pieces) - 1

        B = self.machine.B
        nodes: list[_Node] = []
        seps: list[tuple[Any, int]] = []
        writes = []
        for pi, piece in enumerate(pieces):
            leaf = node if pi == 0 else _Node(leaf=True)
            leaf.count = len(piece)
            chunks = [piece[k : k + B] for k in range(0, len(piece), B)]
            leaf.data_addrs = [self._alloc.get() for _ in chunks]
            writes.extend(
                (*a, Block(records=list(c)))
                for a, c in zip(leaf.data_addrs, chunks)
            )
            nodes.append(leaf)
            if pi > 0:
                seps.append((piece[0][0], piece[0][1]))
        if writes:
            self.array.write_batched(writes)
        return nodes, seps

    def _split_internal(
        self, node: _Node
    ) -> tuple[list[_Node], list[tuple[Any, int]]]:
        if len(node.children) <= 2 * self.degree:
            return [node], []
        kids, splits = node.children, node.splitters
        npieces = -(-len(kids) // self.degree)
        size = -(-len(kids) // npieces)
        nodes: list[_Node] = []
        seps: list[tuple[Any, int]] = []
        for pi, lo in enumerate(range(0, len(kids), size)):
            hi = min(len(kids), lo + size)
            piece = node if pi == 0 else _Node(leaf=False)
            piece.children = kids[lo:hi]
            piece.splitters = splits[lo : hi - 1]
            nodes.append(piece)
            if pi > 0:
                seps.append(splits[lo - 1])
        self.stats.node_splits += len(nodes) - 1
        return nodes, seps

    def _make_root(
        self, reps: list[_Node], seps: list[tuple[Any, int]]
    ) -> _Node:
        if len(reps) == 1:
            return reps[0]
        root = _Node(leaf=False)
        root.children = reps
        root.splitters = seps
        return root

    # -- queries --------------------------------------------------------------------

    def flush(self) -> None:
        """Force-empty every buffer so all records sit in the leaves."""
        self._flush_staging(partial=True)
        reps, seps = self._empty(self.root, force=True)
        self.root = self._make_root(reps, seps)

    def _leaves(self, node: "_Node | None" = None) -> list[_Node]:
        node = node if node is not None else self.root
        if node.leaf:
            return [node]
        out: list[_Node] = []
        for c in node.children:
            out.extend(self._leaves(c))
        return out

    def items(self) -> list[Any]:
        """All payloads in key order (stable by insertion). Flushes first."""
        self.flush()
        addrs = [a for leaf in self._leaves() for a in leaf.data_addrs]
        out: list[Any] = []
        D = self.machine.D
        for k in range(0, len(addrs), 4 * D):
            for blk in self.array.read_batched(addrs[k : k + 4 * D]):
                if blk is not None:
                    out.extend(r[2] for r in blk.records)
        return out

    def check_invariants(self) -> None:
        """Structural invariants for the property tests: splitter ordering,
        splitter/child bounds, leaf block accounting, and record census."""

        def walk(node: _Node, lo, hi) -> int:
            if node.leaf:
                assert not node.children and not node.splitters
                assert len(node.data_addrs) == -(-node.count // self.machine.B)
                return node.count
            assert len(node.children) >= 1
            assert len(node.splitters) == len(node.children) - 1
            assert all(
                a < b for a, b in zip(node.splitters, node.splitters[1:])
            )
            if lo is not None:
                assert all(s > lo for s in node.splitters)
            if hi is not None:
                assert all(s < hi for s in node.splitters)
            bounds = [lo] + list(node.splitters) + [hi]
            return sum(
                walk(child, clo, chi)
                for child, clo, chi in zip(node.children, bounds, bounds[1:])
            )

        leafed = walk(self.root, None, None)
        buffered = 0

        def count_buf(node: _Node) -> None:
            nonlocal buffered
            buffered += len(node.buf_addrs)
            for c in node.children:
                count_buf(c)

        count_buf(self.root)
        # Every record is either staged, buffered (<= B per block) or in a leaf.
        assert leafed + len(self._staging) <= self._len
        assert self._len <= leafed + len(self._staging) + buffered * self.machine.B

    def pop_leftmost_leaf(self) -> list[tuple[Any, int, Any]]:
        """Remove and return the leftmost leaf's ``(key, seq, payload)``
        triples — the globally smallest records.

        Only the root-to-leftmost-leaf buffer path is flushed: ops routed
        right of the first splitter stay buffered, and all of them are
        ``>=`` every returned record.
        """
        self._flush_staging(partial=True)
        node = self.root
        parents: list[_Node] = []
        while not node.leaf:
            if node.buf_addrs:
                ops = self._take_ops(node)
                if ops:
                    self.stats.empties += 1
                    self._distribute(node, ops)
            parents.append(node)
            node = node.children[0]

        reps, seps = self._empty(node, force=True)  # applies buffered ops
        taken = self._read_blocks(reps[0].data_addrs)
        reps[0].data_addrs = []
        reps[0].count = 0
        survivors = reps[1:]
        self._len -= len(taken)

        if not parents:
            self.root = (
                self._make_root(survivors, seps[1:])
                if survivors
                else _Node(leaf=True)
            )
            return taken

        parent = parents[-1]
        rest = parent.children[1:]
        if survivors:
            # seps[0] separated the consumed piece from survivors[0]; the
            # old splitters still separate child 0's slot from the rest.
            parent.children = survivors + rest
            parent.splitters = list(seps[1:]) + parent.splitters
        else:
            parent.children = rest
            parent.splitters = parent.splitters[1:]
        self._collapse(parents)
        return taken

    def _collapse(self, parents: list[_Node]) -> None:
        for i in range(len(parents) - 1, -1, -1):
            node = parents[i]
            if not node.children:
                if i == 0:
                    self.root = _Node(leaf=True)
                else:
                    up = parents[i - 1]
                    j = up.children.index(node)
                    del up.children[j]
                    if up.splitters:
                        del up.splitters[max(0, j - 1)]
            elif len(node.children) == 1 and not node.buf_addrs:
                only = node.children[0]
                if i == 0:
                    self.root = only
                else:
                    up = parents[i - 1]
                    up.children[up.children.index(node)] = only


class BufferTreePQ:
    """Bulk external-memory priority queue on a buffer tree.

    An in-memory cache holds the globally smallest elements: pushes at or
    below the cache maximum enter the cache (evicting its maximum to the
    tree when full), larger pushes go straight to the tree, and refills
    consume whole leftmost leaves.  The cache-prefix invariant — every
    tree element is ``>=`` every cache element — makes ``pop_min`` exact.
    """

    def __init__(
        self,
        machine: MachineParams,
        key: Callable | None = None,
        *,
        array=None,
        storage: "str | StorageSpec | None" = None,
        fast_io: bool = False,
    ):
        self.tree = BufferTree(
            machine, key=key, array=array, storage=storage, fast_io=fast_io
        )
        self.keyf = self.tree.keyf
        self.cache_max = max(4 * machine.B, machine.M // 4)
        self._cache: list[tuple[Any, int, Any]] = []  # sorted ascending

    def close(self) -> None:
        self.tree.close()

    def __enter__(self) -> "BufferTreePQ":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._cache) + len(self.tree)

    @property
    def io_ops(self) -> int:
        return self.tree.io_ops

    def push(self, record: Any) -> None:
        t = self.tree
        entry = (self.keyf(record), t._next_seq(), record)
        if self._cache and entry[:2] <= self._cache[-1][:2]:
            bisect.insort(self._cache, entry)
            if len(self._cache) > self.cache_max:
                t._insert_ops([self._cache.pop()])
        else:
            t._insert_ops([entry])

    def bulk_push(self, records: Iterable[Any]) -> None:
        for r in records:
            self.push(r)

    def peek_min(self) -> Any:
        if not self._cache:
            self._refill()
        if not self._cache:
            raise IndexError("peek into empty priority queue")
        return self._cache[0][2]

    def pop_min(self) -> Any:
        if not self._cache:
            self._refill()
        if not self._cache:
            raise IndexError("pop from empty priority queue")
        return self._cache.pop(0)[2]

    def bulk_pop(self, count: int) -> list[Any]:
        out: list[Any] = []
        while count > 0 and len(self):
            out.append(self.pop_min())
            count -= 1
        return out

    def _refill(self) -> None:
        collected: list[tuple[Any, int, Any]] = []
        while len(self.tree) and len(collected) < max(1, self.cache_max // 2):
            collected.extend(self.tree.pop_leftmost_leaf())
        collected.sort(key=lambda e: (e[0], e[1]))
        self._cache = collected


class BufferTreeSort:
    """Sorting through a buffer tree: bulk-insert everything, then one
    full flush and an in-order leaf traversal.  The counted cost is the
    amortized ``O((n/B) log_{M/B}(n/B))`` buffer-tree bound (divided by
    ``D`` for the batched stripes)."""

    def __init__(
        self,
        machine: MachineParams,
        key: Callable | None = None,
        *,
        storage: "str | StorageSpec | None" = None,
        fast_io: bool = False,
    ):
        if machine.p != 1:
            raise ValueError("BufferTreeSort is the single-processor baseline")
        self.machine = machine
        self.key = key
        self.storage = storage
        self.fast_io = fast_io

    def sort(self, data: Sequence[Any]) -> tuple[list[Any], BufferTreeStats]:
        with open_array(self.machine, self.storage, self.fast_io) as array:
            tree = BufferTree(self.machine, key=self.key, array=array)
            tree.bulk_insert(data)
            result = tree.items()
            stats = tree.stats
            stats.n = len(data)
            stats.io_ops = array.parallel_ops
            return result, stats

    # -- analytic bound -------------------------------------------------------------

    def predicted_io_ops(self, n: int) -> float:
        """Amortized buffer-tree sort bound on parallel I/O operations.

        Every record is written and read once per tree level as buffered
        ops descend (``D``-batched stripes), leaves are rewritten on
        emptying, and each emptying event pays up to ``degree`` partial
        blocks plus per-call rounding slack.
        """
        m = self.machine
        if n == 0:
            return 4.0
        degree = max(2, m.M // (4 * m.B))
        leaf_max = max(m.B, m.M // 4)
        nblk = math.ceil(n / m.B)
        stripes = math.ceil(nblk / m.D)
        nleaves = max(1, math.ceil(n / leaf_max))
        height = 1 + (
            math.ceil(math.log(nleaves, degree)) if nleaves > 1 else 0
        )
        empties = math.ceil(n / max(m.B, m.M // 2)) + 1
        per_level = 4 * (stripes + 1) + empties * (degree + 4)
        return 4 * (stripes + 1) + (height + 1) * per_level
