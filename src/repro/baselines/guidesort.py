"""Guidesort: guide-sequence PDM merge sort with ``D``-disk striping.

Hagerup's Guidesort (arXiv 1807.11328; PAPERS.md) is the simpler optimal
deterministic parallel-disk sorter.  The idea reproduced here: alongside
every sorted run keep a *guide sequence* — the maximum key of each of its
blocks.  Merging the guide sequences of a merge group (tiny: one key per
``B`` records) yields, ahead of time, the exact order in which the record
merge will exhaust its input blocks — which is exactly the order in which
blocks must be fetched.  With that schedule the merge prefetches ``D``
blocks per parallel read, and staggered run striping (run ``r`` starts on
disk ``r mod D``) keeps lockstep batches on distinct drives, so merge-pass
reads cost ``~n/(DB)`` instead of the demand-driven ``n/B`` of
:class:`~repro.baselines.emmergesort.KWayMergeSort` — while the fan-in
stays ``Theta(M/B)``, a factor ``D`` above
:class:`~repro.baselines.emsort.EMMergeSort`'s superblock striping.

Both rivals' weaknesses fixed at once: counted I/O is
``Theta((n/DB) * log_{M/B}(n/B))`` parallel operations — the optimal
deterministic PDM sort bound.

The schedule/consumption agreement is not trusted: the merge asserts each
refill is the prefetch pool's head and counts any disagreement in
``stats.guide_mismatches`` (zero on every test and bake-off configuration;
ties are broken ``(key, run)`` identically in both heaps).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from ..emio.storage import StorageSpec
from ..params import MachineParams
from .striping import StripedFile, open_array

__all__ = ["Guidesort", "GuidesortStats"]


@dataclass
class GuidesortStats:
    """Counted costs of one Guidesort run."""

    n: int = 0
    runs_formed: int = 0
    merge_passes: int = 0
    fan_in: int = 0
    io_ops: int = 0  # parallel I/O operations
    comp_ops: float = 0.0
    guide_mismatches: int = 0  # schedule/consumption disagreements (expect 0)

    def io_time(self, machine: MachineParams) -> float:
        return machine.G * self.io_ops


class _Run:
    """One sorted run: staggered data blocks plus its guide sequence."""

    def __init__(self, file: StripedFile, guide: StripedFile, nrecords: int):
        self.file = file
        self.guide = guide
        self.nrecords = nrecords

    @property
    def nblocks(self) -> int:
        return self.file.nblocks


class Guidesort:
    """Single-processor guide-sequence merge sort over ``D`` striped disks.

    Parameters
    ----------
    machine:
        Machine description; ``M``, ``D``, ``B`` and ``G`` are used.
    key:
        Optional sort key (guides store key values, so keys must be
        totally ordered; ties across runs break by run index in both the
        guide and the record merge).
    storage:
        Optional storage plane (kind string or :class:`StorageSpec`).
    fast_io:
        Use the array's vectorized batched paths (identical counted cost).
    """

    def __init__(
        self,
        machine: MachineParams,
        key: Callable | None = None,
        *,
        storage: "str | StorageSpec | None" = None,
        fast_io: bool = False,
    ):
        if machine.p != 1:
            raise ValueError("Guidesort is the single-processor baseline")
        self.machine = machine
        self.key = key
        self.storage = storage
        self.fast_io = fast_io

    @property
    def fan_in(self) -> int:
        # Per input run: one data block + one guide block; plus the D-block
        # prefetch pool, D-block output buffer and D-block guide-out buffer.
        m = self.machine
        return max(2, (m.M - 3 * m.D * m.B) // (2 * m.B) - 1)

    # -- layout ---------------------------------------------------------------------

    def _alloc(self, nblocks: int) -> int:
        base = self._next_track
        self._next_track += -(-max(1, nblocks) // self.machine.D) + 1
        return base

    def _new_run(self, array, nrecords: int, idx: int) -> _Run:
        B, D = self.machine.B, self.machine.D
        nblk = -(-nrecords // B)
        gblk = -(-nblk // B)
        file = StripedFile(array, self._alloc(nblk), nblk, shift=idx % D)
        guide = StripedFile(array, self._alloc(gblk), gblk, shift=idx % D)
        return _Run(file, guide, nrecords)

    # -- public API -----------------------------------------------------------------

    def sort(self, data: Sequence[Any]) -> tuple[list[Any], GuidesortStats]:
        """Sort ``data`` through the simulated disks; return (result, stats)."""
        with open_array(self.machine, self.storage, self.fast_io) as array:
            return self._sort(array, data)

    def _sort(self, array, data: Sequence[Any]) -> tuple[list[Any], GuidesortStats]:
        m = self.machine
        B, D, M = m.B, m.D, m.M
        n = len(data)
        stats = GuidesortStats(n=n, fan_in=self.fan_in)
        keyf = self.key if self.key is not None else (lambda x: x)
        self._next_track = 0
        nblocks = -(-n // B) if n else 0

        # ---- load input (counted: part of the sort's job) ----
        inp = StripedFile(array, self._alloc(nblocks), nblocks)
        inp.write_blocks(0, [data[i : i + B] for i in range(0, n, B)] if n else [])
        if n == 0:
            stats.io_ops = array.parallel_ops
            return [], stats

        # ---- run formation on M records at a time, guides recorded ----
        per_run = max(B, (M // B) * B)
        runs: list[_Run] = []
        pos = 0
        while pos * B < n:
            cnt = min(per_run // B, nblocks - pos)
            chunk = [x for blk in inp.read_blocks(pos, cnt) for x in blk]
            chunk.sort(key=keyf)
            stats.comp_ops += len(chunk) * max(1, len(chunk).bit_length())
            run = self._new_run(array, len(chunk), len(runs))
            run.file.write_blocks(
                0, [chunk[i : i + B] for i in range(0, len(chunk), B)]
            )
            gkeys = [keyf(chunk[min(i + B, len(chunk)) - 1]) for i in range(0, len(chunk), B)]
            run.guide.write_blocks(
                0, [gkeys[i : i + B] for i in range(0, len(gkeys), B)]
            )
            runs.append(run)
            pos += cnt
        stats.runs_formed = len(runs)

        # ---- guided merge passes ----
        while len(runs) > 1:
            stats.merge_passes += 1
            new_runs: list[_Run] = []
            for gi in range(0, len(runs), self.fan_in):
                group = runs[gi : gi + self.fan_in]
                new_runs.append(
                    self._merge_group(array, group, len(new_runs), stats, keyf)
                )
            runs = new_runs

        # ---- read back the result (fully D-parallel) ----
        result = [x for blk in runs[0].file.read_blocks(0, runs[0].nblocks) for x in blk]
        stats.io_ops = array.parallel_ops
        return result, stats

    # -- guided merge ---------------------------------------------------------------

    def _schedule(self, group: Sequence[_Run]) -> Iterator[int]:
        """Merge the group's guide sequences: yields run indices in the
        exact order the record merge will exhaust its input blocks."""
        bufs: list[list[Any]] = []
        cursors = []
        heap: list[tuple[Any, int, int]] = []
        for ri, run in enumerate(group):
            blk = run.guide.read_blocks(0, 1)[0] if run.guide.nblocks else []
            bufs.append(blk)
            cursors.append(1)
            if blk:
                heap.append((blk[0], ri, 0))
        heapq.heapify(heap)
        while heap:
            _gkey, ri, idx = heapq.heappop(heap)
            yield ri
            nxt = idx + 1
            if nxt >= len(bufs[ri]):
                if cursors[ri] < group[ri].guide.nblocks:
                    bufs[ri] = group[ri].guide.read_blocks(cursors[ri], 1)[0]
                    cursors[ri] += 1
                    nxt = 0
                else:
                    bufs[ri] = []
            if nxt < len(bufs[ri]):
                heapq.heappush(heap, (bufs[ri][nxt], ri, nxt))

    def _merge_group(
        self,
        array,
        group: Sequence[_Run],
        out_idx: int,
        stats: GuidesortStats,
        keyf: Callable,
    ) -> _Run:
        B, D = self.machine.B, self.machine.D
        out = self._new_run(array, sum(r.nrecords for r in group), out_idx)

        sched = self._schedule(group)
        pool: list[tuple[int, list[Any]]] = []  # (run, records) in schedule order
        fetched = [1] * len(group)  # next block index to prefetch, per run
        consumed = [1] * len(group)  # next block index the merge will need

        def fill_pool() -> bool:
            want: list[tuple[int, int]] = []
            while len(want) < D:
                ri = next(sched, None)
                if ri is None:
                    break
                if fetched[ri] < group[ri].nblocks:
                    want.append((ri, fetched[ri]))
                    fetched[ri] += 1
            if not want:
                return False
            got = array.read_batched(
                [group[ri].file.addr(c) for ri, c in want]
            )
            for (ri, _c), blk in zip(want, got):
                pool.append((ri, list(blk.records) if blk is not None else []))
            return True

        def refill(ri: int) -> list[Any]:
            if consumed[ri] >= group[ri].nblocks:
                return []
            while True:
                for j, (rj, blk) in enumerate(pool):
                    if rj == ri:
                        if j:
                            stats.guide_mismatches += 1
                        del pool[j]
                        consumed[ri] += 1
                        return blk
                if not fill_pool():
                    # Defensive: the schedule ran dry early; fetch directly.
                    stats.guide_mismatches += 1
                    (blk,) = group[ri].file.read_blocks(consumed[ri], 1)
                    fetched[ri] = max(fetched[ri], consumed[ri] + 1)
                    consumed[ri] += 1
                    return blk

        # Block 0 of every run loads upfront in one batched, staggered read.
        bufs = [blks for blks in ([] for _ in group)]
        first = array.read_batched([r.file.addr(0) for r in group if r.nblocks])
        fi = 0
        for ri, run in enumerate(group):
            if run.nblocks:
                blk = first[fi]
                fi += 1
                bufs[ri] = list(blk.records) if blk is not None else []

        heap = [
            (keyf(bufs[ri][0]), ri, 0) for ri in range(len(group)) if bufs[ri]
        ]
        heapq.heapify(heap)
        outbuf: list[Any] = []
        gkeys: list[Any] = []
        out_block = 0
        gout_block = 0

        def flush_out(final: bool) -> None:
            nonlocal outbuf, gkeys, out_block, gout_block
            while len(outbuf) >= D * B or (final and outbuf):
                take = outbuf[: D * B]
                outbuf = outbuf[D * B :]
                chunks = [take[i : i + B] for i in range(0, len(take), B)]
                out.file.write_blocks(out_block, chunks)
                out_block += len(chunks)
                gkeys.extend(keyf(c[-1]) for c in chunks)
            while len(gkeys) >= D * B or (final and gkeys):
                gtake = gkeys[: D * B]
                gkeys = gkeys[D * B :]
                gchunks = [gtake[i : i + B] for i in range(0, len(gtake), B)]
                out.guide.write_blocks(gout_block, gchunks)
                gout_block += len(gchunks)

        while heap:
            _, ri, idx = heapq.heappop(heap)
            outbuf.append(bufs[ri][idx])
            stats.comp_ops += max(1, len(group).bit_length())
            nxt = idx + 1
            if nxt >= len(bufs[ri]):
                bufs[ri] = refill(ri)
                nxt = 0
            if bufs[ri] and nxt < len(bufs[ri]):
                heapq.heappush(heap, (keyf(bufs[ri][nxt]), ri, nxt))
            flush_out(final=False)
        flush_out(final=True)
        return out

    # -- analytic bound -------------------------------------------------------------

    def predicted_io_ops(self, n: int) -> float:
        """Closed-form bound ``O((n/DB) * log_{M/B}(n/M))`` on parallel ops.

        Terms: load + formation + final read are ``D``-parallel streams;
        each merge pass reads and writes every block once in ``D``-batches
        (staggered striping keeps batches on distinct drives; the factor 2
        on pass reads covers residual disk collisions), plus the
        lower-order guide traffic (``~n/B^2`` single-block reads and
        ``D``-batched writes per pass).
        """
        m = self.machine
        if n == 0:
            return 1.0
        nblk = math.ceil(n / m.B)
        stripes = math.ceil(nblk / m.D)
        runs = max(1, math.ceil(n / max(m.B, (m.M // m.B) * m.B)))
        passes = math.ceil(math.log(runs, self.fan_in)) if runs > 1 else 0
        gblk = math.ceil(nblk / m.B) + runs
        groups = max(1, math.ceil(runs / self.fan_in))
        per_pass = (
            2 * stripes  # prefetched reads (collision slack included)
            + stripes  # D-batched writes
            + 3 * groups
            + self.fan_in  # partial batches at group boundaries
            + 2 * (gblk + runs)  # guide reads (single-block) + writes
        )
        return 4 * (stripes + 1) + 2 * runs + gblk + passes * per_pass
