"""Sibeyn–Kaufmann-style BSP-to-EM simulation — the concurrent prior work.

Section 2.1 of the paper: "[Sibeyn and Kaufmann] simulate a superstep of one
virtual processor at a time, saving the context and generated messages in a
``v x v`` array on disk, where each cell is of size ``3*mu`` ...  However,
the paper does not include techniques to accommodate the blocking factor,
which is an intrinsic issue in efficient I/O design, nor does it provide
mechanisms for handling multiple disks or multiple physical processors."

This engine reproduces those structural properties on our disk substrate:

* one virtual processor simulated at a time (no grouping, ``k = 1``),
* all I/O on a **single disk** (one block per I/O operation, never ``D``),
* per-(sender, receiver) message cells, written as generated.

Two fairness modes:

* ``mode="packed"`` (default, *favorable* to the baseline) — only non-empty
  cells are touched, and a cell costs only the blocks its records need.  Even
  so the engine pays one I/O operation per block because it cannot use disk
  parallelism; the paper's engine beats it by ``~D``.
* ``mode="cells"`` — each non-empty cell transfer is charged its full
  preallocated ``ceil(3*mu/B)`` blocks, the layout the prior work describes;
  the gap then grows with the cell-utilization factor as well.

Outputs remain bit-identical to the reference runner (this is still a
correct simulation — just an I/O-inefficient one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Literal

from ..bsp.message import blocks_to_messages, message_to_blocks
from ..bsp.program import AlgorithmError, BSPAlgorithm, VPContext
from ..emio.diskarray import DiskArray
from ..emio.layout import blocks_to_object, pickle_to_blocks
from ..params import MachineParams

__all__ = ["SibeynKaufmannSimulation", "SibeynStats"]


@dataclass
class SibeynStats:
    """Counted costs of one Sibeyn–Kaufmann-style simulation run."""

    supersteps: int = 0
    io_ops: int = 0  # single-block I/O operations (no disk parallelism)
    blocks_context: int = 0
    blocks_messages: int = 0
    cell_blocks_charged: int = 0  # only in mode="cells"

    def io_time(self, machine: MachineParams) -> float:
        return machine.G * self.io_ops


class SibeynKaufmannSimulation:
    """Simulate a BSP algorithm one virtual processor at a time on one disk."""

    def __init__(
        self,
        algorithm: BSPAlgorithm,
        v: int,
        machine: MachineParams,
        mode: Literal["packed", "cells"] = "packed",
    ):
        if v < 1:
            raise ValueError("v must be >= 1")
        self.algorithm = algorithm
        self.v = v
        self.machine = machine
        self.mode = mode
        self.stats = SibeynStats()
        # The machine may have D disks; this technique only ever uses one
        # ("nor does it provide mechanisms for handling multiple disks").
        self.array = DiskArray(machine.D, machine.B)
        self._track = 0

    def _charge_blocks(self, nblocks: int, kind: str = "W") -> None:
        # One I/O operation per block: a single disk moves one track at a
        # time.  The accesses are physically performed on the substrate so
        # tracing and op counting agree.
        from ..emio.disk import Block as _Block

        for _ in range(nblocks):
            if kind == "W":
                self.array.parallel_write([(0, self._track, _Block(records=[]))])
                self._track += 1
            else:
                self.array.parallel_read([(0, max(self._track - 1, 0))])
        self.stats.io_ops += nblocks

    def run(self) -> tuple[list[Any], SibeynStats]:
        """Run to completion; return (per-vp outputs, stats)."""
        alg, v, B = self.algorithm, self.v, self.machine.B
        mu = alg.context_size()
        cell_blocks = -(-3 * mu // B)

        # The context area and the v x v cell array are modelled in memory
        # (contents) with I/O charged per the layout above; the data still
        # round-trips through pickle/blocks so sizes are real.
        disk_ctx: list[Any] = []
        for pid in range(v):
            blocks = pickle_to_blocks(alg.initial_state(pid, v), B, max_records=mu)
            self._charge_blocks(len(blocks))
            self.stats.blocks_context += len(blocks)
            disk_ctx.append(blocks)

        # cells[src][dst] = list of message blocks awaiting delivery.
        cells: dict[tuple[int, int], list] = {}

        for step in range(alg.MAX_SUPERSTEPS):
            self.stats.supersteps += 1
            all_halted = True
            any_message = False
            new_cells: dict[tuple[int, int], list] = {}
            for pid in range(v):
                # Fetch context (one vp at a time; k=1 — no batching).
                self._charge_blocks(len(disk_ctx[pid]), kind="R")
                state = blocks_to_object(disk_ctx[pid])
                # Fetch this vp's column of non-empty cells.
                arrived = []
                for src in range(v):
                    blocks = cells.pop((src, pid), None)
                    if blocks:
                        if self.mode == "cells":
                            self._charge_blocks(cell_blocks, kind="R")
                            self.stats.cell_blocks_charged += cell_blocks
                        else:
                            self._charge_blocks(len(blocks), kind="R")
                        self.stats.blocks_messages += len(blocks)
                        arrived.extend(blocks)
                msgs = blocks_to_messages(arrived)
                ctx = VPContext(pid, v, step, state, msgs, comm_bound=None)
                alg.superstep(ctx)
                if not ctx.halted:
                    all_halted = False
                # Write generated messages to their cells.
                for mi, msg in enumerate(ctx.outbox):
                    any_message = True
                    blocks = message_to_blocks(msg, B, mi)
                    if self.mode == "cells":
                        self._charge_blocks(cell_blocks)
                        self.stats.cell_blocks_charged += cell_blocks
                    else:
                        self._charge_blocks(len(blocks))
                    self.stats.blocks_messages += len(blocks)
                    new_cells.setdefault((pid, msg.dest), []).extend(blocks)
                # Write context back.
                blocks = pickle_to_blocks(ctx.state, B, max_records=mu)
                self._charge_blocks(len(blocks))
                self.stats.blocks_context += len(blocks)
                disk_ctx[pid] = blocks
            cells = new_cells
            if all_halted and not any_message:
                break
        else:
            raise AlgorithmError(
                f"algorithm did not halt within MAX_SUPERSTEPS={alg.MAX_SUPERSTEPS}"
            )

        outputs = []
        for pid in range(v):
            self._charge_blocks(len(disk_ctx[pid]), kind="R")
            outputs.append(alg.output(pid, blocks_to_object(disk_ctx[pid])))
        return outputs, self.stats
