"""Sequential external-memory mergesort — the classical Aggarwal–Vitter
baseline of Table 1, column "Previous results".

Implements multiway mergesort on the same simulated disk substrate as the
CGM simulation, with the parallel-disk-aware refinements the PDM literature
assumes: striped layout, run formation on ``M`` records, and merge fan-in
``f = M/(D*B) - 1`` with ``D``-block prefetching so every buffer refill is
one fully parallel I/O operation.

Counted I/O is ``Theta((n/DB) * log_{M/DB}(n/M))`` parallel operations —
the ``Theta(G (n/BD) log_{M/B}(n/B))`` row of Table 1 up to the usual
striping constant.  The T1-A-SORT benchmark prints this next to the
simulated CGM sort's I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..emio.disk import Block
from ..emio.diskarray import DiskArray
from ..params import MachineParams

__all__ = ["EMMergeSort", "EMSortStats"]


@dataclass
class EMSortStats:
    """Counted costs of one external mergesort run."""

    n: int = 0
    runs_formed: int = 0
    merge_passes: int = 0
    fan_in: int = 0
    io_ops: int = 0  # parallel I/O operations
    comp_ops: float = 0.0

    def io_time(self, machine: MachineParams) -> float:
        return machine.G * self.io_ops


class _StripedFile:
    """A sequence of records striped block-by-block over the disk array."""

    def __init__(self, array: DiskArray, base: int, nblocks: int):
        self.array = array
        self.base = base
        self.nblocks = nblocks

    def addr(self, i: int) -> tuple[int, int]:
        return i % self.array.D, self.base + i // self.array.D

    def read_blocks(self, start: int, count: int) -> list[list[Any]]:
        count = max(0, min(count, self.nblocks - start))
        got = self.array.read_batched([self.addr(i) for i in range(start, start + count)])
        return [list(b.records) if b is not None else [] for b in got]

    def write_blocks(self, start: int, blocks: Sequence[Sequence[Any]]) -> None:
        self.array.write_batched(
            [
                (*self.addr(start + j), Block(records=list(rs)))
                for j, rs in enumerate(blocks)
            ]
        )


class EMMergeSort:
    """External mergesort for a single-processor EM machine with ``D`` disks.

    Parameters
    ----------
    machine:
        Machine description; ``M``, ``D``, ``B`` and ``G`` are used.
    key:
        Optional sort key.
    """

    def __init__(self, machine: MachineParams, key: Callable | None = None):
        if machine.p != 1:
            raise ValueError("EMMergeSort is the single-processor baseline")
        self.machine = machine
        self.key = key

    def sort(self, data: Sequence[Any]) -> tuple[list[Any], EMSortStats]:
        """Sort ``data`` through the simulated disks; return (result, stats)."""
        m = self.machine
        B, D, M = m.B, m.D, m.M
        n = len(data)
        stats = EMSortStats(n=n)
        array = DiskArray(D, B)
        nblocks = -(-n // B) if n else 0

        # Two alternating striped files (ping-pong between merge passes).
        file_a = _StripedFile(array, 0, nblocks)
        file_b = _StripedFile(array, nblocks + 1, nblocks)

        # ---- load input (counted: it is part of the EM sort's job) ----
        file_a.write_blocks(
            0, [data[i : i + B] for i in range(0, n, B)] if n else []
        )

        # ---- run formation: sort M records at a time in memory ----
        blocks_per_run = max(1, M // B)
        runs: list[tuple[int, int]] = []  # (start block, nblocks) in file_a
        pos = 0
        while pos < nblocks:
            cnt = min(blocks_per_run, nblocks - pos)
            chunk = [x for blk in file_a.read_blocks(pos, cnt) for x in blk]
            chunk.sort(key=self.key)
            stats.comp_ops += len(chunk) * max(1, len(chunk).bit_length())
            file_a.write_blocks(pos, [chunk[i : i + B] for i in range(0, len(chunk), B)])
            runs.append((pos, cnt))
            pos += cnt
        stats.runs_formed = len(runs)

        # ---- merge passes ----
        # Fan-in: one D-block prefetch buffer per input run plus one output
        # buffer must fit in M records.
        fan_in = max(2, M // (D * B) - 1)
        stats.fan_in = fan_in
        src, dst = file_a, file_b
        while len(runs) > 1:
            stats.merge_passes += 1
            new_runs: list[tuple[int, int]] = []
            out_pos_total = 0
            for gi in range(0, len(runs), fan_in):
                group = runs[gi : gi + fan_in]
                merged_start = out_pos_total
                # Per-run cursor state: next block index, buffered records.
                cursors = [start for start, _ in group]
                ends = [start + cnt for start, cnt in group]
                bufs: list[list[Any]] = [[] for _ in group]

                def refill(ri: int) -> None:
                    take = min(D, ends[ri] - cursors[ri])
                    if take > 0:
                        got = src.read_blocks(cursors[ri], take)
                        cursors[ri] += take
                        for blk in got:
                            bufs[ri].extend(blk)

                for ri in range(len(group)):
                    refill(ri)
                import heapq

                keyf = self.key if self.key is not None else (lambda x: x)
                heap = [
                    (keyf(bufs[ri][0]), ri, 0) for ri in range(len(group)) if bufs[ri]
                ]
                heapq.heapify(heap)
                outbuf: list[Any] = []
                out_block = merged_start
                while heap:
                    _, ri, idx = heapq.heappop(heap)
                    outbuf.append(bufs[ri][idx])
                    stats.comp_ops += max(1, len(group).bit_length())
                    nxt = idx + 1
                    if nxt >= len(bufs[ri]):
                        bufs[ri] = []
                        refill(ri)
                        nxt = 0
                    if bufs[ri]:
                        heapq.heappush(heap, (keyf(bufs[ri][nxt]), ri, nxt))
                    while len(outbuf) >= D * B:
                        dst.write_blocks(
                            out_block, [outbuf[i : i + B] for i in range(0, D * B, B)]
                        )
                        out_block += D
                        outbuf = outbuf[D * B :]
                if outbuf:
                    dst.write_blocks(
                        out_block,
                        [outbuf[i : i + B] for i in range(0, len(outbuf), B)],
                    )
                    out_block += -(-len(outbuf) // B)
                run_len = out_block - merged_start
                new_runs.append((merged_start, run_len))
                out_pos_total += run_len
            runs = new_runs
            src, dst = dst, src

        # ---- read back the result ----
        if runs:
            start, cnt = runs[0]
            result = [x for blk in src.read_blocks(start, cnt) for x in blk]
        else:
            result = []
        stats.io_ops = array.parallel_ops
        return result, stats

    # -- analytic bound -------------------------------------------------------------

    def predicted_io_ops(self, n: int) -> float:
        """The textbook bound ``(n/DB) * (2*passes + 2)`` on parallel I/O ops."""
        import math

        m = self.machine
        if n == 0:
            return 0.0
        nblocks = n / (m.D * m.B)
        runs = max(1.0, n / m.M)
        fan_in = max(2, m.M // (m.D * m.B) - 1)
        passes = math.ceil(math.log(runs, fan_in)) if runs > 1 else 0
        return nblocks * (2 * passes + 4)
