"""Shared striped-layout plumbing for the sequential EM baselines.

Every counted-cost competitor stores its working files striped block-by-block
over the ``D`` drives of one :class:`~repro.emio.diskarray.DiskArray` —
block ``i`` of a file based at track ``base`` lives at
``(i % D, base + i // D)`` — and charges all I/O through
``read_batched``/``write_batched`` so ``array.parallel_ops`` is directly
comparable with the simulation's ledger (DESIGN §13).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from ..emio.disk import Block
from ..emio.diskarray import DiskArray
from ..emio.storage import StorageSpec, resolve_storage
from ..params import MachineParams

__all__ = ["StripedFile", "baseline_array", "open_array"]


def baseline_array(
    machine: MachineParams,
    storage: "str | StorageSpec | None" = None,
    fast_io: bool = False,
) -> DiskArray:
    """A :class:`DiskArray` for one baseline run.

    ``storage`` is either a ready :class:`StorageSpec` or a plane kind
    (``"memory"``/``"file"``/``"mmap"``; a non-memory kind gets an owned
    temporary root).  Both the storage plane and ``fast_io`` are
    counted-cost-invisible: the batched paths charge identical parallel-op
    rounds either way, so they are safe differential planes for the
    competitors exactly as for the simulation engines.
    """
    if storage is None or isinstance(storage, str):
        spec = resolve_storage(storage, None)
    else:
        spec = storage
    return DiskArray(machine.D, machine.B, fast_io=fast_io, storage=spec)


@contextmanager
def open_array(
    machine: MachineParams,
    storage: "str | StorageSpec | None" = None,
    fast_io: bool = False,
) -> Iterator[DiskArray]:
    """``baseline_array`` as a context manager: closes the storage plane and
    removes owned temporary roots when the baseline finishes."""
    array = baseline_array(machine, storage=storage, fast_io=fast_io)
    try:
        yield array
    finally:
        array.close_storage()
        array.storage_spec.cleanup()


class StripedFile:
    """A sequence of records striped block-by-block over the disk array.

    ``shift`` rotates the stripe start disk: block ``i`` lives on disk
    ``(i + shift) % D``.  Staggering sibling files (e.g. merge runs) by one
    disk each keeps a prefetch batch that touches many files in lockstep on
    distinct drives instead of colliding on one.
    """

    def __init__(self, array: DiskArray, base: int, nblocks: int, shift: int = 0):
        self.array = array
        self.base = base
        self.nblocks = nblocks
        self.shift = shift % max(1, array.D)

    def addr(self, i: int) -> tuple[int, int]:
        return (i + self.shift) % self.array.D, self.base + i // self.array.D

    def read_blocks(self, start: int, count: int) -> list[list[Any]]:
        count = max(0, min(count, self.nblocks - start))
        got = self.array.read_batched(
            [self.addr(i) for i in range(start, start + count)]
        )
        return [list(b.records) if b is not None else [] for b in got]

    def read_blocks_at(self, indices: Sequence[int]) -> list[list[Any]]:
        """Read an arbitrary set of block indices in one batched request.

        The array packs the addresses greedily into parallel operations,
        charging the max per-disk count — the counted cost of a prefetch
        schedule falls out of the layout, not out of trust.
        """
        got = self.array.read_batched([self.addr(i) for i in indices])
        return [list(b.records) if b is not None else [] for b in got]

    def write_blocks(self, start: int, blocks: Sequence[Sequence[Any]]) -> None:
        self.array.write_batched(
            [
                (*self.addr(start + j), Block(records=list(rs)))
                for j, rs in enumerate(blocks)
            ]
        )
