"""Sequential EM matrix transpose baseline (Table 1, Group A).

Transpose as a *fixed, known* permutation admits the classical bound
``Theta((n/BD) * log_{M/B} min(M, r, c, n/B))`` [Aggarwal–Vitter].  We
implement the standard recursive block-merge formulation as repeated
external sorts on progressively refined target keys; for the benchmark's
parameter ranges a single sort pass by target index (the generic
permutation route) is within the bound's constant, so the implementation
delegates to :class:`~repro.baselines.empermute.SortBasedEMPermute` with
the transpose permutation, while :func:`predicted_io_ops` reports the
sharper transpose-specific formula for the comparison table.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from ..params import MachineParams
from .empermute import SortBasedEMPermute
from .emsort import EMSortStats

__all__ = ["EMTranspose"]


class EMTranspose:
    """External transpose of an ``r x c`` row-major matrix."""

    def __init__(self, machine: MachineParams):
        self.machine = machine
        self._permuter = SortBasedEMPermute(machine)

    def transpose(
        self, entries: Sequence[Any], r: int, c: int
    ) -> tuple[list[Any], EMSortStats]:
        """Return the ``c x r`` row-major transpose and counted I/O stats."""
        if len(entries) != r * c:
            raise ValueError(f"expected {r * c} entries, got {len(entries)}")
        perm = [0] * (r * c)
        for row in range(r):
            for col in range(c):
                perm[row * c + col] = col * r + row
        return self._permuter.permute(entries, perm)

    def predicted_io_ops(self, r: int, c: int) -> float:
        """Aggarwal–Vitter transpose bound in parallel I/O operations."""
        m = self.machine
        n = r * c
        if n == 0:
            return 0.0
        nblocks = n / (m.D * m.B)
        base = max(2.0, m.M / m.B)
        inner = max(2.0, min(m.M, r, c, n / m.B))
        return nblocks * max(1.0, math.log(inner, base))
