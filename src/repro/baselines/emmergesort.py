"""K-way external merge sort with the full ``M/B``-way merge fan-in.

The textbook external-memory merge sort (SNIPPETS.md; Aggarwal–Vitter):
run formation on ``M`` records, then merge passes with fan-in
``f = M/B - 1`` where every input run holds exactly one block buffer in
memory.  That fan-in is a factor ``D`` larger than
:class:`~repro.baselines.emsort.EMMergeSort`'s superblock-striped
``M/(DB) - 1``, so the pass count is the optimal ``log_{M/B}(n/B)`` — but
the single-block buffer refills are demand-driven and cannot be batched
across runs, so merge-pass *reads* cost one parallel operation per block
(``n/B`` per pass) instead of ``n/(DB)``.  Run formation and merge output
remain fully ``D``-parallel.

That trade-off is exactly the gap Guidesort closes (see
:mod:`~repro.baselines.guidesort`): fewer passes *or* full disk
parallelism is easy; both at once needs a prefetch schedule.  The bake-off
table makes the trade visible on identical machines.

Counted I/O: ``Theta((n/DB) + passes * (n/B + n/DB))`` parallel operations
with ``passes = ceil(log_{M/B}(n/M))`` — for ``D = 1`` this is the optimal
``Theta((n/B) log_{M/B}(n/B))`` sort bound.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..emio.storage import StorageSpec
from ..params import MachineParams
from .striping import StripedFile, open_array

__all__ = ["KWayMergeSort", "KWayStats"]


@dataclass
class KWayStats:
    """Counted costs of one k-way external merge sort run."""

    n: int = 0
    runs_formed: int = 0
    merge_passes: int = 0
    fan_in: int = 0
    io_ops: int = 0  # parallel I/O operations
    comp_ops: float = 0.0

    def io_time(self, machine: MachineParams) -> float:
        return machine.G * self.io_ops


class KWayMergeSort:
    """Single-processor k-way external merge sort over ``D`` striped disks.

    Parameters
    ----------
    machine:
        Machine description; ``M``, ``D``, ``B`` and ``G`` are used.
    key:
        Optional sort key.
    storage:
        Optional storage plane (kind string or :class:`StorageSpec`).
    fast_io:
        Use the array's vectorized batched paths (identical counted cost).
    """

    def __init__(
        self,
        machine: MachineParams,
        key: Callable | None = None,
        *,
        storage: "str | StorageSpec | None" = None,
        fast_io: bool = False,
    ):
        if machine.p != 1:
            raise ValueError("KWayMergeSort is the single-processor baseline")
        self.machine = machine
        self.key = key
        self.storage = storage
        self.fast_io = fast_io

    @property
    def fan_in(self) -> int:
        # One block buffer per input run + one output block must fit in M.
        return max(2, self.machine.M // self.machine.B - 1)

    def sort(self, data: Sequence[Any]) -> tuple[list[Any], KWayStats]:
        """Sort ``data`` through the simulated disks; return (result, stats)."""
        with open_array(self.machine, self.storage, self.fast_io) as array:
            return self._sort(array, data)

    def _sort(self, array, data: Sequence[Any]) -> tuple[list[Any], KWayStats]:
        m = self.machine
        B, D, M = m.B, m.D, m.M
        n = len(data)
        stats = KWayStats(n=n, fan_in=self.fan_in)
        nblocks = -(-n // B) if n else 0
        keyf = self.key if self.key is not None else (lambda x: x)

        file_a = StripedFile(array, 0, nblocks)
        file_b = StripedFile(array, nblocks + 1, nblocks)

        # ---- load input (counted: part of the sort's job) ----
        file_a.write_blocks(
            0, [data[i : i + B] for i in range(0, n, B)] if n else []
        )

        # ---- run formation on M records at a time (fully D-parallel) ----
        blocks_per_run = max(1, M // B)
        runs: list[tuple[int, int]] = []
        pos = 0
        while pos < nblocks:
            cnt = min(blocks_per_run, nblocks - pos)
            chunk = [x for blk in file_a.read_blocks(pos, cnt) for x in blk]
            chunk.sort(key=keyf)
            stats.comp_ops += len(chunk) * max(1, len(chunk).bit_length())
            file_a.write_blocks(
                pos, [chunk[i : i + B] for i in range(0, len(chunk), B)]
            )
            runs.append((pos, cnt))
            pos += cnt
        stats.runs_formed = len(runs)

        # ---- merge passes: one block buffer per run, demand-driven refills ----
        src, dst = file_a, file_b
        while len(runs) > 1:
            stats.merge_passes += 1
            new_runs: list[tuple[int, int]] = []
            out_pos = 0
            for gi in range(0, len(runs), self.fan_in):
                group = runs[gi : gi + self.fan_in]
                merged_start = out_pos
                cursors = [start for start, _ in group]
                ends = [start + cnt for start, cnt in group]
                bufs: list[list[Any]] = [[] for _ in group]

                def refill(ri: int) -> None:
                    # Exactly one block: the defining (non-batchable) read.
                    if cursors[ri] < ends[ri]:
                        (blk,) = src.read_blocks(cursors[ri], 1)
                        cursors[ri] += 1
                        bufs[ri] = blk

                for ri in range(len(group)):
                    refill(ri)
                heap = [
                    (keyf(bufs[ri][0]), ri, 0)
                    for ri in range(len(group))
                    if bufs[ri]
                ]
                heapq.heapify(heap)
                outbuf: list[Any] = []
                out_block = merged_start
                while heap:
                    _, ri, idx = heapq.heappop(heap)
                    outbuf.append(bufs[ri][idx])
                    stats.comp_ops += max(1, len(group).bit_length())
                    nxt = idx + 1
                    if nxt >= len(bufs[ri]):
                        bufs[ri] = []
                        refill(ri)
                        nxt = 0
                    if bufs[ri]:
                        heapq.heappush(heap, (keyf(bufs[ri][nxt]), ri, nxt))
                    while len(outbuf) >= D * B:
                        # Output is sequential: batch D blocks per write op.
                        dst.write_blocks(
                            out_block,
                            [outbuf[i : i + B] for i in range(0, D * B, B)],
                        )
                        out_block += D
                        outbuf = outbuf[D * B :]
                if outbuf:
                    dst.write_blocks(
                        out_block,
                        [outbuf[i : i + B] for i in range(0, len(outbuf), B)],
                    )
                    out_block += -(-len(outbuf) // B)
                run_len = out_block - merged_start
                new_runs.append((merged_start, run_len))
                out_pos += run_len
            runs = new_runs
            src, dst = dst, src

        # ---- read back the result (fully D-parallel) ----
        if runs:
            start, cnt = runs[0]
            result = [x for blk in src.read_blocks(start, cnt) for x in blk]
        else:
            result = []
        stats.io_ops = array.parallel_ops
        return result, stats

    # -- analytic bound -------------------------------------------------------------

    def predicted_io_ops(self, n: int) -> float:
        """Closed-form bound on parallel I/O operations.

        Load + run formation + final read are ``D``-parallel streams
        (``4 * ceil(n/DB)`` with per-phase rounding slack); each merge pass
        reads one op per block (``ceil(n/B)``) and writes ``D``-batched
        (``ceil(n/DB)`` plus one partial batch per output run group).
        """
        m = self.machine
        if n == 0:
            return 0.0
        nblk = math.ceil(n / m.B)
        stripes = math.ceil(nblk / m.D)
        runs = max(1, math.ceil(n / m.M))
        passes = (
            math.ceil(math.log(runs, self.fan_in)) if runs > 1 else 0
        )
        per_pass = nblk + stripes + 2 * max(1, math.ceil(runs / self.fan_in))
        return 4 * (stripes + 1) + passes * per_pass
