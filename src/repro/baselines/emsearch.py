"""Direct EM batched predecessor search — the hand-crafted counterpart to
:class:`~repro.algorithms.multisearch.CGMMultisearch`.

The classical technique the paper's conclusion alludes to: sort the query
batch externally, then merge-scan it against the (sorted, striped) key
array — ``O(sort(m) + (n + m)/(DB))`` parallel I/O operations, versus the
simulated multisearch's ``Theta(log n)`` full sweeps.  The LIMITS benchmark
measures the gap, making the paper's open problem concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..emio.disk import Block
from ..emio.diskarray import DiskArray
from ..params import MachineParams
from .emsort import EMMergeSort

__all__ = ["EMBatchedSearch", "SearchStats"]


@dataclass
class SearchStats:
    n: int = 0
    m: int = 0
    io_ops: int = 0
    comp_ops: float = 0.0


class EMBatchedSearch:
    """Predecessor search for a sorted key array on the EM substrate."""

    def __init__(self, machine: MachineParams):
        if machine.p != 1:
            raise ValueError("EMBatchedSearch is the single-processor baseline")
        self.machine = machine

    def search(
        self, keys: Sequence[Any], queries: Sequence[Any]
    ) -> tuple[list[int], SearchStats]:
        """``pred[i]`` = index of the largest key <= queries[i] (or -1)."""
        if sorted(keys) != list(keys):
            raise ValueError("keys must be sorted")
        m = self.machine
        stats = SearchStats(n=len(keys), m=len(queries))

        # External sort of the tagged queries.
        sorter = EMMergeSort(m, key=lambda t: t[0])
        ordered, sort_stats = sorter.sort([(q, i) for i, q in enumerate(queries)])
        stats.io_ops += sort_stats.io_ops
        stats.comp_ops += sort_stats.comp_ops

        # Striped key array on a fresh disk array; single merge-scan.
        array = DiskArray(m.D, m.B)
        B = m.B
        nblocks = -(-len(keys) // B) if keys else 0
        array.write_batched(
            (j % m.D, j // m.D, Block(records=list(keys[j * B : (j + 1) * B])))
            for j in range(nblocks)
        )
        answers = [-1] * len(queries)
        window_start = -1  # first block of the cached D-block window
        window: list[Any] = []

        def key_at(i: int) -> Any:
            nonlocal window_start, window
            blk = i // B
            if not (window_start <= blk < window_start + m.D) or window_start < 0:
                # Sequential streaming with full disk parallelism: fetch the
                # next D consecutive (striped) blocks in one operation.
                window_start = blk
                take = min(m.D, nblocks - blk)
                got = array.parallel_read(
                    [((blk + j) % m.D, (blk + j) // m.D) for j in range(take)]
                )
                window = []
                for g in got:
                    window.extend(g.records if g is not None else [])
            return window[i - window_start * B]

        ki = 0
        for q, qi in ordered:
            while ki < len(keys) and key_at(ki) <= q:
                ki += 1
            answers[qi] = ki - 1
            stats.comp_ops += 1
        stats.io_ops += array.parallel_ops
        return answers, stats
