"""Baselines: Table 1's "previous results" column plus the modern rivals,
all on the same counted substrate.

1997-era opponents:

* :class:`EMMergeSort` — classical sequential external mergesort
  (superblock-striped, fan-in ``M/(DB) - 1``).
* :class:`NaiveEMPermute` / :class:`SortBasedEMPermute` — unblocked and
  sort-based external permutation.
* :class:`EMTranspose` — sequential external matrix transpose.
* :class:`EMPRAMSimulator` / :class:`PRAMListRanking` — PRAM-step simulation
  (Chiang et al.): one external sort per PRAM step.
* :class:`SibeynKaufmannSimulation` — the concurrent BSP-to-EM simulation
  without blocking-factor or multi-disk support.

Modern rivals (PAPERS.md; the bake-off competitors):

* :class:`KWayMergeSort` — textbook ``M/B``-way external merge sort.
* :class:`Guidesort` — Hagerup's guide-sequence PDM merge sort.
* :class:`BufferTree` / :class:`BufferTreePQ` / :class:`BufferTreeSort` —
  Arge's buffer tree and the bulk priority queue built on it.

``SORTING_BASELINES`` is the registry of counted-cost sorters sharing the
``cls(machine, key=None, *, storage=None, fast_io=False)`` constructor and
the ``sort(data) -> (result, stats)`` / ``predicted_io_ops(n)`` contract;
registering a sorter here auto-enrolls it in ``tests/test_baselines.py``,
the conform fuzzer's workload pool and the ``repro bakeoff`` sweep.
"""

from .buffertree import BufferTree, BufferTreePQ, BufferTreeSort, BufferTreeStats
from .empermute import NaiveEMPermute, PermuteStats, SortBasedEMPermute
from .emsearch import EMBatchedSearch, SearchStats
from .emmergesort import KWayMergeSort, KWayStats
from .emsort import EMMergeSort, EMSortStats
from .emtranspose import EMTranspose
from .guidesort import Guidesort, GuidesortStats
from .pramsim import EMPRAMSimulator, PRAMListRanking, PRAMStats
from .sibeyn import SibeynKaufmannSimulation, SibeynStats
from .striping import StripedFile, baseline_array, open_array

#: name -> class for every counted-cost external sorter on the shared contract
SORTING_BASELINES = {
    "emsort": EMMergeSort,
    "emmergesort": KWayMergeSort,
    "guidesort": Guidesort,
    "buffertree": BufferTreeSort,
}

__all__ = [
    "EMMergeSort",
    "EMSortStats",
    "KWayMergeSort",
    "KWayStats",
    "Guidesort",
    "GuidesortStats",
    "BufferTree",
    "BufferTreePQ",
    "BufferTreeSort",
    "BufferTreeStats",
    "NaiveEMPermute",
    "SortBasedEMPermute",
    "PermuteStats",
    "EMTranspose",
    "EMBatchedSearch",
    "SearchStats",
    "EMPRAMSimulator",
    "PRAMListRanking",
    "PRAMStats",
    "SibeynKaufmannSimulation",
    "SibeynStats",
    "SORTING_BASELINES",
    "StripedFile",
    "baseline_array",
    "open_array",
]
