"""Baselines: the "previous results" column of Table 1, on the same substrate.

* :class:`EMMergeSort` — classical sequential external mergesort.
* :class:`NaiveEMPermute` / :class:`SortBasedEMPermute` — unblocked and
  sort-based external permutation.
* :class:`EMTranspose` — sequential external matrix transpose.
* :class:`EMPRAMSimulator` / :class:`PRAMListRanking` — PRAM-step simulation
  (Chiang et al.): one external sort per PRAM step.
* :class:`SibeynKaufmannSimulation` — the concurrent BSP-to-EM simulation
  without blocking-factor or multi-disk support.
"""

from .empermute import NaiveEMPermute, PermuteStats, SortBasedEMPermute
from .emsearch import EMBatchedSearch, SearchStats
from .emsort import EMMergeSort, EMSortStats
from .emtranspose import EMTranspose
from .pramsim import EMPRAMSimulator, PRAMListRanking, PRAMStats
from .sibeyn import SibeynKaufmannSimulation, SibeynStats

__all__ = [
    "EMMergeSort",
    "EMSortStats",
    "NaiveEMPermute",
    "SortBasedEMPermute",
    "PermuteStats",
    "EMTranspose",
    "EMBatchedSearch",
    "SearchStats",
    "EMPRAMSimulator",
    "PRAMListRanking",
    "PRAMStats",
    "SibeynKaufmannSimulation",
    "SibeynStats",
]
