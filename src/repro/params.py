"""Machine and algorithm parameters for the EM-BSP* / EM-CGM models.

The paper (Dehne, Dittrich & Hutchinson) extends the BSP* model with four
external-memory parameters per processor: local memory size ``M``, number of
disk drives ``D``, transfer block size ``B``, and the computation/I-O capacity
ratio ``G``.  This module defines validated parameter containers used by every
other subsystem, together with the side conditions of Theorem 1.

Units
-----
All capacities (``M``, ``B``, ``b``, context size ``mu``, message bound
``gamma``) are measured in *records*, the paper's abstract unit of data.  All
costs (``g``, ``G``, ``L``) are measured in *basic computation operations*,
exactly as in the paper's cost model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = [
    "MachineParams",
    "BSPParams",
    "SimulationParams",
    "ParameterError",
    "log_MB",
]


class ParameterError(ValueError):
    """Raised when a parameter combination violates a model constraint."""


def log_MB(M: int, B: int) -> float:
    """Return ``log2(M/B)``, the slackness factor appearing throughout the paper.

    The paper requires ``M > B`` wherever ``log(M/B)`` appears; we clamp to a
    minimum of 1.0 so degenerate configurations (``M == B``) remain usable in
    tests of other components.
    """
    if M <= 0 or B <= 0:
        raise ParameterError(f"M and B must be positive, got M={M}, B={B}")
    return max(1.0, math.log2(M / B))


@dataclass(frozen=True)
class MachineParams:
    """Parameters of the target EM-BSP* machine (Section 3 of the paper).

    Attributes
    ----------
    p:
        Number of real processors.
    M:
        Local memory size of each real processor, in records.
    D:
        Number of disk drives attached to each real processor.
    B:
        Transfer block size of a disk drive, in records.  A *track* stores
        exactly one block of ``B`` records.
    G:
        Time (in basic computation units) for one parallel I/O operation,
        i.e. the transfer of up to ``D`` blocks, one per local disk.
    g:
        Time for the router to deliver one packet of size ``b``.
    L:
        Time to perform a barrier synchronization between the processors.
    b:
        Minimum packet size for communication (the BSP* blocking parameter).
        The simulation requires ``b >= B``.
    """

    p: int = 1
    M: int = 1 << 12
    D: int = 1
    B: int = 64
    G: float = 1.0
    g: float = 1.0
    L: float = 1.0
    b: int = 64

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ParameterError(f"p must be >= 1, got {self.p}")
        if self.D < 1:
            raise ParameterError(f"D must be >= 1, got {self.D}")
        if self.B < 1:
            raise ParameterError(f"B must be >= 1, got {self.B}")
        if self.b < 1:
            raise ParameterError(f"b must be >= 1, got {self.b}")
        if self.M < self.D * self.B:
            # The paper assumes a processor can hold one block from each
            # local disk simultaneously (Section 3): M >= D*B.
            raise ParameterError(
                f"M must be >= D*B (one block per local disk), "
                f"got M={self.M} < D*B={self.D * self.B}"
            )
        if self.G < 0 or self.g < 0 or self.L < 0:
            raise ParameterError("cost parameters G, g, L must be non-negative")

    @property
    def log_MB(self) -> float:
        """``log2(M/B)`` for this machine."""
        return log_MB(self.M, self.B)

    @property
    def io_bandwidth(self) -> int:
        """Records moved by one fully parallel I/O operation (``D*B``)."""
        return self.D * self.B

    def with_(self, **kwargs) -> "MachineParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class BSPParams:
    """Parameters of the simulated (virtual) BSP*/CGM machine.

    Attributes
    ----------
    v:
        Number of virtual processors.
    mu:
        Maximum context size of a virtual processor, in records.  The
        simulation preallocates ``mu`` records of disk space per virtual
        processor for its context.
    gamma:
        Maximum total size of messages sent (and received) by one virtual
        processor in a single superstep, in records.  The paper calls this
        :math:`\\gamma` and notes :math:`\\gamma = O(\\mu)`.
    """

    v: int
    mu: int
    gamma: int

    def __post_init__(self) -> None:
        if self.v < 1:
            raise ParameterError(f"v must be >= 1, got {self.v}")
        if self.mu < 1:
            raise ParameterError(f"mu must be >= 1, got {self.mu}")
        if self.gamma < 0:
            raise ParameterError(f"gamma must be >= 0, got {self.gamma}")

    def with_(self, **kwargs) -> "BSPParams":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class SimulationParams:
    """Joint parameters of one simulation run, with Theorem 1's side conditions.

    Attributes
    ----------
    machine:
        The target EM-BSP* machine.
    bsp:
        The simulated virtual machine.
    k:
        Number of virtual processors simulated concurrently per real
        processor ("group size").  The paper chooses ``k = floor(M / mu)``
        to maximize memory use; pass ``k=None`` for that default.
    strict:
        If True, enforce all side conditions of Theorem 1 (slackness,
        ``b >= B``, ``M/B >= p^eps``).  If False, only hard structural
        requirements are enforced (enough memory for one group, enough
        virtual processors for one group per real processor) so that small
        unit-test configurations remain expressible.
    """

    machine: MachineParams
    bsp: BSPParams
    k: int | None = None
    strict: bool = False
    eps: float = field(default=0.5)

    def __post_init__(self) -> None:
        m, s = self.machine, self.bsp
        if self.k is not None:
            k = self.k
        else:
            # The paper's choice k = floor(M/mu), clamped to the per-processor
            # virtual machine size and rounded down to a divisor of v/p so
            # the compound superstep splits into whole groups.
            vpp = max(1, s.v // m.p)
            k = max(1, min(m.M // s.mu, vpp))
            while vpp % k:
                k -= 1
        object.__setattr__(self, "k", k)
        if k < 1:
            self._reject(f"group size k must be >= 1, got {k}")
        if m.M < s.mu:
            self._reject(
                f"real memory M={m.M} cannot hold one virtual context mu={s.mu}"
            )
        if k * s.mu > m.M:
            self._reject(
                f"group of k={k} contexts (k*mu={k * s.mu}) exceeds M={m.M}"
            )
        if s.v % (k * m.p) != 0:
            self._reject(
                f"v={s.v} must be a multiple of k*p={k * m.p} "
                "(whole groups per real processor; pad with idle virtual "
                "processors if necessary)"
            )
        if self.strict:
            self.check_theorem1()

    def describe(self) -> str:
        """The full parameter tuple, in the paper's letters, on one line.

        Appended to every :class:`ParameterError` this class raises so a
        rejected configuration (e.g. a fuzzer repro case) is self-describing
        without access to the objects that produced it.
        """
        m, s = self.machine, self.bsp
        return (
            f"machine(p={m.p}, M={m.M}, D={m.D}, B={m.B}, b={m.b}, "
            f"G={m.G:g}, g={m.g:g}, L={m.L:g}) "
            f"bsp(v={s.v}, mu={s.mu}, gamma={s.gamma}) k={self.k}"
        )

    def _reject(self, message: str) -> None:
        raise ParameterError(f"{message} [{self.describe()}]")

    # -- Theorem 1 side conditions -----------------------------------------

    def check_theorem1(self) -> list[str]:
        """Check the side conditions of Theorem 1; raise on violation.

        Returns the list of condition descriptions that were checked, so
        callers can log them.
        """
        m, s, k = self.machine, self.bsp, self.k
        checked: list[str] = []
        slack = k * m.p * m.D * m.log_MB
        if s.v < slack:
            self._reject(
                f"slackness violated: v={s.v} < k*p*D*log(M/B)={slack:.1f}"
            )
        checked.append(f"v >= k*p*D*log(M/B) ({s.v} >= {slack:.1f})")
        if m.b < m.B:
            self._reject(f"packet size b={m.b} must be >= block size B={m.B}")
        checked.append(f"b >= B ({m.b} >= {m.B})")
        if m.p > 1 and m.M / m.B < m.p**self.eps:
            self._reject(
                f"M/B={m.M / m.B:.1f} < p^eps={m.p**self.eps:.1f} "
                f"(eps={self.eps})"
            )
        checked.append("M/B >= p^eps")
        if m.b * m.log_MB > 4 * m.M:
            self._reject(
                f"b*log(M/B)={m.b * m.log_MB:.0f} must be O(M)={m.M}"
            )
        checked.append("b*log(M/B) = O(M)")
        return checked

    # -- derived quantities --------------------------------------------------

    @property
    def groups_per_processor(self) -> int:
        """Number of simulation rounds per compound superstep (``v / (k*p)``)."""
        return self.bsp.v // (self.k * self.machine.p)

    @property
    def vps_per_processor(self) -> int:
        """Virtual processors assigned to each real processor (``v / p``)."""
        return self.bsp.v // self.machine.p

    @property
    def context_blocks_per_vp(self) -> int:
        """Blocks reserved on disk for one virtual context (``ceil(mu/B)``)."""
        return -(-self.bsp.mu // self.machine.B)

    @property
    def message_blocks_per_vp(self) -> int:
        """Blocks reserved for one virtual processor's incoming messages."""
        return -(-self.bsp.gamma // self.machine.B) if self.bsp.gamma else 0

    def theoretical_io_ops_per_superstep(self) -> float:
        """The paper's bound on parallel I/O operations per compound superstep.

        Lemma 4 / Theorem 1: ``O((v/p) * mu / (D*B))`` parallel I/O operations
        per real processor per compound superstep (constant ``l`` omitted).
        """
        m, s = self.machine, self.bsp
        return (s.v / m.p) * s.mu / (m.D * m.B)
