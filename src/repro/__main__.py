"""Command-line interface: run Table 1 algorithms on a described EM machine.

Examples::

    python -m repro sort --n 8192 --disks 4 --block 64
    python -m repro permute --n 4096 --procs 4
    python -m repro listrank --n 2048 --compare-pram
    python -m repro delaunay --n 256 --v 8
    python -m repro machines --n 4096          # one algorithm, many machines

Every run prints the counted model costs (parallel I/O operations, packets,
computation) and the paper's theoretical bound for comparison.
"""

from __future__ import annotations

import argparse
import sys

from . import workloads
from .core.simulator import simulate
from .params import MachineParams


def _observer(args):
    """The run's shared Collector, or None when no telemetry flag was given.

    Created once per CLI invocation (cached on ``args``) so a multi-run
    subcommand like ``machines`` merges every run into one timeline.
    """
    profile = getattr(args, "profile", False) is True or bool(
        getattr(args, "profile_out", None)
    )
    if not (args.trace_out or args.jsonl_out or args.metrics or profile):
        return None
    obs = getattr(args, "_collector", None)
    if obs is None:
        from .obs import Collector

        obs = args._collector = Collector(profile=profile)
    return obs


def _events(args):
    """The run's RunEventLog, or None without ``--events`` (cached on args)."""
    path = getattr(args, "events", None)
    if not path:
        return None
    log = getattr(args, "_event_log", None)
    if log is None:
        from .obs import RunEventLog

        log = args._event_log = RunEventLog(path)
    return log


def _export_obs(args) -> None:
    obs = getattr(args, "_collector", None)
    if obs is None:
        return
    if args.trace_out:
        from .obs import write_chrome_trace

        n = write_chrome_trace(obs, args.trace_out)
        print(f"wrote {n} trace events to {args.trace_out} "
              "(load in https://ui.perfetto.dev)")
    if args.jsonl_out:
        from .obs import write_jsonl

        n = write_jsonl(obs, args.jsonl_out)
        print(f"wrote {n} JSONL records to {args.jsonl_out}")
    if args.metrics:
        print("metrics:")
        for name, data in sorted(obs.metrics.snapshot().items()):
            kind = data["type"]
            if kind == "histogram":
                print(f"  {name:<28} count={data['count']} sum={data['sum']:g} "
                      f"min={data['min']} max={data['max']}")
            else:
                print(f"  {name:<28} {data['value']:g}")
    if obs.profile.enabled:
        import json

        from .obs import build_report

        meta = {
            k: v
            for k, v in (
                ("command", getattr(args, "command", None)),
                ("n", getattr(args, "n", None)),
                ("p", getattr(args, "procs", None)),
                ("backend", getattr(args, "backend", None)),
                ("storage", getattr(args, "storage", None)),
                ("io_overlap", getattr(args, "io_overlap", False) or None),
            )
            if v is not None
        }
        report = build_report(obs, meta=meta)
        print(report.render())
        out = getattr(args, "profile_out", None)
        if out:
            with open(out, "w") as fh:
                json.dump(report.to_dict(), fh, indent=2)
                fh.write("\n")
            print(f"wrote profile report to {out}")


def _machine(args, mu: int) -> MachineParams:
    M = args.memory if args.memory else max(2 * mu, args.disks * args.block)
    return MachineParams(
        p=args.procs,
        M=M,
        D=args.disks,
        B=args.block,
        b=max(args.block, args.packet or args.block),
        G=args.G,
    )


def _run(args, algorithm, machine, **kw):
    """``simulate`` with the CLI's backend and observability flags applied."""
    return simulate(
        algorithm, machine, seed=args.seed,
        backend=args.backend if machine.p > 1 else "inline",
        observer=_observer(args),
        events=_events(args),
        storage=getattr(args, "storage", "memory"),
        storage_dir=getattr(args, "storage_dir", None),
        io_overlap=getattr(args, "io_overlap", False),
        **kw,
    )


def _report(name: str, report, n: int) -> None:
    machine = report.params.machine
    led = report.ledger
    scan = max(n / machine.io_bandwidth, 1e-9)
    print(f"{name}: v={report.params.bsp.v}, k={report.params.k}, "
          f"p={machine.p}, D={machine.D}, B={machine.B}, M={machine.M}")
    print(f"  compound supersteps (lambda) : {report.num_supersteps}")
    print(f"  parallel I/O operations      : {report.io_ops} "
          f"({report.io_ops / scan:.1f} scans of the data)")
    print(f"  theoretical bound v*mu*lambda/(p*B*D) : "
          f"{report.theoretical_io_bound():.0f}")
    print(f"  communication packets        : {led.total_comm_packets}")
    print(f"  computation operations       : {led.total_comp:.0f}")
    print(f"  model time (G={machine.G:g}, g={machine.g:g}, L={machine.L:g}) : "
          f"{led.total_time():.0f}")
    print(f"  Lemma 2 max disk deviation   : {report.max_load_ratio:.2f}")


def cmd_sort(args) -> int:
    from .algorithms import CGMSampleSort

    data = workloads.uniform_keys(args.n, seed=args.seed)
    alg = CGMSampleSort(data, args.v)
    out, report = _run(
        args, CGMSampleSort(data, args.v), _machine(args, alg.context_size()),
        v=args.v,
    )
    flat = [x for part in out for x in part]
    assert flat == sorted(data)
    _report(f"sorted {args.n} keys", report, args.n)
    if args.compare_baselines:
        from .baselines import EMMergeSort, SibeynKaufmannSimulation

        machine = _machine(args, alg.context_size())
        if machine.p == 1:
            _, st = EMMergeSort(machine).sort(data)
            print(f"  baseline EM mergesort        : {st.io_ops} I/O ops")
        _, sk = SibeynKaufmannSimulation(
            CGMSampleSort(data, args.v), args.v, machine.with_(p=1)
        ).run()
        print(f"  baseline Sibeyn-Kaufmann sim : {sk.io_ops} I/O ops")
    return 0


def cmd_permute(args) -> int:
    from .algorithms import CGMPermutation

    vals = list(range(args.n))
    perm = workloads.random_permutation(args.n, seed=args.seed)
    alg = CGMPermutation(vals, perm, args.v)
    out, report = _run(
        args, CGMPermutation(vals, perm, args.v), _machine(args, alg.context_size()),
        v=args.v,
    )
    y = [x for part in out for x in part]
    assert all(y[perm[i]] == vals[i] for i in range(args.n))
    _report(f"permuted {args.n} records", report, args.n)
    if args.compare_baselines and args.procs == 1:
        from .baselines import NaiveEMPermute

        _, st = NaiveEMPermute(_machine(args, alg.context_size())).permute(vals, perm)
        print(f"  baseline naive permutation   : {st.io_ops} I/O ops")
    return 0


def cmd_transpose(args) -> int:
    from .algorithms import CGMMatrixTranspose

    r = args.rows or int(args.n**0.5)
    c = args.n // r
    entries = workloads.matrix_entries(r, c, seed=args.seed)
    alg = CGMMatrixTranspose(entries, r, c, args.v)
    _, report = _run(
        args, CGMMatrixTranspose(entries, r, c, args.v),
        _machine(args, alg.context_size()), v=args.v,
    )
    _report(f"transposed a {r}x{c} matrix", report, r * c)
    return 0


def cmd_listrank(args) -> int:
    from .algorithms.graphs import CGMListRanking

    succ = workloads.random_linked_list(args.n, seed=args.seed)
    alg = CGMListRanking(succ, args.v)
    _, report = _run(
        args, CGMListRanking(succ, args.v), _machine(args, alg.context_size()),
        v=args.v,
    )
    _report(f"ranked a {args.n}-node list", report, args.n)
    if args.compare_pram and args.procs == 1:
        from .baselines import PRAMListRanking

        _, st = PRAMListRanking(_machine(args, alg.context_size())).rank(succ)
        print(f"  baseline PRAM simulation     : {st.io_ops} I/O ops "
              f"({st.io_ops / max(report.io_ops, 1):.1f}x)")
    return 0


def cmd_cc(args) -> int:
    from .algorithms.graphs import CGMConnectedComponents

    nv = args.n
    edges = workloads.random_graph_edges(nv, 2 * nv, seed=args.seed)
    alg = CGMConnectedComponents(nv, edges, args.v)
    out, report = _run(
        args, CGMConnectedComponents(nv, edges, args.v),
        _machine(args, alg.context_size()), v=args.v,
    )
    ncomp = len({lbl for part in out for _vtx, lbl in part})
    _report(f"connected components (V={nv}, E={2 * nv}): {ncomp} found",
            report, 3 * nv)
    return 0


def cmd_hull(args) -> int:
    from .algorithms.geometry import CGMConvexHull

    pts = workloads.random_points(args.n, seed=args.seed)
    alg = CGMConvexHull(pts, args.v)
    out, report = _run(
        args, CGMConvexHull(pts, args.v), _machine(args, alg.context_size()),
        v=args.v,
    )
    _report(f"2D hull of {args.n} points: {len(out[0])} vertices", report, args.n)
    return 0


def cmd_delaunay(args) -> int:
    from .algorithms.geometry import CGMDelaunay

    pts = workloads.random_points(args.n, seed=args.seed)
    alg = CGMDelaunay(pts, args.v)
    out, report = _run(
        args, CGMDelaunay(pts, args.v), _machine(args, alg.context_size()),
        v=args.v,
    )
    ntris = sum(len(part) for part in out)
    _report(f"Delaunay triangulation of {args.n} points: {ntris} triangles",
            report, args.n)
    return 0


def cmd_conform(args) -> int:
    """Differential conformance fuzzing (see :mod:`repro.conform`)."""
    from .conform import ReproCase, fuzz, run_case
    from .conform.strategies import DEFAULT, QUICK

    if args.repro:
        case = ReproCase.load(args.repro)
        print(f"replaying {args.repro}: oracle={case.oracle}")
        print(f"  config: {case.config.describe()}")
        result = run_case(case.config)
        if result.passed:
            print("  case no longer fails (all oracles passed)")
            return 0
        for failure in result.failures:
            print(f"  {failure}")
        reproduced = any(f.oracle == case.oracle for f in result.failures)
        print(
            f"  reproduced the recorded {case.oracle!r} failure"
            if reproduced
            else f"  failed, but not on the recorded oracle {case.oracle!r}"
        )
        return 1

    profile = QUICK if args.profile == "quick" else DEFAULT
    stats = fuzz(
        seed=args.seed,
        budget=args.budget,
        time_limit=args.time_limit,
        profile=profile,
        out_dir=args.out_dir,
        shrink_budget=args.shrink_budget,
        log=print if args.verbose else None,
    )
    note = " (time limit reached)" if stats.time_limited else ""
    print(
        f"conform: seed={stats.seed} ran {stats.cases_run}/{stats.budget} "
        f"cases in {stats.elapsed:.1f}s{note}"
    )
    for name, count in sorted(stats.checks.items()):
        print(f"  {name:<24} {count} checks")
    if stats.passed:
        print("  all oracles passed")
        return 0
    for repro in stats.failures:
        print(f"  FAIL [{repro.oracle}] case {repro.case_index}: {repro.message}")
        print(f"       shrunk config: {repro.config.describe()}")
    return 1


def cmd_bakeoff(args) -> int:
    """Counted-cost competitor bake-off (see :mod:`repro.bakeoff`)."""
    import json

    from .bakeoff import format_table, run_sweep, validate_bakeoff_dict

    payload = run_sweep(
        quick=args.quick,
        backend=args.backend,
        storage=args.storage,
        p_cgm=args.procs,
    )
    validate_bakeoff_dict(payload)
    headers = ["task", "n", "M", "B", "D", "mode"] + list(payload["engines"])
    rows = format_table(payload)
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)
    ]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    if args.out:
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
    print(
        f"bakeoff: {payload['configs']} configs x {len(payload['tasks'])} "
        f"tasks, backend={payload['backend']} storage={payload['storage']} "
        f"p_cgm={payload['p_cgm']}"
    )
    if payload["violations"] or payload["mismatches"]:
        for msg in payload["mismatches"]:
            print(f"  OUTPUT MISMATCH: {msg}")
        for msg in payload["violations"]:
            print(f"  BOUND VIOLATION: {msg}")
        return 1
    print("  all outputs byte-identical to reference; zero bound violations")
    return 0


def cmd_crashcheck(args) -> int:
    """Exhaustive crash-point exploration (see :mod:`repro.crashcheck`)."""
    import tempfile

    from .conform.config import ConformConfig, WORKLOADS
    from .crashcheck import explore

    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r} (choose from {WORKLOADS})",
              file=sys.stderr)
        return 2
    if args.storage == "memory":
        print("crashcheck injects byte-level damage: pass --storage file "
              "or --storage mmap", file=sys.stderr)
        return 2
    cfg = ConformConfig(
        workload=args.workload, n=args.n, v=args.v, data_seed=args.seed,
    )
    machine = _machine(args, cfg.algorithm().context_size())
    scratch = args.dir or tempfile.mkdtemp(prefix="repro-crashcheck-")
    print(f"crashcheck: {args.workload} n={args.n} v={args.v} "
          f"p={machine.p} D={machine.D} B={machine.B} M={machine.M} "
          f"storage={args.storage} backend={args.backend}"
          f"{' io_overlap' if getattr(args, 'io_overlap', False) else ''}")
    print(f"  scratch root: {scratch}")
    result = explore(
        cfg.algorithm, machine, args.v, scratch,
        seed=args.seed, crash_seed=args.crash_seed,
        backend=args.backend, storage=args.storage,
        io_overlap=getattr(args, "io_overlap", False),
        observer=_observer(args),
        log=print if args.verbose else None,
    )
    actions = {}
    for o in result.outcomes:
        kind = o.action.split("@")[0]
        actions[kind] = actions.get(kind, 0) + 1
    summary = ", ".join(f"{n} {k}" for k, n in sorted(actions.items()))
    print(f"  {result.checkpoints} checkpoints, {result.total_points} crash "
          f"points explored ({summary}), "
          f"{result.extents_verified} extents scrub-verified")
    if result.passed:
        print("  every crash point recovered to the golden outputs and costs")
        if args.dir is None:
            import shutil

            shutil.rmtree(scratch, ignore_errors=True)
        return 0
    for o in result.failures:
        print(f"  FAIL point {o.point} [{o.stage}] {o.action}: {o.detail}")
    print(f"  storage roots kept for post-mortem under {scratch}")
    return 1


#: Workloads ``repro perf report`` can run instrumented.
_PERF_WORKLOADS = {}  # populated after the cmd_* definitions below


def cmd_perf_report(args) -> int:
    """Print a wall-clock attribution breakdown (see DESIGN.md §11).

    Either replays a saved ``--profile-out`` JSON (``--load``) or runs one
    instrumented workload; ``--trace-out`` additionally emits the
    category-colored Perfetto trace of the same run.
    """
    if args.load:
        import json

        from .obs import ProfileReport

        with open(args.load) as fh:
            report = ProfileReport.from_dict(json.load(fh))
        print(report.render())
        return 0
    args.profile = True  # the attribution table is the whole point
    return _PERF_WORKLOADS[args.workload](args)


def cmd_perf_trend(args) -> int:
    """Compare the latest bench entry against its trajectory."""
    from .obs.trend import compare_trend, load_history

    history = load_history(args.history)
    verdict = compare_trend(
        history, window=args.window, threshold=args.threshold
    )
    print(verdict.render())
    if verdict.status == "counted_drift":
        return 1  # hard: counted costs must never drift
    if verdict.status == "regressed":
        return 1 if args.strict else 0  # soft unless --strict
    return 0


def cmd_watch(args) -> int:
    """Tail a ``--events`` JSONL file, one human line per event."""
    from .obs import tail_events
    from .obs.live import format_event

    try:
        for ev in tail_events(
            args.file, follow=args.follow, timeout=args.timeout
        ):
            print(format_event(ev), flush=True)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def cmd_machines(args) -> int:
    from .algorithms import CGMPermutation

    vals = list(range(args.n))
    perm = workloads.random_permutation(args.n, seed=args.seed)
    mu = CGMPermutation(vals, perm, args.v).context_size()
    print(f"permutation of n={args.n} on four machines (same algorithm):\n")
    print(f"{'machine':<30}{'io_ops':>8}{'packets':>9}{'model time':>12}")
    for name, p, D, B in (
        ("laptop    p=1 D=1 B=32", 1, 1, 32),
        ("workstn   p=1 D=4 B=64", 1, 4, 64),
        ("diskarray p=1 D=8 B=128", 1, 8, 128),
        ("cluster   p=4 D=2 B=64", 4, 2, 64),
    ):
        machine = MachineParams(p=p, M=2 * mu, D=D, B=B, b=B, G=args.G)
        _, rep = _run(args, CGMPermutation(vals, perm, args.v), machine, v=args.v)
        print(f"{name:<30}{rep.io_ops:>8}{rep.ledger.total_comm_packets:>9}"
              f"{rep.ledger.total_time():>12.0f}")
    return 0


_PERF_WORKLOADS.update(
    sort=cmd_sort,
    permute=cmd_permute,
    transpose=cmd_transpose,
    listrank=cmd_listrank,
    cc=cmd_cc,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run coarse-grained parallel algorithms as external-memory "
        "algorithms (Dehne-Dittrich-Hutchinson simulation).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--n", type=int, default=4096, help="problem size")
        p.add_argument("--v", type=int, default=8, help="virtual processors")
        p.add_argument("--procs", "-p", type=int, default=1, help="real processors")
        p.add_argument("--disks", "-D", type=int, default=4, help="disks per processor")
        p.add_argument("--block", "-B", type=int, default=64, help="disk block size (records)")
        p.add_argument("--packet", "-b", type=int, default=None, help="router packet size")
        p.add_argument("--memory", "-M", type=int, default=None,
                       help="memory per processor (default: 2 contexts)")
        p.add_argument("--G", type=float, default=1.0, help="I/O cost coefficient")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--backend", choices=("inline", "process"), default="inline",
                       help="parallel-engine backend (used when p > 1)")
        p.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write a Chrome trace-event file (Perfetto-loadable)")
        p.add_argument("--jsonl-out", metavar="FILE", default=None,
                       help="write the raw telemetry as JSON lines")
        p.add_argument("--metrics", action="store_true",
                       help="print the run's metrics registry")
        p.add_argument("--storage", choices=("memory", "file", "mmap"),
                       default="memory",
                       help="block-storage plane backing the simulated disks "
                            "(file/mmap run truly out-of-core; outputs and "
                            "ledgers are identical to memory)")
        p.add_argument("--storage-dir", metavar="DIR", default=None,
                       help="directory for track files on non-memory planes "
                            "(default: a private tempdir removed after the run)")
        p.add_argument("--io-overlap", action="store_true",
                       help="overlap host I/O with computation on non-memory "
                            "planes (bounded write-behind + readahead; "
                            "outputs, ledgers, and checkpoint bytes are "
                            "identical to the synchronous plane)")
        p.add_argument("--profile", action="store_true",
                       help="collect the wall-clock attribution profile and "
                            "print the breakdown table after the run "
                            "(counted costs and outputs are unchanged)")
        p.add_argument("--profile-out", metavar="FILE", default=None,
                       help="save the profile report as JSON (implies the "
                            "profiler; replay with 'repro perf report --load')")
        p.add_argument("--events", metavar="FILE", default=None,
                       help="stream run/superstep lifecycle events to FILE as "
                            "line-flushed JSONL ('repro watch FILE' tails it)")

    for name, fn, extra in (
        ("sort", cmd_sort, ["--compare-baselines"]),
        ("permute", cmd_permute, ["--compare-baselines"]),
        ("transpose", cmd_transpose, ["--rows"]),
        ("listrank", cmd_listrank, ["--compare-pram"]),
        ("cc", cmd_cc, []),
        ("hull", cmd_hull, []),
        ("delaunay", cmd_delaunay, []),
        ("machines", cmd_machines, []),
    ):
        p = sub.add_parser(name)
        common(p)
        for flag in extra:
            if flag == "--rows":
                p.add_argument(flag, type=int, default=None)
            else:
                p.add_argument(flag, action="store_true")
        p.set_defaults(func=fn)

    p = sub.add_parser(
        "conform",
        help="differential conformance fuzzing of randomized configurations",
    )
    p.add_argument("--seed", type=int, default=0, help="fuzzer seed")
    p.add_argument("--budget", type=int, default=100,
                   help="number of random configurations to run")
    p.add_argument("--time-limit", type=float, default=None, metavar="SECONDS",
                   help="stop drawing new cases after this much wall-clock")
    p.add_argument("--repro", metavar="CASE.json", default=None,
                   help="replay a serialized ReproCase instead of fuzzing")
    p.add_argument("--out-dir", default="conform-cases",
                   help="directory for failing ReproCase JSON files")
    p.add_argument("--profile", choices=("default", "quick"), default="default",
                   help="strategy profile (quick: small configs, no workers)")
    p.add_argument("--shrink-budget", type=int, default=80,
                   help="max verification runs the shrinker may spend")
    p.add_argument("--verbose", action="store_true",
                   help="print every case as it runs")
    p.set_defaults(func=cmd_conform, trace_out=None, jsonl_out=None,
                   metrics=False)

    p = sub.add_parser(
        "bakeoff",
        help="counted-cost competitor bake-off: modern PDM sorters and the "
             "buffer tree vs the simulated CGM engine on identical machines",
    )
    p.add_argument("--quick", action="store_true",
                   help="run the small CI subset of the sweep")
    p.add_argument("--backend", choices=("inline", "process"),
                   default="inline",
                   help="execution backend for the CGM side")
    p.add_argument("--storage", choices=("memory", "file", "mmap"),
                   default="memory",
                   help="storage plane for every engine (counted-cost "
                        "invisible)")
    p.add_argument("--procs", type=int, default=1,
                   help="real processors for the CGM side (competitors are "
                        "sequential by definition)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the BENCH_BAKEOFF JSON payload here")
    p.set_defaults(func=cmd_bakeoff, trace_out=None, jsonl_out=None,
                   metrics=False)

    p = sub.add_parser(
        "crashcheck",
        help="crash at every fsync/rename boundary of a checkpointed run "
             "and verify each recovery against the golden outputs",
    )
    common(p)
    p.set_defaults(func=cmd_crashcheck, n=64, v=4, block=16,
                   storage="file")
    p.add_argument("--workload", default="sort",
                   help="conformance workload to explore (default: sort)")
    p.add_argument("--crash-seed", type=int, default=7,
                   help="seed of the injected byte damage (torn cut points, "
                        "which pre-fsync writes are lost)")
    p.add_argument("--dir", metavar="DIR", default=None,
                   help="scratch root for the per-point storage dirs "
                        "(default: a fresh temp directory, kept on failure)")
    p.add_argument("--verbose", action="store_true",
                   help="print every crash point as it is explored")

    p = sub.add_parser(
        "perf",
        help="wall-clock attribution reports and bench-trajectory trends",
    )
    perf_sub = p.add_subparsers(dest="perf_command", required=True)

    p = perf_sub.add_parser(
        "report",
        help="run one instrumented workload and print where the wall-clock "
             "went (or --load a saved report); --trace-out adds the "
             "category-colored Perfetto trace",
    )
    common(p)
    p.add_argument("--workload", choices=sorted(_PERF_WORKLOADS),
                   default="sort",
                   help="workload to run instrumented (default: sort)")
    p.add_argument("--load", metavar="REPORT.json", default=None,
                   help="print a saved --profile-out report instead of running")
    p.set_defaults(func=cmd_perf_report, compare_baselines=False,
                   compare_pram=False, rows=None)

    p = perf_sub.add_parser(
        "trend",
        help="compare the latest BENCH_HISTORY.jsonl entry against its "
             "same-host trajectory (soft wall-clock verdict, hard counted "
             "drift)",
    )
    p.add_argument("--history", metavar="FILE",
                   default="benchmarks/BENCH_HISTORY.jsonl",
                   help="history file written by benchmarks/bench_perf.py")
    p.add_argument("--window", type=int, default=8,
                   help="prior same-host entries in the trajectory median")
    p.add_argument("--threshold", type=float, default=1.5,
                   help="wall-clock ratio above the median that regresses")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on a soft wall-clock regression too "
                        "(counted drift always fails)")
    p.set_defaults(func=cmd_perf_trend, trace_out=None, jsonl_out=None,
                   metrics=False)

    p = sub.add_parser(
        "watch",
        help="tail a --events JSONL file, one human line per event",
    )
    p.add_argument("file", help="event log written by --events")
    p.add_argument("--follow", "-f", action="store_true",
                   help="keep polling for new events until run_finished")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="with --follow, stop after this long without growth")
    p.set_defaults(func=cmd_watch, trace_out=None, jsonl_out=None,
                   metrics=False)

    args = parser.parse_args(argv)
    rc = args.func(args)
    _export_obs(args)
    log = getattr(args, "_event_log", None)
    if log is not None:
        log.close()
        print(f"wrote run events to {log.path}")
    return rc


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (e.g. `repro watch ... |
        # head`): exit quietly, redirecting stdout so the interpreter's
        # shutdown flush doesn't raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
