"""Algorithm 1 — **SeqCompoundSuperstep**: BSP* on a single-processor EM machine.

Simulates a ``v``-processor BSP* algorithm on one real processor with ``D``
disks and ``M`` records of memory.  Virtual processors are swapped through
memory in groups of ``k = floor(M/mu)``; per compound superstep and group:

1. *Fetching phase* — read the group's contexts (Step 1(a)) and incoming
   message blocks (Step 1(b)) from their standard-consecutive regions.
2. *Computation phase* — run the group's supersteps in memory (Step 1(c)).
3. *Writing phase* — cut generated messages into blocks of ``B``, write them
   to randomly permuted disks into ``D`` destination buckets in standard
   linked format (Step 1(d)), and write the changed contexts back (Step 1(e)).

After all ``v/k`` groups, Step 2 (:func:`repro.core.routing.simulate_routing`,
the paper's Algorithm 2) reorganizes the buckets into the next superstep's
incoming region.

The execution is *transparent*: outputs are identical to the in-memory
reference runner for every algorithm and every valid parameter choice
(invariant I3), while every byte travels through the simulated disks under
the blocking and parallelism discipline of the EM-BSP model.
"""

from __future__ import annotations

import random
from typing import Any

from ..bsp.message import blocks_to_messages, message_to_blocks
from ..bsp.program import AlgorithmError, BSPAlgorithm, VPContext
from ..costs import CostLedger, packets_for
from ..emio.disk import Block
from ..emio.diskarray import DiskArray
from ..emio.layout import RegionAllocator, StripedRegion
from ..emio.linked import LinkedBuckets
from ..params import ParameterError, SimulationParams
from .context import ContextStore
from .routing import simulate_routing
from .stats import PhaseBreakdown, SimulationReport, SuperstepReport

__all__ = ["SequentialEMSimulation"]


class SequentialEMSimulation:
    """Runs a :class:`BSPAlgorithm` under Algorithm 1 (single real processor).

    Parameters
    ----------
    algorithm:
        The BSP*/CGM algorithm to simulate.
    params:
        Joint machine/virtual-machine parameters (``params.machine.p`` must
        be 1; use :class:`~repro.core.parsim.ParallelEMSimulation` otherwise).
    seed:
        Seed of the random disk-write permutations (Step 1(d)).
    pad_to_gamma:
        If True, pad every group's message traffic with dummy blocks to the
        worst case ``k * ceil(gamma/B)`` the analysis assumes (Lemma 3's
        "introduction of dummy blocks").  Costs rise to the analytic bound;
        results are unaffected.
    enforce_gamma:
        Enforce the declared per-superstep communication bound on both the
        sending and receiving side.
    round_robin_writes:
        Ablation switch: replace the random write permutation with a
        deterministic rotation (see the ABL benchmark).
    write_schedule:
        Explicit disk-write schedule ("random", "rotate", "static",
        "balance"); overrides ``round_robin_writes``.  "balance" is the
        paper's deterministic variant for predetermined (CGM) traffic.
    """

    def __init__(
        self,
        algorithm: BSPAlgorithm,
        params: SimulationParams,
        seed: int = 0,
        pad_to_gamma: bool = False,
        enforce_gamma: bool = True,
        round_robin_writes: bool = False,
        write_schedule: str | None = None,
    ):
        if params.machine.p != 1:
            raise ParameterError(
                f"SequentialEMSimulation requires p=1, got p={params.machine.p}"
            )
        self.algorithm = algorithm
        self.params = params
        self.rng = random.Random(seed)
        self.pad_to_gamma = pad_to_gamma
        self.enforce_gamma = enforce_gamma
        self.write_schedule = write_schedule or (
            "rotate" if round_robin_writes else "random"
        )

        m = params.machine
        self.array = DiskArray(m.D, m.B)
        self.allocator = RegionAllocator(self.array)
        self.ledger = CostLedger(m)
        self.report = SimulationReport(params=params, ledger=self.ledger)

    # -- helpers -------------------------------------------------------------------

    def _bucket_of(self, dest: int) -> int:
        """Bucket ``i`` holds blocks for the ``i``-th range of ``v/D`` vps."""
        v, D = self.params.bsp.v, self.params.machine.D
        return dest * D // v

    def _io_delta(self, since: int) -> int:
        return self.array.parallel_ops - since

    # -- main entry ------------------------------------------------------------------

    def run(self) -> tuple[list[Any], SimulationReport]:
        """Simulate to completion; return (per-vp outputs, report)."""
        alg = self.algorithm
        p = self.params
        v, k = p.bsp.v, p.k
        B = p.machine.B
        gamma = alg.comm_bound() if self.enforce_gamma else None
        gpb = -(-p.bsp.gamma // B) if p.bsp.gamma else 0
        groups = v // k

        contexts = ContextStore(
            self.array, self.allocator, v, p.bsp.mu, B, name="contexts"
        )

        # ---- load input: create and store initial contexts, k at a time ----
        ops0 = self.array.parallel_ops
        for g in range(groups):
            slots = list(range(g * k, (g + 1) * k))
            states = [alg.initial_state(pid, v) for pid in slots]
            contexts.save_group(slots, states)
        self.report.init_io_ops = self._io_delta(ops0)

        incoming: StripedRegion | None = None

        for step in range(alg.MAX_SUPERSTEPS):
            cost = self.ledger.begin_superstep(label=f"superstep {step}")
            phases = PhaseBreakdown()
            buckets = LinkedBuckets(
                self.array,
                self.allocator,
                nbuckets=p.machine.D,
                bucket_of=self._bucket_of,
                rng=self.rng,
                schedule=self.write_schedule,
            )
            all_halted = True
            blocks_generated = 0
            sent_packets = [0] * v
            recv_packets = [0] * v
            dummy_rr = 0

            for g in range(groups):
                slots = list(range(g * k, (g + 1) * k))

                # -- Fetching phase: Step 1(a) contexts, Step 1(b) messages --
                t = self.array.parallel_ops
                states = contexts.load_group(slots)
                phases.fetch_context += self._io_delta(t)

                t = self.array.parallel_ops
                if incoming is not None:
                    group_blocks = incoming.read_slots(slots)
                else:
                    group_blocks = [[] for _ in slots]
                phases.fetch_messages += self._io_delta(t)

                # -- Computation phase: Step 1(c) --
                group_out_blocks: list[Block] = []
                new_states = []
                for pid, state, blks in zip(slots, states, group_blocks):
                    msgs = blocks_to_messages(blks)
                    if gamma is not None:
                        nrecv = sum(m.size for m in msgs)
                        if nrecv > gamma:
                            raise AlgorithmError(
                                f"vp {pid} received {nrecv} records in superstep "
                                f"{step}, exceeding gamma={gamma}"
                            )
                    ctx = VPContext(pid, v, step, state, msgs, comm_bound=gamma)
                    alg.superstep(ctx)
                    new_states.append(ctx.state)
                    if not ctx.halted:
                        all_halted = False
                    cost.comp_ops += ctx.comp_ops
                    for mi, m in enumerate(ctx.outbox):
                        pk = packets_for(max(m.size, 1), p.machine.b)
                        sent_packets[pid] += pk
                        recv_packets[m.dest] += pk
                        cost.records_sent += m.size
                        group_out_blocks.extend(message_to_blocks(m, B, mi))

                # -- Writing phase: Step 1(d) messages, Step 1(e) contexts --
                if self.pad_to_gamma:
                    want = k * gpb
                    while len(group_out_blocks) < want:
                        group_out_blocks.append(
                            Block(records=[], dest=dummy_rr % v, dummy=True)
                        )
                        dummy_rr += 1
                t = self.array.parallel_ops
                buckets.append_blocks(group_out_blocks)
                phases.write_messages += self._io_delta(t)
                blocks_generated += sum(
                    0 if b.dummy else 1 for b in group_out_blocks
                )

                t = self.array.parallel_ops
                contexts.save_group(slots, new_states)
                phases.write_context += self._io_delta(t)

            # -- Step 2: reorganize the generated blocks (Algorithm 2) --
            t = self.array.parallel_ops
            new_incoming, routing = simulate_routing(
                self.array,
                self.allocator,
                buckets,
                nslots=v,
                slot_of=lambda dest: dest,
                name=f"incoming@{step + 1}",
            )
            phases.reorganize += self._io_delta(t)
            buckets.free()
            if incoming is not None:
                incoming.free()
            incoming = new_incoming

            # BSP*-equivalent communication cost of the *virtual* machine
            # (diagnostic; the real machine has p=1 and no router traffic).
            cost.comm_packets = max(
                (sent_packets[i] + recv_packets[i] for i in range(v)), default=0
            )
            cost.io_ops = phases.total
            cost.records_io = phases.total * p.machine.D * B

            self.report.supersteps.append(
                SuperstepReport(
                    index=step,
                    phases=phases,
                    routing=routing,
                    comm_packets=cost.comm_packets,
                    message_blocks=blocks_generated,
                    halted=all_halted,
                )
            )

            if all_halted and blocks_generated == 0:
                break
        else:
            raise AlgorithmError(
                f"algorithm did not halt within MAX_SUPERSTEPS={alg.MAX_SUPERSTEPS}"
            )

        self.ledger.close()

        # ---- unload output, k contexts at a time ----
        ops0 = self.array.parallel_ops
        outputs: list[Any] = []
        for g in range(groups):
            slots = list(range(g * k, (g + 1) * k))
            for pid, state in zip(slots, contexts.load_group(slots)):
                outputs.append(alg.output(pid, state))
        self.report.output_io_ops = self._io_delta(ops0)
        self.report.disk_space_tracks = self.allocator.high_water
        return outputs, self.report
