"""Algorithm 1 — **SeqCompoundSuperstep**: BSP* on a single-processor EM machine.

Simulates a ``v``-processor BSP* algorithm on one real processor with ``D``
disks and ``M`` records of memory.  Virtual processors are swapped through
memory in groups of ``k = floor(M/mu)``; per compound superstep and group:

1. *Fetching phase* — read the group's contexts (Step 1(a)) and incoming
   message blocks (Step 1(b)) from their standard-consecutive regions.
2. *Computation phase* — run the group's supersteps in memory (Step 1(c)).
3. *Writing phase* — cut generated messages into blocks of ``B``, write them
   to randomly permuted disks into ``D`` destination buckets in standard
   linked format (Step 1(d)), and write the changed contexts back (Step 1(e)).

After all ``v/k`` groups, Step 2 (:func:`repro.core.routing.simulate_routing`,
the paper's Algorithm 2) reorganizes the buckets into the next superstep's
incoming region.

The execution is *transparent*: outputs are identical to the in-memory
reference runner for every algorithm and every valid parameter choice
(invariant I3), while every byte travels through the simulated disks under
the blocking and parallelism discipline of the EM-BSP model.

Robustness (``faults``/``retry``/``checkpoint`` knobs): the disk substrate
can inject transient errors, corruption, latency spikes, and permanent disk
death (:mod:`repro.emio.faults`).  Transient faults are masked inside
:class:`~repro.emio.diskarray.DiskArray` by bounded retries; fatal faults
(lost data, a died drive mid-access, an exhausted retry budget) surface as
exceptions and are handled here by restoring the last compound-superstep
checkpoint and re-running only the failed superstep — the barrier is a
natural recovery line because nothing survives it except the contexts, the
incoming region, the RNG state, and the ledger
(:mod:`repro.core.checkpoint`).  Because message reassembly sorts blocks by
(source, message, sequence) and the computation is deterministic, neither
degraded-mode block placement nor a superstep re-run can change the
simulated algorithm's outputs.
"""

from __future__ import annotations

import random
from typing import Any

from ..bsp.message import blocks_to_messages, message_to_blocks
from ..bsp.program import AlgorithmError, BSPAlgorithm, VPContext
from ..costs import CostLedger, packets_for
from ..emio.disk import Block
from ..emio.diskarray import DiskArray
from ..emio.faults import FATAL_IO_FAULTS, CrashPlan, FaultPlan, HostCrash, RetryPolicy
from ..emio.layout import RegionAllocator, StripedRegion
from ..emio.linked import LinkedBuckets
from ..emio.storage import StorageSpec, default_overlap_budget, resolve_storage
from ..obs.live import RunEventLog
from ..obs.spans import NULL_OBSERVER, Collector
from ..params import ParameterError, SimulationParams
from .checkpoint import (
    CheckpointJournal,
    SimulationAborted,
    SuperstepCheckpoint,
    freeze,
    thaw,
)
from .context import ContextStore
from .routing import simulate_routing
from .stats import FaultReport, PhaseBreakdown, SimulationReport, SuperstepReport

__all__ = ["SequentialEMSimulation"]


class SequentialEMSimulation:
    """Runs a :class:`BSPAlgorithm` under Algorithm 1 (single real processor).

    Parameters
    ----------
    algorithm:
        The BSP*/CGM algorithm to simulate.
    params:
        Joint machine/virtual-machine parameters (``params.machine.p`` must
        be 1; use :class:`~repro.core.parsim.ParallelEMSimulation` otherwise).
    seed:
        Seed of the random disk-write permutations (Step 1(d)).
    pad_to_gamma:
        If True, pad every group's message traffic with dummy blocks to the
        worst case ``k * ceil(gamma/B)`` the analysis assumes (Lemma 3's
        "introduction of dummy blocks").  Costs rise to the analytic bound;
        results are unaffected.
    enforce_gamma:
        Enforce the declared per-superstep communication bound on both the
        sending and receiving side.
    round_robin_writes:
        Ablation switch: replace the random write permutation with a
        deterministic rotation (see the ABL benchmark).
    write_schedule:
        Explicit disk-write schedule ("random", "rotate", "static",
        "balance"); overrides ``round_robin_writes``.  "balance" is the
        paper's deterministic variant for predetermined (CGM) traffic.
    faults:
        A :class:`~repro.emio.faults.FaultPlan` to inject disk faults, or
        None for a healthy array.
    retry:
        :class:`~repro.emio.faults.RetryPolicy` bounding the transient-fault
        retries (defaults to ``RetryPolicy()`` whenever ``faults`` is given).
    checkpoint:
        Take a host-side checkpoint at every compound-superstep barrier and
        recover from fatal I/O faults by restoring it.  Off by default: the
        checkpoint reads are charged as real parallel I/O.
    max_recoveries:
        Fatal-fault recovery budget; exceeding it raises
        :class:`~repro.core.checkpoint.SimulationAborted` carrying the last
        good checkpoint (hand it to :meth:`resume_from_checkpoint`).
    context_cache:
        Context-swap fast path: keep pickled context bytes host-side with a
        dirty bit; swaps charge the identical counted I/O without moving
        block data (see :class:`~repro.core.context.ContextStore`).  Model
        costs and outputs are unchanged; only host wall-clock improves.
    fast_io:
        Enable the disk array's fast data plane — counted-cost-identical
        short-circuits of the parallel primitives, legal only on a healthy,
        untraced array (auto-disabled otherwise).
    observer:
        Optional :class:`~repro.obs.spans.Collector` receiving nested spans
        (superstep > phase), per-disk counter samples, and run metrics.
        Purely read-only at phase boundaries: counted costs, outputs, and
        reports are byte-identical with and without it, and the fast data
        plane stays available (unlike :meth:`repro.emio.trace.IOTrace.attach`).
        A ``Collector(profile=True)`` additionally receives the wall-clock
        attribution profile (DESIGN §11): the engine installs the
        collector's :class:`~repro.obs.profile.CategoryProfiler` into its
        disk array (and therefore the storage plane) and bills each phase
        to its category.
    events:
        Optional :class:`~repro.obs.live.RunEventLog`: the engine streams
        ``run_started`` / ``superstep_started`` / ``superstep_finished`` /
        ``run_finished`` events (with counted io_ops, storage bytes moved,
        and an ETA when the log has an ``expected_steps`` hint) as
        line-flushed JSONL.  Read-only like the observer.
    storage:
        Storage plane for the simulated drives: ``"memory"`` (default),
        ``"file"``, or ``"mmap"`` — or a prebuilt
        :class:`~repro.emio.storage.StorageSpec`.  Non-memory planes hold
        every track in per-drive files, making the run truly out-of-core.
        The plane is invisible to the counted model: outputs, ledger, and
        traces are byte-identical across planes (DESIGN §8).
    storage_dir:
        Directory for the non-memory planes' track files.  Defaults to a
        private temporary directory removed when the run finishes; an
        explicit directory persists (that is what crash-resume points at).
    crash:
        A :class:`~repro.emio.faults.CrashPlan` injecting one hard host
        crash at a chosen barrier stage (torn/lost unsynced writes, or a
        kill around the journal commit).  Requires ``checkpoint=True`` and
        a non-memory plane; the run dies with
        :class:`~repro.emio.faults.HostCrash` and is meant to be scrubbed
        and resumed by a fresh engine (see ``repro crashcheck``).
    """

    def __init__(
        self,
        algorithm: BSPAlgorithm,
        params: SimulationParams,
        seed: int = 0,
        pad_to_gamma: bool = False,
        enforce_gamma: bool = True,
        round_robin_writes: bool = False,
        write_schedule: str | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        checkpoint: bool = False,
        max_recoveries: int = 8,
        context_cache: bool = False,
        fast_io: bool = False,
        observer: Collector | None = None,
        events: "RunEventLog | None" = None,
        storage: "str | StorageSpec" = "memory",
        storage_dir: str | None = None,
        io_overlap: bool = False,
        crash: CrashPlan | None = None,
    ):
        if params.machine.p != 1:
            raise ParameterError(
                f"SequentialEMSimulation requires p=1, got p={params.machine.p}"
            )
        self.algorithm = algorithm
        self.params = params
        self.rng = random.Random(seed)
        self.pad_to_gamma = pad_to_gamma
        self.enforce_gamma = enforce_gamma
        self.write_schedule = write_schedule or (
            "rotate" if round_robin_writes else "random"
        )
        self.checkpoint_enabled = checkpoint
        self.max_recoveries = max_recoveries
        self.obs = observer if observer is not None else NULL_OBSERVER
        self.events = events
        self.storage_spec = resolve_storage(storage, storage_dir)
        if io_overlap and self.storage_spec.kind != "memory":
            # Readahead/write-behind buffers are charged against the declared
            # memory budget: M/4 records' worth of bytes across the D drives.
            m = params.machine
            self.storage_spec = self.storage_spec.with_overlap(
                default_overlap_budget(m.M, m.D, Block.BYTES_PER_RECORD)
            )
        self.io_overlap = self.storage_spec.io_overlap
        if crash is not None:
            if self.storage_spec.kind == "memory" or not checkpoint:
                raise ParameterError(
                    "crash= injects byte-level damage at checkpoint barriers; "
                    "it requires checkpoint=True and a non-memory storage plane"
                )
            self.storage_spec = self.storage_spec.with_crash(crash)
        self.crash_plan = crash
        self._crash_counter = 0
        # Non-memory checkpointed runs publish every barrier atomically
        # through a journal inside the storage root (crash consistency).
        self._journal = (
            CheckpointJournal(self.storage_spec.root)
            if checkpoint and self.storage_spec.kind != "memory"
            else None
        )

        m = params.machine
        self.array = DiskArray(
            m.D, m.B, faults=faults, retry=retry, proc=0, fast_io=fast_io,
            storage=self.storage_spec,
        )
        # Thread the attribution profiler through the storage plane by
        # reference (NULL_PROFILER when the collector is unprofiled).
        self.array.set_profiler(self.obs.profile)
        self.allocator = RegionAllocator(self.array)
        self.ledger = CostLedger(m)
        self.report = SimulationReport(params=params, ledger=self.ledger)

        self.gamma = algorithm.comm_bound() if enforce_gamma else None
        self.gpb = -(-params.bsp.gamma // m.B) if params.bsp.gamma else 0
        self.groups = params.bsp.v // params.k
        self.contexts = ContextStore(
            self.array, self.allocator, params.bsp.v, params.bsp.mu, m.B,
            name="contexts", cache=context_cache,
        )

        # -- live simulation state (checkpoint/restore targets) ----------------
        self._incoming: StripedRegion | None = None
        self._buckets: LinkedBuckets | None = None
        self.last_checkpoint: SuperstepCheckpoint | None = None
        self._recoveries = 0
        self._checkpoints_taken = 0
        self._checkpoint_io_ops = 0
        self._recovery_io_ops = 0
        self._resumed_from: int | None = None

    # -- helpers -------------------------------------------------------------------

    def _bucket_of(self, dest: int) -> int:
        """Bucket ``i`` holds blocks for the ``i``-th range of ``v/D`` vps."""
        v, D = self.params.bsp.v, self.params.machine.D
        return dest * D // v

    def _io_delta(self, since: int) -> int:
        return self.array.parallel_ops - since

    def _stall_total(self) -> int:
        """Stall op-equivalents so far: retry backoff plus latency spikes."""
        inj = self.array.injector
        return self.array.stall_ops + (inj.stats.stall_ops if inj else 0)

    def _group_slots(self, g: int) -> list[int]:
        k = self.params.k
        return list(range(g * k, (g + 1) * k))

    def _sample_disks(self, buckets: LinkedBuckets | None = None) -> None:
        """Emit one timestamped sample per disk (cumulative ops, queue depth).

        Pure reads of counters the array maintains anyway, so sampling can
        never perturb the counted costs; called only when ``obs.enabled``.
        """
        for d, disk in enumerate(self.array.disks):
            self.obs.sample(f"disk{d}/ops", disk.reads + disk.writes)
            if buckets is not None:
                depth = sum(len(buckets.table[b][d]) for b in range(buckets.nbuckets))
                self.obs.sample(f"disk{d}/queue_depth", depth)
            st = disk.storage
            if st.read_bytes or st.write_bytes:
                # Non-zero only on non-memory planes, so memory-plane span
                # streams are unchanged by the storage layer's existence.
                self.obs.sample(f"disk{d}/storage_read_bytes", st.read_bytes)
                self.obs.sample(f"disk{d}/storage_write_bytes", st.write_bytes)

    def _bytes_moved(self) -> int:
        """Cumulative host bytes through the storage plane (0 on memory)."""
        return self.array.storage_read_bytes + self.array.storage_write_bytes

    def _emit_run_started(self, **extra: Any) -> None:
        if self.events is None:
            return
        p = self.params
        self.events.run_started(
            engine="sequential",
            algorithm=type(self.algorithm).__name__,
            v=p.bsp.v,
            p=1,
            D=p.machine.D,
            B=p.machine.B,
            storage=self.storage_spec.kind,
            **extra,
        )

    def _emit_run_finished(self, status: str, **extra: Any) -> None:
        if self.events is None:
            return
        self.events.run_finished(
            status,
            io_ops=self.array.parallel_ops,
            bytes_moved=self._bytes_moved(),
            **extra,
        )

    # -- main entry ------------------------------------------------------------------

    def run(self) -> tuple[list[Any], SimulationReport]:
        """Simulate to completion; return (per-vp outputs, report)."""
        self.obs.profile.start()
        self._emit_run_started()
        try:
            self._load_input()
            if self.checkpoint_enabled:
                self._guarded_checkpoint(0)
            self._run_from(0)
            return self._finish()
        except BaseException as exc:
            self._emit_run_finished("error", error=repr(exc))
            raise
        finally:
            self.obs.profile.stop()
            self._close_storage()

    def resume_from_checkpoint(
        self, ckpt: SuperstepCheckpoint
    ) -> tuple[list[Any], SimulationReport]:
        """Continue an aborted run from a checkpoint, on this (fresh) engine.

        Rewrites the checkpointed contexts and incoming region onto this
        engine's disk array, restores the RNG and the ledger, and resumes at
        ``ckpt.step`` — completed supersteps are *not* re-run.  The engine
        must have been built with the same algorithm and parameters as the
        aborted one (typically on healthy replacement hardware, so no fault
        plan).

        When the checkpoint carries storage references (non-memory plane)
        and this engine points at the *same* plane kind and ``storage_dir``,
        the on-disk track files are re-attached in place — no rehydration
        I/O — which is the fresh-process crash-recovery path.  Otherwise the
        portable pickled state in the checkpoint is rewritten as usual.
        """
        if ckpt.nprocs != 1:
            raise ParameterError(
                f"checkpoint holds {ckpt.nprocs} processors, expected 1"
            )
        self.obs.profile.start()
        self._emit_run_started(resumed_from=ckpt.step)
        try:
            self._resumed_from = ckpt.step
            self.last_checkpoint = ckpt
            refs = getattr(ckpt, "storage_refs", None)
            if self._refs_attachable(refs):
                self._attach_storage(ckpt, refs[0])
            else:
                self._restore(ckpt)
            self._run_from(ckpt.step)
            return self._finish()
        except BaseException as exc:
            self._emit_run_finished("error", error=repr(exc))
            raise
        finally:
            self.obs.profile.stop()
            self._close_storage()

    def _close_storage(self) -> None:
        self.array.close_storage()
        self.storage_spec.cleanup()

    # -- run skeleton ---------------------------------------------------------------

    def _load_input(self) -> None:
        """Create and store the initial contexts, ``k`` at a time."""
        alg, v = self.algorithm, self.params.bsp.v
        with self.obs.span("load_input", cat="layout") as sp:
            ops0 = self.array.parallel_ops
            for g in range(self.groups):
                slots = self._group_slots(g)
                states = [alg.initial_state(pid, v) for pid in slots]
                self.contexts.save_group(slots, states)
            self.report.init_io_ops = self._io_delta(ops0)
            sp.add(io_ops=self.report.init_io_ops)

    def _run_from(self, start: int) -> None:
        """Drive supersteps from ``start``, recovering from fatal faults."""
        step = start
        while True:
            if step >= self.algorithm.MAX_SUPERSTEPS:
                raise AlgorithmError(
                    "algorithm did not halt within "
                    f"MAX_SUPERSTEPS={self.algorithm.MAX_SUPERSTEPS}"
                )
            try:
                if self.events is not None:
                    self.events.superstep_started(step)
                bytes0 = self._bytes_moved()
                with self.obs.span("superstep", step=step, cat="layout") as sp:
                    finished = self._superstep(step)
                    sp.add(io_ops=self.report.supersteps[-1].phases.total)
                if not finished and self.checkpoint_enabled:
                    self._take_checkpoint(step + 1)
                self.obs.profile.mark_superstep(step)
                if self.events is not None:
                    self.events.superstep_finished(
                        step,
                        io_ops=self.report.supersteps[-1].phases.total,
                        bytes_moved=self._bytes_moved() - bytes0,
                    )
            except FATAL_IO_FAULTS as exc:
                step = self._handle_fault(exc)
                continue
            if finished:
                return
            step += 1

    def _guarded_checkpoint(self, step: int) -> None:
        """Initial checkpoint, with the same fault handling as the loop."""
        try:
            self._take_checkpoint(step)
        except FATAL_IO_FAULTS as exc:
            raise SimulationAborted(
                f"fatal I/O fault before the first checkpoint: {exc}", None
            ) from exc

    def _handle_fault(self, exc: Exception) -> int:
        """Restore the last checkpoint; return the superstep to re-run."""
        self._recoveries += 1
        if self.last_checkpoint is None:
            raise SimulationAborted(
                f"fatal I/O fault with no checkpoint to recover from "
                f"(run with checkpoint=True): {exc}",
                None,
            ) from exc
        if self._recoveries > self.max_recoveries:
            raise SimulationAborted(
                f"fatal I/O fault after exhausting max_recoveries="
                f"{self.max_recoveries}: {exc}",
                self.last_checkpoint,
            ) from exc
        self._restore(self.last_checkpoint)
        return self.last_checkpoint.step

    # -- checkpoint/restore ----------------------------------------------------------

    def _take_checkpoint(self, step: int) -> None:
        """Snapshot the barrier state reachable before superstep ``step``.

        Reading the contexts and the incoming region off the simulated disks
        is charged as real parallel I/O (``checkpoint_io_ops``); holding the
        pickled snapshot on the host side is free, like writing it to a
        durable service outside the machine model.  On non-memory planes the
        checkpoint is additionally published through the storage root's
        journal (atomic commit; see :class:`~repro.core.checkpoint.CheckpointJournal`).
        """
        self._crash_stage("torn")
        self._crash_stage("lost")
        with self.obs.span("checkpoint", step=step, cat="checkpoint") as sp:
            ops0 = self.array.parallel_ops
            states = self.contexts.export_all(group_size=self.params.k)
            if self._incoming is not None:
                inc = self._incoming
                blocks = inc.read_slots(range(inc.nslots))
                inc_blob = freeze((inc.slot_sizes, blocks))
            else:
                inc_blob = None
            self.last_checkpoint = SuperstepCheckpoint(
                step=step,
                rng_state=self.rng.getstate(),
                proc_states=[freeze(states)],
                proc_incoming=[inc_blob],
                report_blob=freeze((self.report, self.ledger)),
                dead_disks=[set(self.array.dead_disks)],
                storage_refs=self._storage_refs(),
            )
            self._checkpoints_taken += 1
            delta = self._io_delta(ops0)
            self._checkpoint_io_ops += delta
            sp.add(io_ops=delta, bytes=self.last_checkpoint.size_bytes())
        self._publish_checkpoint()

    def _crash_stage(self, stage: str) -> None:
        """One crash-stage boundary: die here if the plan's point fired.

        Counts every boundary globally (``CRASH_STAGES`` per barrier, in
        execution order) so a ``CrashPlan.crash_point`` deterministically
        names one fsync/rename boundary of the run.  The ``"torn"`` and
        ``"lost"`` stages damage the unsynced write log before dying.
        """
        plan = self.crash_plan
        if plan is None:
            return
        point = self._crash_counter
        self._crash_counter += 1
        if point != plan.crash_point:
            return
        if stage in ("torn", "lost"):
            self.array.crash_storage(stage)
        raise HostCrash(f"injected host crash at point {point} (stage {stage!r})")

    def _publish_checkpoint(self) -> None:
        """Atomically publish the barrier through the storage root's journal."""
        self._crash_stage("postsync")
        if self._journal is not None:
            with self.obs.profile.scope("checkpoint"):
                self._journal.commit(
                    self.last_checkpoint, on_stage=self._crash_stage
                )
            self.obs.metrics.counter("checkpoint/commits").inc()

    def _storage_refs(self) -> list[dict] | None:
        """Fsync and snapshot the storage plane at a checkpoint barrier.

        Only on non-memory planes: the track files are flushed to stable
        media (the durability half of the barrier contract) and the returned
        reference pins the files' live extents, so a fresh process pointed
        at the same ``storage_dir`` can re-attach them without rehydrating.
        Pure host-side bookkeeping — no counted I/O.
        """
        if self.storage_spec.kind == "memory":
            return None
        self.array.sync_storage()
        inc = self._incoming
        return [
            {
                "kind": self.storage_spec.kind,
                "root": self.storage_spec.root,
                "disks": self.array.snapshot_storage(),
                "alloc": (self.allocator.next_track, list(self.allocator._free)),
                "ctx_used": list(self.contexts._used),
                "incoming": None
                if inc is None
                else (list(inc.slot_sizes), inc.base, inc.name),
            }
        ]

    def _refs_attachable(self, refs: list[dict | None] | None) -> bool:
        return (
            refs is not None
            and len(refs) == 1
            and refs[0] is not None
            and self.storage_spec.kind != "memory"
            and refs[0]["kind"] == self.storage_spec.kind
            and refs[0]["root"] == self.storage_spec.root
        )

    def _attach_storage(self, ckpt: SuperstepCheckpoint, ref: dict) -> None:
        """Re-attach the checkpoint's on-disk track files (no rehydration).

        The engine's drives already point at the same files; installing the
        snapshot's track maps plus the allocator/region/context metadata
        re-enters the barrier without a single parallel I/O operation —
        ``recovery_io_ops`` stays 0, which is the whole point of
        checkpoint-by-reference.
        """
        with self.obs.span("recover", step=ckpt.step, cat="checkpoint") as sp:
            self.report, self.ledger = thaw(ckpt.report_blob)
            self.rng.setstate(ckpt.rng_state)
            self.array.restore_storage(ref["disks"])
            next_track, free = ref["alloc"]
            self.allocator.next_track = next_track
            self.allocator._free = sorted(tuple(run) for run in free)
            self.contexts._used = list(ref["ctx_used"])
            self.contexts.invalidate_cache()
            # Cache-mode saves are charge-only on the fast plane, so the
            # attached disk image has no context bytes — reseed the cache
            # from the checkpoint's portable states (no counted I/O).
            self.contexts.prime_cache(thaw(ckpt.proc_states[0]))
            if ref["incoming"] is not None:
                slot_sizes, base, name = ref["incoming"]
                self._incoming = StripedRegion.adopt(
                    self.array, self.allocator, slot_sizes, base, name=name
                )
            sp.add(io_ops=0)
        if self.obs.enabled:
            self.obs.metrics.counter("recoveries").inc()

    def _restore(self, ckpt: SuperstepCheckpoint) -> None:
        """Rewrite the checkpointed barrier state onto the (possibly
        degraded) disk array and rewind report, ledger, and RNG."""
        with self.obs.span("recover", step=ckpt.step, cat="checkpoint") as sp:
            ops0 = self.array.parallel_ops
            # Drop partial superstep state.  Scratch leaked by an interrupted
            # reorganization stays allocated (it only inflates the space high
            # water, like a real crash leaving unreclaimed sectors).
            if self._buckets is not None:
                self._buckets.free()
                self._buckets = None
            if self._incoming is not None:
                self._incoming.free()
                self._incoming = None
            self.report, self.ledger = thaw(ckpt.report_blob)
            self.rng.setstate(ckpt.rng_state)
            self.contexts.import_all(
                thaw(ckpt.proc_states[0]), group_size=self.params.k
            )
            if ckpt.proc_incoming[0] is not None:
                slot_sizes, blocks = thaw(ckpt.proc_incoming[0])
                region = StripedRegion(
                    self.array, self.allocator, slot_sizes,
                    name=f"incoming@resume{ckpt.step}",
                )
                region.write_slots(range(region.nslots), blocks)
                self._incoming = region
            delta = self._io_delta(ops0)
            self._recovery_io_ops += delta
            sp.add(io_ops=delta)
        if self.obs.enabled:
            self.obs.metrics.counter("recoveries").inc()

    # -- one compound superstep --------------------------------------------------------

    def _superstep(self, step: int) -> bool:
        """Run compound superstep ``step``; return True when the algorithm
        halted with no traffic in flight."""
        alg = self.algorithm
        p = self.params
        v, k, B = p.bsp.v, p.k, p.machine.B
        gamma = self.gamma

        cost = self.ledger.begin_superstep(label=f"superstep {step}")
        phases = PhaseBreakdown()
        retry0 = self.array.retry_ops
        stall0 = self._stall_total()
        self._buckets = buckets = LinkedBuckets(
            self.array,
            self.allocator,
            nbuckets=p.machine.D,
            bucket_of=self._bucket_of,
            rng=self.rng,
            schedule=self.write_schedule,
        )
        all_halted = True
        blocks_generated = 0
        sent_packets = [0] * v
        recv_packets = [0] * v
        dummy_rr = 0

        obs = self.obs
        for g in range(self.groups):
            slots = self._group_slots(g)

            # -- Fetching phase: Step 1(a) contexts, Step 1(b) messages --
            with obs.span("fetch_context", group=g, cat="layout") as sp:
                t = self.array.parallel_ops
                states = self.contexts.load_group(slots)
                d = self._io_delta(t)
                phases.fetch_context += d
                sp.add(io_ops=d)

            with obs.span("fetch_messages", group=g, cat="layout") as sp:
                t = self.array.parallel_ops
                if self._incoming is not None:
                    group_blocks = self._incoming.read_slots(slots)
                else:
                    group_blocks = [[] for _ in slots]
                d = self._io_delta(t)
                phases.fetch_messages += d
                sp.add(io_ops=d)

            # -- Computation phase: Step 1(c) --
            group_out_blocks: list[Block] = []
            new_states = []
            with obs.span("compute", group=g, cat="kernel") as sp:
                comp0 = cost.comp_ops
                for pid, state, blks in zip(slots, states, group_blocks):
                    msgs = blocks_to_messages(blks)
                    if gamma is not None:
                        nrecv = sum(m.size for m in msgs)
                        if nrecv > gamma:
                            raise AlgorithmError(
                                f"vp {pid} received {nrecv} records in superstep "
                                f"{step}, exceeding gamma={gamma}"
                            )
                    ctx = VPContext(pid, v, step, state, msgs, comm_bound=gamma)
                    alg.superstep(ctx)
                    new_states.append(ctx.state)
                    if not ctx.halted:
                        all_halted = False
                    cost.comp_ops += ctx.comp_ops
                    for mi, m in enumerate(ctx.outbox):
                        pk = packets_for(max(m.size, 1), p.machine.b)
                        sent_packets[pid] += pk
                        recv_packets[m.dest] += pk
                        cost.records_sent += m.size
                        group_out_blocks.extend(message_to_blocks(m, B, mi))
                sp.add(comp_ops=cost.comp_ops - comp0)

            # -- Writing phase: Step 1(d) messages, Step 1(e) contexts --
            if self.pad_to_gamma:
                want = k * self.gpb
                while len(group_out_blocks) < want:
                    group_out_blocks.append(
                        Block(records=[], dest=dummy_rr % v, dummy=True)
                    )
                    dummy_rr += 1
            with obs.span("write_messages", group=g, cat="layout") as sp:
                t = self.array.parallel_ops
                buckets.append_blocks(group_out_blocks)
                d = self._io_delta(t)
                phases.write_messages += d
                sp.add(io_ops=d, blocks=len(group_out_blocks))
            blocks_generated += sum(0 if b.dummy else 1 for b in group_out_blocks)

            with obs.span("write_context", group=g, cat="layout") as sp:
                t = self.array.parallel_ops
                self.contexts.save_group(slots, new_states)
                d = self._io_delta(t)
                phases.write_context += d
                sp.add(io_ops=d)

        # -- Step 2: reorganize the generated blocks (Algorithm 2) --
        if obs.enabled:
            self._sample_disks(buckets)
        with obs.span("reorganize", cat="routing") as sp:
            t = self.array.parallel_ops
            new_incoming, routing = simulate_routing(
                self.array,
                self.allocator,
                buckets,
                nslots=v,
                slot_of=lambda dest: dest,
                name=f"incoming@{step + 1}",
            )
            d = self._io_delta(t)
            phases.reorganize += d
            sp.add(io_ops=d, blocks=routing.total_blocks)
        buckets.free()
        self._buckets = None
        if self._incoming is not None:
            self._incoming.free()
        self._incoming = new_incoming

        # BSP*-equivalent communication cost of the *virtual* machine
        # (diagnostic; the real machine has p=1 and no router traffic).
        cost.comm_packets = max(
            (sent_packets[i] + recv_packets[i] for i in range(v)), default=0
        )
        cost.io_ops = phases.total
        cost.records_io = phases.total * p.machine.D * B
        cost.retry_ops = self.array.retry_ops - retry0
        cost.stall_ops = self._stall_total() - stall0

        self.report.supersteps.append(
            SuperstepReport(
                index=step,
                phases=phases,
                routing=routing,
                comm_packets=cost.comm_packets,
                message_blocks=blocks_generated,
                halted=all_halted,
            )
        )
        if obs.enabled:
            mx = obs.metrics
            mx.histogram("lemma2_load_ratio").record(routing.max_load_ratio)
            mx.histogram("superstep_io_ops").record(phases.total)
            mx.counter("comm_packets").inc(cost.comm_packets)
            mx.counter("message_blocks").inc(blocks_generated)
            if cost.retry_ops or cost.stall_ops:
                mx.counter("retry_ops").inc(cost.retry_ops)
                mx.counter("stall_ops").inc(cost.stall_ops)
        return all_halted and blocks_generated == 0

    # -- wrap-up ---------------------------------------------------------------------

    def _finish(self) -> tuple[list[Any], SimulationReport]:
        alg = self.algorithm
        self.ledger.close()
        self.report.ledger = self.ledger

        # ---- unload output, k contexts at a time ----
        with self.obs.span("collect_outputs", cat="layout") as sp:
            ops0 = self.array.parallel_ops
            outputs: list[Any] = []
            for g in range(self.groups):
                slots = self._group_slots(g)
                for pid, state in zip(slots, self.contexts.load_group(slots)):
                    outputs.append(alg.output(pid, state))
            self.report.output_io_ops = self._io_delta(ops0)
            sp.add(io_ops=self.report.output_io_ops)
        self.report.disk_space_tracks = self.allocator.high_water
        if self.obs.enabled:
            self._sample_disks()
            mx = self.obs.metrics
            mx.gauge("disk_space_tracks").set(self.report.disk_space_tracks)
            mx.counter("ctx_cache/hits").inc(self.contexts.cache_hits)
            mx.counter("ctx_cache/misses").inc(self.contexts.cache_misses)
            if self.array.storage_read_bytes or self.array.storage_write_bytes:
                mx.counter("storage/read_bytes").inc(self.array.storage_read_bytes)
                mx.counter("storage/write_bytes").inc(self.array.storage_write_bytes)
        self._attach_fault_report()
        self._emit_run_finished("ok")
        return outputs, self.report

    def _attach_fault_report(self) -> None:
        if (
            self.array.injector is None
            and not self.checkpoint_enabled
            and self._resumed_from is None
        ):
            return
        fr = FaultReport(
            retry_reads=self.array.retry_reads,
            retry_writes=self.array.retry_writes,
            stall_ops=self._stall_total(),
            degraded_writes=self.array.degraded_writes,
            recoveries=self._recoveries,
            checkpoints_taken=self._checkpoints_taken,
            checkpoint_io_ops=self._checkpoint_io_ops,
            recovery_io_ops=self._recovery_io_ops,
            resumed_from_step=self._resumed_from,
        )
        inj = self.array.injector
        if inj is not None:
            s = inj.stats
            fr.transient_read_errors = s.transient_read_errors
            fr.transient_write_errors = s.transient_write_errors
            fr.corruptions_injected = s.corruptions_injected
            fr.checksum_errors = s.checksum_errors
            fr.latency_spikes = s.latency_spikes
            fr.disks_died = s.disks_died
        self.report.faults = fr
