"""Superstep-granular checkpointing for the simulation engines.

The compound-superstep barrier is the natural recovery point of the
simulation: between two compound supersteps the *entire* live state of the
virtual machine is (a) the virtual-processor contexts in their standard
consecutive region, (b) the incoming-message region produced by Algorithm 2,
(c) the engine's RNG state, and (d) the cost ledger.  Nothing else persists
across the barrier — the bucket stores are freed by the reorganization step.
A checkpoint is therefore a faithful snapshot of exactly those four things,
taken right after Step 2 completes, and restoring it re-enters the run at
the barrier as if the following superstep had never started.

Checkpoints live on the host side (outside the simulated disk array), the
way a production system would write them to a separate durable service.
*Reading* the state off the simulated disks is charged as real parallel I/O
(reported as ``checkpoint_io_ops``); the write to the checkpoint medium is
outside the machine model and free.

:class:`SuperstepCheckpoint` is engine-agnostic: the sequential engine uses
one entry per list, the parallel engine one entry per real processor.

On non-memory storage planes the engines additionally *publish* every
checkpoint through a :class:`CheckpointJournal` living inside the storage
root.  Publication is atomic (write temp file, fsync, rename, fsync the
directory — DESIGN §9), so a resumed run can never attach to a
half-committed barrier; :func:`scrub` walks the journalled generations
newest-first, raw-verifies every slot extent they pin, quarantines the
ones a crash damaged, and hands back the newest trustworthy checkpoint.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "SuperstepCheckpoint",
    "SimulationAborted",
    "CheckpointJournal",
    "ScrubResult",
    "scrub",
    "freeze",
    "thaw",
]


def freeze(obj: Any) -> bytes:
    """Pickle ``obj`` for checkpoint storage (deep-copies by construction)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def thaw(blob: bytes) -> Any:
    """Inverse of :func:`freeze`."""
    return pickle.loads(blob)


@dataclass
class SuperstepCheckpoint:
    """Snapshot of one engine's state at a compound-superstep barrier.

    Attributes
    ----------
    step:
        Index of the next superstep to execute after restoring.
    rng_state:
        ``random.Random.getstate()`` of the engine's RNG, so restored runs
        redraw exactly the permutations and scatter targets they would have.
    proc_states:
        Per real processor: pickled list of that processor's context states
        (local slot order).
    proc_incoming:
        Per real processor: pickled ``(slot_sizes, blocks_per_slot)`` of the
        incoming-message region, or ``None`` before the first superstep.
    report_blob:
        Pickled ``(SimulationReport, CostLedger)`` pair as of the barrier,
        so a resumed run keeps the completed supersteps' accounting.
    dead_disks:
        Per real processor: disk ids already dead at the barrier (purely
        diagnostic; restoring onto a degraded array works regardless).
    storage_refs:
        Per real processor: a storage-plane reference dict (track-file
        snapshots + allocator/region metadata), present only on non-memory
        planes.  It lets ``resume_from_checkpoint`` on an engine pointed at
        the *same* ``storage_dir`` re-attach the on-disk track files
        directly instead of rehydrating the whole array from the pickled
        state blobs (which remain present as the portable fallback).
    """

    step: int
    rng_state: Any
    proc_states: list[bytes]
    proc_incoming: list[bytes | None]
    report_blob: bytes
    dead_disks: list[set[int]] = field(default_factory=list)
    storage_refs: list[dict | None] | None = None

    @property
    def nprocs(self) -> int:
        return len(self.proc_states)

    def size_bytes(self) -> int:
        """Approximate checkpoint footprint (for reporting/benchmarks)."""
        return (
            sum(len(b) for b in self.proc_states)
            + sum(len(b) for b in self.proc_incoming if b is not None)
            + len(self.report_blob)
        )


#: Subdirectory of a storage root holding the journalled checkpoints.
JOURNAL_DIR = "checkpoints"

_JPREFIX = struct.Struct("<IIQ")  # magic, generation, blob length
_JCRC = struct.Struct("<I")
_JMAGIC = 0x454D434B  # "EMCK"


class CheckpointJournal:
    """Atomic, generation-numbered checkpoint publication on a storage root.

    Commit protocol (the write/fsync/rename ordering invariant, DESIGN §9):

    1. pickle the checkpoint and frame it — magic, generation, length,
       CRC32 over header + blob;
    2. write the frame to ``ckpt-<gen>.tmp``, flush, fsync the temp file;
    3. ``os.replace`` it to ``ckpt-<gen>.ckpt`` — *the commit point*;
    4. fsync the journal directory so the rename itself is durable.

    A reader can therefore never observe a half-committed generation:
    either the rename happened or the temp file is ignored.  ``keep``
    generations are retained (matching the storage plane's two-snapshot
    pin window) so :func:`scrub` can fall back one barrier when the newest
    generation fails verification.
    """

    def __init__(self, root: str | os.PathLike, keep: int = 2):
        self.root = os.fspath(root)
        self.dir = os.path.join(self.root, JOURNAL_DIR)
        os.makedirs(self.dir, exist_ok=True)
        self.keep = int(keep)

    def _path(self, gen: int) -> str:
        return os.path.join(self.dir, f"ckpt-{gen:08d}.ckpt")

    def generations(self) -> list[int]:
        """Committed generation numbers, oldest first."""
        gens = []
        for name in os.listdir(self.dir):
            if name.startswith("ckpt-") and name.endswith(".ckpt"):
                try:
                    gens.append(int(name[5:-5]))
                except ValueError:
                    continue
        return sorted(gens)

    def commit(
        self,
        ckpt: SuperstepCheckpoint,
        on_stage: Callable[[str], None] | None = None,
    ) -> int:
        """Atomically publish ``ckpt`` as the next generation.

        ``on_stage`` (the crash explorer's hook) is called with
        ``"staged"`` after the fsynced temp write and ``"committed"``
        right after the rename + directory fsync.
        """
        from ..emio.storage import _fsync_dir

        stage = on_stage if on_stage is not None else (lambda _s: None)
        gens = self.generations()
        gen = (gens[-1] + 1) if gens else 1
        blob = freeze(ckpt)
        prefix = _JPREFIX.pack(_JMAGIC, gen, len(blob))
        crc = zlib.crc32(blob, zlib.crc32(prefix))
        tmp = os.path.join(self.dir, f"ckpt-{gen:08d}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(prefix + _JCRC.pack(crc) + blob)
            fh.flush()
            os.fsync(fh.fileno())
        stage("staged")
        os.replace(tmp, self._path(gen))
        _fsync_dir(self.dir)
        stage("committed")
        for old in gens[: max(0, len(gens) + 1 - self.keep)]:
            try:
                os.unlink(self._path(old))
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return gen

    def load(self, gen: int) -> SuperstepCheckpoint:
        """Read and validate one committed generation."""
        from ..emio.faults import ChecksumError

        path = self._path(gen)
        with open(path, "rb") as fh:
            raw = fh.read()
        if len(raw) >= _JPREFIX.size + _JCRC.size:
            magic, stored_gen, length = _JPREFIX.unpack_from(raw)
            (stored_crc,) = _JCRC.unpack_from(raw, _JPREFIX.size)
            blob = raw[_JPREFIX.size + _JCRC.size :]
            crc = zlib.crc32(blob, zlib.crc32(raw[: _JPREFIX.size]))
            if (
                magic == _JMAGIC
                and stored_gen == gen
                and len(blob) == length
                and crc == stored_crc
            ):
                return thaw(blob)
        raise ChecksumError(
            f"checkpoint journal {path}: corrupt frame for generation {gen}"
        )

    def load_latest(self) -> tuple[int, SuperstepCheckpoint] | None:
        """``(generation, checkpoint)`` of the newest valid generation."""
        for gen in reversed(self.generations()):
            try:
                return gen, self.load(gen)
            except Exception:
                continue
        return None

    def quarantine(self, gen: int) -> str:
        """Move a failed generation aside (kept as evidence, not deleted)."""
        from ..emio.storage import _fsync_dir

        path = self._path(gen)
        quarantined = path + ".quarantined"
        os.replace(path, quarantined)
        _fsync_dir(self.dir)
        return quarantined


@dataclass
class ScrubResult:
    """Outcome of one :func:`scrub` pass over a storage root.

    ``generation``/``checkpoint`` identify the newest journalled barrier
    that verified end-to-end (``None`` if none did — resume must restart
    from scratch).  ``quarantined`` lists the generations moved aside.
    """

    root: str
    generation: int | None = None
    checkpoint: SuperstepCheckpoint | None = None
    extents_verified: int = 0
    quarantined: list[int] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)


def scrub(root: str | os.PathLike, observer: Any = None) -> ScrubResult:
    """Verify the journalled checkpoint generations of a storage root.

    Walks the generations newest-first.  For each, the journal frame is
    validated (CRC32), then every slot extent the checkpoint's storage
    refs pin is raw-verified via
    :func:`~repro.emio.storage.verify_extents` — no unpickling, no engine.
    The first generation that verifies end-to-end wins; failing ones are
    quarantined (renamed aside, never deleted) and the scan falls back one
    barrier.

    ``scrub()`` repairs nothing *inside* track files: a CRC-failing extent
    means the referencing generation is abandoned, not patched — under the
    commit protocol an honest engine cannot produce one (damage is confined
    to post-barrier writes, which no committed generation references), so a
    quarantine here is evidence of real corruption or a protocol bug.
    """
    from ..emio.storage import verify_extents

    journal = CheckpointJournal(root)
    result = ScrubResult(root=os.fspath(root))
    for gen in reversed(journal.generations()):
        checked = 0
        try:
            ckpt = journal.load(gen)
            for ref in ckpt.storage_refs or []:
                if ref is None:
                    continue
                for disk_id, snap in enumerate(ref["disks"]):
                    if snap is None:
                        continue
                    path = os.path.join(ref["root"], f"disk{disk_id}.dat")
                    checked += verify_extents(path, snap)
        except Exception as exc:
            result.errors.append(f"generation {gen}: {exc}")
            result.quarantined.append(gen)
            try:
                journal.quarantine(gen)
            except OSError:  # pragma: no cover - already renamed/removed
                pass
            continue
        result.generation = gen
        result.checkpoint = ckpt
        result.extents_verified = checked
        break
    if observer is not None and getattr(observer, "enabled", False):
        observer.metrics.counter("scrub/extents_verified").inc(
            result.extents_verified
        )
        observer.metrics.counter("scrub/generations_quarantined").inc(
            len(result.quarantined)
        )
    return result


class SimulationAborted(RuntimeError):
    """The run hit an unrecoverable fault (or its recovery budget).

    Carries the last good :class:`SuperstepCheckpoint` (if any), so the
    caller can hand it to ``resume_from_checkpoint()`` on a fresh engine —
    the "mid-run kill" path.
    """

    def __init__(self, message: str, checkpoint: SuperstepCheckpoint | None = None):
        super().__init__(message)
        self.checkpoint = checkpoint
