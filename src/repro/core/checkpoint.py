"""Superstep-granular checkpointing for the simulation engines.

The compound-superstep barrier is the natural recovery point of the
simulation: between two compound supersteps the *entire* live state of the
virtual machine is (a) the virtual-processor contexts in their standard
consecutive region, (b) the incoming-message region produced by Algorithm 2,
(c) the engine's RNG state, and (d) the cost ledger.  Nothing else persists
across the barrier — the bucket stores are freed by the reorganization step.
A checkpoint is therefore a faithful snapshot of exactly those four things,
taken right after Step 2 completes, and restoring it re-enters the run at
the barrier as if the following superstep had never started.

Checkpoints live on the host side (outside the simulated disk array), the
way a production system would write them to a separate durable service.
*Reading* the state off the simulated disks is charged as real parallel I/O
(reported as ``checkpoint_io_ops``); the write to the checkpoint medium is
outside the machine model and free.

:class:`SuperstepCheckpoint` is engine-agnostic: the sequential engine uses
one entry per list, the parallel engine one entry per real processor.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

__all__ = ["SuperstepCheckpoint", "SimulationAborted", "freeze", "thaw"]


def freeze(obj: Any) -> bytes:
    """Pickle ``obj`` for checkpoint storage (deep-copies by construction)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def thaw(blob: bytes) -> Any:
    """Inverse of :func:`freeze`."""
    return pickle.loads(blob)


@dataclass
class SuperstepCheckpoint:
    """Snapshot of one engine's state at a compound-superstep barrier.

    Attributes
    ----------
    step:
        Index of the next superstep to execute after restoring.
    rng_state:
        ``random.Random.getstate()`` of the engine's RNG, so restored runs
        redraw exactly the permutations and scatter targets they would have.
    proc_states:
        Per real processor: pickled list of that processor's context states
        (local slot order).
    proc_incoming:
        Per real processor: pickled ``(slot_sizes, blocks_per_slot)`` of the
        incoming-message region, or ``None`` before the first superstep.
    report_blob:
        Pickled ``(SimulationReport, CostLedger)`` pair as of the barrier,
        so a resumed run keeps the completed supersteps' accounting.
    dead_disks:
        Per real processor: disk ids already dead at the barrier (purely
        diagnostic; restoring onto a degraded array works regardless).
    storage_refs:
        Per real processor: a storage-plane reference dict (track-file
        snapshots + allocator/region metadata), present only on non-memory
        planes.  It lets ``resume_from_checkpoint`` on an engine pointed at
        the *same* ``storage_dir`` re-attach the on-disk track files
        directly instead of rehydrating the whole array from the pickled
        state blobs (which remain present as the portable fallback).
    """

    step: int
    rng_state: Any
    proc_states: list[bytes]
    proc_incoming: list[bytes | None]
    report_blob: bytes
    dead_disks: list[set[int]] = field(default_factory=list)
    storage_refs: list[dict | None] | None = None

    @property
    def nprocs(self) -> int:
        return len(self.proc_states)

    def size_bytes(self) -> int:
        """Approximate checkpoint footprint (for reporting/benchmarks)."""
        return (
            sum(len(b) for b in self.proc_states)
            + sum(len(b) for b in self.proc_incoming if b is not None)
            + len(self.report_blob)
        )


class SimulationAborted(RuntimeError):
    """The run hit an unrecoverable fault (or its recovery budget).

    Carries the last good :class:`SuperstepCheckpoint` (if any), so the
    caller can hand it to ``resume_from_checkpoint()`` on a fresh engine —
    the "mid-run kill" path.
    """

    def __init__(self, message: str, checkpoint: SuperstepCheckpoint | None = None):
        super().__init__(message)
        self.checkpoint = checkpoint
