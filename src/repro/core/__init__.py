"""The paper's simulation technique: Algorithms 1–3 and their reports."""

from .checkpoint import SimulationAborted, SuperstepCheckpoint
from .context import ContextStore
from .parsim import ParallelEMSimulation
from .routing import RoutingStats, simulate_routing
from .seqsim import SequentialEMSimulation
from .simulator import build_params, simulate
from .stats import FaultReport, PhaseBreakdown, SimulationReport, SuperstepReport

__all__ = [
    "ContextStore",
    "simulate_routing",
    "RoutingStats",
    "SequentialEMSimulation",
    "ParallelEMSimulation",
    "simulate",
    "build_params",
    "SimulationReport",
    "SuperstepReport",
    "PhaseBreakdown",
    "FaultReport",
    "SuperstepCheckpoint",
    "SimulationAborted",
]
