"""Algorithm 2 — **SimulateRouting**: reorganizing message blocks on disk.

Step 2 of Algorithm 1: the blocks generated during a compound superstep sit
in ``D`` buckets in *standard linked format*; they must be brought into
*standard consecutive format*, grouped by destination, so that the fetching
phase of the next compound superstep can read each group's messages with
fully parallel I/O (Figure 2 of the paper).

The two phases follow the paper:

* **Phase 1** — "Allocate space for a copy of bucket *i* on disk *i* ...  For
  the *j*-th parallel read/write: for ``d = 0..D-1`` in parallel, read block
  ``b_d`` belonging to bucket ``d`` from disk ``(d + j) mod D``; write block
  ``b_d`` to disk ``d``."  After this phase, bucket ``d`` lies on
  consecutive tracks of disk ``d`` alone — and, in this implementation,
  *sorted by final target position*, which the bucket tables make possible
  without extra I/O (each table entry records its block's destination).

* **Phase 2** — "read the *j*-th block from disk ``d`` and write it to disk
  ``(d + j) mod D``".  Because every bucket holds the blocks of a contiguous
  range of destination slots, its targets form a contiguous linear range of
  the new region; with the copies sorted, round ``j`` of bucket ``d`` writes
  to linear position ``offset_d + j`` and a per-bucket start stagger of
  ``(offset_d - d) mod D`` rounds makes the round's write disks exactly
  ``(d + j) mod D`` — pairwise distinct, the paper's formula.  Phase 2 thus
  costs one parallel read + one parallel write per round, ``O(total/D + D)``
  operations in all.

The returned region satisfies Definition 2, and reading any run of
consecutive destination slots achieves full disk parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..emio.disk import DiskError
from ..emio.diskarray import DiskArray
from ..emio.layout import RegionAllocator, StripedRegion
from ..emio.linked import LinkedBuckets

__all__ = ["simulate_routing", "RoutingStats"]


@dataclass
class RoutingStats:
    """Diagnostics of one SimulateRouting invocation."""

    total_blocks: int = 0
    phase1_ops: int = 0
    phase2_ops: int = 0
    max_load_ratio: float = 0.0  # Lemma 2 deviation of the bucket store
    # Per-bucket per-disk block counts of the store being reorganized — the
    # X_{j,k} variables of Lemma 2, kept so conformance oracles can check
    # the balance bound and the phase-1/phase-2 round counts after the fact.
    bucket_loads: tuple[tuple[int, ...], ...] = ()

    @property
    def io_ops(self) -> int:
        return self.phase1_ops + self.phase2_ops


def simulate_routing(
    array: DiskArray,
    allocator: RegionAllocator,
    buckets: LinkedBuckets,
    nslots: int,
    slot_of: Callable[[int], int],
    name: str = "incoming",
) -> tuple[StripedRegion, RoutingStats]:
    """Reorganize ``buckets`` into a new standard-consecutive region.

    Parameters
    ----------
    nslots:
        Number of destination slots in the target region (``v`` in the
        sequential simulation — one slot per virtual processor; ``v/(p*k)``
        in the parallel one — one slot per batch).
    slot_of:
        Maps a block's destination virtual processor to its target slot.
        Each bucket must cover a contiguous slot range (true for the
        engines' ``bucket_of`` maps, which factor through ``slot_of``).

    Returns the freshly allocated region and routing statistics.  The caller
    is responsible for freeing the bucket store afterwards.
    """
    D = array.D
    stats = RoutingStats(
        total_blocks=buckets.total_blocks,
        max_load_ratio=buckets.max_load_ratio(),
        bucket_loads=tuple(
            tuple(buckets.bucket_disk_loads(b)) for b in range(buckets.nbuckets)
        ),
    )

    # ---- Sizing and target assignment (metadata only; the bucket tables
    # record every block's destination, so no I/O happens here).  One walk
    # of the tables caches each entry's slot so the target pass below does
    # not re-derive it. ----
    slot_sizes = [0] * nslots
    triples: list[list[tuple[int, int, int]]] = []  # (src_disk, track, slot)
    for b in range(buckets.nbuckets):
        ts = []
        for disk, bucket_entries in enumerate(buckets.table[b]):
            for track, dest in bucket_entries:
                s = slot_of(dest)
                slot_sizes[s] += 1
                ts.append((disk, track, s))
        triples.append(ts)
    region = StripedRegion(array, allocator, slot_sizes, name=name)

    if buckets.nbuckets > D:
        raise DiskError(
            f"SimulateRouting requires nbuckets ({buckets.nbuckets}) <= D ({D}): "
            "phase 1 copies bucket i onto disk i"
        )

    # Per-bucket target lists: targets[b][i] = final linear position of the
    # i-th table entry of bucket b (entries enumerated disk-major).  Each
    # bucket's targets must form a contiguous linear range.
    cursors = list(region.offsets[:nslots])
    entries: list[list[tuple[int, int, int]]] = []  # (src_disk, track, target)
    bucket_range: list[tuple[int, int]] = []
    for b in range(buckets.nbuckets):
        es = []
        lo, hi = None, None
        for disk, track, s in triples[b]:
            tgt = cursors[s]
            cursors[s] += 1
            es.append((disk, track, tgt))
            lo = tgt if lo is None else min(lo, tgt)
            hi = tgt if hi is None else max(hi, tgt)
        if es and hi - lo + 1 != len(es):
            raise DiskError(
                f"bucket {b} targets are not contiguous "
                "(bucket_of must factor through slot_of monotonically)"
            )
        entries.append(es)
        bucket_range.append((lo if lo is not None else 0, len(es)))

    if stats.total_blocks == 0:
        return region, stats

    # ---- Phase 1: gather bucket d onto disk d, sorted by target ----
    max_bucket = max(len(es) for es in entries)
    copy_base = allocator.allocate(max_bucket)
    # Per (bucket, source-disk) FIFOs of (track, copy_track, target).
    queues: list[list[list[tuple[int, int]]]] = []
    for b in range(buckets.nbuckets):
        off = bucket_range[b][0]
        per_disk: list[list[tuple[int, int]]] = [[] for _ in range(D)]
        for disk, track, tgt in entries[b]:
            per_disk[disk].append((track, tgt - off))
        queues.append(per_disk)

    ops_before = array.parallel_ops
    remaining = stats.total_blocks
    # FIFO consumption via per-queue cursors: list.pop(0) is O(queue) and
    # turns phase 1 quadratic in the bucket size.
    heads = [[0] * D for _ in range(len(queues))]
    j = 0
    while remaining > 0:
        reads: list[tuple[int, int]] = []
        writes_meta: list[tuple[int, int]] = []  # (bucket, copy_pos)
        for d in range(min(D, buckets.nbuckets)):
            src = (d + j) % D
            if d < len(queues) and heads[d][src] < len(queues[d][src]):
                track, copy_pos = queues[d][src][heads[d][src]]
                heads[d][src] += 1
                reads.append((src, track))
                writes_meta.append((d, copy_pos))
        j += 1
        if not reads:
            continue
        blocks = array.parallel_read(reads)
        array.parallel_write(
            [
                (bucket, copy_base + pos, blk)
                for (bucket, pos), blk in zip(writes_meta, blocks)
            ]
        )
        remaining -= len(reads)
    stats.phase1_ops = array.parallel_ops - ops_before

    # ---- Phase 2: stripe the sorted copies into the target region ----
    # Bucket d's copy position q targets linear position offset_d + q; a
    # start stagger of (offset_d - d) mod D rounds gives round j the write
    # disks (d + j) mod D — pairwise distinct, the paper's schedule.
    ops_before = array.parallel_ops
    shifts = [
        (bucket_range[d][0] - d) % D if bucket_range[d][1] else 0
        for d in range(min(D, buckets.nbuckets))
    ]
    sizes = [bucket_range[d][1] for d in range(min(D, buckets.nbuckets))]
    total_rounds = max(
        (shifts[d] + sizes[d] for d in range(len(sizes))), default=0
    )
    for j in range(total_rounds):
        reads = []
        targets = []
        for d in range(len(sizes)):
            q = j - shifts[d]
            if 0 <= q < sizes[d]:
                reads.append((d, copy_base + q))
                targets.append(bucket_range[d][0] + q)
        if not reads:
            continue
        blocks = array.parallel_read(reads)
        writes = []
        seen = set()
        for tgt, blk in zip(targets, blocks):
            td, tt = tgt % D, region.base + tgt // D
            if td in seen:  # pragma: no cover - schedule guarantees distinct
                raise DiskError("phase 2 write collision; stagger broken")
            seen.add(td)
            writes.append((td, tt, blk))
        array.parallel_write(writes)
    stats.phase2_ops = array.parallel_ops - ops_before

    allocator.release(copy_base, max_bucket)
    return region, stats
