"""On-disk storage of virtual-processor contexts (Steps 1(a)/1(e) of Algorithm 1).

"Since we know the size of the contexts of the processors, and the order in
which we simulate the virtual processors is static during the simulation, we
can distribute the ``k`` contexts deterministically.  We reserve an area of
total size ``v*mu`` on the disks, ``v*mu/DB`` blocks on each disk."

Contexts are pickled, the bytes split into blocks of ``B`` records (8 bytes
per record), and stored in the preallocated :class:`ConsecutiveRegion`.  The
declared bound ``mu`` is enforced on every save: an algorithm whose state
outgrows its declaration fails loudly instead of silently breaking the space
accounting.

**Context-swap fast path** (``cache=True``): the store keeps the pickled
bytes of every slot host-side together with a dirty bit (the fresh pickle is
compared against the cached bytes).  On the disk array's fast data plane a
swap then charges the *identical* parallel I/O the reference path would — via
:meth:`~repro.emio.diskarray.DiskArray.charge_batched`, which replays the
exact greedy round packing arithmetic — without re-materializing ``Block``
objects; loads unpickle straight from the cached bytes.  On a traced array
the physical path runs unchanged (traces stay byte-identical), and the cache
is refused entirely on a fault-injecting array, where the disk image is
authoritative (corruption must be observable).  The model-cost ledger is
byte-identical either way; only host wall-clock changes.
"""

from __future__ import annotations

import pickle
from typing import Any, Sequence

from ..emio.disk import DiskError
from ..emio.diskarray import DiskArray
from ..emio.layout import (
    ConsecutiveRegion,
    RegionAllocator,
    blocks_to_object,
    bytes_to_blocks,
    check_context_bound,
    pickle_to_blocks,
)

__all__ = ["ContextStore"]


class ContextStore:
    """Preallocated context area for ``v`` virtual processors.

    Parameters
    ----------
    array, allocator:
        The disk substrate of one real processor.
    nslots:
        Number of contexts stored here (``v`` in the sequential simulation,
        ``v/p`` per real processor in the parallel one).
    mu:
        Declared maximum context size in records.
    B:
        Disk block size in records.
    cache:
        Enable the context-swap fast path (see module docstring).  Silently
        disabled when the array injects faults — there the on-disk image is
        authoritative and corruption must be observable.
    """

    def __init__(
        self,
        array: DiskArray,
        allocator: RegionAllocator,
        nslots: int,
        mu: int,
        B: int,
        name: str = "contexts",
        cache: bool = False,
    ):
        self.mu = mu
        self.B = B
        self.array = array
        self.blocks_per_context = -(-mu // B)
        self.region = ConsecutiveRegion(
            array, allocator, nslots, self.blocks_per_context, name=name
        )
        # Actual block count per slot.  A context's *area* is preallocated
        # at ceil(mu/B) blocks (the paper's space bound), but only the
        # currently used prefix is transferred — the metadata is one integer
        # per virtual processor, like the bucket pointer tables.
        self._used = [0] * nslots
        self.cache = bool(cache) and array.injector is None
        self._cached: list[bytes | None] = [None] * nslots
        # Cheap always-on tallies, sampled by the observability layer
        # (repro.obs) as the context-cache hit rate.
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def tracks_per_disk(self) -> int:
        return self.region.tracks_per_disk

    def save(self, slot: int, state: Any) -> None:
        """Pickle and write one context (fully parallel I/O)."""
        self.save_group([slot], [state])

    def load(self, slot: int) -> Any:
        """Read and unpickle one context."""
        return self.load_group([slot])[0]

    def invalidate_cache(self) -> None:
        """Drop all cached context bytes (next loads hit the disk image)."""
        self._cached = [None] * self.nslots

    def prime_cache(self, states: Sequence[Any]) -> None:
        """Re-seed the cache from checkpointed states (attach-time recovery).

        On the fast data plane, cached saves are charge-only: the bytes live
        in ``_cached`` and the disk image of this region holds nothing.  A
        fresh process that re-attaches the storage plane therefore cannot
        read contexts back from disk — the checkpoint's portable
        ``proc_states`` are the only copy, and they must be re-pickled into
        the cache before the first load.  Pure host-side bookkeeping: no
        counted I/O, and the recomputed block counts equal the attach
        reference's ``ctx_used`` (same pickle protocol as ``save_group``).
        """
        if not self.cache:
            return
        if len(states) != self.nslots:
            raise DiskError(
                f"priming {len(states)} contexts into {self.nslots} slots"
            )
        chunk = self.B * 8
        for slot, state in enumerate(states):
            data = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            self._cached[slot] = data
            self._used[slot] = -(-max(len(data), 1) // chunk)

    def _slot_addrs(self, slots: Sequence[int], counts: Sequence[int]):
        """(disk, track) addresses of the used prefixes of ``slots``.

        Equivalent to ``region.addr(slot, i)`` over the prefixes but without
        the per-block bounds checking (slots and counts are already
        validated by the callers).
        """
        D = self.array.D
        base = self.region.base
        offs = self.region.offsets
        addrs: list[tuple[int, int]] = []
        for slot, n in zip(slots, counts):
            q0 = offs[slot]
            addrs.extend(((q0 + i) % D, base + (q0 + i) // D) for i in range(n))
        return addrs

    def save_group(self, slots: Sequence[int], states: Sequence[Any]) -> None:
        """Write a whole group of contexts with jointly packed parallel ops."""
        if not self.cache:
            ops: list = []
            for slot, state in zip(slots, states):
                blocks = pickle_to_blocks(
                    state, self.B, max_records=self.mu,
                    profiler=self.array.profiler,
                )
                if len(blocks) > self.blocks_per_context:
                    raise DiskError(  # pragma: no cover - pickle_to_blocks guards
                        f"context of slot {slot} exceeds its preallocated area"
                    )
                self._used[slot] = len(blocks)
                ops.extend(
                    (*self.region.addr(slot, i), blk) for i, blk in enumerate(blocks)
                )
            self.array.write_batched(ops)
            return

        chunk = self.B * 8  # bytes per block (Block.BYTES_PER_RECORD)
        counts: list[int] = []
        blobs: list[bytes] = []
        prof = self.array.profiler
        for slot, state in zip(slots, states):
            prof.push("serialize")
            try:
                data = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            finally:
                prof.pop()
            check_context_bound(data, self.mu)
            blobs.append(data)
            counts.append(-(-max(len(data), 1) // chunk))
        if self.array.fast_data_plane:
            # Clean and dirty slots alike charge the identical merged write
            # the reference path performs — the dirty bit only decides
            # whether the cached bytes need replacing.
            self.array.charge_batched("W", self._slot_addrs(slots, counts))
            for slot, data, n in zip(slots, blobs, counts):
                self._used[slot] = n
                if self._cached[slot] != data:
                    self._cached[slot] = data
        else:
            # Physical path (e.g. a traced array): materialize and write the
            # blocks exactly as the reference path would.
            ops = []
            for slot, data, n in zip(slots, blobs, counts):
                self._used[slot] = n
                self._cached[slot] = data
                ops.extend(
                    (*self.region.addr(slot, i), blk)
                    for i, blk in enumerate(bytes_to_blocks(data, self.B))
                )
            self.array.write_batched(ops)

    def load_group(self, slots: Sequence[int]) -> list[Any]:
        """Read a whole group of contexts with jointly packed parallel ops."""
        if self.cache and all(self._cached[s] is not None for s in slots):
            self.cache_hits += len(slots)
            counts = [self._used[s] for s in slots]
            addrs = self._slot_addrs(slots, counts)
            if self.array.fast_data_plane:
                self.array.charge_batched("R", addrs)
            else:
                self.array.read_batched(addrs)  # physical read; data == cache
            prof = self.array.profiler
            prof.push("serialize")
            try:
                return [pickle.loads(self._cached[s]) for s in slots]
            finally:
                prof.pop()
        self.cache_misses += len(slots)
        addrs = []
        counts = []
        for slot in slots:
            counts.append(self._used[slot])
            addrs.extend(self.region.addr(slot, i) for i in range(self._used[slot]))
        flat = self.array.read_batched(addrs)
        out, pos = [], 0
        for c in counts:
            out.append(
                blocks_to_object(flat[pos : pos + c], profiler=self.array.profiler)
            )
            pos += c
        return out

    # -- checkpoint support (see repro.core.checkpoint) ------------------------

    @property
    def nslots(self) -> int:
        return len(self._used)

    def export_all(self, group_size: int | None = None) -> list[Any]:
        """Read every context, ``group_size`` at a time (memory-bounded).

        The engines pass their group size ``k`` so a checkpoint never holds
        more than one group of contexts in memory at once — the same
        discipline as the simulation itself.
        """
        g = group_size or self.nslots
        out: list[Any] = []
        for base in range(0, self.nslots, g):
            out.extend(self.load_group(range(base, min(base + g, self.nslots))))
        return out

    def import_all(self, states: Sequence[Any], group_size: int | None = None) -> None:
        """Rewrite every context from ``states`` (restore path).

        The cache is invalidated first: a restore replaces every slot, so
        stale bytes must never survive it (save_group then re-caches the
        restored pickles, keeping the fast path hot across a recovery).
        """
        if len(states) != self.nslots:
            raise DiskError(
                f"restore of {len(states)} contexts into {self.nslots} slots"
            )
        self.invalidate_cache()
        g = group_size or self.nslots
        for base in range(0, self.nslots, g):
            hi = min(base + g, self.nslots)
            self.save_group(range(base, hi), states[base:hi])
