"""On-disk storage of virtual-processor contexts (Steps 1(a)/1(e) of Algorithm 1).

"Since we know the size of the contexts of the processors, and the order in
which we simulate the virtual processors is static during the simulation, we
can distribute the ``k`` contexts deterministically.  We reserve an area of
total size ``v*mu`` on the disks, ``v*mu/DB`` blocks on each disk."

Contexts are pickled, the bytes split into blocks of ``B`` records (8 bytes
per record), and stored in the preallocated :class:`ConsecutiveRegion`.  The
declared bound ``mu`` is enforced on every save: an algorithm whose state
outgrows its declaration fails loudly instead of silently breaking the space
accounting.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..emio.disk import DiskError
from ..emio.diskarray import DiskArray
from ..emio.layout import (
    ConsecutiveRegion,
    RegionAllocator,
    blocks_to_object,
    pickle_to_blocks,
)

__all__ = ["ContextStore"]


class ContextStore:
    """Preallocated context area for ``v`` virtual processors.

    Parameters
    ----------
    array, allocator:
        The disk substrate of one real processor.
    nslots:
        Number of contexts stored here (``v`` in the sequential simulation,
        ``v/p`` per real processor in the parallel one).
    mu:
        Declared maximum context size in records.
    B:
        Disk block size in records.
    """

    def __init__(
        self,
        array: DiskArray,
        allocator: RegionAllocator,
        nslots: int,
        mu: int,
        B: int,
        name: str = "contexts",
    ):
        self.mu = mu
        self.B = B
        self.array = array
        self.blocks_per_context = -(-mu // B)
        self.region = ConsecutiveRegion(
            array, allocator, nslots, self.blocks_per_context, name=name
        )
        # Actual block count per slot.  A context's *area* is preallocated
        # at ceil(mu/B) blocks (the paper's space bound), but only the
        # currently used prefix is transferred — the metadata is one integer
        # per virtual processor, like the bucket pointer tables.
        self._used = [0] * nslots

    @property
    def tracks_per_disk(self) -> int:
        return self.region.tracks_per_disk

    def save(self, slot: int, state: Any) -> None:
        """Pickle and write one context (fully parallel I/O)."""
        self.save_group([slot], [state])

    def load(self, slot: int) -> Any:
        """Read and unpickle one context."""
        return self.load_group([slot])[0]

    def save_group(self, slots: Sequence[int], states: Sequence[Any]) -> None:
        """Write a whole group of contexts with jointly packed parallel ops."""
        ops: list = []
        for slot, state in zip(slots, states):
            blocks = pickle_to_blocks(state, self.B, max_records=self.mu)
            if len(blocks) > self.blocks_per_context:
                raise DiskError(  # pragma: no cover - pickle_to_blocks guards
                    f"context of slot {slot} exceeds its preallocated area"
                )
            self._used[slot] = len(blocks)
            ops.extend(
                (*self.region.addr(slot, i), blk) for i, blk in enumerate(blocks)
            )
        self.array.write_batched(ops)

    def load_group(self, slots: Sequence[int]) -> list[Any]:
        """Read a whole group of contexts with jointly packed parallel ops."""
        addrs: list[tuple[int, int]] = []
        counts: list[int] = []
        for slot in slots:
            counts.append(self._used[slot])
            addrs.extend(self.region.addr(slot, i) for i in range(self._used[slot]))
        flat = self.array.read_batched(addrs)
        out, pos = [], 0
        for c in counts:
            out.append(blocks_to_object(flat[pos : pos + c]))
            pos += c
        return out

    # -- checkpoint support (see repro.core.checkpoint) ------------------------

    @property
    def nslots(self) -> int:
        return len(self._used)

    def export_all(self, group_size: int | None = None) -> list[Any]:
        """Read every context, ``group_size`` at a time (memory-bounded).

        The engines pass their group size ``k`` so a checkpoint never holds
        more than one group of contexts in memory at once — the same
        discipline as the simulation itself.
        """
        g = group_size or self.nslots
        out: list[Any] = []
        for base in range(0, self.nslots, g):
            out.extend(self.load_group(range(base, min(base + g, self.nslots))))
        return out

    def import_all(self, states: Sequence[Any], group_size: int | None = None) -> None:
        """Rewrite every context from ``states`` (restore path)."""
        if len(states) != self.nslots:
            raise DiskError(
                f"restore of {len(states)} contexts into {self.nslots} slots"
            )
        g = group_size or self.nslots
        for base in range(0, self.nslots, g):
            hi = min(base + g, self.nslots)
            self.save_group(range(base, hi), states[base:hi])
