"""Simulation reports: per-phase counted costs and theory-vs-measured views."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..costs import CostLedger
from ..params import SimulationParams
from .routing import RoutingStats

__all__ = ["PhaseBreakdown", "SuperstepReport", "FaultReport", "SimulationReport"]


@dataclass
class FaultReport:
    """Faults injected, masked, and recovered from during one run.

    Populated by the engines whenever fault injection or checkpointing is
    active (see :mod:`repro.emio.faults` and :mod:`repro.core.checkpoint`).
    Injection counters aggregate over all real processors' disk arrays.
    """

    # -- injected by the fault plan -------------------------------------------
    transient_read_errors: int = 0
    transient_write_errors: int = 0
    corruptions_injected: int = 0
    checksum_errors: int = 0  # corruptions *detected* on read-back
    latency_spikes: int = 0
    disks_died: int = 0
    # -- masked by the disk array's retry policy ------------------------------
    retry_reads: int = 0  # extra parallel read operations
    retry_writes: int = 0  # extra parallel write operations
    stall_ops: int = 0  # op-equivalents lost to backoff + spikes
    degraded_writes: int = 0  # writes remapped off dead drives
    # -- handled by the engine's checkpoint/recovery loop ---------------------
    recoveries: int = 0  # superstep re-runs after a fatal fault
    checkpoints_taken: int = 0
    checkpoint_io_ops: int = 0  # parallel reads capturing barrier state
    recovery_io_ops: int = 0  # parallel writes restoring barrier state
    resumed_from_step: int | None = None  # set by resume_from_checkpoint()

    @property
    def retry_ops(self) -> int:
        return self.retry_reads + self.retry_writes

    def summary(self) -> dict:
        return {
            "transient_errors": self.transient_read_errors
            + self.transient_write_errors,
            "checksum_errors": self.checksum_errors,
            "latency_spikes": self.latency_spikes,
            "disks_died": self.disks_died,
            "retry_ops": self.retry_ops,
            "stall_ops": self.stall_ops,
            "degraded_writes": self.degraded_writes,
            "recoveries": self.recoveries,
            "checkpoints": self.checkpoints_taken,
            "checkpoint_io_ops": self.checkpoint_io_ops,
            "recovery_io_ops": self.recovery_io_ops,
        }


@dataclass
class PhaseBreakdown:
    """Parallel I/O operations of one compound superstep, by phase of Algorithm 1."""

    fetch_context: int = 0
    fetch_messages: int = 0
    write_messages: int = 0
    write_context: int = 0
    reorganize: int = 0

    @property
    def total(self) -> int:
        return (
            self.fetch_context
            + self.fetch_messages
            + self.write_messages
            + self.write_context
            + self.reorganize
        )


@dataclass
class SuperstepReport:
    """Diagnostics of one simulated compound superstep."""

    index: int
    phases: PhaseBreakdown
    routing: RoutingStats | None = None
    comm_packets: int = 0
    message_blocks: int = 0
    halted: bool = False
    # Every real processor's routing stats (the parallel engine's `routing`
    # keeps only the worst-deviation processor, but the reorganize phase is
    # charged as a max over *ops*, so bound checks need all of them).
    routing_all: list[RoutingStats] | None = None

    def routing_stats(self) -> list[RoutingStats]:
        """All per-processor routing stats known for this superstep."""
        if self.routing_all is not None:
            return self.routing_all
        return [self.routing] if self.routing is not None else []


@dataclass
class SimulationReport:
    """Full record of one EM simulation run.

    Combines the model-cost ledger with per-superstep phase breakdowns and
    the theoretical bounds of the paper evaluated at the run's parameters,
    so benchmarks can print measured-vs-predicted side by side.
    """

    params: SimulationParams
    ledger: CostLedger
    supersteps: list[SuperstepReport] = field(default_factory=list)
    disk_space_tracks: int = 0  # allocator high water, tracks per disk
    init_io_ops: int = 0  # input loading (excluded from superstep costs)
    output_io_ops: int = 0  # result unloading
    faults: FaultReport | None = None  # set when fault injection or
    # checkpointing was active (see repro.emio.faults, repro.core.checkpoint)

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def io_ops(self) -> int:
        """Parallel I/O operations across all compound supersteps."""
        return sum(s.phases.total for s in self.supersteps)

    @property
    def io_time(self) -> float:
        return self.params.machine.G * self.io_ops

    @property
    def max_load_ratio(self) -> float:
        """Worst Lemma 2 deviation observed in any superstep's bucket store."""
        return max(
            (s.routing.max_load_ratio for s in self.supersteps if s.routing),
            default=0.0,
        )

    def theoretical_io_bound(self) -> float:
        """Theorem 1's I/O-operation bound ``lambda * (v/p) * mu / (B*D)``.

        The constant ``l`` and the O() constant are omitted; benchmarks
        compare measured/predicted ratios across parameter sweeps, where the
        constants cancel.
        """
        return self.num_supersteps * self.params.theoretical_io_ops_per_superstep()

    def io_efficiency(self) -> float:
        """Measured I/O ops divided by the (constant-free) theoretical bound."""
        bound = self.theoretical_io_bound()
        return self.io_ops / bound if bound else float("inf")

    def summary(self) -> dict:
        d = self.ledger.summary()
        d.update(
            {
                "io_ops_supersteps": self.io_ops,
                "io_ops_init": self.init_io_ops,
                "io_ops_output": self.output_io_ops,
                "theory_io_bound": self.theoretical_io_bound(),
                "max_load_ratio": self.max_load_ratio,
                "disk_space_tracks": self.disk_space_tracks,
            }
        )
        if self.faults is not None:
            d.update({f"faults_{k}": val for k, val in self.faults.summary().items()})
        return d
