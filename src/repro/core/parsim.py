"""Algorithm 3 — **ParCompoundSuperstep**: BSP* on a ``p``-processor EM machine.

Each real processor ``i`` simulates the virtual processors
``i*(v/p) .. (i+1)*(v/p)-1`` and owns its own memory, router port, and ``D``
local disks.  A compound superstep runs in ``v/(p*k)`` *rounds*; in round
``j`` processor ``i`` simulates virtual processors
``i*(v/p)+j*k .. i*(v/p)+(j+1)*k-1`` (the *batch* ``j`` comprises the
``p*k`` virtual processors simulated in round ``j`` across all processors).

Per round:

* **Fetching phase** (Step 1(a)) — each processor reads from its local disks
  the message blocks pertaining to batch ``j`` (scattered there at random in
  the previous superstep), combines blocks bound for a common simulating
  processor into packets of size ``b``, and routes them in one h-relation.
  It also reads its ``k`` current contexts locally.
* **Computing phase** (Step 1(b)) — the ``k`` virtual supersteps run; changed
  contexts go back to the local disks.
* **Writing phase** (Step 1(c)) — generated messages are split into packets
  of size ``b`` and each packet is sent to a *uniformly random* processor
  (balls-into-bins; Lemma 10 bounds the per-processor load whp).  Receivers
  cut packets into blocks of size ``B`` and append them to their local
  ``D``-bucket stores with random-permutation disk writes.

After the last round, Step 2 runs Algorithm 2 (`simulate_routing`) locally on
every processor, producing per-batch standard-consecutive regions for the
next compound superstep.

The simulation is executed single-threaded (processors are simulated in a
deterministic order within each phase) but all costs are accounted as the
model prescribes: per phase the *maximum* over processors of computation,
packets, and parallel I/O operations, plus the barrier cost ``L`` per
h-relation.

Robustness: the same ``faults``/``retry``/``checkpoint`` knobs as the
sequential engine (see :mod:`repro.core.seqsim` and
:mod:`repro.core.checkpoint`), with per-processor fault streams — a
``FaultPlan``'s ``dead_proc`` selects which real processor's drive dies.  A
fatal fault on *any* processor rolls every processor back to the last
compound-superstep barrier, because the barrier is the only globally
consistent cut of the distributed state.
"""

from __future__ import annotations

import random
from typing import Any

from ..bsp.message import (
    Packet,
    blocks_to_messages,
    message_to_packets,
    packet_to_blocks,
)
from ..bsp.program import AlgorithmError, BSPAlgorithm, VPContext
from ..costs import CostLedger, packets_for
from ..emio.disk import Block
from ..emio.diskarray import DiskArray
from ..emio.faults import FATAL_IO_FAULTS, FaultPlan, RetryPolicy
from ..emio.layout import RegionAllocator, StripedRegion
from ..emio.linked import LinkedBuckets
from ..params import ParameterError, SimulationParams
from .checkpoint import SimulationAborted, SuperstepCheckpoint, freeze, thaw
from .context import ContextStore
from .routing import RoutingStats, simulate_routing
from .stats import FaultReport, PhaseBreakdown, SimulationReport, SuperstepReport

__all__ = ["ParallelEMSimulation"]


class _RealProcessor:
    """Per-processor simulation state: disks, contexts, bucket store."""

    def __init__(self, index: int, sim: "ParallelEMSimulation"):
        self.index = index
        self.sim = sim
        m = sim.params.machine
        self.array = DiskArray(
            m.D, m.B, faults=sim.faults, retry=sim.retry, proc=index
        )
        self.allocator = RegionAllocator(self.array)
        self.contexts = ContextStore(
            self.array,
            self.allocator,
            sim.vpp,
            sim.params.bsp.mu,
            m.B,
            name=f"ctx@p{index}",
        )
        self.incoming: StripedRegion | None = None
        self.buckets: LinkedBuckets | None = None
        self.io_marker = 0

    def io_delta(self) -> int:
        d = self.array.parallel_ops - self.io_marker
        self.io_marker = self.array.parallel_ops
        return d

    def stall_total(self) -> int:
        inj = self.array.injector
        return self.array.stall_ops + (inj.stats.stall_ops if inj else 0)

    def new_buckets(self) -> None:
        sim = self.sim
        self.buckets = LinkedBuckets(
            self.array,
            self.allocator,
            nbuckets=sim.params.machine.D,
            bucket_of=sim.bucket_of_vp,
            rng=sim.rng,
            schedule=sim.write_schedule,
        )


class ParallelEMSimulation:
    """Runs a :class:`BSPAlgorithm` under Algorithm 3 (``p >= 1`` processors).

    With ``p=1`` this degenerates to a close cousin of
    :class:`~repro.core.seqsim.SequentialEMSimulation` (messages still pass
    through the packet-scatter path, but there is only one bin to scatter to).

    ``faults``, ``retry``, ``checkpoint``, ``max_recoveries`` mirror the
    sequential engine; see :class:`SequentialEMSimulation` for semantics.
    """

    def __init__(
        self,
        algorithm: BSPAlgorithm,
        params: SimulationParams,
        seed: int = 0,
        enforce_gamma: bool = True,
        round_robin_writes: bool = False,
        write_schedule: str | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        checkpoint: bool = False,
        max_recoveries: int = 8,
    ):
        self.algorithm = algorithm
        self.params = params
        self.rng = random.Random(seed)
        self.enforce_gamma = enforce_gamma
        self.write_schedule = write_schedule or (
            "rotate" if round_robin_writes else "random"
        )
        self.faults = faults
        self.retry = retry
        self.checkpoint_enabled = checkpoint
        self.max_recoveries = max_recoveries

        m, s = params.machine, params.bsp
        self.p = m.p
        self.v = s.v
        self.k = params.k
        self.vpp = s.v // m.p  # virtual processors per real processor
        self.nbatches = self.vpp // self.k  # rounds per compound superstep
        self.ledger = CostLedger(m)
        self.report = SimulationReport(params=params, ledger=self.ledger)
        self.procs = [_RealProcessor(i, self) for i in range(self.p)]
        self.gamma = algorithm.comm_bound() if enforce_gamma else None

        self.last_checkpoint: SuperstepCheckpoint | None = None
        self._recoveries = 0
        self._checkpoints_taken = 0
        self._checkpoint_io_ops = 0
        self._recovery_io_ops = 0
        self._resumed_from: int | None = None

    # -- placement maps -----------------------------------------------------------

    def owner_of_vp(self, vp: int) -> int:
        """Real processor simulating virtual processor ``vp``."""
        return vp // self.vpp

    def batch_of_vp(self, vp: int) -> int:
        """Round in which ``vp`` is simulated (its *batch* index)."""
        return (vp % self.vpp) // self.k

    def bucket_of_vp(self, vp: int) -> int:
        """Local disk bucket of a block destined for ``vp``.

        "Each bucket contains the blocks for ``(v/pk)/D`` batches": batches
        are ranged evenly into the ``D`` buckets.
        """
        return self.batch_of_vp(vp) * self.params.machine.D // self.nbatches

    def round_vps(self, proc: int, j: int) -> list[int]:
        """Virtual processors simulated by ``proc`` in round ``j``."""
        base = proc * self.vpp + j * self.k
        return list(range(base, base + self.k))

    # -- main entry -----------------------------------------------------------------

    def run(self) -> tuple[list[Any], SimulationReport]:
        """Simulate to completion; return (per-vp outputs, report)."""
        self._load_input()
        if self.checkpoint_enabled:
            self._guarded_checkpoint(0)
        self._run_from(0)
        return self._finish()

    def resume_from_checkpoint(
        self, ckpt: SuperstepCheckpoint
    ) -> tuple[list[Any], SimulationReport]:
        """Continue an aborted run from a checkpoint (see the sequential
        engine's method of the same name)."""
        if ckpt.nprocs != self.p:
            raise ParameterError(
                f"checkpoint holds {ckpt.nprocs} processors, machine has {self.p}"
            )
        self._resumed_from = ckpt.step
        self.last_checkpoint = ckpt
        self._restore(ckpt)
        self._run_from(ckpt.step)
        return self._finish()

    # -- run skeleton ---------------------------------------------------------------

    def _load_input(self) -> None:
        alg = self.algorithm
        for pr in self.procs:
            for j in range(self.nbatches):
                vps = self.round_vps(pr.index, j)
                states = [alg.initial_state(vp, self.v) for vp in vps]
                local = [vp - pr.index * self.vpp for vp in vps]
                pr.contexts.save_group(local, states)
        self.report.init_io_ops = max(pr.io_delta() for pr in self.procs)

    def _run_from(self, start: int) -> None:
        step = start
        while True:
            if step >= self.algorithm.MAX_SUPERSTEPS:
                raise AlgorithmError(
                    "algorithm did not halt within "
                    f"MAX_SUPERSTEPS={self.algorithm.MAX_SUPERSTEPS}"
                )
            try:
                finished = self._superstep(step)
                if not finished and self.checkpoint_enabled:
                    self._take_checkpoint(step + 1)
            except FATAL_IO_FAULTS as exc:
                step = self._handle_fault(exc)
                continue
            if finished:
                return
            step += 1

    def _guarded_checkpoint(self, step: int) -> None:
        try:
            self._take_checkpoint(step)
        except FATAL_IO_FAULTS as exc:
            raise SimulationAborted(
                f"fatal I/O fault before the first checkpoint: {exc}", None
            ) from exc

    def _handle_fault(self, exc: Exception) -> int:
        self._recoveries += 1
        if self.last_checkpoint is None:
            raise SimulationAborted(
                f"fatal I/O fault with no checkpoint to recover from "
                f"(run with checkpoint=True): {exc}",
                None,
            ) from exc
        if self._recoveries > self.max_recoveries:
            raise SimulationAborted(
                f"fatal I/O fault after exhausting max_recoveries="
                f"{self.max_recoveries}: {exc}",
                self.last_checkpoint,
            ) from exc
        self._restore(self.last_checkpoint)
        return self.last_checkpoint.step

    # -- checkpoint/restore ----------------------------------------------------------

    def _take_checkpoint(self, step: int) -> None:
        """Snapshot every processor's barrier state (charged as local reads;
        the model cost is the maximum over processors, like any phase)."""
        proc_states: list[bytes] = []
        proc_incoming: list[bytes | None] = []
        for pr in self.procs:
            proc_states.append(freeze(pr.contexts.export_all(group_size=self.k)))
            if pr.incoming is not None:
                blocks = pr.incoming.read_slots(range(pr.incoming.nslots))
                proc_incoming.append(freeze((pr.incoming.slot_sizes, blocks)))
            else:
                proc_incoming.append(None)
        self.last_checkpoint = SuperstepCheckpoint(
            step=step,
            rng_state=self.rng.getstate(),
            proc_states=proc_states,
            proc_incoming=proc_incoming,
            report_blob=freeze((self.report, self.ledger)),
            dead_disks=[set(pr.array.dead_disks) for pr in self.procs],
        )
        self._checkpoints_taken += 1
        self._checkpoint_io_ops += max(pr.io_delta() for pr in self.procs)

    def _restore(self, ckpt: SuperstepCheckpoint) -> None:
        self.report, self.ledger = thaw(ckpt.report_blob)
        self.rng.setstate(ckpt.rng_state)
        for pr in self.procs:
            if pr.buckets is not None:
                pr.buckets.free()
                pr.buckets = None
            if pr.incoming is not None:
                pr.incoming.free()
                pr.incoming = None
            pr.contexts.import_all(thaw(ckpt.proc_states[pr.index]), group_size=self.k)
            blob = ckpt.proc_incoming[pr.index]
            if blob is not None:
                slot_sizes, blocks = thaw(blob)
                region = StripedRegion(
                    pr.array, pr.allocator, slot_sizes,
                    name=f"incoming@p{pr.index}resume{ckpt.step}",
                )
                region.write_slots(range(region.nslots), blocks)
                pr.incoming = region
        self._recovery_io_ops += max(pr.io_delta() for pr in self.procs)

    # -- one compound superstep --------------------------------------------------------

    def _superstep(self, step: int) -> bool:
        alg = self.algorithm
        m = self.params.machine
        gamma = self.gamma

        cost = self.ledger.begin_superstep(label=f"superstep {step}")
        cost.syncs = 0
        phases = PhaseBreakdown()
        retry0 = [pr.array.retry_ops for pr in self.procs]
        stall0 = [pr.stall_total() for pr in self.procs]
        for pr in self.procs:
            pr.new_buckets()
        all_halted = True
        blocks_generated = 0

        for j in range(self.nbatches):
            # ---- Fetching phase: local reads + gather h-relation ----
            # inbound[q] = blocks for processor q's current k vps.
            inbound: list[list[Block]] = [[] for _ in range(self.p)]
            sent_pk = [0] * self.p
            recv_pk = [0] * self.p
            for pr in self.procs:
                if pr.incoming is not None:
                    blks = [
                        blk
                        for blk in pr.incoming.read_slot(j)
                        if blk is not None and not blk.dummy
                    ]
                else:
                    blks = []
                # Combine blocks per destination processor into packets
                # of size b for the gather h-relation.
                by_dest: dict[int, list[Block]] = {}
                for blk in blks:
                    by_dest.setdefault(self.owner_of_vp(blk.dest), []).append(blk)
                for q, qblocks in sorted(by_dest.items()):
                    nrec = sum(b.nrecords() for b in qblocks)
                    npk = max(1, packets_for(nrec, m.b))
                    if q != pr.index:
                        sent_pk[pr.index] += npk
                        recv_pk[q] += npk
                    inbound[q].extend(qblocks)
            io_this = max(pr.io_delta() for pr in self.procs)
            phases.fetch_messages += io_this
            cost.comm_packets += max(sent_pk[q] + recv_pk[q] for q in range(self.p))
            cost.syncs += 1

            # ---- contexts (local) ----
            round_states: list[list[Any]] = []
            for pr in self.procs:
                local = [
                    vp - pr.index * self.vpp for vp in self.round_vps(pr.index, j)
                ]
                round_states.append(pr.contexts.load_group(local))
            phases.fetch_context += max(pr.io_delta() for pr in self.procs)

            # ---- Computing phase ----
            round_comp = [0.0] * self.p
            # outpackets[q] = packets randomly scattered to processor q.
            outpackets: list[list[Packet]] = [[] for _ in range(self.p)]
            scatter_sent = [0] * self.p
            scatter_recv = [0] * self.p
            for pr in self.procs:
                vps = self.round_vps(pr.index, j)
                per_vp_blocks: dict[int, list[Block]] = {vp: [] for vp in vps}
                for blk in inbound[pr.index]:
                    per_vp_blocks[blk.dest].append(blk)
                new_states = []
                for vp, state in zip(vps, round_states[pr.index]):
                    msgs = blocks_to_messages(per_vp_blocks[vp])
                    if gamma is not None:
                        nrecv = sum(msg.size for msg in msgs)
                        if nrecv > gamma:
                            raise AlgorithmError(
                                f"vp {vp} received {nrecv} records in "
                                f"superstep {step}, exceeding gamma={gamma}"
                            )
                    ctx = VPContext(vp, self.v, step, state, msgs, comm_bound=gamma)
                    alg.superstep(ctx)
                    new_states.append(ctx.state)
                    if not ctx.halted:
                        all_halted = False
                    round_comp[pr.index] += ctx.comp_ops
                    cost.records_sent += ctx.sent_records
                    for mi, msg in enumerate(ctx.outbox):
                        for pkt in message_to_packets(msg, m.b, mi):
                            target = self.rng.randrange(self.p)
                            scatter_sent[pr.index] += 1
                            scatter_recv[target] += 1
                            outpackets[target].append(pkt)
                local = [vp - pr.index * self.vpp for vp in vps]
                pr.contexts.save_group(local, new_states)
            phases.write_context += max(pr.io_delta() for pr in self.procs)
            cost.comp_ops += max(round_comp)

            # ---- Writing phase: scatter h-relation + bucket writes ----
            cost.comm_packets += max(
                scatter_sent[q] + scatter_recv[q] for q in range(self.p)
            )
            cost.syncs += 1
            for pr in self.procs:
                rblocks: list[Block] = []
                for pkt in outpackets[pr.index]:
                    rblocks.extend(packet_to_blocks(pkt, m.B))
                blocks_generated += len(rblocks)
                pr.buckets.append_blocks(rblocks)
            phases.write_messages += max(pr.io_delta() for pr in self.procs)

        # ---- Step 2: local reorganization on every processor ----
        worst_routing: RoutingStats | None = None
        for pr in self.procs:
            new_incoming, routing = simulate_routing(
                pr.array,
                pr.allocator,
                pr.buckets,
                nslots=self.nbatches,
                slot_of=self.batch_of_vp,
                name=f"incoming@p{pr.index}s{step + 1}",
            )
            pr.buckets.free()
            pr.buckets = None
            if pr.incoming is not None:
                pr.incoming.free()
            pr.incoming = new_incoming
            if (
                worst_routing is None
                or routing.max_load_ratio > worst_routing.max_load_ratio
            ):
                worst_routing = routing
        phases.reorganize += max(pr.io_delta() for pr in self.procs)
        cost.syncs += 1

        cost.io_ops = phases.total
        cost.records_io = phases.total * m.D * m.B
        cost.retry_ops = max(
            pr.array.retry_ops - r0 for pr, r0 in zip(self.procs, retry0)
        )
        cost.stall_ops = max(
            pr.stall_total() - s0 for pr, s0 in zip(self.procs, stall0)
        )
        self.report.supersteps.append(
            SuperstepReport(
                index=step,
                phases=phases,
                routing=worst_routing,
                comm_packets=cost.comm_packets,
                message_blocks=blocks_generated,
                halted=all_halted,
            )
        )
        return all_halted and blocks_generated == 0

    # -- wrap-up ---------------------------------------------------------------------

    def _finish(self) -> tuple[list[Any], SimulationReport]:
        alg = self.algorithm
        self.ledger.close()
        self.report.ledger = self.ledger

        # ---- unload output ----
        outputs: list[Any] = [None] * self.v
        for pr in self.procs:
            for j in range(self.nbatches):
                vps = self.round_vps(pr.index, j)
                local = [vp - pr.index * self.vpp for vp in vps]
                for vp, state in zip(vps, pr.contexts.load_group(local)):
                    outputs[vp] = alg.output(vp, state)
        self.report.output_io_ops = max(pr.io_delta() for pr in self.procs)
        self.report.disk_space_tracks = max(
            pr.allocator.high_water for pr in self.procs
        )
        self._attach_fault_report()
        return outputs, self.report

    def _attach_fault_report(self) -> None:
        if (
            self.faults is None
            and not self.checkpoint_enabled
            and self._resumed_from is None
        ):
            return
        fr = FaultReport(
            retry_reads=sum(pr.array.retry_reads for pr in self.procs),
            retry_writes=sum(pr.array.retry_writes for pr in self.procs),
            stall_ops=sum(pr.stall_total() for pr in self.procs),
            degraded_writes=sum(pr.array.degraded_writes for pr in self.procs),
            recoveries=self._recoveries,
            checkpoints_taken=self._checkpoints_taken,
            checkpoint_io_ops=self._checkpoint_io_ops,
            recovery_io_ops=self._recovery_io_ops,
            resumed_from_step=self._resumed_from,
        )
        for pr in self.procs:
            inj = pr.array.injector
            if inj is None:
                continue
            s = inj.stats
            fr.transient_read_errors += s.transient_read_errors
            fr.transient_write_errors += s.transient_write_errors
            fr.corruptions_injected += s.corruptions_injected
            fr.checksum_errors += s.checksum_errors
            fr.latency_spikes += s.latency_spikes
            fr.disks_died += s.disks_died
        self.report.faults = fr
