"""Algorithm 3 — **ParCompoundSuperstep**: BSP* on a ``p``-processor EM machine.

Each real processor ``i`` simulates the virtual processors
``i*(v/p) .. (i+1)*(v/p)-1`` and owns its own memory, router port, and ``D``
local disks.  A compound superstep runs in ``v/(p*k)`` *rounds*; in round
``j`` processor ``i`` simulates virtual processors
``i*(v/p)+j*k .. i*(v/p)+(j+1)*k-1`` (the *batch* ``j`` comprises the
``p*k`` virtual processors simulated in round ``j`` across all processors).

Per round:

* **Fetching phase** (Step 1(a)) — each processor reads from its local disks
  the message blocks pertaining to batch ``j`` (scattered there at random in
  the previous superstep), combines blocks bound for a common simulating
  processor into packets of size ``b``, and routes them in one h-relation.
  It also reads its ``k`` current contexts locally.
* **Computing phase** (Step 1(b)) — the ``k`` virtual supersteps run; changed
  contexts go back to the local disks.
* **Writing phase** (Step 1(c)) — generated messages are split into packets
  of size ``b`` and each packet is sent to a *uniformly random* processor
  (balls-into-bins; Lemma 10 bounds the per-processor load whp).  Receivers
  cut packets into blocks of size ``B`` and append them to their local
  ``D``-bucket stores with random-permutation disk writes.

After the last round, Step 2 runs Algorithm 2 (`simulate_routing`) locally on
every processor, producing per-batch standard-consecutive regions for the
next compound superstep.

The simulation is executed single-threaded (processors are simulated in a
deterministic order within each phase) but all costs are accounted as the
model prescribes: per phase the *maximum* over processors of computation,
packets, and parallel I/O operations, plus the barrier cost ``L`` per
h-relation.
"""

from __future__ import annotations

import random
from typing import Any

from ..bsp.message import (
    Packet,
    blocks_to_messages,
    message_to_packets,
    packet_to_blocks,
)
from ..bsp.program import AlgorithmError, BSPAlgorithm, VPContext
from ..costs import CostLedger, packets_for
from ..emio.disk import Block
from ..emio.diskarray import DiskArray
from ..emio.layout import RegionAllocator, StripedRegion
from ..emio.linked import LinkedBuckets
from ..params import SimulationParams
from .context import ContextStore
from .routing import RoutingStats, simulate_routing
from .stats import PhaseBreakdown, SimulationReport, SuperstepReport

__all__ = ["ParallelEMSimulation"]


class _RealProcessor:
    """Per-processor simulation state: disks, contexts, bucket store."""

    def __init__(self, index: int, sim: "ParallelEMSimulation"):
        self.index = index
        self.sim = sim
        m = sim.params.machine
        self.array = DiskArray(m.D, m.B)
        self.allocator = RegionAllocator(self.array)
        self.contexts = ContextStore(
            self.array,
            self.allocator,
            sim.vpp,
            sim.params.bsp.mu,
            m.B,
            name=f"ctx@p{index}",
        )
        self.incoming: StripedRegion | None = None
        self.buckets: LinkedBuckets | None = None
        self.io_marker = 0

    def io_delta(self) -> int:
        d = self.array.parallel_ops - self.io_marker
        self.io_marker = self.array.parallel_ops
        return d

    def new_buckets(self) -> None:
        sim = self.sim
        self.buckets = LinkedBuckets(
            self.array,
            self.allocator,
            nbuckets=sim.params.machine.D,
            bucket_of=sim.bucket_of_vp,
            rng=sim.rng,
            schedule=sim.write_schedule,
        )


class ParallelEMSimulation:
    """Runs a :class:`BSPAlgorithm` under Algorithm 3 (``p >= 1`` processors).

    With ``p=1`` this degenerates to a close cousin of
    :class:`~repro.core.seqsim.SequentialEMSimulation` (messages still pass
    through the packet-scatter path, but there is only one bin to scatter to).
    """

    def __init__(
        self,
        algorithm: BSPAlgorithm,
        params: SimulationParams,
        seed: int = 0,
        enforce_gamma: bool = True,
        round_robin_writes: bool = False,
        write_schedule: str | None = None,
    ):
        self.algorithm = algorithm
        self.params = params
        self.rng = random.Random(seed)
        self.enforce_gamma = enforce_gamma
        self.write_schedule = write_schedule or (
            "rotate" if round_robin_writes else "random"
        )

        m, s = params.machine, params.bsp
        self.p = m.p
        self.v = s.v
        self.k = params.k
        self.vpp = s.v // m.p  # virtual processors per real processor
        self.nbatches = self.vpp // self.k  # rounds per compound superstep
        self.ledger = CostLedger(m)
        self.report = SimulationReport(params=params, ledger=self.ledger)
        self.procs = [_RealProcessor(i, self) for i in range(self.p)]

    # -- placement maps -----------------------------------------------------------

    def owner_of_vp(self, vp: int) -> int:
        """Real processor simulating virtual processor ``vp``."""
        return vp // self.vpp

    def batch_of_vp(self, vp: int) -> int:
        """Round in which ``vp`` is simulated (its *batch* index)."""
        return (vp % self.vpp) // self.k

    def bucket_of_vp(self, vp: int) -> int:
        """Local disk bucket of a block destined for ``vp``.

        "Each bucket contains the blocks for ``(v/pk)/D`` batches": batches
        are ranged evenly into the ``D`` buckets.
        """
        return self.batch_of_vp(vp) * self.params.machine.D // self.nbatches

    def round_vps(self, proc: int, j: int) -> list[int]:
        """Virtual processors simulated by ``proc`` in round ``j``."""
        base = proc * self.vpp + j * self.k
        return list(range(base, base + self.k))

    # -- main entry -----------------------------------------------------------------

    def run(self) -> tuple[list[Any], SimulationReport]:
        """Simulate to completion; return (per-vp outputs, report)."""
        alg = self.algorithm
        m = self.params.machine
        gamma = alg.comm_bound() if self.enforce_gamma else None

        # ---- load input ----
        for pr in self.procs:
            for j in range(self.nbatches):
                vps = self.round_vps(pr.index, j)
                states = [alg.initial_state(vp, self.v) for vp in vps]
                local = [vp - pr.index * self.vpp for vp in vps]
                pr.contexts.save_group(local, states)
        self.report.init_io_ops = max(pr.io_delta() for pr in self.procs)

        for step in range(alg.MAX_SUPERSTEPS):
            cost = self.ledger.begin_superstep(label=f"superstep {step}")
            cost.syncs = 0
            phases = PhaseBreakdown()
            for pr in self.procs:
                pr.new_buckets()
            all_halted = True
            blocks_generated = 0

            for j in range(self.nbatches):
                # ---- Fetching phase: local reads + gather h-relation ----
                # inbound[q] = blocks for processor q's current k vps.
                inbound: list[list[Block]] = [[] for _ in range(self.p)]
                sent_pk = [0] * self.p
                recv_pk = [0] * self.p
                for pr in self.procs:
                    if pr.incoming is not None:
                        blks = [
                            blk
                            for blk in pr.incoming.read_slot(j)
                            if blk is not None and not blk.dummy
                        ]
                    else:
                        blks = []
                    # Combine blocks per destination processor into packets
                    # of size b for the gather h-relation.
                    by_dest: dict[int, list[Block]] = {}
                    for blk in blks:
                        by_dest.setdefault(self.owner_of_vp(blk.dest), []).append(blk)
                    for q, qblocks in sorted(by_dest.items()):
                        nrec = sum(b.nrecords(m.B) for b in qblocks)
                        npk = max(1, packets_for(nrec, m.b))
                        if q != pr.index:
                            sent_pk[pr.index] += npk
                            recv_pk[q] += npk
                        inbound[q].extend(qblocks)
                    phases.fetch_messages += 0  # accounted below via io_delta
                io_this = max(pr.io_delta() for pr in self.procs)
                phases.fetch_messages += io_this
                cost.comm_packets += max(
                    sent_pk[q] + recv_pk[q] for q in range(self.p)
                )
                cost.syncs += 1

                # ---- contexts (local) ----
                round_states: list[list[Any]] = []
                for pr in self.procs:
                    local = [
                        vp - pr.index * self.vpp
                        for vp in self.round_vps(pr.index, j)
                    ]
                    round_states.append(pr.contexts.load_group(local))
                phases.fetch_context += max(pr.io_delta() for pr in self.procs)

                # ---- Computing phase ----
                round_comp = [0.0] * self.p
                # outpackets[q] = packets randomly scattered to processor q.
                outpackets: list[list[Packet]] = [[] for _ in range(self.p)]
                scatter_sent = [0] * self.p
                scatter_recv = [0] * self.p
                for pr in self.procs:
                    vps = self.round_vps(pr.index, j)
                    per_vp_blocks: dict[int, list[Block]] = {vp: [] for vp in vps}
                    for blk in inbound[pr.index]:
                        per_vp_blocks[blk.dest].append(blk)
                    new_states = []
                    for vp, state in zip(vps, round_states[pr.index]):
                        msgs = blocks_to_messages(per_vp_blocks[vp])
                        if gamma is not None:
                            nrecv = sum(msg.size for msg in msgs)
                            if nrecv > gamma:
                                raise AlgorithmError(
                                    f"vp {vp} received {nrecv} records in "
                                    f"superstep {step}, exceeding gamma={gamma}"
                                )
                        ctx = VPContext(
                            vp, self.v, step, state, msgs, comm_bound=gamma
                        )
                        alg.superstep(ctx)
                        new_states.append(ctx.state)
                        if not ctx.halted:
                            all_halted = False
                        round_comp[pr.index] += ctx.comp_ops
                        cost.records_sent += ctx.sent_records
                        for mi, msg in enumerate(ctx.outbox):
                            for pkt in message_to_packets(msg, m.b, mi):
                                target = self.rng.randrange(self.p)
                                scatter_sent[pr.index] += 1
                                scatter_recv[target] += 1
                                outpackets[target].append(pkt)
                    local = [vp - pr.index * self.vpp for vp in vps]
                    pr.contexts.save_group(local, new_states)
                phases.write_context += max(pr.io_delta() for pr in self.procs)
                cost.comp_ops += max(round_comp)

                # ---- Writing phase: scatter h-relation + bucket writes ----
                cost.comm_packets += max(
                    scatter_sent[q] + scatter_recv[q] for q in range(self.p)
                )
                cost.syncs += 1
                for pr in self.procs:
                    rblocks: list[Block] = []
                    for pkt in outpackets[pr.index]:
                        rblocks.extend(packet_to_blocks(pkt, m.B))
                    blocks_generated += len(rblocks)
                    pr.buckets.append_blocks(rblocks)
                phases.write_messages += max(pr.io_delta() for pr in self.procs)

            # ---- Step 2: local reorganization on every processor ----
            worst_routing: RoutingStats | None = None
            for pr in self.procs:
                new_incoming, routing = simulate_routing(
                    pr.array,
                    pr.allocator,
                    pr.buckets,
                    nslots=self.nbatches,
                    slot_of=self.batch_of_vp,
                    name=f"incoming@p{pr.index}s{step + 1}",
                )
                pr.buckets.free()
                pr.buckets = None
                if pr.incoming is not None:
                    pr.incoming.free()
                pr.incoming = new_incoming
                if (
                    worst_routing is None
                    or routing.max_load_ratio > worst_routing.max_load_ratio
                ):
                    worst_routing = routing
            phases.reorganize += max(pr.io_delta() for pr in self.procs)
            cost.syncs += 1

            cost.io_ops = phases.total
            cost.records_io = phases.total * m.D * m.B
            self.report.supersteps.append(
                SuperstepReport(
                    index=step,
                    phases=phases,
                    routing=worst_routing,
                    comm_packets=cost.comm_packets,
                    message_blocks=blocks_generated,
                    halted=all_halted,
                )
            )

            if all_halted and blocks_generated == 0:
                break
        else:
            raise AlgorithmError(
                f"algorithm did not halt within MAX_SUPERSTEPS={alg.MAX_SUPERSTEPS}"
            )

        self.ledger.close()

        # ---- unload output ----
        outputs: list[Any] = [None] * self.v
        for pr in self.procs:
            for j in range(self.nbatches):
                vps = self.round_vps(pr.index, j)
                local = [vp - pr.index * self.vpp for vp in vps]
                for vp, state in zip(vps, pr.contexts.load_group(local)):
                    outputs[vp] = alg.output(vp, state)
        self.report.output_io_ops = max(pr.io_delta() for pr in self.procs)
        self.report.disk_space_tracks = max(
            pr.allocator.high_water for pr in self.procs
        )
        return outputs, self.report
