"""Algorithm 3 — **ParCompoundSuperstep**: BSP* on a ``p``-processor EM machine.

Each real processor ``i`` simulates the virtual processors
``i*(v/p) .. (i+1)*(v/p)-1`` and owns its own memory, router port, and ``D``
local disks.  A compound superstep runs in ``v/(p*k)`` *rounds*; in round
``j`` processor ``i`` simulates virtual processors
``i*(v/p)+j*k .. i*(v/p)+(j+1)*k-1`` (the *batch* ``j`` comprises the
``p*k`` virtual processors simulated in round ``j`` across all processors).

Per round:

* **Fetching phase** (Step 1(a)) — each processor reads from its local disks
  the message blocks pertaining to batch ``j`` (scattered there at random in
  the previous superstep), combines blocks bound for a common simulating
  processor into packets of size ``b``, and routes them in one h-relation.
  It also reads its ``k`` current contexts locally.
* **Computing phase** (Step 1(b)) — the ``k`` virtual supersteps run; changed
  contexts go back to the local disks.
* **Writing phase** (Step 1(c)) — generated messages are split into packets
  of size ``b`` and each packet is sent to a *uniformly random* processor
  (balls-into-bins; Lemma 10 bounds the per-processor load whp).  Receivers
  cut packets into blocks of size ``B`` and append them to their local
  ``D``-bucket stores with random-permutation disk writes.

After the last round, Step 2 runs Algorithm 2 (`simulate_routing`) locally on
every processor, producing per-batch standard-consecutive regions for the
next compound superstep.

**Backends** (see :mod:`repro.core.backend`): the per-processor work lives in
:class:`_RealProcessor`, whose phase methods are driven through a backend —
``"inline"`` (default, the reference) calls them in index order in-process;
``"process"`` runs each processor in its own ``multiprocessing`` worker, the
superstep barriers becoming send-all/receive-all pipe rounds that exchange
packed message payloads and per-worker ledger deltas.  Every processor draws
from its own deterministic RNG stream (seeded ``{seed}/proc{i}``), so both
backends produce identical outputs, ledgers, and reports.  All costs are
accounted as the model prescribes regardless of backend: per phase the
*maximum* over processors of computation, packets, and parallel I/O
operations, plus the barrier cost ``L`` per h-relation.

Robustness: the same ``faults``/``retry``/``checkpoint`` knobs as the
sequential engine (see :mod:`repro.core.seqsim` and
:mod:`repro.core.checkpoint`), with per-processor fault streams — a
``FaultPlan``'s ``dead_proc`` selects which real processor's drive dies.  A
fatal fault on *any* processor rolls every processor back to the last
compound-superstep barrier, because the barrier is the only globally
consistent cut of the distributed state (the process backend reports a
worker's fault only after the whole barrier round completes, so the rollback
reaches every worker in a consistent state).
"""

from __future__ import annotations

import random
from typing import Any

from ..bsp.message import (
    Packet,
    blocks_to_messages,
    message_to_packets,
    packet_to_blocks,
)
from ..bsp.program import AlgorithmError, BSPAlgorithm, VPContext
from ..costs import CostLedger, packets_for
from ..emio.disk import Block
from ..emio.diskarray import DiskArray
from ..emio.faults import FATAL_IO_FAULTS, CrashPlan, FaultPlan, HostCrash, RetryPolicy
from ..emio.layout import RegionAllocator, StripedRegion
from ..emio.linked import LinkedBuckets
from ..emio.storage import StorageSpec, default_overlap_budget, resolve_storage
from ..obs.live import RunEventLog
from ..obs.spans import NULL_OBSERVER, Collector, NullObserver
from ..params import ParameterError, SimulationParams
from .backend import make_backend
from .checkpoint import (
    CheckpointJournal,
    SimulationAborted,
    SuperstepCheckpoint,
    freeze,
    thaw,
)
from .context import ContextStore
from .routing import RoutingStats, simulate_routing
from .stats import FaultReport, PhaseBreakdown, SimulationReport, SuperstepReport

__all__ = ["ParallelEMSimulation"]


class _RealProcessor:
    """One real processor: disks, contexts, bucket store, and phase methods.

    Self-contained and picklable-by-construction (built from its init tuple
    inside a worker when the process backend is used).  Every method takes
    and returns plain picklable values plus this processor's parallel-I/O
    delta, so the engine can do the model's max-over-processors accounting
    identically for every backend.
    """

    def __init__(
        self,
        index: int,
        algorithm: BSPAlgorithm,
        params: SimulationParams,
        seed: int,
        write_schedule: str,
        faults: FaultPlan | None,
        retry: RetryPolicy | None,
        enforce_gamma: bool,
        context_cache: bool,
        fast_io: bool,
        observe: bool = False,
        storage: StorageSpec | None = None,
        profile: bool = False,
    ):
        self.index = index
        self.algorithm = algorithm
        self.params = params
        m, s = params.machine, params.bsp
        self.p = m.p
        self.v = s.v
        self.k = params.k
        self.vpp = s.v // m.p
        self.nbatches = self.vpp // self.k
        self.gamma = algorithm.comm_bound() if enforce_gamma else None
        self.write_schedule = write_schedule
        # Per-processor deterministic RNG stream: identical across backends,
        # independent across processors (no cross-processor draw ordering).
        self.rng = random.Random(f"{seed}/proc{index}")
        # Each real processor owns its drives, so each gets its own storage
        # sub-root (claimed worker-side under the process backend).
        spec = storage if storage is not None else StorageSpec()
        self.storage_spec = spec.for_proc(index)
        self.array = DiskArray(
            m.D, m.B, faults=faults, retry=retry, proc=index, fast_io=fast_io,
            storage=self.storage_spec,
        )
        self.allocator = RegionAllocator(self.array)
        self.contexts = ContextStore(
            self.array,
            self.allocator,
            self.vpp,
            s.mu,
            m.B,
            name=f"ctx@p{index}",
            cache=context_cache,
        )
        self.incoming: StripedRegion | None = None
        self.buckets: LinkedBuckets | None = None
        self.io_marker = 0
        # Worker-side telemetry: spans/samples/metrics collected here and
        # drained to the engine (over the pipe, under the process backend)
        # by drain_obs() — per-worker visibility with zero cost when off.
        self.obs: Collector | NullObserver = (
            Collector(proc=index, profile=profile) if observe else NULL_OBSERVER
        )
        # Under the process backend this worker's private profiler bills the
        # local storage plane; under the inline backend the engine replaces
        # it with its own (share_profile) right after construction.
        self.array.set_profiler(self.obs.profile)
        self.obs.profile.start()

    # -- placement (local views of the engine's maps) --------------------------

    def owner_of_vp(self, vp: int) -> int:
        return vp // self.vpp

    def batch_of_vp(self, vp: int) -> int:
        return (vp % self.vpp) // self.k

    def bucket_of_vp(self, vp: int) -> int:
        return self.batch_of_vp(vp) * self.params.machine.D // self.nbatches

    def round_vps(self, j: int) -> list[int]:
        base = self.index * self.vpp + j * self.k
        return list(range(base, base + self.k))

    def _round_slots(self, j: int) -> list[int]:
        return list(range(j * self.k, (j + 1) * self.k))

    # -- bookkeeping ------------------------------------------------------------

    def io_delta(self) -> int:
        d = self.array.parallel_ops - self.io_marker
        self.io_marker = self.array.parallel_ops
        return d

    def stall_total(self) -> int:
        inj = self.array.injector
        return self.array.stall_ops + (inj.stats.stall_ops if inj else 0)

    def _sample_disks(self, buckets: LinkedBuckets | None = None) -> None:
        """One timestamped sample per local disk (pure counter reads)."""
        for d, disk in enumerate(self.array.disks):
            self.obs.sample(f"disk{d}/ops", disk.reads + disk.writes)
            if buckets is not None:
                depth = sum(len(buckets.table[b][d]) for b in range(buckets.nbuckets))
                self.obs.sample(f"disk{d}/queue_depth", depth)
            st = disk.storage
            if st.read_bytes or st.write_bytes:
                # Non-zero only on non-memory planes, so memory-plane span
                # streams are unchanged by the storage layer's existence.
                self.obs.sample(f"disk{d}/storage_read_bytes", st.read_bytes)
                self.obs.sample(f"disk{d}/storage_write_bytes", st.write_bytes)

    # -- phase protocol (driven by the engine through a backend) ----------------

    def load_input(self) -> int:
        alg = self.algorithm
        with self.obs.span("load_input", cat="layout") as sp:
            for j in range(self.nbatches):
                vps = self.round_vps(j)
                states = [alg.initial_state(vp, self.v) for vp in vps]
                self.contexts.save_group(self._round_slots(j), states)
            delta = self.io_delta()
            sp.add(io_ops=delta)
        return delta

    def begin_superstep(self) -> tuple[int, int]:
        """Open a compound superstep; returns (retry_ops, stall_ops) marks."""
        self.buckets = LinkedBuckets(
            self.array,
            self.allocator,
            nbuckets=self.params.machine.D,
            bucket_of=self.bucket_of_vp,
            rng=self.rng,
            schedule=self.write_schedule,
        )
        return self.array.retry_ops, self.stall_total()

    def fetch(self, j: int) -> tuple[dict[int, list[Block]], int]:
        """Step 1(a): read batch ``j``'s blocks, grouped by owning processor."""
        with self.obs.span("fetch", batch=j, cat="layout") as sp:
            if self.incoming is not None:
                blks = [
                    blk
                    for blk in self.incoming.read_slot(j)
                    if blk is not None and not blk.dummy
                ]
            else:
                blks = []
            by_owner: dict[int, list[Block]] = {}
            for blk in blks:
                by_owner.setdefault(self.owner_of_vp(blk.dest), []).append(blk)
            delta = self.io_delta()
            sp.add(io_ops=delta, blocks=len(blks))
        return by_owner, delta

    def compute(self, j: int, step: int, inbound: list[Block]) -> dict[str, Any]:
        """Step 1(b): run batch ``j``'s ``k`` virtual supersteps.

        Returns the scatter packets as ``(random target, packet)`` pairs in
        draw order, plus this processor's cost contributions and the context
        fetch/save I/O deltas.
        """
        alg = self.algorithm
        m = self.params.machine
        gamma = self.gamma
        vps = self.round_vps(j)
        per_vp_blocks: dict[int, list[Block]] = {vp: [] for vp in vps}
        for blk in inbound:
            per_vp_blocks[blk.dest].append(blk)

        with self.obs.span("fetch_context", batch=j, cat="layout") as sp:
            states = self.contexts.load_group(self._round_slots(j))
            fetch_io = self.io_delta()
            sp.add(io_ops=fetch_io)

        new_states: list[Any] = []
        packets: list[tuple[int, Packet]] = []
        comp = 0.0
        sent_records = 0
        halted = True
        with self.obs.span("compute", batch=j, step=step, cat="kernel") as sp:
            for vp, state in zip(vps, states):
                msgs = blocks_to_messages(per_vp_blocks[vp])
                if gamma is not None:
                    nrecv = sum(msg.size for msg in msgs)
                    if nrecv > gamma:
                        raise AlgorithmError(
                            f"vp {vp} received {nrecv} records in "
                            f"superstep {step}, exceeding gamma={gamma}"
                        )
                ctx = VPContext(vp, self.v, step, state, msgs, comm_bound=gamma)
                alg.superstep(ctx)
                new_states.append(ctx.state)
                if not ctx.halted:
                    halted = False
                comp += ctx.comp_ops
                sent_records += ctx.sent_records
                for mi, msg in enumerate(ctx.outbox):
                    for pkt in message_to_packets(msg, m.b, mi):
                        packets.append((self.rng.randrange(self.p), pkt))
            sp.add(comp_ops=comp, packets=len(packets))
        with self.obs.span("write_context", batch=j, cat="layout") as sp:
            self.contexts.save_group(self._round_slots(j), new_states)
            save_io = self.io_delta()
            sp.add(io_ops=save_io)
        return {
            "packets": packets,
            "comp": comp,
            "sent_records": sent_records,
            "halted": halted,
            "fetch_io": fetch_io,
            "save_io": save_io,
        }

    def write(self, j: int, packets: list[Packet]) -> tuple[int, int]:
        """Step 1(c): cut received packets into blocks, append to buckets."""
        m = self.params.machine
        with self.obs.span("write_messages", batch=j, cat="layout") as sp:
            rblocks: list[Block] = []
            for pkt in packets:
                rblocks.extend(packet_to_blocks(pkt, m.B))
            self.buckets.append_blocks(rblocks)
            delta = self.io_delta()
            sp.add(io_ops=delta, blocks=len(rblocks), packets=len(packets))
        return len(rblocks), delta

    def reorganize(self, step: int) -> tuple[RoutingStats, int]:
        """Step 2: Algorithm 2 on the local buckets."""
        if self.obs.enabled:
            self._sample_disks(self.buckets)
        with self.obs.span("reorganize", step=step, cat="routing") as sp:
            new_incoming, routing = simulate_routing(
                self.array,
                self.allocator,
                self.buckets,
                nslots=self.nbatches,
                slot_of=self.batch_of_vp,
                name=f"incoming@p{self.index}s{step + 1}",
            )
            self.buckets.free()
            self.buckets = None
            if self.incoming is not None:
                self.incoming.free()
            self.incoming = new_incoming
            delta = self.io_delta()
            sp.add(io_ops=delta, blocks=routing.total_blocks)
        if self.obs.enabled:
            self.obs.metrics.histogram("lemma2_load_ratio").record(
                routing.max_load_ratio
            )
        return routing, delta

    def end_superstep(self) -> tuple[int, int]:
        return self.array.retry_ops, self.stall_total()

    # -- checkpoint/restore ------------------------------------------------------

    def export_checkpoint(
        self, group_size: int
    ) -> tuple[bytes, bytes | None, Any, set[int], int, dict | None]:
        with self.obs.span("checkpoint", cat="checkpoint") as sp:
            state_blob = freeze(self.contexts.export_all(group_size=group_size))
            if self.incoming is not None:
                blocks = self.incoming.read_slots(range(self.incoming.nslots))
                inc_blob = freeze((self.incoming.slot_sizes, blocks))
            else:
                inc_blob = None
            delta = self.io_delta()
            sp.add(io_ops=delta, bytes=len(state_blob))
        return (
            state_blob,
            inc_blob,
            self.rng.getstate(),
            set(self.array.dead_disks),
            delta,
            self._storage_ref(),
        )

    def _storage_ref(self) -> dict | None:
        """Fsync + snapshot this processor's storage at the barrier (host-side)."""
        if self.storage_spec.kind == "memory":
            return None
        self.array.sync_storage()
        inc = self.incoming
        return {
            "kind": self.storage_spec.kind,
            "root": self.storage_spec.root,
            "disks": self.array.snapshot_storage(),
            "alloc": (self.allocator.next_track, list(self.allocator._free)),
            "ctx_used": list(self.contexts._used),
            "incoming": None
            if inc is None
            else (list(inc.slot_sizes), inc.base, inc.name),
        }

    def attach_storage(
        self, ref: dict, rng_state: Any, step: int, state_blob: bytes | None = None
    ) -> int:
        """Re-attach this processor's on-disk track files from a checkpoint
        reference (the fresh-process crash-recovery path; zero counted I/O)."""
        with self.obs.span("recover", step=step, cat="checkpoint"):
            if rng_state is not None:
                self.rng.setstate(rng_state)
            self.array.restore_storage(ref["disks"])
            next_track, free = ref["alloc"]
            self.allocator.next_track = next_track
            self.allocator._free = sorted(tuple(run) for run in free)
            self.contexts._used = list(ref["ctx_used"])
            self.contexts.invalidate_cache()
            # Cache-mode saves are charge-only on the fast plane, so the
            # attached disk image has no context bytes — reseed the cache
            # from the checkpoint's portable states (no counted I/O).
            if state_blob is not None and self.contexts.cache:
                self.contexts.prime_cache(thaw(state_blob))
            if ref["incoming"] is not None:
                slot_sizes, base, name = ref["incoming"]
                self.incoming = StripedRegion.adopt(
                    self.array, self.allocator, slot_sizes, base, name=name
                )
            self.io_marker = self.array.parallel_ops
        return 0

    def apply_crash(self, stage: str) -> int:
        """Inflict one crash stage's byte damage on this worker's drives."""
        self.array.crash_storage(stage)
        return 0

    def close_storage(self) -> None:
        self.array.close_storage()

    def restore_checkpoint(
        self, state_blob: bytes, inc_blob: bytes | None, rng_state: Any, step: int
    ) -> int:
        with self.obs.span("recover", step=step, cat="checkpoint"):
            return self._restore_checkpoint(state_blob, inc_blob, rng_state, step)

    def _restore_checkpoint(
        self, state_blob: bytes, inc_blob: bytes | None, rng_state: Any, step: int
    ) -> int:
        if self.buckets is not None:
            self.buckets.free()
            self.buckets = None
        if self.incoming is not None:
            self.incoming.free()
            self.incoming = None
        if rng_state is not None:
            self.rng.setstate(rng_state)
        self.contexts.import_all(thaw(state_blob), group_size=self.k)
        if inc_blob is not None:
            slot_sizes, blocks = thaw(inc_blob)
            region = StripedRegion(
                self.array,
                self.allocator,
                slot_sizes,
                name=f"incoming@p{self.index}resume{step}",
            )
            region.write_slots(range(region.nslots), blocks)
            self.incoming = region
        return self.io_delta()

    # -- wrap-up -----------------------------------------------------------------

    def collect_outputs(self) -> tuple[dict[int, Any], int, int]:
        alg = self.algorithm
        with self.obs.span("collect_outputs", cat="layout") as sp:
            outs: dict[int, Any] = {}
            for j in range(self.nbatches):
                vps = self.round_vps(j)
                for vp, state in zip(
                    vps, self.contexts.load_group(self._round_slots(j))
                ):
                    outs[vp] = alg.output(vp, state)
            delta = self.io_delta()
            sp.add(io_ops=delta)
        return outs, delta, self.allocator.high_water

    def drain_obs(self) -> dict | None:
        """Ship the worker-side telemetry to the engine (picklable payload).

        Samples final per-disk counters and the context-cache tallies first,
        so the merged registry carries this processor's end-of-run state.
        """
        if not self.obs.enabled:
            return None
        self._sample_disks()
        mx = self.obs.metrics
        mx.counter("ctx_cache/hits").inc(self.contexts.cache_hits)
        mx.counter("ctx_cache/misses").inc(self.contexts.cache_misses)
        mx.gauge("disk_space_tracks").set(self.allocator.high_water)
        if self.array.storage_read_bytes or self.array.storage_write_bytes:
            mx.counter("storage/read_bytes").inc(self.array.storage_read_bytes)
            mx.counter("storage/write_bytes").inc(self.array.storage_write_bytes)
        if self.array.retry_ops or self.array.stall_ops:
            mx.counter("retry_ops").inc(self.array.retry_ops)
            mx.counter("stall_ops").inc(self.stall_total())
        return self.obs.drain()

    def fault_stats(self) -> dict[str, int]:
        out = {
            "retry_reads": self.array.retry_reads,
            "retry_writes": self.array.retry_writes,
            "stall_ops": self.stall_total(),
            "degraded_writes": self.array.degraded_writes,
        }
        inj = self.array.injector
        if inj is not None:
            s = inj.stats
            out.update(
                transient_read_errors=s.transient_read_errors,
                transient_write_errors=s.transient_write_errors,
                corruptions_injected=s.corruptions_injected,
                checksum_errors=s.checksum_errors,
                latency_spikes=s.latency_spikes,
                disks_died=s.disks_died,
            )
        return out


class ParallelEMSimulation:
    """Runs a :class:`BSPAlgorithm` under Algorithm 3 (``p >= 1`` processors).

    With ``p=1`` this degenerates to a close cousin of
    :class:`~repro.core.seqsim.SequentialEMSimulation` (messages still pass
    through the packet-scatter path, but there is only one bin to scatter to).

    ``faults``, ``retry``, ``checkpoint``, ``max_recoveries`` mirror the
    sequential engine; see :class:`SequentialEMSimulation` for semantics.

    Parameters
    ----------
    backend:
        ``"inline"`` (default, the reference) simulates the real processors
        in-process; ``"process"`` runs each on its own ``multiprocessing``
        worker.  Outputs, ledgers, and reports are identical — see
        :mod:`repro.core.backend`.
    context_cache:
        Context-swap fast path (see :class:`~repro.core.context.ContextStore`).
    fast_io:
        Counted-cost-identical short-circuits in each processor's disk array
        (see :class:`~repro.emio.diskarray.DiskArray`).
    observer:
        Optional :class:`~repro.obs.spans.Collector`.  The engine emits
        barrier-level spans (superstep > fetch/compute/write/reorganize) on
        its own track; every real processor collects its own spans, samples,
        and metrics worker-side — under the process backend they travel back
        over the pipes — and the engine merges them into ``observer`` as one
        coherent timeline (``perf_counter`` is host-wide monotonic).  Counted
        costs, outputs, and reports are byte-identical with and without it.
    """

    def __init__(
        self,
        algorithm: BSPAlgorithm,
        params: SimulationParams,
        seed: int = 0,
        enforce_gamma: bool = True,
        round_robin_writes: bool = False,
        write_schedule: str | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        checkpoint: bool = False,
        max_recoveries: int = 8,
        backend: str = "inline",
        context_cache: bool = False,
        fast_io: bool = False,
        observer: Collector | None = None,
        events: "RunEventLog | None" = None,
        storage: "str | StorageSpec" = "memory",
        storage_dir: str | None = None,
        io_overlap: bool = False,
        crash: CrashPlan | None = None,
    ):
        self.algorithm = algorithm
        self.params = params
        self.seed = seed
        self.enforce_gamma = enforce_gamma
        self.write_schedule = write_schedule or (
            "rotate" if round_robin_writes else "random"
        )
        self.faults = faults
        self.retry = retry
        self.checkpoint_enabled = checkpoint
        self.max_recoveries = max_recoveries
        self.obs = observer if observer is not None else NULL_OBSERVER
        self.events = events
        # The engine claims the root directory; each worker derives (and
        # claims) its proc{i} sub-root from the pickled spec.
        self.storage_spec = resolve_storage(storage, storage_dir)
        if io_overlap and self.storage_spec.kind != "memory":
            # Per-worker flusher pools: each proc{i} sub-spec inherits the
            # overlap fields through for_proc, so every worker gets its own
            # bounded pool sized against its share of the memory budget.
            self.storage_spec = self.storage_spec.with_overlap(
                default_overlap_budget(
                    params.machine.M, params.machine.D, Block.BYTES_PER_RECORD
                )
            )
        self.io_overlap = self.storage_spec.io_overlap
        if crash is not None:
            if self.storage_spec.kind == "memory" or not checkpoint:
                raise ParameterError(
                    "crash= injects byte-level damage at checkpoint barriers; "
                    "it requires checkpoint=True and a non-memory storage plane"
                )
            self.storage_spec = self.storage_spec.with_crash(crash)
        self.crash_plan = crash
        self._crash_counter = 0
        # Non-memory checkpointed runs publish every barrier atomically
        # through a journal inside the engine-level storage root.
        self._journal = (
            CheckpointJournal(self.storage_spec.root)
            if checkpoint and self.storage_spec.kind != "memory"
            else None
        )

        m, s = params.machine, params.bsp
        self.p = m.p
        self.v = s.v
        self.k = params.k
        self.vpp = s.v // m.p  # virtual processors per real processor
        self.nbatches = self.vpp // self.k  # rounds per compound superstep
        self.ledger = CostLedger(m)
        self.report = SimulationReport(params=params, ledger=self.ledger)
        self.gamma = algorithm.comm_bound() if enforce_gamma else None

        init_args = [
            (
                i,
                algorithm,
                params,
                seed,
                self.write_schedule,
                faults,
                retry,
                enforce_gamma,
                context_cache,
                fast_io,
                observer is not None,
                self.storage_spec,
                self.obs.profile.enabled,
            )
            for i in range(self.p)
        ]
        self.backend = make_backend(backend, init_args)
        # Inline processors stay inspectable (tests, notebooks).
        self.procs = getattr(self.backend, "procs", None)
        # Wall-clock attribution plumbing (all no-ops when unprofiled): the
        # backend bills pipe sends as ``ipc`` and the receive-all rounds as
        # ``barrier_wait``; inline workers run on the engine thread, so they
        # share the engine profiler's scope stack instead of keeping the
        # private per-processor profilers the process backend drains.
        self.backend.profiler = self.obs.profile
        if self.procs is not None and self.obs.profile.enabled:
            for pr in self.procs:
                pr.obs.share_profile(self.obs.profile)
                pr.array.set_profiler(self.obs.profile)

        self.last_checkpoint: SuperstepCheckpoint | None = None
        self._recoveries = 0
        self._checkpoints_taken = 0
        self._checkpoint_io_ops = 0
        self._recovery_io_ops = 0
        self._resumed_from: int | None = None

    # -- placement maps -----------------------------------------------------------

    def owner_of_vp(self, vp: int) -> int:
        """Real processor simulating virtual processor ``vp``."""
        return vp // self.vpp

    def batch_of_vp(self, vp: int) -> int:
        """Round in which ``vp`` is simulated (its *batch* index)."""
        return (vp % self.vpp) // self.k

    def bucket_of_vp(self, vp: int) -> int:
        """Local disk bucket of a block destined for ``vp``.

        "Each bucket contains the blocks for ``(v/pk)/D`` batches": batches
        are ranged evenly into the ``D`` buckets.
        """
        return self.batch_of_vp(vp) * self.params.machine.D // self.nbatches

    def round_vps(self, proc: int, j: int) -> list[int]:
        """Virtual processors simulated by ``proc`` in round ``j``."""
        base = proc * self.vpp + j * self.k
        return list(range(base, base + self.k))

    # -- main entry -----------------------------------------------------------------

    def run(self) -> tuple[list[Any], SimulationReport]:
        """Simulate to completion; return (per-vp outputs, report)."""
        self.obs.profile.start()
        self._emit_run_started()
        try:
            self._load_input()
            if self.checkpoint_enabled:
                self._guarded_checkpoint(0)
            self._run_from(0)
            return self._finish()
        except BaseException as exc:
            self._emit_run_finished("error", error=repr(exc))
            raise
        finally:
            self.obs.profile.stop()
            self._shutdown()

    def resume_from_checkpoint(
        self, ckpt: SuperstepCheckpoint
    ) -> tuple[list[Any], SimulationReport]:
        """Continue an aborted run from a checkpoint (see the sequential
        engine's method of the same name).  With storage references in the
        checkpoint and an engine pointed at the same ``storage_dir``, every
        worker re-attaches its own track files in place."""
        if ckpt.nprocs != self.p:
            raise ParameterError(
                f"checkpoint holds {ckpt.nprocs} processors, machine has {self.p}"
            )
        self.obs.profile.start()
        self._emit_run_started(resumed_from=ckpt.step)
        try:
            self._resumed_from = ckpt.step
            self.last_checkpoint = ckpt
            refs = getattr(ckpt, "storage_refs", None)
            if self._refs_attachable(refs):
                self._attach_storage(ckpt, refs)
            else:
                self._restore(ckpt)
            self._run_from(ckpt.step)
            return self._finish()
        except BaseException as exc:
            self._emit_run_finished("error", error=repr(exc))
            raise
        finally:
            self.obs.profile.stop()
            self._shutdown()

    def _refs_attachable(self, refs: list[dict | None] | None) -> bool:
        if (
            refs is None
            or len(refs) != self.p
            or any(r is None for r in refs)
            or self.storage_spec.kind == "memory"
        ):
            return False
        return all(
            r["kind"] == self.storage_spec.kind
            and r["root"] == self.storage_spec.proc_root(i)
            for i, r in enumerate(refs)
        )

    def _attach_storage(self, ckpt: SuperstepCheckpoint, refs: list[dict]) -> None:
        with self.obs.span("recover", step=ckpt.step, cat="checkpoint"):
            self.report, self.ledger = thaw(ckpt.report_blob)
            rngs = ckpt.rng_state
            if not isinstance(rngs, list):
                rngs = [rngs] * self.p
            self.backend.call_all(
                "attach_storage",
                [
                    (refs[i], rngs[i], ckpt.step, ckpt.proc_states[i])
                    for i in range(self.p)
                ],
            )
        if self.obs.enabled:
            self.obs.metrics.counter("recoveries").inc()

    def _shutdown(self) -> None:
        try:
            self.backend.call_all("close_storage")
        except Exception:
            pass  # a dead worker cannot close its files; the OS will
        self.backend.close()
        self.storage_spec.cleanup()

    # -- live event stream ------------------------------------------------------------

    def _bytes_moved(self) -> int:
        """Host bytes physically moved so far: storage-plane traffic for the
        inline backend (the engine owns the arrays), pipe traffic for the
        process backend (the arrays live in the workers)."""
        if self.procs is not None:
            return sum(
                pr.array.storage_read_bytes + pr.array.storage_write_bytes
                for pr in self.procs
            )
        return self.backend.tx_bytes + self.backend.rx_bytes

    def _counted_io_ops(self) -> int:
        return self.report.init_io_ops + sum(
            sr.phases.total for sr in self.report.supersteps
        )

    def _emit_run_started(self, **extra: Any) -> None:
        if self.events is None:
            return
        p = self.params
        self.events.run_started(
            engine="parallel",
            backend=self.backend.name,
            algorithm=type(self.algorithm).__name__,
            v=p.bsp.v,
            p=p.machine.p,
            D=p.machine.D,
            B=p.machine.B,
            storage=self.storage_spec.kind,
            **extra,
        )

    def _emit_run_finished(self, status: str, **extra: Any) -> None:
        if self.events is None:
            return
        self.events.run_finished(
            status,
            io_ops=self._counted_io_ops(),
            bytes_moved=self._bytes_moved(),
            **extra,
        )

    # -- run skeleton ---------------------------------------------------------------

    def _load_input(self) -> None:
        with self.obs.span("load_input", cat="layout") as sp:
            self.report.init_io_ops = max(self.backend.call_all("load_input"))
            sp.add(io_ops=self.report.init_io_ops)

    def _run_from(self, start: int) -> None:
        step = start
        while True:
            if step >= self.algorithm.MAX_SUPERSTEPS:
                raise AlgorithmError(
                    "algorithm did not halt within "
                    f"MAX_SUPERSTEPS={self.algorithm.MAX_SUPERSTEPS}"
                )
            try:
                if self.events is not None:
                    self.events.superstep_started(step)
                bytes0 = self._bytes_moved() if self.events is not None else 0
                with self.obs.span("superstep", step=step, cat="layout") as sp:
                    finished = self._superstep(step)
                    sp.add(io_ops=self.report.supersteps[-1].phases.total)
                if not finished and self.checkpoint_enabled:
                    self._take_checkpoint(step + 1)
                self.obs.profile.mark_superstep(step)
                if self.events is not None:
                    self.events.superstep_finished(
                        step,
                        io_ops=self.report.supersteps[-1].phases.total,
                        bytes_moved=self._bytes_moved() - bytes0,
                    )
            except FATAL_IO_FAULTS as exc:
                step = self._handle_fault(exc)
                continue
            if finished:
                return
            step += 1

    def _guarded_checkpoint(self, step: int) -> None:
        try:
            self._take_checkpoint(step)
        except FATAL_IO_FAULTS as exc:
            raise SimulationAborted(
                f"fatal I/O fault before the first checkpoint: {exc}", None
            ) from exc

    def _handle_fault(self, exc: Exception) -> int:
        self._recoveries += 1
        if self.last_checkpoint is None:
            raise SimulationAborted(
                f"fatal I/O fault with no checkpoint to recover from "
                f"(run with checkpoint=True): {exc}",
                None,
            ) from exc
        if self._recoveries > self.max_recoveries:
            raise SimulationAborted(
                f"fatal I/O fault after exhausting max_recoveries="
                f"{self.max_recoveries}: {exc}",
                self.last_checkpoint,
            ) from exc
        self._restore(self.last_checkpoint)
        return self.last_checkpoint.step

    # -- checkpoint/restore ----------------------------------------------------------

    def _take_checkpoint(self, step: int) -> None:
        """Snapshot every processor's barrier state (charged as local reads;
        the model cost is the maximum over processors, like any phase)."""
        self._crash_stage("torn")
        self._crash_stage("lost")
        with self.obs.span("checkpoint", step=step, cat="checkpoint"):
            self._take_checkpoint_inner(step)
        self._publish_checkpoint()

    def _crash_stage(self, stage: str) -> None:
        """One crash-stage boundary: die here if the plan's point fired.

        The ``"torn"``/``"lost"`` stages first make every worker damage its
        unsynced write log, then the engine dies — modelling a whole-host
        crash that takes the workers' page caches with it.
        """
        plan = self.crash_plan
        if plan is None:
            return
        point = self._crash_counter
        self._crash_counter += 1
        if point != plan.crash_point:
            return
        if stage in ("torn", "lost"):
            self.backend.call_all("apply_crash", [(stage,)] * self.p)
        raise HostCrash(f"injected host crash at point {point} (stage {stage!r})")

    def _publish_checkpoint(self) -> None:
        """Atomically publish the barrier through the storage root's journal."""
        self._crash_stage("postsync")
        if self._journal is not None:
            with self.obs.profile.scope("checkpoint"):
                self._journal.commit(
                    self.last_checkpoint, on_stage=self._crash_stage
                )
            self.obs.metrics.counter("checkpoint/commits").inc()

    def _take_checkpoint_inner(self, step: int) -> None:
        exports = self.backend.call_all("export_checkpoint", [(self.k,)] * self.p)
        refs = [e[5] for e in exports]
        self.last_checkpoint = SuperstepCheckpoint(
            step=step,
            rng_state=[e[2] for e in exports],  # one RNG stream per processor
            proc_states=[e[0] for e in exports],
            proc_incoming=[e[1] for e in exports],
            report_blob=freeze((self.report, self.ledger)),
            dead_disks=[e[3] for e in exports],
            storage_refs=refs if any(r is not None for r in refs) else None,
        )
        self._checkpoints_taken += 1
        self._checkpoint_io_ops += max(e[4] for e in exports)

    def _restore(self, ckpt: SuperstepCheckpoint) -> None:
        with self.obs.span("recover", step=ckpt.step, cat="checkpoint"):
            self.report, self.ledger = thaw(ckpt.report_blob)
            rngs = ckpt.rng_state
            if not isinstance(rngs, list):
                rngs = [rngs] * self.p
            deltas = self.backend.call_all(
                "restore_checkpoint",
                [
                    (ckpt.proc_states[i], ckpt.proc_incoming[i], rngs[i], ckpt.step)
                    for i in range(self.p)
                ],
            )
            self._recovery_io_ops += max(deltas)
        if self.obs.enabled:
            self.obs.metrics.counter("recoveries").inc()

    # -- one compound superstep --------------------------------------------------------

    def _superstep(self, step: int) -> bool:
        m = self.params.machine

        cost = self.ledger.begin_superstep(label=f"superstep {step}")
        cost.syncs = 0
        phases = PhaseBreakdown()
        marks0 = self.backend.call_all("begin_superstep")
        all_halted = True
        blocks_generated = 0

        obs = self.obs
        for j in range(self.nbatches):
            # ---- Fetching phase: local reads + gather h-relation ----
            # inbound[q] = blocks for processor q's current k vps.
            with obs.span("fetch_barrier", batch=j, cat="layout") as sp:
                fetches = self.backend.call_all("fetch", [(j,)] * self.p)
                d = max(io for _by, io in fetches)
                phases.fetch_messages += d
                sp.add(io_ops=d)
            inbound: list[list[Block]] = [[] for _ in range(self.p)]
            sent_pk = [0] * self.p
            recv_pk = [0] * self.p
            for i, (by_owner, _io) in enumerate(fetches):
                for q, qblocks in sorted(by_owner.items()):
                    nrec = sum(b.nrecords() for b in qblocks)
                    npk = max(1, packets_for(nrec, m.b))
                    if q != i:
                        sent_pk[i] += npk
                        recv_pk[q] += npk
                    inbound[q].extend(qblocks)
            cost.comm_packets += max(sent_pk[q] + recv_pk[q] for q in range(self.p))
            cost.syncs += 1

            # ---- Computing phase (incl. local context swaps) ----
            with obs.span("compute_barrier", batch=j, cat="kernel") as sp:
                computes = self.backend.call_all(
                    "compute", [(j, step, inbound[q]) for q in range(self.p)]
                )
                sp.add(comp_ops=max(r["comp"] for r in computes))
            phases.fetch_context += max(r["fetch_io"] for r in computes)
            phases.write_context += max(r["save_io"] for r in computes)
            cost.comp_ops += max(r["comp"] for r in computes)
            cost.records_sent += sum(r["sent_records"] for r in computes)
            if not all(r["halted"] for r in computes):
                all_halted = False

            # ---- Writing phase: scatter h-relation + bucket writes ----
            outpackets: list[list[Packet]] = [[] for _ in range(self.p)]
            scatter_sent = [0] * self.p
            scatter_recv = [0] * self.p
            for i, r in enumerate(computes):
                scatter_sent[i] = len(r["packets"])
                for target, pkt in r["packets"]:
                    scatter_recv[target] += 1
                    outpackets[target].append(pkt)
            cost.comm_packets += max(
                scatter_sent[q] + scatter_recv[q] for q in range(self.p)
            )
            cost.syncs += 1
            with obs.span("write_barrier", batch=j, cat="layout") as sp:
                writes = self.backend.call_all(
                    "write", [(j, outpackets[q]) for q in range(self.p)]
                )
                d = max(io for _n, io in writes)
                sp.add(io_ops=d, packets=sum(scatter_sent))
            blocks_generated += sum(n for n, _io in writes)
            phases.write_messages += d

        # ---- Step 2: local reorganization on every processor ----
        with obs.span("reorganize_barrier", cat="routing") as sp:
            reorgs = self.backend.call_all("reorganize", [(step,)] * self.p)
            d = max(io for _r, io in reorgs)
            sp.add(io_ops=d)
        phases.reorganize += d
        cost.syncs += 1
        worst_routing: RoutingStats | None = None
        for routing, _io in reorgs:
            if (
                worst_routing is None
                or routing.max_load_ratio > worst_routing.max_load_ratio
            ):
                worst_routing = routing

        marks1 = self.backend.call_all("end_superstep")
        cost.io_ops = phases.total
        cost.records_io = phases.total * m.D * m.B
        cost.retry_ops = max(m1[0] - m0[0] for m0, m1 in zip(marks0, marks1))
        cost.stall_ops = max(m1[1] - m0[1] for m0, m1 in zip(marks0, marks1))
        self.report.supersteps.append(
            SuperstepReport(
                index=step,
                phases=phases,
                routing=worst_routing,
                comm_packets=cost.comm_packets,
                message_blocks=blocks_generated,
                halted=all_halted,
                routing_all=[routing for routing, _io in reorgs],
            )
        )
        if obs.enabled:
            mx = obs.metrics
            if worst_routing is not None and worst_routing.total_blocks:
                mx.histogram("lemma2_load_ratio").record(worst_routing.max_load_ratio)
            mx.histogram("superstep_io_ops").record(phases.total)
            mx.counter("comm_packets").inc(cost.comm_packets)
            mx.counter("message_blocks").inc(blocks_generated)
            if cost.retry_ops or cost.stall_ops:
                mx.counter("retry_ops").inc(cost.retry_ops)
                mx.counter("stall_ops").inc(cost.stall_ops)
        return all_halted and blocks_generated == 0

    # -- wrap-up ---------------------------------------------------------------------

    def _finish(self) -> tuple[list[Any], SimulationReport]:
        self.ledger.close()
        self.report.ledger = self.ledger

        # ---- unload output ----
        with self.obs.span("collect_outputs", cat="layout"):
            collected = self.backend.call_all("collect_outputs")
        outputs: list[Any] = [None] * self.v
        for outs, _io, _hw in collected:
            for vp, out in outs.items():
                outputs[vp] = out
        self.report.output_io_ops = max(io for _o, io, _hw in collected)
        self.report.disk_space_tracks = max(hw for _o, _io, hw in collected)
        self._attach_fault_report()
        if self.obs.enabled:
            # Pull every worker-side collector's telemetry into the engine's
            # (one coherent merged timeline; see Collector.ingest).
            for payload in self.backend.call_all("drain_obs"):
                if payload is not None:
                    self.obs.ingest(payload)
            mx = self.obs.metrics
            mx.gauge("disk_space_tracks").set(self.report.disk_space_tracks)
            tx = getattr(self.backend, "tx_bytes", 0)
            rx = getattr(self.backend, "rx_bytes", 0)
            if tx or rx:
                mx.counter("backend/tx_bytes").inc(tx)
                mx.counter("backend/rx_bytes").inc(rx)
        self._emit_run_finished("ok")
        return outputs, self.report

    def _attach_fault_report(self) -> None:
        if (
            self.faults is None
            and not self.checkpoint_enabled
            and self._resumed_from is None
        ):
            return
        stats = self.backend.call_all("fault_stats")
        fr = FaultReport(
            retry_reads=sum(s["retry_reads"] for s in stats),
            retry_writes=sum(s["retry_writes"] for s in stats),
            stall_ops=sum(s["stall_ops"] for s in stats),
            degraded_writes=sum(s["degraded_writes"] for s in stats),
            recoveries=self._recoveries,
            checkpoints_taken=self._checkpoints_taken,
            checkpoint_io_ops=self._checkpoint_io_ops,
            recovery_io_ops=self._recovery_io_ops,
            resumed_from_step=self._resumed_from,
        )
        for s in stats:
            if "transient_read_errors" not in s:
                continue
            fr.transient_read_errors += s["transient_read_errors"]
            fr.transient_write_errors += s["transient_write_errors"]
            fr.corruptions_injected += s["corruptions_injected"]
            fr.checksum_errors += s["checksum_errors"]
            fr.latency_spikes += s["latency_spikes"]
            fr.disks_died += s["disks_died"]
        self.report.faults = fr
