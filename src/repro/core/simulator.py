"""Front door for running BSP*/CGM algorithms as EM algorithms.

:func:`simulate` assembles :class:`SimulationParams` from an algorithm's own
resource declarations, chooses the sequential (Algorithm 1) or parallel
(Algorithm 3) engine from the machine's ``p``, and runs it.  This is the
"automatically generated EM algorithm" of the paper's conclusion: the caller
supplies a parallel algorithm and a machine description; blocking, parallel
disks, and multiple processors are handled by the simulation.
"""

from __future__ import annotations

from typing import Any, Literal

from ..bsp.program import BSPAlgorithm
from ..emio.faults import CrashPlan, FaultPlan, RetryPolicy
from ..obs.live import RunEventLog
from ..obs.spans import Collector
from ..params import BSPParams, MachineParams, SimulationParams
from .parsim import ParallelEMSimulation
from .seqsim import SequentialEMSimulation
from .stats import SimulationReport

__all__ = ["simulate", "build_params"]


def build_params(
    algorithm: BSPAlgorithm,
    machine: MachineParams,
    v: int,
    k: int | None = None,
    strict: bool = False,
) -> SimulationParams:
    """Derive :class:`SimulationParams` from the algorithm's declarations."""
    return SimulationParams(
        machine=machine,
        bsp=BSPParams(
            v=v,
            mu=algorithm.context_size(),
            gamma=max(algorithm.comm_bound(), 1),
        ),
        k=k,
        strict=strict,
    )


def simulate(
    algorithm: BSPAlgorithm,
    machine: MachineParams,
    v: int,
    k: int | None = None,
    seed: int = 0,
    engine: Literal["auto", "sequential", "parallel"] = "auto",
    strict: bool = False,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    checkpoint: bool = False,
    max_recoveries: int = 8,
    backend: Literal["inline", "process"] = "inline",
    context_cache: bool = False,
    fast_io: bool = False,
    observer: Collector | None = None,
    events: RunEventLog | None = None,
    storage: str = "memory",
    storage_dir: str | None = None,
    io_overlap: bool = False,
    crash: CrashPlan | None = None,
    records: str | None = None,
    **engine_kwargs,
) -> tuple[list[Any], SimulationReport]:
    """Run ``algorithm`` with ``v`` virtual processors on ``machine``.

    Parameters
    ----------
    engine:
        ``"auto"`` picks Algorithm 1 for ``p == 1`` and Algorithm 3 for
        ``p > 1``; the other values force an engine (the parallel engine
        accepts ``p == 1`` and exercises the packet-scatter path).
    strict:
        Enforce Theorem 1's side conditions (slackness etc.).
    faults:
        Optional :class:`~repro.emio.faults.FaultPlan` injecting disk faults
        (transient errors, corruption, latency spikes, disk death) into the
        simulated arrays.  Transient faults are masked by bounded retries
        (``retry``); fatal faults need ``checkpoint=True`` to recover.
    retry:
        Retry policy for transient faults; defaults to
        :class:`~repro.emio.faults.RetryPolicy` whenever ``faults`` is given.
    checkpoint:
        Checkpoint at every compound-superstep barrier and re-run a
        superstep after a fatal I/O fault (at most ``max_recoveries`` times).
        The run's fault/retry/recovery tallies land in ``report.faults``.
    backend:
        Where the parallel engine's real processors execute: ``"inline"``
        (default, the reference) or ``"process"`` (one ``multiprocessing``
        worker per processor; see :mod:`repro.core.backend`).  Counted
        costs, outputs, and reports are identical.  Rejected for the
        sequential engine.
    context_cache:
        Context-swap fast path: keep pickled context bytes host-side with a
        dirty bit and charge the identical parallel I/O without
        re-materializing blocks (see :class:`~repro.core.context.ContextStore`).
        Auto-disabled under fault injection.  Model costs are unchanged.
    fast_io:
        Short-circuit the disk arrays' data plane when no faults, traces, or
        dead disks are active (see :class:`~repro.emio.diskarray.DiskArray`).
        Counters and stored blocks stay identical; only wall-clock changes.
    observer:
        A :class:`~repro.obs.spans.Collector` receiving structured telemetry:
        nested spans per superstep/phase with wall-clock timing and counted
        I/O attributes, per-disk counter samples, and run metrics (see
        :mod:`repro.obs`).  Under the process backend, per-worker spans are
        merged into one coherent timeline.  Attaching an observer never
        changes counted costs, outputs, or reports, and does not force the
        arrays off the fast data plane; export with
        :func:`repro.obs.write_chrome_trace` / :func:`repro.obs.write_jsonl`.
        A ``Collector(profile=True)`` also collects the wall-clock
        attribution profile (``repro.obs.build_report``, DESIGN §11).
    events:
        A :class:`~repro.obs.live.RunEventLog` streaming run/superstep
        lifecycle events as line-flushed JSONL during the run (``repro
        watch <file>`` tails it).  Read-only like ``observer``.
    storage:
        Block-storage plane backing the simulated disks: ``"memory"``
        (default, plain dicts), ``"file"`` (one preallocated track file per
        drive, accessed with ``pread``/``pwrite``), or ``"mmap"`` (the same
        files through ``mmap``).  Outputs, counted costs, ledgers, and
        traces are byte-identical across planes — the model charges I/O
        before data moves, so where the bytes live is invisible to the
        accounting (see ``DESIGN.md`` §8).  Non-memory planes make
        truly out-of-core runs possible: resident heap stays bounded by a
        handful of blocks while the dataset lives in the track files.
    storage_dir:
        Directory for the track files on non-memory planes.  ``None``
        (default) uses a private temporary directory removed when the run
        finishes; an explicit path persists after the run (useful for
        checkpoint/resume across processes) and must be empty or carry the
        storage marker file from a previous run.
    io_overlap:
        Overlap host I/O with computation on non-memory planes: writes are
        queued to a bounded per-drive background flusher (write-behind with
        read-after-write overlay), sequential-track access patterns trigger
        readahead, and near-adjacent slot reads coalesce into single
        syscalls.  Superstep fsyncs, journal commits, snapshots, and crash
        injection all quiesce the queue first, so counted costs, outputs,
        ledgers, checkpoint bytes, and crash semantics are byte-identical
        to the synchronous plane (DESIGN §12).  Buffer memory is bounded by
        ``M/4`` record-bytes across the drives.  Ignored on ``"memory"``.
    crash:
        Optional :class:`~repro.emio.faults.CrashPlan` crashing the run at
        one crash point around a checkpoint barrier (torn write, lost
        pre-fsync writes, or a kill between journal stages).  Requires
        ``checkpoint=True`` and a non-memory storage plane; the crash
        surfaces as :class:`~repro.emio.faults.HostCrash`.  Recovery is
        :func:`~repro.core.checkpoint.scrub` plus a fresh engine — see
        ``repro crashcheck`` and DESIGN §9.
    records:
        Record plane the algorithm's supersteps run on: ``None`` keeps the
        algorithm's current mode (``"object"`` by default), ``"object"``
        forces the per-record reference plane, ``"vector"`` selects the
        numpy kernels of codec-eligible algorithms (see
        :mod:`repro.emio.codec` and ``DESIGN.md`` §10).  Counted costs,
        ledgers, and outputs are identical across modes — an algorithm that
        does not support the requested mode raises ``AlgorithmError``.
    engine_kwargs:
        Passed through to the engine (e.g. ``pad_to_gamma=True`` for the
        sequential engine, ``round_robin_writes=True`` for ablations).

    Returns
    -------
    (outputs, report):
        ``outputs[i]`` is virtual processor ``i``'s output; ``report`` holds
        counted model costs and per-phase I/O breakdowns.
    """
    if records is not None:
        algorithm.set_record_mode(records)
    params = build_params(algorithm, machine, v, k=k, strict=strict)
    requested = engine
    if engine == "auto":
        engine = "sequential" if machine.p == 1 else "parallel"
    kwargs = dict(
        seed=seed,
        faults=faults,
        retry=retry,
        checkpoint=checkpoint,
        max_recoveries=max_recoveries,
        context_cache=context_cache,
        fast_io=fast_io,
        observer=observer,
        events=events,
        storage=storage,
        storage_dir=storage_dir,
        io_overlap=io_overlap,
        crash=crash,
        **engine_kwargs,
    )
    if engine == "sequential":
        if backend != "inline":
            # Name both knobs: the caller must change either `backend` (to
            # "inline") or `engine` (to "parallel", which accepts p == 1).
            how = (
                f"engine='auto' resolved to 'sequential' because machine.p="
                f"{machine.p}"
                if requested == "auto"
                else f"engine={requested!r}"
            )
            raise ValueError(
                f"backend={backend!r} requires the parallel engine, but {how}; "
                f"pass engine='parallel' (it accepts p=1) or backend='inline' "
                "(the sequential engine has a single real processor)"
            )
        sim = SequentialEMSimulation(algorithm, params, **kwargs)
    elif engine == "parallel":
        sim = ParallelEMSimulation(algorithm, params, backend=backend, **kwargs)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return sim.run()
