"""Execution backends for the parallel engine's real processors.

Algorithm 3 prescribes *what* each of the ``p`` real processors does per
phase; a backend decides *where* that work physically runs:

* :class:`InlineBackend` — the default and the reference: processors are
  plain objects called in index order inside the engine's own process.
  Fully deterministic and trivially debuggable.
* :class:`ProcessBackend` — each real processor lives in its own worker
  process (``multiprocessing``, fork-preferred) and owns its disk array,
  context store, RNG stream, and fault stream there.  The engine drives the
  same phase protocol over pipes; the superstep barriers of the model map
  onto the send-all/receive-all message rounds, which exchange packed
  message payloads and per-worker ledger deltas.

Both backends execute the identical per-processor code
(:class:`~repro.core.parsim._RealProcessor`) with identical per-processor
RNG streams, so counted model costs, outputs, and reports are equal between
them — the golden equivalence suite asserts this.  On a multi-core host the
process backend overlaps the processors' computation and (host-side)
I/O work, which is exactly the parallelism the EM-BSP machine model assumes.

The protocol is a command loop: the engine calls ``call_all(method, args)``;
workers answer ``("ok", result)`` or ``("err", exception)``.  Errors are
collected only after *every* worker has answered the round — the workers
stay alive and consistent, so a fatal injected I/O fault on one processor
can roll all of them back to the last superstep barrier, mirroring the
inline engine's recovery semantics.
"""

from __future__ import annotations

import io
import multiprocessing as mp
import pickle
import struct
from multiprocessing.reduction import ForkingPickler
from typing import Any, Sequence

from ..obs.profile import NULL_PROFILER

__all__ = ["InlineBackend", "ProcessBackend", "make_backend"]

# -- pipe wire format ---------------------------------------------------------
#
# Every command/reply is pickled with an out-of-band ``buffer_callback``
# (protocol 5).  Objects that expose the buffer protocol through pickle 5 —
# ndarray payloads of the vectorized record plane — are collected as raw
# buffers instead of being serialized into the object graph, and travel as
# separate ``send_bytes`` parts: a memcpy through the pipe, no boxing, no
# bytes-object splice into the pickle stream.  A message with no such
# buffers is a single part, exactly like the historical
# ``ForkingPickler.dumps`` stream (same reducer table, protocol pinned to 5
# since ``buffer_callback`` requires it).  Multipart messages are introduced
# by a MAGIC header part — pickle streams of protocol >= 2 start with 0x80,
# so the two forms cannot collide.
_MAGIC = b"EMB5"
_NBUFS = struct.Struct("<I")


class _OOBPickler(pickle.Pickler):
    """``ForkingPickler``'s reducer table + an out-of-band buffer callback.

    ``ForkingPickler.__init__`` accepts no ``buffer_callback``, so this
    subclasses :class:`pickle.Pickler` directly and copies the mp-specific
    dispatch table (DupFd and friends) that makes fork-safe reduction work.
    """

    def __init__(self, file, buffer_callback):
        super().__init__(file, 5, buffer_callback=buffer_callback)
        self.dispatch_table = ForkingPickler(io.BytesIO()).dispatch_table


def _send_msg(conn, obj) -> int:
    """Send one message (with zero-copy buffer parts); returns bytes sent."""
    bufs: list[pickle.PickleBuffer] = []
    fh = io.BytesIO()
    _OOBPickler(fh, bufs.append).dump(obj)
    payload = fh.getbuffer()
    sent = len(payload)
    if not bufs:
        conn.send_bytes(payload)
        return sent
    header = _MAGIC + _NBUFS.pack(len(bufs))
    conn.send_bytes(header)
    conn.send_bytes(payload)
    sent += len(header)
    for buf in bufs:
        raw = buf.raw()
        conn.send_bytes(raw)
        sent += len(raw)
        buf.release()
    return sent


def _recv_msg(conn) -> tuple[Any, int]:
    """Receive one message; returns ``(object, bytes received)``."""
    buf = conn.recv_bytes()
    received = len(buf)
    if buf[: len(_MAGIC)] != _MAGIC:
        return pickle.loads(buf), received
    (nbufs,) = _NBUFS.unpack_from(buf, len(_MAGIC))
    payload = conn.recv_bytes()
    received += len(payload)
    parts = []
    for _ in range(nbufs):
        part = conn.recv_bytes()
        received += len(part)
        parts.append(part)
    return pickle.loads(payload, buffers=parts), received


class InlineBackend:
    """Run the real processors in-process, in index order (the reference)."""

    name = "inline"
    #: Pipe traffic counters (always zero inline; see ProcessBackend).
    tx_bytes = 0
    rx_bytes = 0
    #: Wall-clock attribution sink (inline calls run inside the engine's own
    #: categorized spans, so the backend itself never bills anything).
    profiler = NULL_PROFILER

    def __init__(self, procs: Sequence[Any]):
        self.procs = list(procs)

    def call_all(self, method: str, args_list: Sequence[tuple] | None = None) -> list:
        if args_list is None:
            args_list = [()] * len(self.procs)
        return [getattr(pr, method)(*args) for pr, args in zip(self.procs, args_list)]

    def close(self) -> None:
        pass


def _worker_main(conn, init_args: tuple) -> None:
    """Command loop of one worker process: owns one ``_RealProcessor``."""
    from .parsim import _RealProcessor

    try:
        proc = _RealProcessor(*init_args)
        _send_msg(conn, ("ok", None))
    except BaseException as exc:  # noqa: BLE001 - must reach the parent
        _send_msg(conn, ("err", exc))
        conn.close()
        return
    while True:
        try:
            msg, _ = _recv_msg(conn)
        except (EOFError, OSError):
            break
        if msg is None:
            break
        method, args = msg
        try:
            _send_msg(conn, ("ok", getattr(proc, method)(*args)))
        except BaseException as exc:  # noqa: BLE001 - must reach the parent
            try:
                _send_msg(conn, ("err", exc))
            except Exception:
                _send_msg(
                    conn, ("err", RuntimeError(f"unpicklable worker error: {exc!r}"))
                )
    conn.close()


class ProcessBackend:
    """One worker process per real processor, driven over duplex pipes."""

    name = "process"
    #: Engine-side wall-clock attribution: command tx framing bills ``ipc``,
    #: the receive-all round bills ``barrier_wait`` (the engine is idle until
    #: the slowest worker answers — that wait IS the superstep barrier).
    profiler = NULL_PROFILER

    def __init__(self, init_args_list: Sequence[tuple]):
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        # Exact pipe traffic: both sides speak the _send_msg/_recv_msg wire
        # format (single-part pickle, or MAGIC-multipart with raw ndarray
        # buffers), so every command and reply is counted once — including
        # the zero-copy buffer parts — with no double pickling.
        self.tx_bytes = 0
        self.rx_bytes = 0
        self._conns = []
        self._workers = []
        for init_args in init_args_list:
            parent, child = ctx.Pipe()
            worker = ctx.Process(
                target=_worker_main, args=(child, init_args), daemon=True
            )
            worker.start()
            child.close()
            self._conns.append(parent)
            self._workers.append(worker)
        # Startup barrier: every worker reports its processor constructed.
        self._recv_all()

    def _recv_all(self) -> list:
        results: list = []
        first_err: BaseException | None = None
        prof = self.profiler
        prof.push("barrier_wait")
        try:
            for conn in self._conns:
                (status, payload), nbytes = _recv_msg(conn)
                self.rx_bytes += nbytes
                if status == "err":
                    results.append(None)
                    if first_err is None:
                        first_err = payload
                else:
                    results.append(payload)
        finally:
            prof.pop()
        if first_err is not None:
            # All workers have answered the round (they are idle and
            # consistent at the barrier), so recovery can roll them back.
            raise first_err
        return results

    def call_all(self, method: str, args_list: Sequence[tuple] | None = None) -> list:
        if args_list is None:
            args_list = [()] * len(self._conns)
        prof = self.profiler
        prof.push("ipc")
        try:
            for conn, args in zip(self._conns, args_list):
                self.tx_bytes += _send_msg(conn, (method, args))
        finally:
            prof.pop()
        return self._recv_all()

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (OSError, BrokenPipeError):
                pass
            conn.close()
        for worker in self._workers:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
        self._conns = []
        self._workers = []


def make_backend(kind: str, init_args_list: Sequence[tuple]):
    """Build the backend named ``kind`` over per-processor init tuples."""
    if kind == "inline":
        from .parsim import _RealProcessor

        return InlineBackend([_RealProcessor(*args) for args in init_args_list])
    if kind == "process":
        return ProcessBackend(init_args_list)
    raise ValueError(f"unknown backend {kind!r} (expected 'inline' or 'process')")
