"""Greedy config shrinking: find the smallest config that still fails.

A raw fuzzer failure is usually an unreadable 8-knob tangle.  The shrinker
repeatedly tries one simplification at a time — drop the fault plan, drop
the crash plan, drop checkpointing, fold the process backend to inline,
switch the fast knobs
off, halve ``n`` / ``v`` / ``p`` / ``D`` / ``M`` / ``B``, forget the
explicit ``k`` — keeping a candidate only if the *same oracle* still fails
on it.  Every candidate goes back through
:func:`repro.conform.strategies.repair`, so shrinking can never leave the
admissible set (a halved ``n`` snaps back to the workload's minimum shape,
a halved ``M`` to one context, and so on).

The loop is a fixpoint iteration over first-accepted transformations,
bounded by a run budget; it terminates because every accepted candidate
strictly simplifies the config and rejected candidates are never retried
within a pass.
"""

from __future__ import annotations

from typing import Iterator

from .config import ConformConfig
from .strategies import repair

__all__ = ["shrink", "shrink_candidates"]


def shrink_candidates(config: ConformConfig) -> Iterator[ConformConfig]:
    """Yield repaired one-step simplifications of ``config``, biggest first."""
    c = config
    if c.fault != "none":
        yield repair(c.with_(fault="none"))
    if c.crash:
        yield repair(c.with_(crash=False))
    if c.crash and c.crash_point > 0:
        yield repair(c.with_(crash_point=c.crash_point // 2))
    if c.checkpoint and c.fault != "kill" and not c.crash:
        yield repair(c.with_(checkpoint=False))
    if c.backend == "process":
        yield repair(c.with_(backend="inline"))
    if c.fast_io:
        yield repair(c.with_(fast_io=False))
    if c.context_cache:
        yield repair(c.with_(context_cache=False))
    if c.io_overlap:
        yield repair(c.with_(io_overlap=False))
    if c.storage != "memory":
        yield repair(c.with_(storage="memory"))
    if c.storage == "mmap":
        yield repair(c.with_(storage="file"))
    if c.records != "object":
        yield repair(c.with_(records="object"))
    if c.n > 2:
        yield repair(c.with_(n=c.n // 2))
    if c.v > 1:
        yield repair(c.with_(v=max(1, c.v // 2)))
    if c.p > 1:
        yield repair(c.with_(p=max(1, c.p // 2)))
    if c.engine == "parallel" and c.p == 1:
        yield repair(c.with_(engine="sequential"))
    if c.D > 1:
        yield repair(c.with_(D=max(1, c.D // 2)))
    if c.k is not None:
        yield repair(c.with_(k=None))
    if c.M > 1:
        yield repair(c.with_(M=c.M // 2))
    if c.B > 1:
        yield repair(c.with_(B=max(1, c.B // 2)))
    if c.b != c.B:
        yield repair(c.with_(b=c.B))
    if c.fault == "kill" and c.dead_after > 1:
        yield repair(c.with_(dead_after=c.dead_after // 2))


def shrink(
    config: ConformConfig, oracle: str, budget: int = 80
) -> tuple[ConformConfig, int]:
    """Minimize ``config`` while oracle ``oracle`` keeps failing.

    Returns ``(smallest failing config found, verification runs spent)``.
    The original config is returned unchanged if no simplification
    preserves the failure (or the budget is exhausted immediately).
    """
    from .runner import run_case

    runs = 0
    current = config
    improved = True
    while improved and runs < budget:
        improved = False
        for candidate in shrink_candidates(current):
            if candidate == current:
                continue
            if runs >= budget:
                break
            runs += 1
            try:
                still_fails = any(
                    f.oracle == oracle for f in run_case(candidate).failures
                )
            except Exception:  # noqa: BLE001 - a *different* blowup: reject
                still_fails = False
            if still_fails:
                current = candidate
                improved = True
                break
    return current, runs
