"""Differential conformance fuzzer for the EM simulation.

The equivalence of this repo's execution planes — reference vs ``fast_io`` /
``context_cache``, inline vs process backend, sequential Algorithm 1 vs
parallel Algorithm 3 — and the paper's quantitative guarantees (Lemma 2
bucket balance, Theorem 1 counted-I/O bounds) hold for *every* admissible
parameter tuple, not just the hand-picked golden configurations in
``tests/``.  This package checks them at random points of the configuration
space:

* :mod:`~repro.conform.config` — :class:`ConformConfig`, one fully explicit
  end-to-end configuration (machine tuple, workload, planes, fault plan),
  JSON-serializable so failures are replayable.
* :mod:`~repro.conform.strategies` — seeded random generation with an
  admissibility *repair* step that projects arbitrary draws onto the
  constraint surface of :class:`~repro.params.SimulationParams`.
* :mod:`~repro.conform.oracles` — the oracle stack: output equality vs the
  in-memory BSP reference, byte-identity of reports across equivalent
  planes, Lemma 2 load balance within the whp bound, a closed-form
  Theorem 1 counted-I/O upper bound, and kill-and-resume equivalence.
* :mod:`~repro.conform.runner` — runs one config through every oracle
  (:func:`run_case`) or fuzzes a seeded budget of configs (:func:`fuzz`).
* :mod:`~repro.conform.shrinker` — greedily minimizes a failing config.
* :mod:`~repro.conform.case` — :class:`ReproCase` serialization and replay.

CLI: ``python -m repro conform --seed 0 --budget 50`` (see ``--help``).
"""

from .case import ReproCase
from .config import ConformConfig
from .oracles import ORACLES, OracleFailure
from .runner import CaseResult, FuzzStats, fuzz, run_case
from .shrinker import shrink
from .strategies import StrategyProfile, random_config, repair

__all__ = [
    "ConformConfig",
    "ReproCase",
    "OracleFailure",
    "ORACLES",
    "CaseResult",
    "FuzzStats",
    "run_case",
    "fuzz",
    "shrink",
    "StrategyProfile",
    "random_config",
    "repair",
]
