"""Seeded config generation: random draws + an admissibility repair step.

Random machine tuples almost never satisfy the simulation's structural
constraints (``M >= D*B``, ``M >= mu``, ``v`` a multiple of ``k*p``, one
whole group per processor, workload-specific input shapes).  Rejection
sampling over those constraints would waste nearly the whole budget and
bias coverage toward "easy" corners, so the fuzzer instead draws *freely*
and then **repairs**: :func:`repair` projects an arbitrary draw onto the
admissible set by the smallest upward adjustments (round ``v`` up to a
multiple of ``p``, grow ``M`` to fit one context and one block per disk,
clamp an explicit ``k`` to a divisor of ``v/p`` that fits memory, reshape
``n`` for the workload, wire fault/checkpoint implications).  Repair is
deterministic and idempotent, and the shrinker reuses it so every shrink
candidate is admissible by construction.

Determinism: config ``i`` of seed ``s`` is drawn from
``random.Random(f"conform/{s}/{i}")`` and nothing else, so a case number in
a fuzz log is enough to regenerate its exact configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from .config import BASELINE_WORKLOADS, FAULT_KINDS, WORKLOADS, ConformConfig

__all__ = ["StrategyProfile", "DEFAULT", "QUICK", "random_config", "repair"]


@dataclass(frozen=True)
class StrategyProfile:
    """Bounds and weights of the random draw (not of the repair step)."""

    p_choices: tuple[int, ...] = (1, 1, 1, 2, 2, 3, 4)
    D_max: int = 6
    B_choices: tuple[int, ...] = (4, 8, 16, 32)
    v_choices: tuple[int, ...] = (1, 2, 4, 4, 6, 8, 12, 16)
    n_max: int = 256
    #: (none, transient, kill) draw weights.
    fault_weights: tuple[float, ...] = (0.6, 0.25, 0.15)
    workloads: tuple[str, ...] = WORKLOADS
    allow_process: bool = True
    process_rate: float = 0.25
    #: (memory, file, mmap) storage-plane draw weights.
    storage_weights: tuple[float, ...] = (0.6, 0.25, 0.15)
    #: Fraction of configs that crash at one random checkpoint-barrier
    #: stage and must scrub-and-resume (the ``crash_resume`` oracle).
    crash_rate: float = 0.15
    #: Upper bound (exclusive) of the drawn global crash point; points past
    #: the run's last barrier simply let the run finish (``crash_survived``).
    crash_point_max: int = 25
    #: Fraction of configs drawn on the vectorized record plane (repair
    #: folds it back to ``"object"`` for workloads without the mode).
    vector_rate: float = 0.35
    #: Competitor-sorter workload pool (``repro.baselines`` registry names);
    #: drawn *instead of* a CGM workload at ``baseline_rate``.
    baselines: tuple[str, ...] = BASELINE_WORKLOADS
    #: Fraction of configs redirected to a competitor sorter.  Their repair
    #: folds the CGM-only axes away, leaving (n, M, D, B, storage, fast_io)
    #: as the live axes.
    baseline_rate: float = 0.12


DEFAULT = StrategyProfile()

#: Tier-1 profile: small inputs, no multiprocessing workers, so a fixed-seed
#: pytest budget stays fast on CI runners.
QUICK = StrategyProfile(
    p_choices=(1, 1, 2, 2, 3),
    D_max=4,
    v_choices=(1, 2, 4, 4, 6, 8),
    n_max=96,
    allow_process=False,
)


def case_rng(seed: int, index: int) -> random.Random:
    """The RNG stream of config ``index`` under fuzzer seed ``seed``."""
    return random.Random(f"conform/{seed}/{index}")


def random_config(
    seed: int, index: int, profile: StrategyProfile = DEFAULT
) -> ConformConfig:
    """Draw config ``index`` of fuzz seed ``seed`` and repair it."""
    return repair(_draw(case_rng(seed, index), profile))


def _draw(rng: random.Random, profile: StrategyProfile) -> dict[str, Any]:
    """An unconstrained raw draw; only :func:`repair` makes it admissible."""
    p = rng.choice(profile.p_choices)
    engine = "parallel" if p > 1 else rng.choice(("sequential", "parallel"))
    backend = "inline"
    if (
        engine == "parallel"
        and profile.allow_process
        and rng.random() < profile.process_rate
    ):
        backend = "process"
    B = rng.choice(profile.B_choices)
    d = dict(
        p=p,
        M=rng.randrange(64, 1 << 14),
        D=rng.randrange(1, profile.D_max + 1),
        B=B,
        b=rng.choice((max(1, B // 2), B, B, 2 * B)),
        G=rng.choice((0.5, 1.0, 1.0, 2.0)),
        g=rng.choice((0.0, 1.0, 1.0, 4.0)),
        L=rng.choice((0.0, 1.0, 8.0)),
        v=rng.choice(profile.v_choices),
        k=rng.randrange(1, 9) if rng.random() < 0.3 else None,
        workload=rng.choice(profile.workloads),
        n=rng.randrange(8, profile.n_max + 1),
        data_seed=rng.randrange(1 << 16),
        engine=engine,
        backend=backend,
        context_cache=rng.random() < 0.4,
        fast_io=rng.random() < 0.4,
        checkpoint=rng.random() < 0.3,
        storage=rng.choices(
            ("memory", "file", "mmap"), weights=profile.storage_weights
        )[0],
        io_overlap=rng.random() < 0.3,
        sim_seed=rng.randrange(1 << 16),
        fault=rng.choices(FAULT_KINDS, weights=profile.fault_weights)[0],
        fault_seed=rng.randrange(1 << 16),
        dead_disk=rng.randrange(0, 64),
        dead_after=rng.randrange(1, 120),
        dead_proc=rng.randrange(0, 64),
        crash=rng.random() < profile.crash_rate,
        crash_point=rng.randrange(0, profile.crash_point_max),
        crash_seed=rng.randrange(1 << 16),
        records="vector" if rng.random() < profile.vector_rate else "object",
    )
    # Competitor sorters replace the CGM workload; the rest of the draw is
    # reused (repair folds the axes they don't have).
    if profile.baselines and rng.random() < profile.baseline_rate:
        d["workload"] = rng.choice(profile.baselines)
    return d


def repair(raw: dict[str, Any] | ConformConfig) -> ConformConfig:
    """Project a raw draw (or any config) onto the admissible set.

    Deterministic and idempotent: ``repair(repair(x)) == repair(x)``.  The
    result is guaranteed constructible — ``cfg.params()`` does not raise —
    which the function verifies before returning.
    """
    d = dict(raw.to_dict() if isinstance(raw, ConformConfig) else raw)

    # -- machine shape --
    p = max(1, int(d.get("p", 1)))
    D = max(1, int(d.get("D", 1)))
    B = max(1, int(d.get("B", 16)))
    b = max(1, int(d.get("b", B)))
    d.update(p=p, D=D, B=B, b=b)
    for cost in ("G", "g", "L"):
        d[cost] = max(0.0, float(d.get(cost, 1.0)))

    # -- competitor sorters: their own (much smaller) admissible set --
    if d.get("workload") in BASELINE_WORKLOADS:
        return _repair_baseline(d)

    # -- virtual machine: one whole group per real processor needs p | v --
    v = max(1, int(d.get("v", 1)))
    v = -(-v // p) * p
    d["v"] = v

    # -- workload input shape --
    wl = d.get("workload", "sort")
    if wl not in WORKLOADS:
        wl = "sort"
    n = max(1, int(d.get("n", 2 * v)))
    n = max(n, 2 * v)
    if wl == "sort":
        n = max(n, v * v)  # CGMSampleSort requires n >= v^2
    n = -(-n // v) * v  # clean shares (and transpose's n = r*c with r = v)
    d.update(workload=wl, n=n)

    # -- record plane: fold "vector" back to "object" when unsupported --
    records = d.get("records", "object")
    if records != "object":
        probe = ConformConfig.from_dict(
            {**d, "M": 1 << 30, "k": None, "records": "object"}
        )
        if records not in probe.algorithm().RECORD_MODES:
            records = "object"
    d["records"] = records

    # -- memory: hold one block per disk and one virtual context --
    cfg = ConformConfig.from_dict({**d, "M": 1 << 30, "k": None})
    mu = cfg.algorithm().context_size()
    M = max(int(d.get("M", 0)), D * B, mu)
    d["M"] = M

    # -- explicit k: fit memory, divide v/p --
    k = d.get("k")
    if k is not None:
        vpp = v // p
        k = max(1, min(int(k), M // mu, vpp))
        while vpp % k:
            k -= 1
        d["k"] = k

    # -- execution plane implications --
    engine = d.get("engine", "auto")
    if p > 1 or engine not in ("sequential", "parallel"):
        engine = "parallel" if p > 1 else "sequential"
    d["engine"] = engine
    if engine != "parallel":
        d["backend"] = "inline"
    elif d.get("backend") not in ("inline", "process"):
        d["backend"] = "inline"
    if d.get("storage") not in ("memory", "file", "mmap"):
        d["storage"] = "memory"
    # Overlap is a no-op knob on the memory plane; fold it to the canonical
    # form so describe()/shrinking treat it as one config, not two.
    d["io_overlap"] = bool(d.get("io_overlap", False)) and d["storage"] != "memory"

    # -- fault plan implications --
    fault = d.get("fault", "none")
    if fault not in FAULT_KINDS:
        fault = "none"
    d["fault"] = fault
    if fault == "kill":
        # A permanent death is only recoverable from a checkpoint, and the
        # doomed (proc, disk) pair must exist on this machine.
        d["checkpoint"] = True
        d["dead_disk"] = int(d.get("dead_disk", 0)) % D
        d["dead_proc"] = int(d.get("dead_proc", 0)) % p
        d["dead_after"] = max(1, int(d.get("dead_after", 1)))

    # -- crash axis implications --
    d["crash"] = bool(d.get("crash", False))
    d["crash_point"] = max(0, int(d.get("crash_point", 0)))
    d["crash_seed"] = int(d.get("crash_seed", 0))
    if d["crash"]:
        # Crash injection needs a durable plane and a checkpoint protocol to
        # crash *around*; the fault axis is forced off so the crash_resume
        # verdict is not confounded by retries or a concurrent disk death.
        d["checkpoint"] = True
        if d["storage"] == "memory":
            d["storage"] = "file"
        d["fault"] = "none"

    cfg = ConformConfig.from_dict(d)
    cfg.params()  # admissibility proof; raises ParameterError on a repair bug
    return cfg


def _repair_baseline(d: dict[str, Any]) -> ConformConfig:
    """Project a draw onto the competitor-sorter (baseline) plane.

    Competitors are sequential single-processor programs charging I/O
    through the same counted :class:`~repro.emio.disks.DiskArray`, so the
    CGM-only axes — virtual processors, engines, backends, checkpoints,
    faults, crashes, record planes — fold to their trivial values.  The
    live axes are ``(workload, n, data_seed, M, D, B, storage, fast_io)``.
    The machine shape (``p``/``D``/``B``/``b``/costs) is already normalized
    by :func:`repair` before it dispatches here.
    """
    D, B = d["D"], d["B"]
    d.update(
        p=1, v=1, k=None,
        n=max(1, int(d.get("n", 8))),
        engine="sequential", backend="inline",
        context_cache=False, checkpoint=False,
        io_overlap=False, crash=False, fault="none",
        records="object",
        # One block per disk plus working headroom; every competitor sizes
        # its buffers defensively below this but the bound formulas assume
        # at least a couple of blocks of memory.
        M=max(int(d.get("M", 0)), 2 * D * B),
    )
    if d.get("storage") not in ("memory", "file", "mmap"):
        d["storage"] = "memory"
    d["crash_point"] = max(0, int(d.get("crash_point", 0)))
    d["crash_seed"] = int(d.get("crash_seed", 0))
    cfg = ConformConfig.from_dict(d)
    cfg.machine()  # validates the machine tuple
    cfg.baseline_sorter()  # admissibility proof for the competitor plane
    return cfg
