"""Run one config through the oracle stack; fuzz a seeded budget of them.

:func:`run_case` is the differential heart: it executes the configured
plane *and* every equivalent plane of the same configuration (reference
knobs off, fast knobs on, process backend folded back to inline), compares
all of them byte-for-byte, and checks the quantitative oracles on the
primary plane.  Kill configs instead drive the checkpoint/kill-resume
protocol: run to the injected disk death, resume the aborted run from its
last checkpoint on a fresh healthy engine, and hold the result to the same
reference-output standard.  Crash configs drive the host-crash protocol:
die mid-checkpoint at a seeded crash point, ``scrub()`` the storage root,
and resume with zero recovery budget (the ``crash_resume`` oracle).

:func:`fuzz` draws configs ``0..budget-1`` from the seed, stops at the
first failure (or runs the full budget with ``stop_on_failure=False``),
shrinks the failing config, and serializes a replayable
:class:`~repro.conform.case.ReproCase`.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..bsp.runner import run_reference
from ..core.checkpoint import SimulationAborted
from ..core.parsim import ParallelEMSimulation
from ..core.seqsim import SequentialEMSimulation
from ..core.simulator import build_params
from ..emio.faults import FATAL_IO_FAULTS, FaultPlan
from .case import ReproCase
from .config import ConformConfig
from .oracles import (
    OracleFailure,
    canonical_record,
    check_lemma2,
    check_outputs,
    check_plane_equivalence,
    check_theorem1_io,
)
from .strategies import DEFAULT, StrategyProfile, random_config

__all__ = ["CaseResult", "FuzzStats", "run_case", "fuzz", "equivalent_planes"]


@dataclass
class CaseResult:
    """Everything :func:`run_case` learned about one config."""

    config: ConformConfig
    failures: list[OracleFailure] = field(default_factory=list)
    #: oracle name -> number of individual checks performed.
    checks: Counter = field(default_factory=Counter)
    #: plane key -> canonical record (non-kill cases only).
    records: dict[str, dict] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.failures


def equivalent_planes(config: ConformConfig) -> list[tuple[str, ConformConfig]]:
    """The configured plane plus every plane that must be byte-equivalent.

    The flags flipped here are exactly the ones documented as counted-cost
    invisible: ``fast_io``, ``context_cache``, the process backend, the
    block-storage plane, and the record plane (``records="vector"`` for
    algorithms that support it).  Engine choice and ``p`` are *not*
    equivalent planes (they change the counted schedule), and kill configs
    run single-plane through the kill-resume protocol instead.
    """
    planes = [("primary", config)]
    reference = config.with_(
        fast_io=False, context_cache=False, backend="inline",
        storage="memory", records="object", io_overlap=False,
    )
    if reference != config:
        planes.append(("reference", reference))
    fastpath = config.with_(fast_io=True, context_cache=True)
    if fastpath not in (config, reference):
        planes.append(("fastpath", fastpath))
    if config.storage == "memory":
        filed = config.with_(storage="file")
        if filed not in (p for _, p in planes):
            planes.append(("file-storage", filed))
        asynced = config.with_(storage="file", io_overlap=True)
        if asynced not in (p for _, p in planes):
            planes.append(("async-storage", asynced))
    else:
        # Non-memory primaries differentiate against the same plane with the
        # overlap knob flipped: the flusher pool must be byte-invisible.
        asynced = config.with_(io_overlap=not config.io_overlap)
        if asynced not in (p for _, p in planes):
            planes.append(("async-storage", asynced))
    # The other record mode is a differential plane: counted costs, ledgers,
    # and outputs must be byte-identical across object and vector.
    other = "object" if config.records == "vector" else "vector"
    if other in config.algorithm().RECORD_MODES:
        vec = config.with_(records=other)
        if vec not in (p for _, p in planes):
            planes.append((f"{other}-records", vec))
    return planes


def _build_engine(
    config: ConformConfig,
    faults: FaultPlan | None,
    max_recoveries: int = 8,
    storage_dir: str | None = None,
    crash=None,
):
    """One engine instance for ``config`` (fresh algorithm, fresh params)."""
    alg = config.algorithm()
    params = build_params(alg, config.machine(), config.v, k=config.k)
    kwargs = dict(
        seed=config.sim_seed,
        faults=faults,
        retry=config.retry_policy() if faults is not None else None,
        checkpoint=config.checkpoint,
        max_recoveries=max_recoveries,
        context_cache=config.context_cache,
        fast_io=config.fast_io,
        storage=config.storage,
        storage_dir=storage_dir,
        io_overlap=config.io_overlap,
        crash=crash,
    )
    if config.engine == "parallel":
        return ParallelEMSimulation(alg, params, backend=config.backend, **kwargs)
    return SequentialEMSimulation(alg, params, **kwargs)


def run_case(config: ConformConfig) -> CaseResult:
    """Execute ``config`` on every equivalent plane and apply the oracles."""
    result = CaseResult(config=config)
    if config.is_baseline:
        _run_baseline_case(config, result)
        return result
    try:
        reference_out, _ledger = run_reference(config.algorithm(), config.v)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        result.failures.append(
            OracleFailure("no_crash", f"reference runner raised {exc!r}")
        )
        return result

    if config.crash:
        _run_crash_case(config, reference_out, result)
        return result

    if config.fault == "kill":
        _run_kill_case(config, reference_out, result)
        return result

    for key, plane_cfg in equivalent_planes(config):
        try:
            outputs, report = _build_engine(
                plane_cfg, faults=plane_cfg.fault_plan()
            ).run()
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            result.failures.append(
                OracleFailure("no_crash", f"plane {key}: raised {exc!r}")
            )
            continue
        result.checks["output_vs_reference"] += 1
        result.failures.extend(check_outputs(key, outputs, reference_out))
        result.records[key] = canonical_record(outputs, report)
        if key == "primary":
            params = report.params
            fails, n = check_lemma2(params, report)
            result.checks["lemma2_balance"] += n
            result.failures.extend(fails)
            if config.fault == "none":
                # Retries/stalls charge ops the model does not count, so the
                # Theorem 1 bound is only claimed for healthy runs.
                fails, n = check_theorem1_io(params, report)
                result.checks["theorem1_io"] += n
                result.failures.extend(fails)

    if len(result.records) >= 2:
        result.checks["plane_equivalence"] += len(result.records) - 1
        result.failures.extend(check_plane_equivalence(result.records))
    return result


def _run_baseline_case(config: ConformConfig, result: CaseResult) -> None:
    """Differential + bound oracles for the competitor-sorter workloads.

    The same counted-cost sorter runs on three planes over one deterministic
    input: the config's own ``(storage, fast_io)`` plane, the reference
    plane (memory storage, fast paths off), and the file plane.  Every
    plane must return exactly the sorted reference (``output_vs_reference``)
    and all planes must charge *identical* parallel I/O — storage kind and
    ``fast_io`` are counted-cost invisible for competitors just as for the
    simulation (``plane_equivalence``).  The primary plane's measured cost
    must also respect the competitor's closed-form ``predicted_io_ops``
    bound; that verdict is filed under ``theorem1_io`` so triage and
    shrinking treat bound violations uniformly across workloads.
    """
    import pickle

    data = config.baseline_input()
    want = pickle.dumps(sorted(data))
    planes = [
        ("primary", config.storage, config.fast_io),
        ("reference", "memory", False),
        ("file-storage", "file", config.fast_io),
    ]
    costs: dict[str, int] = {}
    for key, storage, fast_io in planes:
        if key != "primary" and (storage, fast_io) == (
            config.storage, config.fast_io
        ):
            continue  # identical to the primary plane; nothing differential
        sorter = config.baseline_sorter(storage=storage, fast_io=fast_io)
        try:
            out, stats = sorter.sort(list(data))
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            result.failures.append(
                OracleFailure("no_crash", f"plane {key}: raised {exc!r}")
            )
            continue
        result.checks["output_vs_reference"] += 1
        if pickle.dumps(list(out)) != want:
            result.failures.append(
                OracleFailure(
                    "output_vs_reference",
                    f"plane {key}: {config.workload} output differs from the "
                    f"sorted reference (n={config.n})",
                )
            )
        costs[key] = stats.io_ops
        if key == "primary":
            bound = sorter.predicted_io_ops(config.n)
            result.checks["theorem1_io"] += 1
            if stats.io_ops > bound:
                result.failures.append(
                    OracleFailure(
                        "theorem1_io",
                        f"{config.workload}: measured {stats.io_ops} parallel "
                        f"I/O ops exceed the closed-form bound {bound:g} "
                        f"(n={config.n} M={config.M} D={config.D} B={config.B})",
                    )
                )
            mismatches = getattr(stats, "guide_mismatches", 0)
            if mismatches:
                result.failures.append(
                    OracleFailure(
                        "plane_equivalence",
                        f"{config.workload}: prefetch schedule disagreed with "
                        f"consumption order {mismatches} times",
                    )
                )
    if len(costs) >= 2:
        result.checks["plane_equivalence"] += len(costs) - 1
        if len(set(costs.values())) > 1:
            result.failures.append(
                OracleFailure(
                    "plane_equivalence",
                    f"{config.workload}: counted I/O differs across "
                    f"storage/fast-path planes: {costs}",
                )
            )


def _run_crash_case(
    config: ConformConfig, reference_out: list[Any], result: CaseResult
) -> None:
    """Drive the crash-and-scrub-resume protocol and check its oracle.

    The config's :class:`~repro.emio.faults.CrashPlan` kills the run at one
    checkpoint-barrier crash stage (torn write, lost pre-fsync writes, or a
    kill between journal stages).  Recovery is exactly what a real operator
    would do: :func:`~repro.core.checkpoint.scrub` the storage root, then
    resume from the scrubbed checkpoint — on a fresh engine with
    ``max_recoveries=0``, so the recovery budget cannot paper over storage
    damage.  Under the commit protocol an honest engine never loses a
    generation to the scrub, so *any* quarantine is a ``crash_resume``
    failure in itself.  A crash point past the run's last barrier lets the
    run finish; that degenerates to a plain conformance check.
    """
    import shutil
    import tempfile

    from ..core.checkpoint import scrub
    from ..emio.faults import HostCrash

    root = tempfile.mkdtemp(prefix="conform-crash-")
    try:
        try:
            outputs, _report = _build_engine(
                config, faults=None, storage_dir=root,
                crash=config.crash_plan(),
            ).run()
        except HostCrash:
            pass
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            result.failures.append(
                OracleFailure("no_crash", f"crash plane raised {exc!r}")
            )
            return
        else:
            # The run never reached its crash point: plain conformance check.
            result.checks["crash_survived"] += 1
            result.failures.extend(
                check_outputs("crash-survived", outputs, reference_out)
            )
            return

        res = scrub(root)
        if res.quarantined:
            result.failures.append(
                OracleFailure(
                    "crash_resume",
                    f"scrub quarantined generations {res.quarantined} after "
                    f"crash at point {config.crash_point} "
                    f"({'; '.join(res.errors)}) — the commit protocol should "
                    "confine damage to uncommitted extents",
                )
            )
            return
        engine = _build_engine(
            config, faults=None, max_recoveries=0, storage_dir=root
        )
        try:
            if res.checkpoint is not None:
                outputs, report = engine.resume_from_checkpoint(res.checkpoint)
            else:
                outputs, report = engine.run()
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            result.failures.append(
                OracleFailure(
                    "crash_resume",
                    f"recovery after crash at point {config.crash_point} "
                    f"raised {exc!r}",
                )
            )
            return
        label = "crash-restart"
        if res.checkpoint is not None:
            label = f"crash-resume@{res.checkpoint.step}"
            result.checks["crash_resume"] += 1
            faults = report.faults
            if faults is None or faults.resumed_from_step != res.checkpoint.step:
                got = None if faults is None else faults.resumed_from_step
                result.failures.append(
                    OracleFailure(
                        "crash_resume",
                        f"resumed run reports resumed_from_step={got}, "
                        f"expected {res.checkpoint.step}",
                    )
                )
        else:
            result.checks["crash_restart"] += 1
        result.failures.extend(check_outputs(label, outputs, reference_out))
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _run_kill_case(
    config: ConformConfig, reference_out: list[Any], result: CaseResult
) -> None:
    """Drive the kill-and-resume protocol and check its oracle.

    ``max_recoveries=0`` turns the first fatal fault into a
    :class:`SimulationAborted` carrying the last checkpoint — the "machine
    burned down" scenario.  Resuming on a fresh, healthy engine must
    reproduce the reference outputs and report the resume step.  Two
    non-failures: the doomed disk outlived the run (plain output check),
    and death before the first checkpoint (nothing to resume; counted as
    skipped).
    """
    try:
        outputs, report = _build_engine(
            config, faults=config.fault_plan(), max_recoveries=0
        ).run()
    except SimulationAborted as abort:
        if abort.checkpoint is None:
            result.checks["kill_resume_skipped"] += 1
            return
        ckpt = abort.checkpoint
        try:
            outputs, report = _build_engine(
                config, faults=None
            ).resume_from_checkpoint(ckpt)
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            result.failures.append(
                OracleFailure(
                    "kill_resume",
                    f"resume from checkpoint at step {ckpt.step} raised {exc!r}",
                )
            )
            return
        result.checks["kill_resume"] += 1
        result.failures.extend(
            check_outputs(f"resume@{ckpt.step}", outputs, reference_out)
        )
        faults = report.faults
        if faults is None or faults.resumed_from_step != ckpt.step:
            got = None if faults is None else faults.resumed_from_step
            result.failures.append(
                OracleFailure(
                    "kill_resume",
                    f"resumed run reports resumed_from_step={got}, "
                    f"expected {ckpt.step}",
                )
            )
        return
    except FATAL_IO_FAULTS:
        # Fatal fault outside the recovery scope (e.g. while loading input):
        # by contract there is no checkpoint to resume from.
        result.checks["kill_resume_skipped"] += 1
        return
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        result.failures.append(
            OracleFailure("no_crash", f"kill plane raised {exc!r}")
        )
        return
    # The doomed disk never died within this run: plain conformance check.
    result.checks["output_vs_reference"] += 1
    result.failures.extend(check_outputs("kill-survived", outputs, reference_out))


@dataclass
class FuzzStats:
    """Aggregate outcome of one :func:`fuzz` invocation."""

    seed: int
    budget: int
    cases_run: int = 0
    checks: Counter = field(default_factory=Counter)
    failures: list[ReproCase] = field(default_factory=list)
    elapsed: float = 0.0
    time_limited: bool = False

    @property
    def passed(self) -> bool:
        return not self.failures


def fuzz(
    seed: int = 0,
    budget: int = 100,
    time_limit: float | None = None,
    profile: StrategyProfile = DEFAULT,
    out_dir: str | Path | None = None,
    shrink_budget: int = 80,
    stop_on_failure: bool = True,
    log: Callable[[str], None] | None = None,
) -> FuzzStats:
    """Fuzz ``budget`` seeded configs; shrink and serialize any failure."""
    from .shrinker import shrink

    say = log or (lambda _msg: None)
    stats = FuzzStats(seed=seed, budget=budget)
    t0 = time.monotonic()
    for index in range(budget):
        if time_limit is not None and time.monotonic() - t0 > time_limit:
            stats.time_limited = True
            say(f"time limit {time_limit:.0f}s reached after "
                f"{stats.cases_run} cases")
            break
        config = random_config(seed, index, profile)
        result = run_case(config)
        stats.cases_run += 1
        stats.checks.update(result.checks)
        if result.passed:
            say(f"case {index}: ok   {config.describe()}")
            continue
        say(f"case {index}: FAIL {config.describe()}")
        for failure in result.failures:
            say(f"  {failure}")
        repro = _shrink_to_case(
            config, result, seed, index, shrink_budget, say, shrink
        )
        stats.failures.append(repro)
        if out_dir is not None:
            path = Path(out_dir)
            path.mkdir(parents=True, exist_ok=True)
            case_path = path / f"repro-seed{seed}-case{index}.json"
            repro.save(case_path)
            say(f"  wrote {case_path}")
            say(f"  replay: {repro.replay_command(case_path)}")
        if stop_on_failure:
            break
    stats.elapsed = time.monotonic() - t0
    return stats


def _shrink_to_case(
    config: ConformConfig,
    result: CaseResult,
    seed: int,
    index: int,
    shrink_budget: int,
    say: Callable[[str], None],
    shrink,
) -> ReproCase:
    """Shrink the failing config and package it as a :class:`ReproCase`."""
    first = result.failures[0]
    shrunk, runs = shrink(config, first.oracle, budget=shrink_budget)
    message = first.message
    if shrunk != config:
        final = run_case(shrunk)
        for failure in final.failures:
            if failure.oracle == first.oracle:
                message = failure.message
                break
        say(f"  shrunk ({runs} runs): {shrunk.describe()}")
    return ReproCase(
        config=shrunk,
        oracle=first.oracle,
        message=message,
        fuzz_seed=seed,
        case_index=index,
        original=config if shrunk != config else None,
        shrink_runs=runs,
    )
