"""The conformance oracle stack.

Five independent checks, each tied to a guarantee this repo claims:

``output_vs_reference``
    Invariant I3: every engine/plane produces exactly the outputs of the
    in-memory :class:`~repro.bsp.runner.ReferenceRunner`.
``plane_equivalence``
    Byte-identity of the canonical run record (outputs + ledger summary +
    per-superstep phase/routing breakdowns) across all equivalent planes of
    one configuration — ``fast_io`` / ``context_cache`` / process backend
    are *counted-cost-invisible* by construction, so their pickled records
    must match byte for byte.
``lemma2_balance``
    Lemma 2: random-permutation write cycles leave every bucket spread
    almost evenly over the ``D`` disks.  Checked per superstep per
    processor per bucket against a Chernoff-style whp allowance.
``theorem1_io``
    Theorem 1 / Lemma 4: counted parallel I/O per compound superstep is
    bounded by a closed form in :class:`~repro.params.SimulationParams`'
    terms (contexts, message blocks, reorganization rounds).  The form is
    *sound* — every term over-approximates its phase — and tight enough
    (no global fudge factor) that a 2x counter inflation in any phase
    trips it.
``kill_resume``
    Checkpoint/recovery: a run killed by a permanent disk death, resumed
    from its last checkpoint on a fresh engine, must still equal the
    reference output and report the resume step (checked by the runner,
    which owns the kill-and-resume control flow).
``crash_resume``
    Crash consistency (DESIGN §9): a run host-crashed at a checkpoint
    barrier — after a torn slot write, with pre-fsync writes reordered
    away, or between the journal's fsync/rename stages — must scrub clean
    (no quarantined generations: the commit protocol confines damage to
    extents no committed checkpoint references) and resume from the
    scrubbed checkpoint with *zero* recovery budget to the exact reference
    outputs.  Owned by the runner, like ``kill_resume``.
``no_crash``
    Implicit: an admissible config must not raise at all (failures under
    this name carry the exception).

Oracle functions return a list of :class:`OracleFailure` (empty = pass);
they never raise on a failing check, so one bad case reports every oracle
it violates.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass
from typing import Any

from ..core.stats import SimulationReport
from ..params import SimulationParams

__all__ = [
    "OracleFailure",
    "ORACLES",
    "canonical_record",
    "record_bytes",
    "check_outputs",
    "check_plane_equivalence",
    "lemma2_allowance",
    "check_lemma2",
    "theorem1_io_bound",
    "check_theorem1_io",
]

#: Every oracle name a :class:`OracleFailure` may carry.
ORACLES = (
    "output_vs_reference",
    "plane_equivalence",
    "lemma2_balance",
    "theorem1_io",
    "kill_resume",
    "crash_resume",
    "no_crash",
)

# Lemma 2 allowance constants (see lemma2_allowance): 4-sigma-ish Chernoff
# slack — a per-check false-positive probability around (D+3)^-6, small
# enough for nightly budgets of ~10^5 bucket checks.
_LEM2_C = 4.0


@dataclass(frozen=True)
class OracleFailure:
    """One oracle violation: which oracle, and what it saw."""

    oracle: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.oracle}] {self.message}"


# -- canonical run records (plane equivalence) ------------------------------


def canonical_record(outputs: list[Any], report: SimulationReport) -> dict:
    """Everything two equivalent planes must agree on, as one plain dict.

    Mirrors the golden-comparison shape of ``tests/test_fastpath_golden.py``:
    outputs, the full ledger/report summary, and per-superstep phase +
    routing breakdowns (``repr`` of the stat dataclasses pins every field).
    """
    return {
        "outputs": outputs,
        "summary": report.summary(),
        "supersteps": [
            (
                s.index,
                repr(s.phases),
                repr(s.routing),
                repr(s.routing_all),
                s.comm_packets,
                s.message_blocks,
                s.halted,
            )
            for s in report.supersteps
        ],
        "init_io_ops": report.init_io_ops,
        "output_io_ops": report.output_io_ops,
        "disk_space_tracks": report.disk_space_tracks,
    }


def record_bytes(record: dict) -> bytes:
    """The byte form compared across planes."""
    return pickle.dumps(record, protocol=4)


def check_outputs(
    plane: str, outputs: list[Any], reference: list[Any]
) -> list[OracleFailure]:
    """Invariant I3: engine outputs equal the in-memory reference outputs."""
    if outputs == reference:
        return []
    bad = [
        vp
        for vp in range(min(len(outputs), len(reference)))
        if outputs[vp] != reference[vp]
    ]
    if len(outputs) != len(reference):
        detail = f"{len(outputs)} outputs vs {len(reference)} reference outputs"
    else:
        detail = f"virtual processors {bad[:8]} differ"
    return [
        OracleFailure(
            "output_vs_reference", f"plane {plane}: {detail}"
        )
    ]


def check_plane_equivalence(records: dict[str, dict]) -> list[OracleFailure]:
    """Byte-identity of the canonical records of all equivalent planes."""
    if len(records) < 2:
        return []
    keys = sorted(records)
    base = keys[0]
    base_bytes = record_bytes(records[base])
    failures = []
    for key in keys[1:]:
        if record_bytes(records[key]) == base_bytes:
            continue
        diff = [
            field
            for field in records[base]
            if records[base][field] != records[key][field]
        ]
        failures.append(
            OracleFailure(
                "plane_equivalence",
                f"planes {base!r} and {key!r} diverge in {diff or '(bytes)'}",
            )
        )
    return failures


# -- Lemma 2: per-disk bucket balance ---------------------------------------


def lemma2_allowance(R: int, D: int) -> float:
    """Max blocks of an ``R``-block bucket one disk may hold, whp.

    Lemma 2 proves the loads are within ``(1+o(1)) R/D`` whp; the finite-size
    allowance here is the Chernoff upper tail for a sum of ``R`` indicators
    of mean ``1/D`` (the random-permutation cycles are negatively associated,
    so the independent-case tail is an upper bound):
    ``R/D + c*sqrt((R/D + 1) ln(D+3)) + c*ln(D+3)`` with ``c = 4``.
    """
    mean = R / D
    slack = math.log(D + 3)
    return mean + _LEM2_C * math.sqrt((mean + 1.0) * slack) + _LEM2_C * slack


def check_lemma2(
    params: SimulationParams, report: SimulationReport
) -> tuple[list[OracleFailure], int]:
    """Check every superstep's bucket store against the Lemma 2 allowance.

    Returns ``(failures, nchecks)`` where ``nchecks`` counts the
    (superstep, processor, bucket) triples inspected.
    """
    D = params.machine.D
    failures = []
    nchecks = 0
    for s in report.supersteps:
        for proc, routing in enumerate(s.routing_stats()):
            for bucket, loads in enumerate(routing.bucket_loads):
                R = sum(loads)
                if R == 0:
                    continue
                nchecks += 1
                allow = lemma2_allowance(R, D)
                if max(loads) > allow:
                    failures.append(
                        OracleFailure(
                            "lemma2_balance",
                            f"superstep {s.index} proc {proc} bucket {bucket}: "
                            f"max disk load {max(loads)} of R={R} blocks "
                            f"exceeds whp allowance {allow:.1f} "
                            f"(R/D={R / D:.1f}, loads={list(loads)})",
                        )
                    )
    return failures, nchecks


# -- Theorem 1: counted-I/O upper bound -------------------------------------


def theorem1_io_bound(
    params: SimulationParams, report: SimulationReport, per_superstep: bool = False
):
    """Closed-form upper bound on counted parallel I/O ops per superstep.

    In the terms of Theorem 1 / Lemma 4 (``k`` group size, ``D`` disks,
    ``G`` groups per processor, ``cbp = ceil(mu/B)`` context blocks per vp,
    ``T_s`` message blocks generated in superstep ``s``), each phase of
    compound superstep ``s`` is bounded by:

    * contexts (fetch + write back): ``2 G (ceil(k*cbp/D) + 1)`` — a group's
      contexts are ``k*cbp`` consecutive blocks of a striped region, read at
      full parallelism up to one alignment op.
    * fetch messages: ``ceil(T_{s-1}/D) + 2G`` — each group's slot range is
      consecutive in the reorganized region (Definition 2).
    * write messages: ``ceil(T_s/D) + G`` — linked-bucket appends write full
      cycles of ``D`` blocks, one partial cycle per group (per scatter
      round on the parallel engine).
    * reorganize: per processor ``2*min(T, D*maxq + D) + 2*min(T, D + maxb)``
      where ``maxq`` is that processor's worst (bucket, disk) queue length
      and ``maxb`` its largest bucket — the exact round counts of Algorithm
      2's two phases; the superstep charges the max over processors.

    Summed over supersteps this is the ``O(lambda * (v/p) * mu/(D*B))`` of
    Theorem 1 with explicit constants and lower-order terms.  The bound is
    checked only on healthy runs: retries and degraded writes charge extra
    ops the model does not count.
    """
    m = params.machine
    D = m.D
    groups = params.groups_per_processor
    kcbp = params.k * params.context_blocks_per_vp
    bounds = []
    prev = 0
    for s in report.supersteps:
        T = s.message_blocks
        ctx = 2 * groups * (-(-kcbp // D) + 1)
        fetch = -(-prev // D) + 2 * groups
        write = -(-T // D) + groups
        reorg = 0
        for routing in s.routing_stats():
            tp = routing.total_blocks
            maxq = max(
                (max(loads) for loads in routing.bucket_loads if loads),
                default=0,
            )
            maxb = max(
                (sum(loads) for loads in routing.bucket_loads), default=0
            )
            ph1 = 2 * min(tp, D * maxq + D)
            ph2 = 2 * min(tp, D + maxb)
            reorg = max(reorg, ph1 + ph2)
        bounds.append(ctx + fetch + write + reorg)
        prev = T
    return bounds if per_superstep else sum(bounds)


def check_theorem1_io(
    params: SimulationParams, report: SimulationReport
) -> tuple[list[OracleFailure], int]:
    """Per-superstep counted I/O against :func:`theorem1_io_bound`.

    Two layers per superstep: the closed-form *upper bound* on the phase
    total, and an *exact* cross-check of the ``reorganize`` phase counter
    against Algorithm 2's own op counts (``max`` over processors of
    ``RoutingStats.io_ops`` — two independent measurements of the same
    ops, so any engine-side double/under-charge breaks the equality even
    when the run is far below the asymptotic bound).
    """
    bounds = theorem1_io_bound(params, report, per_superstep=True)
    failures = []
    for s, bound in zip(report.supersteps, bounds):
        if s.phases.total > bound:
            failures.append(
                OracleFailure(
                    "theorem1_io",
                    f"superstep {s.index}: counted io_ops {s.phases.total} "
                    f"exceed the closed-form bound {bound} "
                    f"(phases={s.phases!r})",
                )
            )
        routing = s.routing_stats()
        if routing:
            expected = max(r.io_ops for r in routing)
            if s.phases.reorganize != expected:
                failures.append(
                    OracleFailure(
                        "theorem1_io",
                        f"superstep {s.index}: reorganize phase charged "
                        f"{s.phases.reorganize} ops but Algorithm 2's own "
                        f"stats count {expected}",
                    )
                )
    return failures, 2 * len(bounds)
