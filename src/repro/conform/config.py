"""One end-to-end conformance configuration, fully explicit and replayable.

A :class:`ConformConfig` pins *everything* a run depends on: the machine
tuple ``(p, M, D, B, b, G, g, L)``, the workload and its input size and data
seed, the virtual machine (``v``, optional explicit ``k``), the execution
plane (engine, backend, fast-path flags, checkpointing), and the fault plan.
Two properties matter:

* **Determinism** — building the same config twice yields byte-identical
  inputs and fault streams, so every oracle verdict is reproducible from the
  JSON form alone.
* **Admissibility is not assumed** — constructing the config object never
  validates; :func:`repro.conform.strategies.repair` is the projection onto
  the admissible set, and :meth:`ConformConfig.params` surfaces the
  (self-describing) :class:`~repro.params.ParameterError` otherwise.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any

from ..bsp.program import BSPAlgorithm
from ..emio.faults import FaultPlan, RetryPolicy
from ..params import MachineParams

__all__ = ["ConformConfig", "WORKLOADS", "BASELINE_WORKLOADS", "FAULT_KINDS"]

#: Fuzzable workloads: one representative per communication pattern —
#: sample sort (splitter broadcast + all-to-all), permutation (pure
#: h-relation), prefix sums (converging tree traffic), list ranking
#: (pointer-jumping, superstep count grows with n), matrix transpose
#: (structured all-to-all).
WORKLOADS = ("sort", "permute", "prefix", "listrank", "transpose")

#: Competitor-sorter workloads: each runs one of the counted-cost external
#: sorting baselines (``repro.baselines.SORTING_BASELINES``) on the same
#: DiskArray substrate instead of a CGM simulation.  They share the config
#: schema but fold the CGM-only axes (``v``, engines, backends, faults,
#: crashes, record planes) to their trivial values — see
#: ``strategies._repair_baseline``.
BASELINE_WORKLOADS = ("guidesort", "emmergesort", "buffertree")

#: Fault axes: ``none`` (healthy machine), ``transient`` (retriable
#: read/write errors, detected corruption, latency spikes), ``kill`` (one
#: permanent disk death mid-run; exercises checkpoint/kill-resume).
FAULT_KINDS = ("none", "transient", "kill")

# Transient rates are fixed (the stream itself varies with fault_seed):
# high enough to inject several faults per run at these sizes, low enough
# that the default retry budget practically never exhausts (~rate^7).
_TRANSIENT = dict(
    read_error_rate=0.03,
    write_error_rate=0.03,
    corruption_rate=0.02,
    latency_rate=0.02,
)


@dataclass(frozen=True)
class ConformConfig:
    """One randomized end-to-end configuration of ``simulate()``."""

    # -- machine tuple (p, M, D, B, b, G, g, L) --
    p: int = 1
    M: int = 4096
    D: int = 2
    B: int = 16
    b: int = 16
    G: float = 1.0
    g: float = 1.0
    L: float = 1.0
    # -- virtual machine + workload --
    v: int = 4
    k: int | None = None
    workload: str = "sort"
    n: int = 64
    data_seed: int = 0
    #: Record plane the algorithm runs on (``"object"`` or ``"vector"``);
    #: repair folds ``"vector"`` back to ``"object"`` for workloads that
    #: don't support it.  Counted costs and outputs must be identical — the
    #: runner adds the other mode as a differential plane.
    records: str = "object"
    # -- execution plane --
    engine: str = "sequential"
    backend: str = "inline"
    context_cache: bool = False
    fast_io: bool = False
    checkpoint: bool = False
    storage: str = "memory"
    #: Overlapped-I/O axis: run non-memory planes with the background
    #: flusher pool (write-behind + readahead, DESIGN §12).  Repair folds
    #: it back to ``False`` on the memory plane (where it is a no-op knob).
    io_overlap: bool = False
    #: Crash axis: inject one host crash at ``crash_point`` (a global index
    #: over the run's checkpoint-barrier crash stages, see
    #: :data:`~repro.emio.faults.CRASH_STAGES`), then scrub-and-resume.
    #: Repair forces ``checkpoint=True``, a non-memory plane, and
    #: ``fault="none"`` (crash recovery is its own oracle).
    crash: bool = False
    crash_point: int = 0
    crash_seed: int = 0
    sim_seed: int = 0
    # -- fault plan --
    fault: str = "none"
    fault_seed: int = 0
    dead_disk: int = 0
    dead_after: int = 40
    dead_proc: int = 0

    # -- constructions -------------------------------------------------------

    def machine(self) -> MachineParams:
        return MachineParams(
            p=self.p, M=self.M, D=self.D, B=self.B, b=self.b,
            G=self.G, g=self.g, L=self.L,
        )

    @property
    def is_baseline(self) -> bool:
        """Whether this config runs a competitor sorter, not a CGM workload."""
        return self.workload in BASELINE_WORKLOADS

    def baseline_input(self) -> list[int]:
        """The deterministic input of a competitor-sorter config."""
        from .. import workloads as wl

        return [int(x) for x in wl.uniform_keys(self.n, seed=self.data_seed)]

    def baseline_sorter(self, *, storage: str | None = None,
                        fast_io: bool | None = None):
        """A fresh competitor sorter over this config's machine.

        ``storage``/``fast_io`` override the config's own plane — the runner
        uses that to build the differential planes that must charge identical
        counted I/O.
        """
        from ..baselines import SORTING_BASELINES

        cls = SORTING_BASELINES[self.workload]
        return cls(
            self.machine(),
            storage=self.storage if storage is None else storage,
            fast_io=self.fast_io if fast_io is None else fast_io,
        )

    def algorithm(self) -> BSPAlgorithm:
        """A fresh algorithm instance over this config's deterministic input."""
        alg = self._build_algorithm()
        alg.set_record_mode(self.records)
        return alg

    def _build_algorithm(self) -> BSPAlgorithm:
        from .. import workloads as wl

        n, v, seed = self.n, self.v, self.data_seed
        if self.workload == "sort":
            from ..algorithms import CGMSampleSort

            return CGMSampleSort(wl.uniform_keys(n, seed=seed), v)
        if self.workload == "permute":
            from ..algorithms import CGMPermutation

            return CGMPermutation(
                list(range(n)), wl.random_permutation(n, seed=seed), v
            )
        if self.workload == "prefix":
            from ..algorithms import CGMPrefixSums

            return CGMPrefixSums(wl.uniform_keys(n, seed=seed, hi=1000), v)
        if self.workload == "listrank":
            from ..algorithms.graphs import CGMListRanking

            return CGMListRanking(wl.random_linked_list(n, seed=seed), v)
        if self.workload == "transpose":
            from ..algorithms import CGMMatrixTranspose

            r, c = v, n // v
            return CGMMatrixTranspose(wl.matrix_entries(r, c, seed=seed), r, c, v)
        if self.workload in BASELINE_WORKLOADS:
            raise ValueError(
                f"workload {self.workload!r} is a competitor sorter, not a "
                "CGM algorithm; use baseline_sorter()/baseline_input()"
            )
        raise ValueError(f"unknown workload {self.workload!r}")

    def params(self):
        """The run's :class:`SimulationParams` (raises ``ParameterError``
        when the config is not admissible)."""
        from ..core.simulator import build_params

        return build_params(self.algorithm(), self.machine(), self.v, k=self.k)

    def fault_plan(self) -> FaultPlan | None:
        if self.fault == "none":
            return None
        if self.fault == "transient":
            return FaultPlan(seed=self.fault_seed, **_TRANSIENT)
        if self.fault == "kill":
            return FaultPlan(
                seed=self.fault_seed,
                dead_disk=self.dead_disk,
                dead_after=self.dead_after,
                dead_proc=self.dead_proc,
            )
        raise ValueError(f"unknown fault kind {self.fault!r}")

    def retry_policy(self) -> RetryPolicy | None:
        return RetryPolicy() if self.fault != "none" else None

    def crash_plan(self):
        """The config's :class:`~repro.emio.faults.CrashPlan` (or ``None``)."""
        if not self.crash:
            return None
        from ..emio.faults import CrashPlan

        return CrashPlan(seed=self.crash_seed, crash_point=self.crash_point)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ConformConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{key: val for key, val in d.items() if key in known})

    def with_(self, **kw) -> "ConformConfig":
        return replace(self, **kw)

    def describe(self) -> str:
        """One line, for fuzzer progress output and repro-case summaries."""
        plane = [self.engine, self.backend]
        if self.context_cache:
            plane.append("ctx-cache")
        if self.fast_io:
            plane.append("fast-io")
        if self.checkpoint:
            plane.append("ckpt")
        if self.storage != "memory":
            plane.append(f"storage={self.storage}")
        if self.io_overlap:
            plane.append("io-overlap")
        if self.records != "object":
            plane.append(f"records={self.records}")
        if self.crash:
            plane.append(f"crash@{self.crash_point}")
        fault = "" if self.fault == "none" else f" fault={self.fault}"
        return (
            f"{self.workload} n={self.n} v={self.v} k={self.k} "
            f"p={self.p} M={self.M} D={self.D} B={self.B} b={self.b} "
            f"[{'+'.join(plane)}]{fault} seed={self.sim_seed}"
        )
