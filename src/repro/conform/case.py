"""Repro cases: a failing config serialized with everything replay needs.

The JSON schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "oracle":        "<name from repro.conform.oracles.ORACLES>",
      "message":       "<what the oracle saw on the shrunk config>",
      "fuzz_seed":     <int|null>,   # fuzzer seed that found it
      "case_index":    <int|null>,   # index within that seed's budget
      "shrink_runs":   <int>,        # verification runs the shrinker spent
      "config":        { ...ConformConfig fields... },
      "original":      { ... } | null  # pre-shrink config, when different
    }

``config`` alone fully determines the run (inputs and fault streams are
derived from the embedded seeds), so ``python -m repro conform --repro
case.json`` re-executes the exact failure with no other state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .config import ConformConfig

__all__ = ["ReproCase", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ReproCase:
    """One minimal failing configuration, ready to replay."""

    config: ConformConfig
    oracle: str
    message: str
    fuzz_seed: int | None = None
    case_index: int | None = None
    original: ConformConfig | None = None
    shrink_runs: int = 0

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "oracle": self.oracle,
            "message": self.message,
            "fuzz_seed": self.fuzz_seed,
            "case_index": self.case_index,
            "shrink_runs": self.shrink_runs,
            "config": self.config.to_dict(),
            "original": None if self.original is None else self.original.to_dict(),
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ReproCase":
        payload = json.loads(text)
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported ReproCase schema_version {version!r} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        original = payload.get("original")
        return cls(
            config=ConformConfig.from_dict(payload["config"]),
            oracle=payload["oracle"],
            message=payload.get("message", ""),
            fuzz_seed=payload.get("fuzz_seed"),
            case_index=payload.get("case_index"),
            original=None if original is None else ConformConfig.from_dict(original),
            shrink_runs=payload.get("shrink_runs", 0),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ReproCase":
        return cls.from_json(Path(path).read_text())

    def replay_command(self, path: str | Path) -> str:
        """The one-liner that re-executes this failure."""
        return f"PYTHONPATH=src python -m repro conform --repro {path}"
