"""Cost accounting for BSP*, EM-BSP* and EM-CGM executions.

The paper charges each compound superstep the cost

    t_comp + t_comm + t_I/O + L

where ``t_comp`` is the maximum computation time over processors, ``t_comm``
is ``g`` times the maximum number of packets (of size ``b``) sent or received
by any processor, ``t_I/O`` is ``G`` times the maximum number of parallel I/O
operations performed by any processor, and ``L`` is the synchronization cost.

:class:`CostLedger` records those quantities per superstep and produces the
totals used by every benchmark.  Costs are *counted* in model units, never
measured in wall-clock time: the paper's claims are theorems about these
counts (see DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .params import MachineParams

__all__ = ["SuperstepCost", "CostLedger", "packets_for"]


def packets_for(nrecords: int, b: int) -> int:
    """Number of packets of size ``b`` needed to carry ``nrecords`` records.

    BSP* charges messages shorter than ``b`` as a full packet; a message of
    zero records costs nothing.
    """
    if nrecords <= 0:
        return 0
    return -(-nrecords // b)


@dataclass
class SuperstepCost:
    """Counted costs of one (compound) superstep.

    Attributes are raw counts; the model-time properties multiply in the
    machine's ``g``, ``G`` and ``L`` coefficients.
    """

    comp_ops: float = 0.0  # max over processors, basic computation operations
    comm_packets: int = 0  # max over processors, packets sent+received
    io_ops: int = 0  # max over processors, parallel I/O operations
    records_sent: int = 0  # total records communicated (diagnostic)
    records_io: int = 0  # total records moved to/from disk (diagnostic)
    syncs: int = 1  # barrier synchronizations (compound supersteps of the
    # parallel simulation run v/(p*k) rounds, each with its own barriers)
    retry_ops: int = 0  # of io_ops: retry rounds masking transient faults
    stall_ops: int = 0  # op-equivalents lost to backoff + latency spikes
    label: str = ""

    def comm_time(self, machine: MachineParams) -> float:
        """BSP* communication time ``max(L, g * packets)``."""
        if self.comm_packets == 0:
            return 0.0
        return max(machine.L, machine.g * self.comm_packets)

    def io_time(self, machine: MachineParams) -> float:
        """EM I/O time ``G * (parallel I/O operations + stalls)``.

        Retry rounds are already inside ``io_ops`` (they are real parallel
        operations); stalls occupy the array for op-equivalents without
        transferring data, so they are charged on top.
        """
        return machine.G * (self.io_ops + self.stall_ops)

    def total_time(self, machine: MachineParams) -> float:
        """Total model time of this superstep: comp + comm + I/O + L."""
        return (
            self.comp_ops
            + self.comm_time(machine)
            + self.io_time(machine)
            + machine.L * self.syncs
        )


@dataclass
class CostLedger:
    """Accumulates per-superstep costs for a whole execution.

    A fresh :class:`SuperstepCost` is opened with :meth:`begin_superstep`;
    component code charges it through the ``charge_*`` methods; the ledger
    seals it on the next ``begin_superstep`` (or :meth:`close`).
    """

    machine: MachineParams
    supersteps: list[SuperstepCost] = field(default_factory=list)
    _open: SuperstepCost | None = field(default=None, repr=False)

    def begin_superstep(self, label: str = "") -> SuperstepCost:
        """Seal the current superstep (if any) and open a new one."""
        self.close()
        self._open = SuperstepCost(label=label)
        return self._open

    def close(self) -> None:
        """Seal the currently open superstep."""
        if self._open is not None:
            self.supersteps.append(self._open)
            self._open = None

    @property
    def current(self) -> SuperstepCost:
        if self._open is None:
            self._open = SuperstepCost()
        return self._open

    # -- charging ------------------------------------------------------------

    def charge_comp(self, ops: float) -> None:
        """Charge ``ops`` basic computation operations to the open superstep."""
        self.current.comp_ops += ops

    def charge_comm_records(self, nrecords: int) -> None:
        """Charge communication of ``nrecords`` records (packetized by ``b``)."""
        self.current.comm_packets += packets_for(nrecords, self.machine.b)
        self.current.records_sent += nrecords

    def charge_comm_packets(self, npackets: int, nrecords: int = 0) -> None:
        """Charge ``npackets`` already-packetized units of communication."""
        self.current.comm_packets += npackets
        self.current.records_sent += nrecords

    def charge_io(self, ops: int, nrecords: int = 0) -> None:
        """Charge ``ops`` parallel I/O operations to the open superstep."""
        self.current.io_ops += ops
        self.current.records_io += nrecords

    # -- totals ----------------------------------------------------------------

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps) + (1 if self._open is not None else 0)

    def _all(self) -> list[SuperstepCost]:
        return self.supersteps + ([self._open] if self._open is not None else [])

    @property
    def total_comp(self) -> float:
        return sum(s.comp_ops for s in self._all())

    @property
    def total_comm_packets(self) -> int:
        return sum(s.comm_packets for s in self._all())

    @property
    def total_io_ops(self) -> int:
        return sum(s.io_ops for s in self._all())

    @property
    def total_records_sent(self) -> int:
        return sum(s.records_sent for s in self._all())

    @property
    def total_records_io(self) -> int:
        return sum(s.records_io for s in self._all())

    @property
    def total_retry_ops(self) -> int:
        return sum(s.retry_ops for s in self._all())

    @property
    def total_stall_ops(self) -> int:
        return sum(s.stall_ops for s in self._all())

    def total_comm_time(self) -> float:
        return sum(s.comm_time(self.machine) for s in self._all())

    def total_io_time(self) -> float:
        return sum(s.io_time(self.machine) for s in self._all())

    def total_time(self) -> float:
        return sum(s.total_time(self.machine) for s in self._all())

    def summary(self) -> dict:
        """A dictionary summary, convenient for benchmark tables."""
        return {
            "supersteps": self.num_supersteps,
            "comp_ops": self.total_comp,
            "comm_packets": self.total_comm_packets,
            "io_ops": self.total_io_ops,
            "retry_ops": self.total_retry_ops,
            "stall_ops": self.total_stall_ops,
            "records_sent": self.total_records_sent,
            "records_io": self.total_records_io,
            "comm_time": self.total_comm_time(),
            "io_time": self.total_io_time(),
            "total_time": self.total_time(),
        }

    def merge_max(self, other: "CostLedger") -> None:
        """Fold another processor's ledger in, superstep-wise, taking maxima.

        Used by the multiprocessor simulation: the model charges each
        superstep the *maximum* cost over the real processors.
        """
        if other.num_supersteps != self.num_supersteps:
            raise ValueError(
                "cannot merge ledgers with different superstep counts: "
                f"{self.num_supersteps} vs {other.num_supersteps}"
            )
        self.close()
        other.close()
        for mine, theirs in zip(self.supersteps, other.supersteps):
            mine.comp_ops = max(mine.comp_ops, theirs.comp_ops)
            mine.comm_packets = max(mine.comm_packets, theirs.comm_packets)
            mine.io_ops = max(mine.io_ops, theirs.io_ops)
            mine.syncs = max(mine.syncs, theirs.syncs)
            mine.retry_ops = max(mine.retry_ops, theirs.retry_ops)
            mine.stall_ops = max(mine.stall_ops, theirs.stall_ops)
            mine.records_sent += theirs.records_sent
            mine.records_io += theirs.records_io
