"""Deterministic crash-point explorer for the storage plane (DESIGN §9).

A checkpointed run on a non-memory storage plane crosses a fixed set of
*crash points*: for every compound-superstep barrier, the five stages of
:data:`~repro.emio.faults.CRASH_STAGES` — a torn slot write, writes lost
because they were reordered past the barrier fsync, a kill after the sync
but before the journal commit, a kill after the fsynced temp journal file
but before the rename, and a kill right after the rename.  The explorer
enumerates *all* of them:

1. run the workload once fault-free on ``<root>/golden`` and record its
   outputs, cost-ledger summary, and the number of checkpoints taken;
2. for every global crash point ``i`` re-run on a fresh ``<root>/pt<i>``
   with ``CrashPlan(crash_point=i)`` and let the injected
   :class:`~repro.emio.faults.HostCrash` kill the run mid-protocol;
3. :func:`~repro.core.checkpoint.scrub` the wreckage — under the commit
   protocol an honest engine can never lose a generation to the scrub, so
   any quarantine is itself a failure;
4. resume from the scrubbed checkpoint on a fresh engine with
   ``max_recoveries=0`` (no recovery budget to paper over damage), or
   restart from scratch when the crash predates the first commit;
5. require outputs *and* counted costs byte-identical to the golden run.

The whole sweep is deterministic: same workload, seeds, and machine tuple
give the same crash points, the same damage, and the same verdicts.  The
``repro crashcheck`` CLI subcommand and the conformance fuzzer's
``crash_resume`` oracle are both thin wrappers over :func:`explore`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

from .bsp.program import BSPAlgorithm
from .core.checkpoint import scrub
from .core.parsim import ParallelEMSimulation
from .core.seqsim import SequentialEMSimulation
from .core.simulator import build_params
from .emio.faults import CRASH_STAGES, CrashPlan, HostCrash
from .params import MachineParams

__all__ = ["CrashPointOutcome", "CrashCheckResult", "explore"]


@dataclass
class CrashPointOutcome:
    """Verdict for one crash point of the sweep.

    ``action`` is what recovery did: ``"resume@<step>"`` (scrub handed back
    a committed barrier), ``"restart"`` (crash predates the first commit),
    or ``"no-crash"`` (the plan's point was never reached — itself a
    failure inside an exhaustive sweep).
    """

    point: int
    stage: str
    action: str
    ok: bool
    detail: str = ""


@dataclass
class CrashCheckResult:
    """Outcome of one :func:`explore` sweep."""

    total_points: int
    checkpoints: int
    golden_summary: dict
    outcomes: list[CrashPointOutcome] = field(default_factory=list)
    extents_verified: int = 0

    @property
    def passed(self) -> bool:
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> list[CrashPointOutcome]:
        return [o for o in self.outcomes if not o.ok]


def _build_engine(
    algorithm_factory: Callable[[], BSPAlgorithm],
    machine: MachineParams,
    v: int,
    k: int | None,
    seed: int,
    backend: str,
    storage: str,
    storage_dir: str,
    crash: CrashPlan | None,
    max_recoveries: int = 8,
    io_overlap: bool = False,
):
    """One engine over a fresh algorithm instance, storage plane attached."""
    alg = algorithm_factory()
    params = build_params(alg, machine, v, k=k)
    kwargs = dict(
        seed=seed,
        checkpoint=True,
        max_recoveries=max_recoveries,
        storage=storage,
        storage_dir=storage_dir,
        io_overlap=io_overlap,
        crash=crash,
    )
    if machine.p > 1 or backend != "inline":
        return ParallelEMSimulation(alg, params, backend=backend, **kwargs)
    return SequentialEMSimulation(alg, params, **kwargs)


def explore(
    algorithm_factory: Callable[[], BSPAlgorithm],
    machine: MachineParams,
    v: int,
    root: str | os.PathLike,
    *,
    k: int | None = None,
    seed: int = 0,
    crash_seed: int = 7,
    keep_rate: float = 0.5,
    backend: str = "inline",
    storage: str = "file",
    io_overlap: bool = False,
    observer: Any = None,
    log: Callable[[str], None] | None = None,
) -> CrashCheckResult:
    """Crash at every crash point of the run; verify every recovery.

    ``algorithm_factory`` must return a *fresh* algorithm instance per call
    (each crash point replays the workload from scratch);
    ``ConformConfig.algorithm`` is exactly such a factory.  ``root`` is a
    scratch directory the sweep fills with one storage root per crash
    point (``golden``, ``pt0``, ``pt1``, ...), left behind for post-mortem.
    """
    say = log or (lambda _msg: None)
    root = os.fspath(root)
    os.makedirs(root, exist_ok=True)
    golden_dir = os.path.join(root, "golden")

    golden_out, golden_rep = _build_engine(
        algorithm_factory, machine, v, k, seed, backend, storage,
        golden_dir, crash=None, io_overlap=io_overlap,
    ).run()
    checkpoints = golden_rep.faults.checkpoints_taken
    golden_summary = golden_rep.ledger.summary()
    total = len(CRASH_STAGES) * checkpoints
    say(
        f"golden run: {checkpoints} checkpoints -> {total} crash points "
        f"({len(CRASH_STAGES)} stages per barrier)"
    )
    result = CrashCheckResult(
        total_points=total,
        checkpoints=checkpoints,
        golden_summary=golden_summary,
    )

    for point in range(total):
        stage = CRASH_STAGES[point % len(CRASH_STAGES)]
        point_dir = os.path.join(root, f"pt{point}")
        plan = CrashPlan(seed=crash_seed, crash_point=point, keep_rate=keep_rate)
        outcome = _explore_point(
            algorithm_factory, machine, v, k, seed, backend, storage,
            point_dir, plan, point, stage, golden_out, golden_summary,
            observer, result, io_overlap,
        )
        result.outcomes.append(outcome)
        verdict = "ok  " if outcome.ok else "FAIL"
        detail = f"  {outcome.detail}" if outcome.detail else ""
        say(f"point {point:3d} [{stage:9s}] {verdict} {outcome.action}{detail}")
    return result


def _explore_point(
    algorithm_factory,
    machine,
    v,
    k,
    seed,
    backend,
    storage,
    point_dir,
    plan,
    point,
    stage,
    golden_out,
    golden_summary,
    observer,
    result,
    io_overlap=False,
) -> CrashPointOutcome:
    """Crash at one point, scrub, recover, and compare against golden."""
    try:
        _build_engine(
            algorithm_factory, machine, v, k, seed, backend, storage,
            point_dir, crash=plan, io_overlap=io_overlap,
        ).run()
    except HostCrash:
        pass
    except Exception as exc:  # noqa: BLE001 - any other crash is a finding
        return CrashPointOutcome(
            point, stage, "no-crash", False,
            f"crash run raised {exc!r} instead of HostCrash",
        )
    else:
        return CrashPointOutcome(
            point, stage, "no-crash", False,
            "run completed without reaching its crash point",
        )

    res = scrub(point_dir, observer=observer)
    result.extents_verified += res.extents_verified
    if res.quarantined:
        return CrashPointOutcome(
            point, stage, "scrub", False,
            f"scrub quarantined generations {res.quarantined} "
            f"({'; '.join(res.errors)}) — the commit protocol should never "
            "lose a generation to an injected crash",
        )

    engine = _build_engine(
        algorithm_factory, machine, v, k, seed, backend, storage,
        point_dir, crash=None, max_recoveries=0, io_overlap=io_overlap,
    )
    try:
        if res.checkpoint is not None:
            action = f"resume@{res.checkpoint.step}"
            out, rep = engine.resume_from_checkpoint(res.checkpoint)
        else:
            action = "restart"
            out, rep = engine.run()
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return CrashPointOutcome(
            point, stage, "resume" if res.checkpoint else "restart", False,
            f"recovery raised {exc!r}",
        )

    if out != golden_out:
        return CrashPointOutcome(
            point, stage, action, False,
            "recovered outputs differ from the golden run",
        )
    summary = rep.ledger.summary()
    if summary != golden_summary:
        diff = {
            key: (golden_summary[key], summary[key])
            for key in golden_summary
            if summary.get(key) != golden_summary[key]
        }
        return CrashPointOutcome(
            point, stage, action, False,
            f"recovered cost ledger differs from golden: {diff}",
        )
    return CrashPointOutcome(point, stage, action, True)
