"""CGM multisearch — the paper's open-problem case, implemented.

Section 7: "our technique applies only to BSP-like algorithms for which
``T_comp`` is at least ``lambda*M`` ...  An example of such an algorithm is
multisearch [9].  In general, sublinear time external memory data structure
search/update is not applicable for our technique.  This is a very
important open problem for future research."

:class:`CGMMultisearch` is the natural coarse-grained multisearch (in the
spirit of Bäumker–Dittrich–Meyer auf der Heide [9]): an implicit balanced
search tree over the sorted key array, block-distributed; each superstep
advances every query one level, routing it to the owner of its next node.
``lambda = Theta(log n)`` supersteps with ``O(m/v)`` work each — exactly
the ``T_comp = o(lambda*M)`` regime, so the generated EM algorithm pays
``Theta(log n)`` full context sweeps.

:class:`~repro.baselines.emsearch.EMBatchedSearch` is the direct EM
counterpart (sort the queries, merge-scan against the array: one pass);
the LIMITS benchmark puts the two side by side to *measure* the open
problem's gap.
"""

from __future__ import annotations

from typing import Sequence

from ..bsp.collectives import owner_of_index, share_bounds
from ..bsp.program import BSPAlgorithm, VPContext

__all__ = ["CGMMultisearch"]


class CGMMultisearch(BSPAlgorithm):
    """Locate each query in a sorted key array by parallel tree descent.

    Answers ``pred[q]`` = index of the largest key ``<= q`` (or -1).
    Output ``j`` holds ``(query_index, pred_index)`` pairs for vp ``j``'s
    query share.

    The implicit tree over positions ``[lo, hi)`` has its root at the
    middle; every vp owns a contiguous block of array positions, so the
    node at position ``t`` is served by ``owner_of_index(t)``.
    """

    def __init__(self, keys: Sequence, queries: Sequence, v: int):
        if sorted(keys) != list(keys):
            raise ValueError("keys must be sorted")
        self.keys = list(keys)
        self.queries = list(queries)
        self.v = v
        self.n = len(keys)
        self.nq = len(queries)

    def context_size(self) -> int:
        return 512 + 4 * (
            -(-max(self.n, 1) // self.v) + 4 * -(-max(self.nq, 1) // self.v)
        )

    def comm_bound(self) -> int:
        # The upper tree levels funnel every in-flight query through a
        # single node owner (Bäumker et al. replicate the top levels to
        # avoid this; we keep the plain version), so gamma = Theta(m).
        return 128 + 8 * max(self.nq, 1)

    def initial_state(self, pid: int, nprocs: int):
        klo, khi = share_bounds(self.n, nprocs, pid)
        qlo, qhi = share_bounds(self.nq, nprocs, pid)
        return {
            "keys": self.keys[klo:khi],
            "klo": klo,
            # In-flight queries at nodes this vp owns: (qi, value, lo, hi).
            "inflight": [],
            "tosend": [
                (qi, self.queries[qi], 0, self.n) for qi in range(qlo, qhi)
            ],
            "answers": [],
        }

    @staticmethod
    def _mid(lo: int, hi: int) -> int:
        return (lo + hi) // 2

    def superstep(self, ctx: VPContext) -> None:
        st = ctx.state
        v = ctx.nprocs
        by_dest: dict[int, list] = {}

        def route(qi, val, lo, hi):
            """Send the query to the owner of its current node, or answer."""
            if lo >= hi:
                home = owner_of_index(qi, self.nq, v)
                by_dest.setdefault(home, []).extend(("A", qi, lo - 1))
            else:
                owner = owner_of_index(self._mid(lo, hi), self.n, v)
                by_dest.setdefault(owner, []).extend(("Q", qi, val, lo, hi))

        # Launch this vp's own queries toward the root (superstep 0).
        launched = st.pop("tosend", [])
        for qi, val, lo, hi in launched:
            route(qi, val, lo, hi)
        # Descend one level for the queries parked at nodes owned here.
        arrivals = []
        for m in ctx.incoming:
            it = iter(m.payload)
            for tag in it:
                if tag == "Q":
                    arrivals.append((next(it), next(it), next(it), next(it)))
                else:  # answer delivery
                    st["answers"].append((next(it), next(it)))
        for qi, val, lo, hi in arrivals:
            mid = self._mid(lo, hi)
            key = st["keys"][mid - st["klo"]]
            if val < key:
                route(qi, val, lo, mid)
            else:
                route(qi, val, mid + 1, hi)
        ctx.charge((len(arrivals) + len(launched)) * max(1, self.n.bit_length()))
        ctx.send_all(by_dest)
        if not by_dest and not arrivals and not launched:
            ctx.vote_halt()

    def output(self, pid: int, state) -> list[tuple[int, int]]:
        return sorted(state["answers"])
