"""CGM parallel prefix sums — the coarse-grained workhorse primitive.

Not a Table 1 row by itself, but the substrate of many of them (weighted
dominance, area sweeps, tour numberings all reduce to prefix computations).
Three supersteps: local prefixes, an all-to-one/one-to-all exchange of the
``v`` partial totals, and a local offset pass — the canonical CGM pattern
with ``lambda = O(1)`` and ``h = O(v)``.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

from ..bsp.collectives import share_bounds
from ..bsp.program import BSPAlgorithm, VPContext

__all__ = ["CGMPrefixSums"]


class CGMPrefixSums(BSPAlgorithm):
    """Inclusive prefix sums of ``values`` under an associative ``op``.

    Output ``j`` is vp ``j``'s slice of the prefix array; the concatenation
    over vp ids is ``[values[0], values[0] op values[1], ...]``.

    Parameters
    ----------
    values:
        The input sequence.
    v:
        Number of virtual processors.
    op:
        Associative binary operation (default ``operator.add``).
    identity:
        Identity element of ``op`` (default 0).
    """

    LAMBDA = 3

    def __init__(
        self,
        values: Sequence[Any],
        v: int,
        op: Callable[[Any, Any], Any] = operator.add,
        identity: Any = 0,
    ):
        self.values = list(values)
        self.v = v
        self.op = op
        self.identity = identity
        self.n = len(values)

    def context_size(self) -> int:
        return 256 + 8 * (4 * -(-max(self.n, 1) // self.v) + 2 * self.v)

    def comm_bound(self) -> int:
        return 64 + 8 * 2 * self.v

    def initial_state(self, pid: int, nprocs: int):
        lo, hi = share_bounds(self.n, nprocs, pid)
        return {"vals": self.values[lo:hi], "result": None}

    def superstep(self, ctx: VPContext) -> None:
        st = ctx.state
        if ctx.step == 0:
            prefix = []
            acc = self.identity
            for x in st["vals"]:
                acc = self.op(acc, x)
                prefix.append(acc)
            st["prefix"] = prefix
            ctx.charge(len(prefix))
            ctx.send(0, [acc if prefix else self.identity])
        elif ctx.step == 1:
            if ctx.pid == 0:
                totals = [None] * ctx.nprocs
                for m in ctx.incoming:
                    totals[m.src] = m.payload[0]
                acc = self.identity
                for dest in range(ctx.nprocs):
                    ctx.send(dest, [acc])  # exclusive prefix of totals
                    acc = self.op(acc, totals[dest])
                ctx.charge(ctx.nprocs)
        else:
            offset = ctx.incoming[0].payload[0]
            st["result"] = [self.op(offset, x) for x in st["prefix"]]
            ctx.charge(len(st["prefix"]))
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state["result"] if state["result"] is not None else []
