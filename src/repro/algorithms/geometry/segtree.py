"""CGM segment tree construction + batched stabbing queries (Table 1, Group B).

The "Segment tree construction" entry of the Group B row, as a two-level
coarse-grained structure (the scheme of Chan–Dehne–Rau-Chaplin [12]):

* the **top tree** is a complete binary tree over the ``v`` x-slabs (heap
  indexing, ``O(v)`` nodes); node ``t`` is owned by vp ``t mod v``.  An
  interval's *fully covered* slabs are registered at the ``O(log v)``
  canonical cover nodes — the textbook segment-tree decomposition, but over
  slabs instead of elementary intervals;
* the at most two *partially covered* end slabs receive the interval for
  their **local fine segment trees** (:class:`SegmentTree`, a from-scratch
  sequential implementation over the slab's endpoint coordinates).

A stabbing query ``x`` visits its slab's fine tree plus the owners of the
``O(log v)`` top-tree path nodes of that slab — every interval registered
at a path node covers the whole slab and therefore matches without any
coordinate test (the defining segment-tree property).  ``lambda = O(1)``
supersteps, ``h = O((n + q) log v / v)``.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ...bsp.collectives import owner_of_index, regular_samples, share_bounds
from ...bsp.program import BSPAlgorithm, VPContext

__all__ = ["SegmentTree", "CGMSegmentTreeStab"]


class SegmentTree:
    """Sequential segment tree over a coordinate set, storing intervals.

    Classic construction: leaves are the elementary intervals between
    consecutive coordinates; ``insert`` registers an interval at its
    ``O(log n)`` canonical nodes; ``stab`` walks root→leaf collecting ids.
    """

    def __init__(self, coords: Sequence[float]):
        self.xs = sorted(set(coords))
        nleaf = max(1, len(self.xs) + 1)  # elementary intervals incl. outer rays
        size = 1
        while size < nleaf:
            size *= 2
        self.size = size
        self.ids: dict[int, list] = {}

    def _leaf_of(self, x: float) -> int:
        return bisect.bisect_right(self.xs, x)

    def insert(self, lo: float, hi: float, ident) -> None:
        """Register interval ``[lo, hi]`` (closed) under id ``ident``."""
        # Leaf range of elementary intervals wholly inside [lo, hi], plus
        # the boundary leaves (closed interval semantics handled at stab).
        l = bisect.bisect_left(self.xs, lo)
        r = bisect.bisect_right(self.xs, hi)
        self._insert_leaves(l, r, ident, lo, hi)

    def _insert_leaves(self, l: int, r: int, ident, lo, hi) -> None:
        l += self.size
        r += self.size + 1
        while l < r:
            if l & 1:
                self.ids.setdefault(l, []).append((ident, lo, hi))
                l += 1
            if r & 1:
                r -= 1
                self.ids.setdefault(r, []).append((ident, lo, hi))
            l >>= 1
            r >>= 1

    def stab(self, x: float) -> list:
        """Ids of all inserted intervals containing ``x``."""
        node = self._leaf_of(x) + self.size
        out = []
        while node >= 1:
            for ident, lo, hi in self.ids.get(node, []):
                if lo <= x <= hi:
                    out.append(ident)
            node >>= 1
        return sorted(set(out))


def _top_cover(lo_slab: int, hi_slab: int, size: int) -> list[int]:
    """Canonical top-tree nodes covering slab range [lo_slab, hi_slab]."""
    if lo_slab > hi_slab:
        return []
    out = []
    l = lo_slab + size
    r = hi_slab + size + 1
    while l < r:
        if l & 1:
            out.append(l)
            l += 1
        if r & 1:
            r -= 1
            out.append(r)
        l >>= 1
        r >>= 1
    return out


def _top_path(slab: int, size: int) -> list[int]:
    node = slab + size
    out = []
    while node >= 1:
        out.append(node)
        node >>= 1
    return out


class CGMSegmentTreeStab(BSPAlgorithm):
    """Build a distributed segment tree over ``intervals`` and answer
    batched stabbing queries.

    Output ``j`` is the list of ``(query_index, sorted interval ids)`` for
    the queries in vp ``j``'s block share.
    """

    LAMBDA = 5
    SAMPLES_PER_VP = 4

    def __init__(
        self,
        intervals: Sequence[tuple[float, float]],
        queries: Sequence[float],
        v: int,
    ):
        for a, b in intervals:
            if a > b:
                raise ValueError(f"malformed interval ({a},{b})")
        self.intervals = [tuple(iv) for iv in intervals]
        self.queries = list(queries)
        self.v = v
        self.n = len(intervals)
        self.nq = len(queries)
        size = 1
        while size < v:
            size *= 2
        self.top_size = size

    def context_size(self) -> int:
        per = 16
        vlog = max(1, self.v.bit_length())
        return 4096 + per * (
            2 * vlog * max(1, self.n) // max(1, self.v) * 4
            + 4 * -(-max(self.nq, 1) // self.v)
            + 4 * -(-max(self.n, 1) // self.v)
        )

    def comm_bound(self) -> int:
        vlog = max(1, self.v.bit_length())
        return 1024 + 16 * vlog * (
            -(-max(self.n, 1) // self.v) + -(-max(self.nq, 1) // self.v) + self.v
        )

    def initial_state(self, pid: int, nprocs: int):
        ilo, ihi = share_bounds(self.n, nprocs, pid)
        qlo, qhi = share_bounds(self.nq, nprocs, pid)
        return {
            "myintervals": [(i, *self.intervals[i]) for i in range(ilo, ihi)],
            "myqueries": [(qi, self.queries[qi]) for qi in range(qlo, qhi)],
            "splitters": None,
            "local": None,
            "topids": {},
            "answers": {},
        }

    def superstep(self, ctx: VPContext) -> None:
        st = ctx.state
        v = ctx.nprocs
        if ctx.step == 0:
            xs = sorted(
                [a for _i, a, _b in st["myintervals"]]
                + [b for _i, _a, b in st["myintervals"]]
                + [x for _qi, x in st["myqueries"]]
            )
            ctx.charge(len(xs) * max(1, len(xs)).bit_length())
            ctx.send(0, regular_samples(xs, self.SAMPLES_PER_VP * v))
        elif ctx.step == 1:
            if ctx.pid == 0:
                allsamples = sorted(s for m in ctx.incoming for s in m.payload)
                splitters = regular_samples(allsamples, v - 1)
                ctx.charge(len(allsamples))
                for dest in range(v):
                    ctx.send(dest, splitters)
        elif ctx.step == 2:
            split = list(ctx.incoming[0].payload)
            st["splitters"] = split
            by_dest: dict[int, list] = {}

            def slab_of(x: float) -> int:
                return bisect.bisect_right(split, x)

            for i, a, b in st["myintervals"]:
                sa, sb = slab_of(a), slab_of(b)
                by_dest.setdefault(sa, []).extend(("I", i, a, b))
                if sb != sa:
                    by_dest.setdefault(sb, []).extend(("I", i, a, b))
                for node in _top_cover(sa + 1, sb - 1, self.top_size):
                    by_dest.setdefault(node % v, []).extend(("T", node, i))
            for qi, x in st["myqueries"]:
                sx = slab_of(x)
                by_dest.setdefault(sx, []).extend(("Q", qi, x))
                for node in _top_path(sx, self.top_size):
                    by_dest.setdefault(node % v, []).extend(("P", qi, node))
            ctx.charge(
                (len(st["myintervals"]) + len(st["myqueries"]))
                * max(1, v.bit_length())
            )
            ctx.send_all(by_dest)
            st["myintervals"] = []
            st["myqueries"] = []
        elif ctx.step == 3:
            local_ivs = []
            topids: dict[int, list[int]] = {}
            pending_q = []
            pending_p = []
            for m in ctx.incoming:
                it = iter(m.payload)
                for tag in it:
                    if tag == "I":
                        local_ivs.append((next(it), next(it), next(it)))
                    elif tag == "T":
                        node, ident = next(it), next(it)
                        topids.setdefault(node, []).append(ident)
                    elif tag == "Q":
                        pending_q.append((next(it), next(it)))
                    else:
                        pending_p.append((next(it), next(it)))
            # Local fine segment tree over this slab's interval endpoints.
            coords = [a for _i, a, _b in local_ivs] + [b for _i, _a, b in local_ivs]
            tree = SegmentTree(coords)
            for ident, a, b in local_ivs:
                tree.insert(a, b, ident)
            ctx.charge(
                (len(local_ivs) + len(pending_q))
                * max(1, max(len(coords), 1).bit_length())
            )
            by_dest: dict[int, list] = {}
            for qi, x in pending_q:
                ids = tree.stab(x)
                home = owner_of_index(qi, self.nq, v)
                by_dest.setdefault(home, []).extend(["A", qi, len(ids)] + ids)
            for qi, node in pending_p:
                ids = topids.get(node, [])
                home = owner_of_index(qi, self.nq, v)
                by_dest.setdefault(home, []).extend(["A", qi, len(ids)] + ids)
            ctx.send_all(by_dest)
        else:
            for m in ctx.incoming:
                it = iter(m.payload)
                for tag in it:
                    qi, cnt = next(it), next(it)
                    ids = [next(it) for _ in range(cnt)]
                    st["answers"].setdefault(qi, set()).update(ids)
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return sorted((qi, sorted(ids)) for qi, ids in state["answers"].items())
