"""CGM 2D convex hull (Table 1, Group B, "3D convex hull / Voronoi" row).

Slab decomposition: points are routed into x-slabs, each vp computes the
convex hull of its slab, and the slab hulls' vertices — the only possible
global hull vertices — are gathered and combined at vp 0.  ``lambda = O(1)``
communication rounds.

DESIGN.md documents the substitution: the paper's Group B row cites the
*randomized 3D* hull of Dehne et al. [16]; this module reproduces the same
simulation-relevant structure (sample-based x-splitting, O(1) rounds,
``h = O(n/v)`` relations) in 2D, where the combine step is elementary.  The
gather step relies on the usual CGM coarseness assumption that the slab
hulls' total size is ``O(n/v)`` (true whp for the benchmark's random inputs
and for any input whose hull has ``O(n/v)`` vertices).
"""

from __future__ import annotations

from typing import Sequence

from ...bsp.program import VPContext
from .common import SlabAlgorithm, convex_hull

__all__ = ["CGMConvexHull"]


class CGMConvexHull(SlabAlgorithm):
    """Convex hull of a 2D point set.

    Output 0 is the hull in counter-clockwise order (starting at the
    lexicographically smallest vertex); other vps output empty lists.
    """

    LAMBDA = 5

    def __init__(self, points: Sequence[tuple[float, float]], v: int):
        super().__init__(points, v)

    def xkey(self, item) -> float:
        return item[0]

    def process(self, ctx: VPContext, rel_step: int) -> None:
        st = ctx.state
        if rel_step == 0:
            local = convex_hull(st["slab"]) if st["slab"] else []
            ctx.charge(len(st["slab"]) * max(1, len(st["slab"]).bit_length()))
            payload = [c for p in local for c in p]
            ctx.send(0, payload)
        elif rel_step == 1:
            if ctx.pid == 0:
                candidates = []
                for m in ctx.incoming:
                    it = iter(m.payload)
                    for x in it:
                        candidates.append((x, next(it)))
                st["hull"] = convex_hull(candidates) if candidates else []
                ctx.charge(len(candidates) * max(1, len(candidates).bit_length()))
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state.get("hull", [])
