"""3D convex hull (Table 1, Group B, "3D convex hull" row).

Sequential kernel: randomized-order incremental hull with horizon walking
(the textbook algorithm) — ``O(n^2)`` worst case, ample for the per-slab
subproblems.  Points are expected in general position (no 4 coplanar on
the hull), which the workload generators provide.

CGM algorithm (:class:`CGM3DConvexHull`): points are routed into x-slabs,
every slab computes the hull of its slab and forwards the hull *vertices*
to vp 0, which finishes on the candidates.  This is **exact**: a vertex of
the global hull admits a supporting plane, which also supports it within
its slab's subset — so global hull vertices are always among the slabs'
local hull vertices.  ``lambda = O(1)`` rounds under the usual CGM
coarseness assumption that the candidate set fits one virtual processor
(true whp for random inputs: an ``n``-point uniform sample has
``O(polylog)``–``O(n^{2/3})`` hull vertices depending on the distribution).
"""

from __future__ import annotations

from typing import Sequence

from ...bsp.program import VPContext
from .common import SlabAlgorithm

__all__ = ["convex_hull_3d", "CGM3DConvexHull"]

Point3 = tuple[float, float, float]


def _sub(a: Point3, b: Point3) -> Point3:
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def _cross3(a: Point3, b: Point3) -> Point3:
    return (
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    )


def _dot(a: Point3, b: Point3) -> float:
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def _orient(a: Point3, b: Point3, c: Point3, d: Point3) -> float:
    """Signed volume of tetrahedron ``abcd`` (positive: ``d`` above ``abc``)."""
    return _dot(_cross3(_sub(b, a), _sub(c, a)), _sub(d, a))


def convex_hull_3d(points: Sequence[Point3]) -> list[tuple[int, int, int]]:
    """Faces of the 3D convex hull as sorted index triples.

    Incremental construction: seed a tetrahedron from four non-coplanar
    points, then insert the rest; visible faces are deleted and the horizon
    is re-capped with new faces through the inserted point.  Raises
    :class:`ValueError` for fewer than 4 points or a degenerate (coplanar)
    input set.
    """
    n = len(points)
    pts = [tuple(p) for p in points]
    if n < 4:
        raise ValueError("3D hull needs at least 4 points")
    if len(set(pts)) != n:
        raise ValueError("duplicate points")

    scale = max(
        max(abs(c) for c in p) for p in pts
    ) or 1.0
    eps = 1e-9 * scale**3

    # Seed tetrahedron: points 0, i (not equal), j (not collinear),
    # k (not coplanar).
    i1 = next((i for i in range(1, n) if pts[i] != pts[0]), None)
    i2 = next(
        (
            i
            for i in range(1, n)
            if i != i1
            and any(
                abs(c) > eps
                for c in _cross3(_sub(pts[i1], pts[0]), _sub(pts[i], pts[0]))
            )
        ),
        None,
    )
    i3 = next(
        (
            i
            for i in range(1, n)
            if i not in (i1, i2) and abs(_orient(pts[0], pts[i1], pts[i2], pts[i])) > eps
        ),
        None,
    )
    if i2 is None or i3 is None:
        raise ValueError("degenerate input: all points coplanar")

    seed = [0, i1, i2, i3]
    centroid = tuple(
        sum(pts[s][d] for s in seed) / 4.0 for d in range(3)
    )

    def outward(a: int, b: int, c: int) -> tuple[int, int, int]:
        va, vb, vc = pts[a], pts[b], pts[c]
        normal_side = _orient(va, vb, vc, centroid)
        return (a, b, c) if normal_side < 0 else (a, c, b)

    faces: set[tuple[int, int, int]] = {
        outward(0, i1, i2),
        outward(0, i1, i3),
        outward(0, i2, i3),
        outward(i1, i2, i3),
    }

    for p in range(n):
        if p in seed:
            continue
        visible = [
            f for f in faces if _orient(pts[f[0]], pts[f[1]], pts[f[2]], pts[p]) > eps
        ]
        if not visible:
            continue  # inside the current hull
        # Horizon: directed edges of visible faces whose reverse is not
        # in another visible face.
        vis_edges = set()
        for a, b, c in visible:
            vis_edges.update(((a, b), (b, c), (c, a)))
        horizon = [e for e in vis_edges if (e[1], e[0]) not in vis_edges]
        for f in visible:
            faces.remove(f)
        for a, b in horizon:
            # Orient against the seed centroid, which stays strictly
            # interior as the hull only grows.
            faces.add(outward(a, b, p))
    return sorted(tuple(sorted(f)) for f in faces)


def hull_vertices_3d(points: Sequence[Point3]) -> list[int]:
    """Indices of the points on the 3D convex hull."""
    return sorted({i for f in convex_hull_3d(points) for i in f})


class CGM3DConvexHull(SlabAlgorithm):
    """3D convex hull of a point set in general position.

    Output 0 is ``(vertices, faces)``: sorted original-index list of hull
    vertices and sorted face triples; other vps output empty lists.
    """

    LAMBDA = 5

    def __init__(self, points: Sequence[Point3], v: int):
        items = [(i, tuple(p)) for i, p in enumerate(points)]
        super().__init__(items, v)

    def xkey(self, item) -> float:
        return item[1][0]

    def process(self, ctx: VPContext, rel_step: int) -> None:
        st = ctx.state
        if rel_step == 0:
            pts = st["slab"]
            payload = []
            if len(pts) >= 4:
                coords = [p for _i, p in pts]
                try:
                    keep = hull_vertices_3d(coords)
                except ValueError:
                    keep = list(range(len(pts)))  # degenerate slab: keep all
            else:
                keep = list(range(len(pts)))
            for li in keep:
                idx, (x, y, z) = pts[li]
                payload.extend((idx, x, y, z))
            ctx.charge(len(pts) ** 2)
            ctx.send(0, payload)
        elif rel_step == 1:
            if ctx.pid == 0:
                cand_idx = []
                cand_pts = []
                for m in ctx.incoming:
                    it = iter(m.payload)
                    for idx in it:
                        cand_idx.append(idx)
                        cand_pts.append((next(it), next(it), next(it)))
                faces_local = convex_hull_3d(cand_pts)
                faces = sorted(
                    tuple(sorted(cand_idx[i] for i in f)) for f in faces_local
                )
                st["hull"] = (
                    sorted({i for f in faces for i in f}),
                    faces,
                )
                ctx.charge(len(cand_pts) ** 2)
            ctx.vote_halt()

    def output(self, pid: int, state):
        return state.get("hull", [])
