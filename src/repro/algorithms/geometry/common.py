"""Shared machinery for the Group B geometry algorithms.

Almost every CGM geometry algorithm in Table 1 follows the same
coarse-grained outline (Dehne, Fabri & Rau-Chaplin [19]):

1. sample the input's x-order and pick ``v - 1`` global splitters,
2. route every object to the x-*slab(s)* it intersects (one ``h``-relation),
3. solve the subproblem inside each slab locally, and
4. resolve cross-slab information with O(1) further ``h``-relations.

:class:`SlabAlgorithm` implements steps 1–2 once; subclasses supply the slab
key, the slab range of an object (objects like segments and rectangles can
span several slabs), and the post-distribution supersteps.  The module also
collects the planar primitives (orientation tests, monotone-chain hulls,
staircases) used across the package.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Sequence

from ...bsp.collectives import regular_samples, share_bounds
from ...bsp.program import BSPAlgorithm, VPContext

__all__ = [
    "SlabAlgorithm",
    "cross",
    "upper_hull",
    "lower_hull",
    "convex_hull",
    "staircase_2d",
]


# ---------------------------------------------------------------------------
# planar primitives
# ---------------------------------------------------------------------------


def cross(o: Sequence[float], a: Sequence[float], b: Sequence[float]) -> float:
    """2D cross product of ``oa`` and ``ob``; > 0 for a left turn."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def _half_hull(points: Iterable[Sequence[float]], sign: float) -> list:
    pts = sorted(set((p[0], p[1]) for p in points))
    if len(pts) <= 2:
        return pts
    hull: list = []
    for p in pts:
        while len(hull) >= 2 and sign * cross(hull[-2], hull[-1], p) >= 0:
            hull.pop()
        hull.append(p)
    return hull


def upper_hull(points: Iterable[Sequence[float]]) -> list:
    """Upper convex hull, left to right (Andrew's monotone chain)."""
    return _half_hull(points, sign=1.0)


def lower_hull(points: Iterable[Sequence[float]]) -> list:
    """Lower convex hull, left to right."""
    return _half_hull(points, sign=-1.0)


def convex_hull(points: Iterable[Sequence[float]]) -> list:
    """Convex hull in counter-clockwise order starting at the lowest-x point."""
    pts = sorted(set((p[0], p[1]) for p in points))
    if len(pts) <= 2:
        return pts
    lo = lower_hull(pts)
    up = upper_hull(pts)
    return lo[:-1] + up[::-1][:-1]


def staircase_2d(points: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Maximal points of a 2D set (no other point has both coords larger).

    Returned sorted by decreasing first coordinate / increasing second.
    """
    best: list[tuple[float, float]] = []
    for p in sorted(points, key=lambda q: (-q[0], -q[1])):
        if not best or p[1] > best[-1][1]:
            best.append(p)
    return best


# ---------------------------------------------------------------------------
# the slab-decomposition skeleton
# ---------------------------------------------------------------------------


class SlabAlgorithm(BSPAlgorithm):
    """Skeleton: sample -> splitters -> slab routing -> subclass supersteps.

    Subclasses implement :meth:`xkey`, optionally :meth:`slab_range`, and
    :meth:`process`, which is called from superstep 3 on with a relative
    step counter (0 on the superstep in which the routed slab contents
    arrive).  Superstep layout:

    ========  =====================================================
    step 0    local sort by ``xkey``; samples to vp 0
    step 1    vp 0 broadcasts ``v - 1`` splitters
    step 2    every object routed to its slab(s)
    step 3+   ``process(ctx, rel_step)`` with ``rel_step = step - 3``
    ========  =====================================================

    The slab of vp ``j`` is the x-interval ``[splitter[j-1], splitter[j])``
    (unbounded at both ends).  Objects are delivered in ``state["slab"]``;
    the splitters in ``state["splitters"]``.
    """

    #: oversampling factor for splitter selection
    SAMPLES_PER_VP = 4

    def __init__(self, items: Sequence[Any], v: int):
        self.items = list(items)
        self.v = v
        self.n = len(self.items)

    # -- hooks -------------------------------------------------------------------

    def xkey(self, item: Any) -> float:  # pragma: no cover - abstract
        """The x-coordinate by which slabs are formed."""
        raise NotImplementedError

    def slab_range(self, item: Any, splitters: list[float], v: int) -> range:
        """Slabs an object must be sent to (default: the one containing xkey)."""
        j = bisect.bisect_right(splitters, self.xkey(item))
        return range(j, j + 1)

    def process(self, ctx: VPContext, rel_step: int) -> None:  # pragma: no cover
        """Subclass supersteps; first call has the slab contents in state."""
        raise NotImplementedError

    # -- resource declarations ------------------------------------------------------

    def duplication_factor(self) -> int:
        """Upper bound on how many slabs one object can be routed to.

        Slab-spanning objects (segments, rectangles) may be replicated; the
        default assumes modest spans.  Subclasses dealing with potentially
        full-span objects should override (worst case ``v``).
        """
        return 4

    def context_size(self) -> int:
        per = 16
        dup = self.duplication_factor()
        return 2048 + per * (2 * dup * -(-max(self.n, 1) // self.v) + 2 * self.v * self.v)

    def comm_bound(self) -> int:
        per = 8
        dup = self.duplication_factor()
        return 512 + per * max(
            self.SAMPLES_PER_VP * self.v * 2,
            2 * dup * -(-max(self.n, 1) // self.v) + 2 * self.v,
        )

    # -- the fixed first three supersteps ----------------------------------------------

    def initial_state(self, pid: int, nprocs: int):
        lo, hi = share_bounds(self.n, nprocs, pid)
        return {
            "mine": self.items[lo:hi],
            "splitters": None,
            "slab": None,
        }

    def superstep(self, ctx: VPContext) -> None:
        st = ctx.state
        if ctx.step == 0:
            st["mine"].sort(key=self.xkey)
            ctx.charge(len(st["mine"]) * max(1, len(st["mine"]).bit_length()))
            samples = regular_samples(
                [self.xkey(x) for x in st["mine"]], self.SAMPLES_PER_VP * ctx.nprocs
            )
            ctx.send(0, samples)
        elif ctx.step == 1:
            if ctx.pid == 0:
                allsamples = sorted(s for m in ctx.incoming for s in m.payload)
                splitters = regular_samples(allsamples, ctx.nprocs - 1)
                ctx.charge(len(allsamples))
                for dest in range(ctx.nprocs):
                    ctx.send(dest, splitters)
        elif ctx.step == 2:
            splitters = list(ctx.incoming[0].payload)
            st["splitters"] = splitters
            by_dest: dict[int, list] = {}
            for item in st["mine"]:
                for j in self.slab_range(item, splitters, ctx.nprocs):
                    if 0 <= j < ctx.nprocs:
                        by_dest.setdefault(j, []).append(item)
            ctx.charge(len(st["mine"]))
            ctx.send_all(by_dest)
            st["mine"] = []
        else:
            if ctx.step == 3:
                st["slab"] = [x for m in ctx.incoming for x in m.payload]
            self.process(ctx, ctx.step - 3)
