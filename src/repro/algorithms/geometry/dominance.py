"""CGM 2D weighted dominance counting (Table 1, Group B).

For every query point ``p`` compute the total weight of input points
strictly dominated by it (``x' < x`` and ``y' < y``).  The coarse-grained
grid method:

1. route points into x-slabs (the :class:`SlabAlgorithm` skeleton);
2. sample y inside the slabs, pick ``v - 1`` global y-splitters — the slabs
   and y-buckets form a ``v x v`` grid;
3. every slab vp reports its per-y-bucket weight sums to vp 0 (the grid's
   column) and routes each point, tagged with its slab id, to the vp owning
   its y-bucket;
4. vp 0 broadcasts the full grid matrix; each y-bucket vp resolves its
   points exactly: the dominated weight of ``p`` in slab ``j``, bucket
   ``b`` is (a) the matrix prefix over cells ``(j' < j, b' < b)`` plus (b) a
   Fenwick-tree sweep over the bucket's points in y-order for the partial
   bucket row.

``lambda = O(1)`` rounds with ``h = O(n/v + v^2)`` — the CGM coarseness
assumption ``n/v >= v^2`` covers the matrix broadcast.  Results return to
each point's home vp (block distribution by original index).
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ...bsp.collectives import owner_of_index, regular_samples
from ...bsp.program import VPContext
from .common import SlabAlgorithm

__all__ = ["CGMDominanceCounting"]


class _Fenwick:
    """Fenwick tree over slab ids, for the partial-bucket sweep."""

    def __init__(self, size: int):
        self.t = [0.0] * (size + 1)

    def add(self, i: int, w: float) -> None:
        i += 1
        while i < len(self.t):
            self.t[i] += w
            i += i & (-i)

    def prefix(self, i: int) -> float:
        # sum of slabs 0..i-1
        s = 0.0
        while i > 0:
            s += self.t[i]
            i -= i & (-i)
        return s


class CGMDominanceCounting(SlabAlgorithm):
    """Weighted dominance counts for a 2D point set.

    Parameters
    ----------
    points:
        ``(x, y)`` pairs.
    v:
        Number of virtual processors.
    weights:
        Optional per-point weights (default 1 each).

    Output ``j`` is the list of ``(index, count)`` pairs for the points with
    original indices in vp ``j``'s block share.
    """

    LAMBDA = 9

    def __init__(
        self,
        points: Sequence[tuple[float, float]],
        v: int,
        weights: Sequence[float] | None = None,
    ):
        if weights is not None and len(weights) != len(points):
            raise ValueError("weights must match points")
        items = [
            (i, p[0], p[1], 1.0 if weights is None else weights[i])
            for i, p in enumerate(points)
        ]
        super().__init__(items, v)

    def xkey(self, item) -> float:
        return item[1]

    def process(self, ctx: VPContext, rel_step: int) -> None:
        st = ctx.state
        v = ctx.nprocs
        if rel_step == 0:
            # y-sampling inside the slabs.
            ys = sorted(p[2] for p in st["slab"])
            ctx.charge(len(ys) * max(1, len(ys).bit_length()))
            ctx.send(0, regular_samples(ys, self.SAMPLES_PER_VP * v))
        elif rel_step == 1:
            if ctx.pid == 0:
                allsamples = sorted(s for m in ctx.incoming for s in m.payload)
                ysplit = regular_samples(allsamples, v - 1)
                ctx.charge(len(allsamples))
                for dest in range(v):
                    ctx.send(dest, ysplit)
        elif rel_step == 2:
            ysplit = list(ctx.incoming[0].payload)
            st["ysplit"] = ysplit
            # Within-slab dominance: sweep by x (equal-x groups together)
            # with a Fenwick tree over compressed y ranks.
            slab_pts = st["slab"]
            ys_sorted = sorted({p[2] for p in slab_pts})
            fw_local = _Fenwick(len(ys_sorted))
            within: dict[int, float] = {}
            ordered = sorted(slab_pts, key=lambda t: t[1])
            i = 0
            while i < len(ordered):
                j = i
                while j < len(ordered) and ordered[j][1] == ordered[i][1]:
                    j += 1
                for idx, x, y, w in ordered[i:j]:
                    within[idx] = fw_local.prefix(bisect.bisect_left(ys_sorted, y))
                for idx, x, y, w in ordered[i:j]:
                    fw_local.add(bisect.bisect_left(ys_sorted, y), w)
                i = j
            # Column of the grid matrix: weight per y-bucket in this slab.
            col = [0.0] * v
            by_bucket: dict[int, list] = {}
            for idx, x, y, w in slab_pts:
                b = bisect.bisect_right(ysplit, y)
                col[b] += w
                by_bucket.setdefault(b, []).extend((idx, ctx.pid, y, w, within[idx]))
            ctx.charge(len(slab_pts) * max(1, max(len(slab_pts), 1).bit_length()))
            ctx.send(0, ["C", ctx.pid] + col)
            for b, payload in sorted(by_bucket.items()):
                ctx.send(b, ["P"] + payload)
        elif rel_step == 3:
            # Stash bucket points; vp 0 assembles and broadcasts the matrix.
            pts = []
            matrix_cols: dict[int, list[float]] = {}
            for m in ctx.incoming:
                it = iter(m.payload)
                tag = next(it)
                if tag == "P":
                    for idx in it:
                        pts.append((idx, next(it), next(it), next(it), next(it)))
                elif tag == "C":
                    slab = next(it)
                    matrix_cols[slab] = list(it)
            st["bucket_pts"] = pts
            if ctx.pid == 0:
                flat: list[float] = []
                for slab in range(v):
                    col = matrix_cols.get(slab, [0.0] * v)
                    flat.extend(col)
                ctx.charge(v * v)
                for dest in range(v):
                    ctx.send(dest, flat)
        elif rel_step == 4:
            flat = list(ctx.incoming[0].payload)
            v2 = ctx.nprocs
            # matrix[slab][bucket] weights; prefix over slabs < j, buckets < b.
            matrix = [flat[s * v2 : (s + 1) * v2] for s in range(v2)]
            below_left = [[0.0] * (v2 + 1) for _ in range(v2 + 1)]
            for s in range(v2):
                for b in range(v2):
                    below_left[s + 1][b + 1] = (
                        matrix[s][b]
                        + below_left[s][b + 1]
                        + below_left[s + 1][b]
                        - below_left[s][b]
                    )
            b_mine = ctx.pid  # this vp owns y-bucket == its pid
            fw = _Fenwick(v2)
            results: dict[int, list] = {}
            pts = sorted(st["bucket_pts"], key=lambda t: (t[2], t[1]))
            i = 0
            n_pts = len(pts)
            while i < n_pts:
                # Process equal-y groups together (strict dominance in y).
                j = i
                while j < n_pts and pts[j][2] == pts[i][2]:
                    j += 1
                for idx, slab, y, w, within in pts[i:j]:
                    partial = fw.prefix(slab)  # earlier slabs, smaller y, same bucket
                    full = below_left[slab][b_mine]  # earlier slabs, lower buckets
                    cnt = partial + full + within  # within: own slab, x'<x, y'<y
                    home = owner_of_index(idx, self.n, v2)
                    results.setdefault(home, []).extend((idx, cnt))
                for idx, slab, y, w, within in pts[i:j]:
                    fw.add(slab, w)
                i = j
            ctx.charge(n_pts * max(1, v2.bit_length()))
            ctx.send_all(results)
        elif rel_step == 5:
            got = []
            for m in ctx.incoming:
                it = iter(m.payload)
                for idx in it:
                    got.append((idx, next(it)))
            st["counts"] = sorted(got)
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state.get("counts", [])
