"""Trapezoidal decomposition and polygon triangulation (Table 1, Group B).

The paper's row "Polygon triangulation, Trapezoidal decomposition, Segment
tree construction, Next element search on line segments" bundles the
classical pipeline [12]:

* **Trapezoidal decomposition** — for every segment endpoint, find the
  segments immediately above and below (two batched next-element-search
  passes, :class:`~repro.algorithms.geometry.pointloc.CGMNextElementSearch`
  run on the segment set and its reflection).  The vertical extensions at
  the endpoints partition the plane into trapezoids.
* **Polygon triangulation** — the decomposition splits a simple polygon
  into monotone pieces which are triangulated by linear scans; this module
  provides the from-scratch ear-clipping kernel
  (:func:`triangulate_polygon`) used by examples and tests, with the CGM
  distribution carried by the decomposition step exactly as in [12].
"""

from __future__ import annotations

from typing import Callable, Sequence

from ...bsp.runner import run_reference
from .common import cross
from .pointloc import CGMNextElementSearch

__all__ = ["trapezoidal_decomposition", "triangulate_polygon"]

Segment = tuple[float, float, float, float]


def _default_run(alg, v):
    return run_reference(alg, v)[0]


def trapezoidal_decomposition(
    segments: Sequence[Segment],
    v: int,
    run: Callable = _default_run,
) -> list[dict]:
    """Vertical decomposition induced by non-crossing segments.

    For every segment endpoint, shoot rays up and down to the neighbouring
    segments (or to infinity).  Returns one record per endpoint::

        {"segment": i, "end": "left"|"right", "x": x, "y": y,
         "above": j_or_-1, "below": j_or_-1}

    — the wall set of the trapezoidal map (each vertical wall, with the
    segments it connects), computed with two batched next-element-search
    passes (``lambda = O(1)`` each).
    """
    queries = []
    meta = []
    for i, (x1, y1, x2, y2) in enumerate(segments):
        queries.append((x1, y1))
        meta.append((i, "left", x1, y1))
        queries.append((x2, y2))
        meta.append((i, "right", x2, y2))

    eps = 1e-9
    # Above pass: nudge the query up so the segment itself is not returned.
    up_queries = [(x, y + eps) for x, y in queries]
    above = {}
    for part in run(CGMNextElementSearch(segments, up_queries, v), v):
        for qi, sid in part:
            above[qi] = sid
    # Below pass: reflect in y and reuse the same machinery.
    reflected = [(x1, -y1, x2, -y2) for x1, y1, x2, y2 in segments]
    down_queries = [(x, -(y - eps)) for x, y in queries]
    below = {}
    for part in run(CGMNextElementSearch(reflected, down_queries, v), v):
        for qi, sid in part:
            below[qi] = sid

    out = []
    for qi, (i, end, x, y) in enumerate(meta):
        out.append(
            {
                "segment": i,
                "end": end,
                "x": x,
                "y": y,
                "above": above[qi],
                "below": below[qi],
            }
        )
    return out


def triangulate_polygon(
    polygon: Sequence[tuple[float, float]],
) -> list[tuple[int, int, int]]:
    """Triangulate a simple polygon by ear clipping (from-scratch kernel).

    ``polygon`` is a vertex list in counter-clockwise order (clockwise
    inputs are reversed automatically).  Returns ``n - 2`` index triples.
    ``O(n^2)`` — the sequential kernel of the Table 1 row; the CGM
    distribution of the full pipeline goes through
    :func:`trapezoidal_decomposition`.
    """
    n = len(polygon)
    if n < 3:
        raise ValueError("polygon needs at least 3 vertices")
    pts = [tuple(p) for p in polygon]
    if len(set(pts)) != n:
        raise ValueError("repeated vertices")
    area2 = sum(
        pts[i][0] * pts[(i + 1) % n][1] - pts[(i + 1) % n][0] * pts[i][1]
        for i in range(n)
    )
    if area2 == 0:
        raise ValueError("degenerate polygon")
    order = list(range(n)) if area2 > 0 else list(range(n - 1, -1, -1))

    def is_ear(idx_list: list[int], pos: int) -> bool:
        a = pts[idx_list[pos - 1]]
        b = pts[idx_list[pos]]
        c = pts[idx_list[(pos + 1) % len(idx_list)]]
        if cross(a, b, c) <= 0:
            return False  # reflex corner
        for other in idx_list:
            if other in (
                idx_list[pos - 1],
                idx_list[pos],
                idx_list[(pos + 1) % len(idx_list)],
            ):
                continue
            p = pts[other]
            if (
                cross(a, b, p) >= 0
                and cross(b, c, p) >= 0
                and cross(c, a, p) >= 0
            ):
                return False  # another vertex inside the candidate ear
        return True

    triangles = []
    remaining = order[:]
    guard = 0
    while len(remaining) > 3:
        guard += 1
        if guard > 2 * n * n:  # pragma: no cover - defensive
            raise ValueError("not a simple polygon (ear clipping stalled)")
        clipped = False
        for pos in range(len(remaining)):
            if is_ear(remaining, pos):
                a = remaining[pos - 1]
                b = remaining[pos]
                c = remaining[(pos + 1) % len(remaining)]
                triangles.append(tuple(sorted((a, b, c))))
                del remaining[pos]
                clipped = True
                break
        if not clipped:
            raise ValueError("not a simple polygon (no ear found)")
    triangles.append(tuple(sorted(remaining)))
    return sorted(triangles)
