"""CGM uni- and multi-directional separability (Table 1, Group B).

Two point sets are *separable in direction d* if a line perpendicular to
``d`` has all red points strictly on its negative side and all blue points
on its positive side — equivalently, ``max_red <d, r> < min_blue <d, b>``
(projections onto ``d``).  Multi-directional separability asks the question
for a whole batch of directions at once.

The coarse-grained algorithm is a pure reduction: every vp computes local
projection extrema for all directions, vp 0 combines and broadcasts the
verdicts.  ``lambda = O(1)`` with ``h = O(#directions)``.
"""

from __future__ import annotations

from typing import Sequence

from ...bsp.collectives import share_bounds
from ...bsp.program import BSPAlgorithm, VPContext

__all__ = ["CGMSeparability"]

Point = tuple[float, float]


class CGMSeparability(BSPAlgorithm):
    """Decide separability of red/blue point sets for each given direction.

    Output 0 is a list of booleans, one per direction (True = separable,
    red side negative); other vps output empty lists.
    """

    LAMBDA = 3

    def __init__(
        self,
        red: Sequence[Point],
        blue: Sequence[Point],
        directions: Sequence[Point],
        v: int,
    ):
        if not directions:
            raise ValueError("at least one direction is required")
        self.red = [tuple(p) for p in red]
        self.blue = [tuple(p) for p in blue]
        self.directions = [tuple(d) for d in directions]
        self.v = v

    def context_size(self) -> int:
        n = len(self.red) + len(self.blue)
        return 1024 + 16 * (4 * -(-max(n, 1) // self.v) + 4 * len(self.directions))

    def comm_bound(self) -> int:
        return 256 + 8 * 2 * len(self.directions) * max(1, self.v)

    def initial_state(self, pid: int, nprocs: int):
        rlo, rhi = share_bounds(len(self.red), nprocs, pid)
        blo, bhi = share_bounds(len(self.blue), nprocs, pid)
        return {
            "red": self.red[rlo:rhi],
            "blue": self.blue[blo:bhi],
            "verdicts": None,
        }

    def superstep(self, ctx: VPContext) -> None:
        st = ctx.state
        if ctx.step == 0:
            payload: list[float] = []
            for dx, dy in self.directions:
                rmax = max(
                    (p[0] * dx + p[1] * dy for p in st["red"]), default=float("-inf")
                )
                bmin = min(
                    (p[0] * dx + p[1] * dy for p in st["blue"]), default=float("inf")
                )
                payload.extend((rmax, bmin))
            ctx.charge(len(self.directions) * (len(st["red"]) + len(st["blue"])))
            ctx.send(0, payload)
        elif ctx.step == 1:
            if ctx.pid == 0:
                nd = len(self.directions)
                rmax = [float("-inf")] * nd
                bmin = [float("inf")] * nd
                for m in ctx.incoming:
                    for d in range(nd):
                        rmax[d] = max(rmax[d], m.payload[2 * d])
                        bmin[d] = min(bmin[d], m.payload[2 * d + 1])
                st["verdicts"] = [rmax[d] < bmin[d] for d in range(nd)]
                ctx.charge(nd * ctx.nprocs)
            ctx.vote_halt()

    def output(self, pid: int, state) -> list[bool]:
        return state["verdicts"] if state["verdicts"] is not None else []
