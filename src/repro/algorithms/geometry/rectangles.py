"""CGM area of the union of rectangles (Table 1, Group B).

Slab decomposition on the rectangles' x-extents: each rectangle is routed to
every slab its ``[x1, x2)`` interval intersects, each slab measures the
union area of its clipped rectangles with a local sweep (coordinate-
compressed y-measure), and vp 0 sums the slab contributions — slabs are
disjoint x-strips, so the sum is exact.  ``lambda = O(1)``.

Replication of slab-spanning rectangles is the standard coarse-grained
treatment; the declared communication bound therefore scales with the
measured span factor (``duplication_factor``).
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ...bsp.program import VPContext
from .common import SlabAlgorithm

__all__ = ["CGMRectangleUnionArea", "union_area_sweep"]


def union_area_sweep(rects: Sequence[tuple[float, float, float, float]]) -> float:
    """Exact union area of axis-parallel rectangles (sequential sweep).

    Coordinate-compressed x-sweep maintaining covered y-measure; used both
    by the per-slab local phase and as the test oracle.
    """
    rects = [r for r in rects if r[0] < r[2] and r[1] < r[3]]
    if not rects:
        return 0.0
    events: list[tuple[float, int, float, float]] = []
    for x1, y1, x2, y2 in rects:
        events.append((x1, 1, y1, y2))
        events.append((x2, -1, y1, y2))
    events.sort()
    ys = sorted({r[1] for r in rects} | {r[3] for r in rects})
    cover = [0] * (len(ys) - 1)

    def measure() -> float:
        return sum(
            ys[i + 1] - ys[i] for i, c in enumerate(cover) if c > 0
        )

    area = 0.0
    prev_x = events[0][0]
    for x, delta, y1, y2 in events:
        area += (x - prev_x) * measure()
        prev_x = x
        lo = bisect.bisect_left(ys, y1)
        hi = bisect.bisect_left(ys, y2)
        for i in range(lo, hi):
            cover[i] += delta
    return area


class CGMRectangleUnionArea(SlabAlgorithm):
    """Area of the union of axis-parallel rectangles ``(x1, y1, x2, y2)``.

    Output 0 is the total area (a one-element list ``[area]``); other vps
    output empty lists.
    """

    LAMBDA = 5

    def __init__(self, rects: Sequence[tuple[float, float, float, float]], v: int):
        for x1, y1, x2, y2 in rects:
            if x1 > x2 or y1 > y2:
                raise ValueError(f"malformed rectangle {(x1, y1, x2, y2)}")
        super().__init__(list(rects), v)

    def xkey(self, item) -> float:
        return item[0]

    def duplication_factor(self) -> int:
        return self.v  # a rectangle may span every slab

    def slab_range(self, item, splitters, v) -> range:
        x1, _y1, x2, _y2 = item
        lo = bisect.bisect_right(splitters, x1)
        hi = bisect.bisect_left(splitters, x2)
        return range(lo, min(hi, v - 1) + 1)

    def process(self, ctx: VPContext, rel_step: int) -> None:
        st = ctx.state
        if rel_step == 0:
            split = st["splitters"]
            lo = split[ctx.pid - 1] if ctx.pid > 0 else float("-inf")
            hi = split[ctx.pid] if ctx.pid < len(split) else float("inf")
            clipped = [
                (max(x1, lo), y1, min(x2, hi), y2)
                for x1, y1, x2, y2 in st["slab"]
            ]
            area = union_area_sweep(clipped)
            ctx.charge(len(clipped) * max(1, max(len(clipped), 1).bit_length()))
            ctx.send(0, [area])
        elif rel_step == 1:
            if ctx.pid == 0:
                st["area"] = sum(m.payload[0] for m in ctx.incoming)
                ctx.charge(ctx.nprocs)
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return [state["area"]] if "area" in state else []
