"""CGM lower envelope of non-intersecting line segments (Table 1, Group B).

The *lower envelope* of a set of pairwise non-crossing segments maps every
x to the segment visible from ``y = -infinity``.  Slab decomposition: every
segment is routed to each x-slab it crosses, every slab computes its local
envelope with a plane sweep (non-crossing segments admit a consistent
order-by-y-at-current-x), and vp 0 concatenates the slab envelopes — slabs
partition the x-axis, so concatenation in slab order is the global answer.
``lambda = O(1)``.

Output: a list of envelope pieces ``(x_from, x_to, segment_index)`` sorted
by ``x_from`` with maximal pieces (adjacent pieces of the same segment are
merged); gaps (no segment overhead) are simply absent from the list.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ...bsp.program import VPContext
from .common import SlabAlgorithm

__all__ = ["CGMLowerEnvelope", "envelope_sweep"]

Segment = tuple[float, float, float, float]  # x1, y1, x2, y2 with x1 <= x2


def _y_at(seg: Segment, x: float) -> float:
    x1, y1, x2, y2 = seg
    if x2 == x1:
        return min(y1, y2)
    t = (x - x1) / (x2 - x1)
    return y1 + t * (y2 - y1)


def envelope_sweep(
    segments: Sequence[tuple[int, Segment]],
    lo: float = float("-inf"),
    hi: float = float("inf"),
) -> list[tuple[float, float, int]]:
    """Lower envelope of (id, segment) pairs restricted to ``[lo, hi]``.

    Sequential sweep over endpoint events; ``O((k log k + k^2)`` in the
    worst case via linear minimum scans — the per-slab subproblems are
    small, and this also serves as the test oracle.
    """
    events: list[float] = []
    clipped: list[tuple[int, Segment]] = []
    for sid, (x1, y1, x2, y2) in segments:
        a, b = max(x1, lo), min(x2, hi)
        if a > b:
            continue
        clipped.append((sid, (x1, y1, x2, y2)))
        events.extend((a, b))
    if not clipped:
        return []
    xs = sorted(set(events))
    pieces: list[tuple[float, float, int]] = []
    for xa, xb in zip(xs, xs[1:]):
        xm = (xa + xb) / 2
        best = None
        for sid, seg in clipped:
            if seg[0] <= xm <= seg[2]:
                y = _y_at(seg, xm)
                if best is None or y < best[0]:
                    best = (y, sid)
        if best is not None:
            if pieces and pieces[-1][2] == best[1] and pieces[-1][1] == xa:
                pieces[-1] = (pieces[-1][0], xb, best[1])
            else:
                pieces.append((xa, xb, best[1]))
    return pieces


class CGMLowerEnvelope(SlabAlgorithm):
    """Lower envelope of non-crossing segments ``(x1, y1, x2, y2)``.

    Output 0 is the piece list ``(x_from, x_to, segment_index)``; other vps
    output empty lists.
    """

    LAMBDA = 5

    def __init__(self, segments: Sequence[Segment], v: int):
        for x1, _y1, x2, _y2 in segments:
            if x1 > x2:
                raise ValueError("segments must satisfy x1 <= x2")
        items = [(i, tuple(s)) for i, s in enumerate(segments)]
        super().__init__(items, v)

    def xkey(self, item) -> float:
        return item[1][0]

    def duplication_factor(self) -> int:
        return self.v  # a segment may span every slab

    def slab_range(self, item, splitters, v) -> range:
        _sid, (x1, _y1, x2, _y2) = item
        lo = bisect.bisect_right(splitters, x1)
        hi = bisect.bisect_left(splitters, x2)
        return range(lo, min(hi, v - 1) + 1)

    def process(self, ctx: VPContext, rel_step: int) -> None:
        st = ctx.state
        if rel_step == 0:
            split = st["splitters"]
            lo = split[ctx.pid - 1] if ctx.pid > 0 else float("-inf")
            hi = split[ctx.pid] if ctx.pid < len(split) else float("inf")
            pieces = envelope_sweep(st["slab"], lo, hi)
            ctx.charge(len(st["slab"]) * max(1, max(len(st["slab"]), 1).bit_length()))
            ctx.send(0, ["E", ctx.pid] + [c for p in pieces for c in p])
        elif rel_step == 1:
            if ctx.pid == 0:
                by_slab: dict[int, list[tuple[float, float, int]]] = {}
                for m in ctx.incoming:
                    it = iter(m.payload)
                    tag = next(it)
                    assert tag == "E"
                    slab = next(it)
                    ps = []
                    for xa in it:
                        ps.append((xa, next(it), int(next(it))))
                    by_slab[slab] = ps
                merged: list[tuple[float, float, int]] = []
                for slab in sorted(by_slab):
                    for xa, xb, sid in by_slab[slab]:
                        if merged and merged[-1][2] == sid and merged[-1][1] == xa:
                            merged[-1] = (merged[-1][0], xb, sid)
                        else:
                            merged.append((xa, xb, sid))
                st["envelope"] = merged
                ctx.charge(len(merged))
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state.get("envelope", [])
