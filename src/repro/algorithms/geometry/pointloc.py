"""CGM next-element search / batched planar point location (Table 1, Group B).

*Next element search on line segments*: given non-crossing segments and
query points, find for each query the first segment hit by an upward
vertical ray.  This primitive drives trapezoidal decomposition, polygon
triangulation, and batched planar point location (locating a point in the
subdivision induced by the segments), which the paper's Table 1 groups into
neighbouring rows.

Slab decomposition: segments are routed to every slab they cross, queries to
the slab containing their x; each slab answers its queries locally — the
segments crossing a vertical line are totally ordered by y (non-crossing),
so evaluation at the query's x plus a minimum scan suffices.
``lambda = O(1)``.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ...bsp.collectives import owner_of_index
from ...bsp.program import VPContext
from .common import SlabAlgorithm
from .envelope import _y_at

__all__ = ["CGMNextElementSearch"]

Segment = tuple[float, float, float, float]


class CGMNextElementSearch(SlabAlgorithm):
    """For each query point, the segment immediately above it (or ``None``).

    Parameters
    ----------
    segments:
        Non-crossing segments ``(x1, y1, x2, y2)`` with ``x1 <= x2``.
    queries:
        Query points ``(x, y)``.
    v:
        Number of virtual processors.

    Output ``j`` holds ``(query_index, segment_index_or_-1)`` pairs for the
    queries whose indices fall in vp ``j``'s block share.
    """

    LAMBDA = 5

    def __init__(
        self,
        segments: Sequence[Segment],
        queries: Sequence[tuple[float, float]],
        v: int,
    ):
        for x1, _y1, x2, _y2 in segments:
            if x1 > x2:
                raise ValueError("segments must satisfy x1 <= x2")
        items = [("s", i, tuple(s)) for i, s in enumerate(segments)] + [
            ("q", i, tuple(q)) for i, q in enumerate(queries)
        ]
        super().__init__(items, v)
        self.nqueries = len(queries)

    def xkey(self, item) -> float:
        kind, _i, obj = item
        return obj[0]

    def duplication_factor(self) -> int:
        return self.v

    def slab_range(self, item, splitters, v) -> range:
        kind, _i, obj = item
        if kind == "q":
            j = bisect.bisect_right(splitters, obj[0])
            return range(j, j + 1)
        x1, _y1, x2, _y2 = obj
        lo = bisect.bisect_right(splitters, x1)
        hi = bisect.bisect_right(splitters, x2)
        return range(lo, min(hi, v - 1) + 1)

    def process(self, ctx: VPContext, rel_step: int) -> None:
        st = ctx.state
        if rel_step == 0:
            segs = [(i, obj) for kind, i, obj in st["slab"] if kind == "s"]
            queries = [(i, obj) for kind, i, obj in st["slab"] if kind == "q"]
            results: dict[int, list] = {}
            for qi, (qx, qy) in queries:
                best_y, best_sid = float("inf"), -1
                for sid, seg in segs:
                    if seg[0] <= qx <= seg[2]:
                        y = _y_at(seg, qx)
                        if qy <= y < best_y:
                            best_y, best_sid = y, sid
                home = owner_of_index(qi, self.nqueries, ctx.nprocs)
                results.setdefault(home, []).extend((qi, best_sid))
            ctx.charge(len(queries) * max(1, max(len(segs), 1).bit_length()))
            ctx.send_all(results)
        elif rel_step == 1:
            got = []
            for m in ctx.incoming:
                it = iter(m.payload)
                for qi in it:
                    got.append((qi, next(it)))
            st["answers"] = sorted(got)
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state.get("answers", [])
