"""CGM 2D all-nearest-neighbors (Table 1, Group B).

For every input point, find the closest other input point.  Two-phase
coarse-grained strategy:

1. **Local candidates** — points are routed into x-slabs; each slab computes
   every point's nearest neighbour *within the slab*, giving an upper bound
   ``r_p`` on the true nearest-neighbour distance.
2. **Windowed verification** — the true nearest neighbour of ``p`` lies
   within ``r_p``, hence inside a slab intersecting ``[x_p - r_p, x_p +
   r_p]``.  Each point is sent to exactly those slabs (one h-relation); they
   answer with their best local candidate, and the point's home vp takes
   the minimum.

``lambda = O(1)`` rounds.  For inputs with balanced slab occupancy the
duplication stays O(1) per point whp; a slab holding a single point
degenerates to querying all slabs (still correct, costlier).
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

from ...bsp.collectives import owner_of_index
from ...bsp.program import VPContext
from .common import SlabAlgorithm

__all__ = ["CGMAllNearestNeighbors"]


def _d2(a, b) -> float:
    return (a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2


class CGMAllNearestNeighbors(SlabAlgorithm):
    """Nearest neighbour of every point of a 2D set (n >= 2).

    Output ``j`` holds ``(index, nn_index)`` pairs for the points whose
    indices fall in vp ``j``'s block share.
    """

    LAMBDA = 6

    def __init__(self, points: Sequence[tuple[float, float]], v: int):
        if len(points) < 2:
            raise ValueError("all-nearest-neighbors needs at least two points")
        items = [(i, tuple(p)) for i, p in enumerate(points)]
        super().__init__(items, v)

    def xkey(self, item) -> float:
        return item[1][0]

    def duplication_factor(self) -> int:
        return 4  # expected; degenerate slabs may exceed (declared headroom)

    def comm_bound(self) -> int:
        # Verification can fan out; budget generously.
        return 1024 + 16 * self.v * max(4, -(-self.n // self.v))

    def context_size(self) -> int:
        return 4096 + 32 * self.v * max(4, -(-self.n // self.v))

    def process(self, ctx: VPContext, rel_step: int) -> None:
        st = ctx.state
        if rel_step == 0:
            pts = st["slab"]
            split = st["splitters"]
            queries: dict[int, list] = {}
            home_msgs: dict[int, list] = {}
            for qi, (qx, qy) in pts:
                best_d2, best_id = math.inf, -1
                for oi, op in pts:
                    if oi != qi:
                        d = _d2((qx, qy), op)
                        if d < best_d2 or (d == best_d2 and oi < best_id):
                            best_d2, best_id = d, oi
                home = owner_of_index(qi, self.n, ctx.nprocs)
                home_msgs.setdefault(home, []).extend(("H", qi, best_d2, best_id))
                r = math.sqrt(best_d2) if best_d2 < math.inf else math.inf
                lo = 0 if r == math.inf else bisect.bisect_right(split, qx - r)
                hi = (
                    ctx.nprocs - 1
                    if r == math.inf
                    else bisect.bisect_right(split, qx + r)
                )
                for j in range(lo, min(hi, ctx.nprocs - 1) + 1):
                    if j != ctx.pid:
                        queries.setdefault(j, []).extend(("Q", qi, qx, qy))
            ctx.charge(len(pts) * len(pts))
            ctx.send_all(home_msgs)
            ctx.send_all(queries)
        elif rel_step == 1:
            # Answer remote queries; also bank candidates that arrived for
            # points whose home is this vp.
            st["best"] = {}
            replies: dict[int, list] = {}
            pts = st["slab"]
            for m in ctx.incoming:
                it = iter(m.payload)
                for tag in it:
                    if tag == "H":  # home candidate ("H", qi, d2, id)
                        qi, d2v, nid = next(it), next(it), next(it)
                        cur = st["best"].get(qi)
                        if cur is None or (d2v, nid) < cur:
                            st["best"][qi] = (d2v, nid)
                    else:  # remote query ("Q", qi, x, y)
                        qi, qx, qy = next(it), next(it), next(it)
                        best_d2, best_id = math.inf, -1
                        for oi, op in pts:
                            if oi != qi:
                                d = _d2((qx, qy), op)
                                if d < best_d2 or (d == best_d2 and oi < best_id):
                                    best_d2, best_id = d, oi
                        home = owner_of_index(qi, self.n, ctx.nprocs)
                        replies.setdefault(home, []).extend((qi, best_d2, best_id))
            ctx.charge(sum(len(m.payload) for m in ctx.incoming) * max(1, len(pts)))
            ctx.send_all(replies)
        elif rel_step == 2:
            for m in ctx.incoming:
                it = iter(m.payload)
                for qi in it:
                    d2v, nid = next(it), next(it)
                    cur = st["best"].get(qi)
                    if cur is None or (d2v, nid) < cur:
                        st["best"][qi] = (d2v, nid)
            st["result"] = sorted((qi, nid) for qi, (_d, nid) in st["best"].items())
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state.get("result", [])
