"""CGM 3D maxima (Table 1, Group B, "3D-maxima" row).

A point ``p`` is *maximal* if no other point exceeds it in all three
coordinates.  Slab decomposition by x:

* each slab vp computes the 2D staircase (maximal ``(y, z)`` pairs) of its
  points and ships it to vp 0;
* vp 0 forms, for every slab ``i``, the merged staircase of all slabs to its
  *right* (larger x) and returns it — one h-relation each way;
* each slab filters its points against (a) the right-suffix staircase and
  (b) an in-slab descending-x sweep.

``lambda = O(1)`` rounds.  Distinct x-coordinates across slabs are assumed
(guaranteed by the workload generators; ties inside a slab are handled by
the exact in-slab sweep).
"""

from __future__ import annotations

from typing import Sequence

from ...bsp.collectives import owner_of_index
from ...bsp.program import VPContext
from .common import SlabAlgorithm, staircase_2d

__all__ = ["CGM3DMaxima"]


def _dominated_yz(q: tuple[float, float], stair: list[tuple[float, float]]) -> bool:
    """True if some staircase point strictly dominates ``q`` in (y, z).

    ``stair`` is sorted by decreasing y / increasing z (see
    :func:`staircase_2d`); binary search on y then one z comparison.
    """
    import bisect

    if not stair:
        return False
    ys = [-s[0] for s in stair]  # increasing
    # candidates with y > q.y are a prefix of `stair`; the one with max z is last.
    idx = bisect.bisect_left(ys, -q[0])  # first with y <= q.y
    if idx == 0:
        return False
    return max(s[1] for s in stair[:idx]) > q[1]


class CGM3DMaxima(SlabAlgorithm):
    """Compute the maximal points of a 3D point set.

    Output ``j`` is the sorted list of maximal points that landed in slab
    ``j``; the union over vps is the full answer.
    """

    LAMBDA = 6

    def __init__(self, points: Sequence[tuple[float, float, float]], v: int):
        super().__init__(points, v)

    def xkey(self, item) -> float:
        return item[0]

    def process(self, ctx: VPContext, rel_step: int) -> None:
        st = ctx.state
        if rel_step == 0:
            stair = staircase_2d([(p[1], p[2]) for p in st["slab"]])
            ctx.charge(len(st["slab"]) * max(1, len(st["slab"]).bit_length()))
            ctx.send(0, ["S", ctx.pid] + [c for s in stair for c in s])
        elif rel_step == 1:
            if ctx.pid == 0:
                stairs: dict[int, list[tuple[float, float]]] = {}
                for m in ctx.incoming:
                    it = iter(m.payload)
                    tag = next(it)
                    assert tag == "S"
                    slab = next(it)
                    pts = []
                    for y in it:
                        pts.append((y, next(it)))
                    stairs[slab] = pts
                # Right-suffix staircases: slab i gets merge of slabs > i.
                suffix: list[tuple[float, float]] = []
                for slab in range(ctx.nprocs - 1, -1, -1):
                    ctx.send(slab, [c for s in suffix for c in s])
                    suffix = staircase_2d(suffix + stairs.get(slab, []))
                    ctx.charge(len(suffix))
        elif rel_step == 2:
            it = iter(ctx.incoming[0].payload)
            suffix = []
            for y in it:
                suffix.append((y, next(it)))
            result = []
            stair: list[tuple[float, float]] = []
            # In-slab sweep by descending x, whole equal-x groups at a time
            # (points sharing an x-coordinate cannot dominate each other).
            ordered = sorted(st["slab"], key=lambda q: -q[0])
            i = 0
            while i < len(ordered):
                j = i
                while j < len(ordered) and ordered[j][0] == ordered[i][0]:
                    j += 1
                group = ordered[i:j]
                for p in group:
                    yz = (p[1], p[2])
                    if not _dominated_yz(yz, stair) and not _dominated_yz(yz, suffix):
                        result.append(p)
                stair = staircase_2d(stair + [(p[1], p[2]) for p in group])
                i = j
            ctx.charge(len(st["slab"]) * max(1, len(st["slab"]).bit_length()))
            st["maxima"] = sorted(result)
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state.get("maxima", [])
