"""Group B of Table 1: CGM computational-geometry algorithms (``lambda = O(1)``).

All are built on the slab-decomposition skeleton of
:class:`~repro.algorithms.geometry.common.SlabAlgorithm`:

* :class:`CGMConvexHull` — 2D convex hull (stand-in for the 3D hull /
  Voronoi row; see DESIGN.md substitutions).
* :class:`CGM3DMaxima` — 3D maximal points.
* :class:`CGMDominanceCounting` — 2D weighted dominance counting.
* :class:`CGMRectangleUnionArea` — area of a union of rectangles.
* :class:`CGMLowerEnvelope` — lower envelope of non-crossing segments.
* :class:`CGMAllNearestNeighbors` — 2D all nearest neighbours.
* :class:`CGMNextElementSearch` — next element search / batched planar
  point location; :func:`trapezoidal_decomposition` and the
  :func:`triangulate_polygon` kernel build on it.
* :class:`CGMSeparability` — uni-/multi-directional separability.
* :class:`CGMDelaunay` / :class:`CGM3DConvexHull` — the full
  "3D convex hull / Voronoi / Delaunay" row, on from-scratch kernels.
* :class:`CGMGeneralLowerEnvelope` — crossing segments (Davenport–Schinzel).
* :class:`CGMSegmentTreeStab` — distributed segment tree + batched stabbing.
"""

from .common import SlabAlgorithm, convex_hull, staircase_2d
from .delaunay import CGMDelaunay, voronoi_edges
from .dominance import CGMDominanceCounting
from .triangulate import circumcircle, delaunay_triangulation
from .envelope import CGMLowerEnvelope, envelope_sweep
from .genenvelope import CGMGeneralLowerEnvelope, envelope_of_segments
from .hull import CGMConvexHull
from .hull3d import CGM3DConvexHull, convex_hull_3d, hull_vertices_3d
from .maxima import CGM3DMaxima
from .nearest import CGMAllNearestNeighbors
from .pointloc import CGMNextElementSearch
from .rectangles import CGMRectangleUnionArea, union_area_sweep
from .segtree import CGMSegmentTreeStab, SegmentTree
from .separability import CGMSeparability
from .trapezoid import trapezoidal_decomposition, triangulate_polygon

__all__ = [
    "SlabAlgorithm",
    "convex_hull",
    "staircase_2d",
    "envelope_sweep",
    "union_area_sweep",
    "CGMConvexHull",
    "CGM3DConvexHull",
    "convex_hull_3d",
    "hull_vertices_3d",
    "CGMDelaunay",
    "voronoi_edges",
    "circumcircle",
    "delaunay_triangulation",
    "CGM3DMaxima",
    "CGMDominanceCounting",
    "CGMRectangleUnionArea",
    "CGMLowerEnvelope",
    "CGMGeneralLowerEnvelope",
    "envelope_of_segments",
    "CGMAllNearestNeighbors",
    "CGMNextElementSearch",
    "CGMSeparability",
    "CGMSegmentTreeStab",
    "SegmentTree",
    "trapezoidal_decomposition",
    "triangulate_polygon",
]
