"""CGM Delaunay triangulation (Table 1, Group B, "2D Voronoi diagram /
Delaunay triangulation" row).

Certified-star slab algorithm with DeWall-style wall treatment: points are
routed into x-slabs and each slab triangulates the points it holds.  The
*star* of an owned point is correct once

* every incident local triangle's circumcircle lies within the slab's
  **known interval** (the x-range for which the slab provably holds every
  input point) — interior certification; uncertified circles trigger
  interval point-fetches, exactly like the all-nearest-neighbours window;
* every incident local convex-hull edge is confirmed to be a *global* hull
  edge — or acquires its true Delaunay mate by a distributed gift-wrapping
  step: all slabs are asked for their best candidate beyond the edge
  (maximum subtended angle = minimum circumcircle), and the global best is
  added to the local set.

The loop re-triangulates whenever new points arrive and terminates on a
globally quiet round (no pending circles, no fetched points — a vote via
vp 0 per round, like the list-ranking control loop).  A triangle is output
by the owner of its leftmost vertex (ties by index), so the union over
slabs covers the triangulation with each triangle exactly once.

For uniformly distributed points the circles are small and the hull mates
resolve in one or two rounds whp — ``lambda = O(1)`` h-relations, the
Group B row; widely separated clusters degrade gracefully (one gift-wrap
mate per wall edge per round).  The Voronoi diagram is the planar dual
(:func:`voronoi_edges`).
"""

from __future__ import annotations

import math
from typing import Sequence

from ...bsp.program import VPContext
from .common import SlabAlgorithm, cross
from .triangulate import circumcircle, delaunay_triangulation

__all__ = ["CGMDelaunay", "voronoi_edges"]

INF = float("inf")


def _mate_key(u, w, z) -> tuple:
    """Gift-wrap ordering for candidates ``z`` beyond edge ``(u, w)``:
    the mate maximizes the subtended angle, i.e. minimizes its cosine."""
    ux, uy = u[0] - z[0], u[1] - z[1]
    wx, wy = w[0] - z[0], w[1] - z[1]
    nu = math.hypot(ux, uy)
    nw = math.hypot(wx, wy)
    if nu == 0 or nw == 0:  # pragma: no cover - duplicate guard upstream
        return (INF,)
    return ((ux * wx + uy * wy) / (nu * nw),)


class CGMDelaunay(SlabAlgorithm):
    """Delaunay triangulation of a 2D point set in general position.

    Output ``j`` is the sorted list of triangles (original-index triples)
    whose leftmost vertices are owned by slab ``j``; the union over vps is
    the full triangulation.
    """

    def __init__(self, points: Sequence[tuple[float, float]], v: int):
        items = [(i, tuple(p)) for i, p in enumerate(points)]
        super().__init__(items, v)

    def xkey(self, item) -> float:
        return item[1][0]

    def comm_bound(self) -> int:
        return 2048 + 16 * self.v * max(8, -(-self.n // self.v))

    def context_size(self) -> int:
        return 8192 + 64 * self.v * max(8, -(-self.n // self.v))

    # -- local geometry ---------------------------------------------------------------

    def _retriangulate(self, ctx: VPContext):
        """Local DT; returns (interval need, hull-edge mate queries)."""
        st = ctx.state
        pts = st["points"]  # {idx: (x, y)}
        own = st["ownpts"]
        idxs = sorted(pts)
        coords = [pts[i] for i in idxs]
        local = delaunay_triangulation(coords) if len(coords) >= 3 else []
        ctx.charge(len(coords) ** 2)
        klo, khi = st["known"]
        mine = []
        need = (INF, -INF)
        edge_tris: dict[tuple[int, int], list] = {}
        for a, b, c in local:
            ga, gb, gc = idxs[a], idxs[b], idxs[c]
            for e in ((a, b), (b, c), (a, c)):
                edge_tris.setdefault((min(e), max(e)), []).append((a, b, c))
            if not any(g in own for g in (ga, gb, gc)):
                continue  # no owned vertex: another slab certifies this star
            ux, _uy, r2 = circumcircle(coords[a], coords[b], coords[c])
            r = math.sqrt(r2)
            if klo <= ux - r and ux + r <= khi:
                leftmost = min((ga, gb, gc), key=lambda g: (pts[g][0], g))
                if leftmost in own:
                    mine.append(tuple(sorted((ga, gb, gc))))
            else:
                need = (min(need[0], ux - r), max(need[1], ux + r))
        st["certified"] = sorted(set(mine))
        # Local convex-hull edges (used by exactly one triangle) incident to
        # an owned vertex: gift-wrap queries with an inner-side witness.
        queries = []
        if len(coords) == 2 and any(i in own for i in idxs):
            # Degenerate two-point hull: one "edge", no witness side —
            # query both sides via a synthetic witness.
            (i, j) = (0, 1)
            queries.append((idxs[i], idxs[j], None))
        for (a, b), tris_ in edge_tris.items():
            if len(tris_) != 1:
                continue
            ga, gb = idxs[a], idxs[b]
            if ga not in own and gb not in own:
                continue
            (t,) = tris_
            third = next(x for x in t if x not in (a, b))
            queries.append((ga, gb, idxs[third]))
        return need, queries

    # -- the iterative certification loop ----------------------------------------------

    def _own_interval(self, ctx: VPContext) -> tuple[float, float]:
        split = ctx.state["splitters"]
        lo = split[ctx.pid - 1] if ctx.pid > 0 else -INF
        hi = split[ctx.pid] if ctx.pid < len(split) else INF
        return lo, hi

    def process(self, ctx: VPContext, rel_step: int) -> None:
        st = ctx.state
        v = ctx.nprocs
        phase = rel_step % 3
        if rel_step == 0:
            st["own"] = self._own_interval(ctx)
            st["known"] = st["own"]
            st["points"] = {idx: p for idx, p in st["slab"]}
            st["ownpts"] = dict(st["points"])
            st["dirty"] = True
        if phase == 0:
            # A: (re)triangulate when dirty; emit interval fetches and
            # gift-wrap queries; report pending to vp 0.
            if st["dirty"]:
                need, queries = self._retriangulate(ctx)
                st["want"] = need
                split = st["splitters"]
                pending = 1 if (need[0] <= need[1] or queries) else 0
                if need[0] <= need[1]:
                    import bisect

                    jlo = bisect.bisect_left(split, need[0])
                    jhi = bisect.bisect_right(split, need[1])
                    for j in range(jlo, min(jhi, v - 1) + 1):
                        if j != ctx.pid:
                            ctx.send(j, ["R", ctx.pid, need[0], need[1]])
                if queries:
                    payload = ["W", ctx.pid]
                    pts = st["points"]
                    for ga, gb, gt in queries:
                        tx, ty = pts[gt] if gt is not None else (INF, INF)
                        payload.extend(
                            (ga, *pts[ga], gb, *pts[gb], tx, ty)
                        )
                    for j in range(v):
                        if j != ctx.pid:
                            ctx.send(j, payload)
            else:
                st["want"] = (INF, -INF)
                pending = 0
            ctx.send(0, ["N", pending])
        elif phase == 1:
            # B: answer interval and gift-wrap queries; vp 0 tallies.
            total_pending = 0
            for m in ctx.incoming:
                it = iter(m.payload)
                for tag in it:
                    if tag == "R":
                        who, xlo, xhi = next(it), next(it), next(it)
                        payload = ["P"]
                        for idx, (x, y) in sorted(st["ownpts"].items()):
                            if xlo <= x <= xhi:
                                payload.extend((idx, x, y))
                        if len(payload) > 1:
                            ctx.send(who, payload)
                    elif tag == "W":
                        who = next(it)
                        reply = ["P"]
                        while True:
                            try:
                                ga = next(it)
                            except StopIteration:
                                break
                            u = (next(it), next(it))
                            gb = next(it)
                            w = (next(it), next(it))
                            tx, ty = next(it), next(it)
                            best = None
                            for idx, z in st["ownpts"].items():
                                if idx in (ga, gb):
                                    continue
                                s = cross(u, w, z)
                                if tx != INF:
                                    s_in = cross(u, w, (tx, ty))
                                    if s * s_in >= 0:
                                        continue  # not strictly on the outer side
                                elif s == 0:
                                    continue
                                key = _mate_key(u, w, z)
                                if best is None or key < best[0]:
                                    best = (key, idx, z)
                            if best is not None:
                                reply.extend((best[1], best[2][0], best[2][1]))
                        if len(reply) > 1:
                            ctx.send(who, reply)
                    elif tag == "N":
                        total_pending += next(it)
            ctx.charge(len(st["ownpts"]) * 4)
            if ctx.pid == 0:
                decision = "D" if total_pending == 0 else "C"
                for dest in range(v):
                    ctx.send(dest, ["X", decision])
        else:
            # C: absorb fetched points, update dirtiness, loop or halt.
            decision = None
            added = 0
            for m in ctx.incoming:
                it = iter(m.payload)
                for tag in it:
                    if tag == "P":
                        for idx in it:
                            x, y = next(it), next(it)
                            if idx not in st["points"]:
                                added += 1
                            st["points"][idx] = (x, y)
                    elif tag == "X":
                        decision = next(it)
            if decision == "D":
                ctx.vote_halt()
                return
            want = st["want"]
            known_before = st["known"]
            if want[0] <= want[1]:
                st["known"] = (
                    min(st["known"][0], want[0]),
                    max(st["known"][1], want[1]),
                )
                if ctx.pid == 0:
                    st["known"] = (-INF, st["known"][1])
                if ctx.pid == v - 1:
                    st["known"] = (st["known"][0], INF)
            # Re-triangulate if points arrived OR the known interval grew
            # (previously uncertified circles may certify now).
            st["dirty"] = added > 0 or st["known"] != known_before

    def output(self, pid: int, state) -> list:
        return state.get("certified", [])


def voronoi_edges(
    points: Sequence[tuple[float, float]],
    triangles: Sequence[tuple[int, int, int]],
) -> list[tuple[tuple[float, float], tuple[float, float]]]:
    """Finite Voronoi edges: segments joining circumcenters of triangles
    sharing an edge (the planar dual of the Delaunay triangulation)."""
    centers = {}
    by_edge: dict[tuple[int, int], list] = {}
    for t in triangles:
        a, b, c = t
        ux, uy, _ = circumcircle(points[a], points[b], points[c])
        centers[t] = (ux, uy)
        for e in ((a, b), (b, c), (a, c)):
            by_edge.setdefault((min(e), max(e)), []).append(t)
    out = []
    for e, ts in sorted(by_edge.items()):
        if len(ts) == 2:
            out.append((centers[ts[0]], centers[ts[1]]))
    return out
