"""Generalized lower envelope of (possibly intersecting) segments
(Table 1, Group B, "Generalized lower envelope of line segments").

Unlike :class:`~repro.algorithms.geometry.envelope.CGMLowerEnvelope`, the
segments may cross, so the envelope changes not only at endpoints but at
intersection points; its complexity is the Davenport–Schinzel bound
``O(n·alpha(n))`` the table row quotes.  The sequential kernel is the
classical divide-and-conquer **envelope merge**: an envelope is a list of
linear pieces; merging two envelopes sweeps their combined breakpoints and
inserts the crossing point inside any interval where the winner flips.

The CGM algorithm reuses the slab decomposition: segments are replicated to
the slabs they cross, each slab merges its segments' envelopes locally
(slabs are x-disjoint, so local envelopes concatenate exactly), and vp 0
stitches.  ``lambda = O(1)``.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ...bsp.program import VPContext
from .common import SlabAlgorithm

__all__ = ["CGMGeneralLowerEnvelope", "envelope_of_segments"]

Segment = tuple[float, float, float, float]  # x1, y1, x2, y2 with x1 <= x2
Piece = tuple[float, float, int]  # x_from, x_to, segment id
INF = float("inf")


def _line(seg: Segment) -> tuple[float, float]:
    """Slope/intercept of the segment's supporting line (vertical rejected)."""
    x1, y1, x2, y2 = seg
    if x2 == x1:
        raise ValueError("vertical segments are not supported")
    m = (y2 - y1) / (x2 - x1)
    return m, y1 - m * x1


def _eval(seg: Segment, x: float) -> float:
    m, c = _line(seg)
    return m * x + c


def _merge(
    a: list[Piece], b: list[Piece], segs: Sequence[Segment]
) -> list[Piece]:
    """Merge two lower envelopes (piece lists sorted by x, non-overlapping)."""
    events = sorted(
        {p[0] for p in a} | {p[1] for p in a} | {p[0] for p in b} | {p[1] for p in b}
    )
    out: list[Piece] = []

    def piece_at(pieces: list[Piece], x: float) -> int:
        # The piece covering [x, next-event); pieces are sorted and disjoint.
        i = bisect.bisect_right([p[0] for p in pieces], x) - 1
        if 0 <= i < len(pieces) and pieces[i][0] <= x < pieces[i][1]:
            return pieces[i][2]
        return -1

    def emit(xa: float, xb: float, sid: int) -> None:
        if xb <= xa or sid < 0:
            return
        if out and out[-1][2] == sid and out[-1][1] == xa:
            out[-1] = (out[-1][0], xb, sid)
        else:
            out.append((xa, xb, sid))

    for xa, xb in zip(events, events[1:]):
        sa = piece_at(a, xa)
        sb = piece_at(b, xa)
        if sa < 0 and sb < 0:
            continue
        if sa < 0 or sb < 0:
            emit(xa, xb, sa if sa >= 0 else sb)
            continue
        ma, ca = _line(segs[sa])
        mb, cb = _line(segs[sb])
        ya_l, yb_l = ma * xa + ca, mb * xa + cb
        ya_r, yb_r = ma * xb + ca, mb * xb + cb
        # Winner at each end by y (ties by slope so the continuation wins).
        left = sa if ya_l < yb_l or (ya_l == yb_l and ma <= mb) else sb
        right = sa if ya_r < yb_r or (ya_r == yb_r and ma >= mb) else sb
        if left == right:
            emit(xa, xb, left)
        else:
            # One crossing inside (linear pieces): x* = (cb-ca)/(ma-mb).
            xcross = (cb - ca) / (ma - mb)
            xcross = min(max(xcross, xa), xb)
            emit(xa, xcross, left)
            emit(xcross, xb, right)
    return out


def envelope_of_segments(
    segments: Sequence[tuple[int, Segment]],
    all_segs: Sequence[Segment],
    lo: float = -INF,
    hi: float = INF,
) -> list[Piece]:
    """Lower envelope of ``(id, segment)`` pairs clipped to ``[lo, hi]``,
    by divide-and-conquer envelope merging (handles crossings exactly)."""
    base: list[list[Piece]] = []
    for sid, (x1, y1, x2, y2) in segments:
        a, b = max(x1, lo), min(x2, hi)
        if a < b:
            base.append([(a, b, sid)])
    if not base:
        return []
    while len(base) > 1:
        nxt = []
        for i in range(0, len(base) - 1, 2):
            nxt.append(_merge(base[i], base[i + 1], all_segs))
        if len(base) % 2:
            nxt.append(base[-1])
        base = nxt
    return base[0]


class CGMGeneralLowerEnvelope(SlabAlgorithm):
    """Lower envelope of possibly-crossing, non-vertical segments.

    Output 0 is the piece list ``(x_from, x_to, segment_index)``; other vps
    output empty lists.
    """

    LAMBDA = 5

    def __init__(self, segments: Sequence[Segment], v: int):
        for x1, _y1, x2, _y2 in segments:
            if x1 >= x2:
                raise ValueError("segments must satisfy x1 < x2 (no verticals)")
        items = [(i, tuple(s)) for i, s in enumerate(segments)]
        super().__init__(items, v)
        self.segments = [tuple(s) for s in segments]

    def xkey(self, item) -> float:
        return item[1][0]

    def duplication_factor(self) -> int:
        return self.v

    def slab_range(self, item, splitters, v) -> range:
        _sid, (x1, _y1, x2, _y2) = item
        lo = bisect.bisect_right(splitters, x1)
        hi = bisect.bisect_left(splitters, x2)
        return range(lo, min(hi, v - 1) + 1)

    def process(self, ctx: VPContext, rel_step: int) -> None:
        st = ctx.state
        if rel_step == 0:
            split = st["splitters"]
            lo = split[ctx.pid - 1] if ctx.pid > 0 else -INF
            hi = split[ctx.pid] if ctx.pid < len(split) else INF
            pieces = envelope_of_segments(st["slab"], self.segments, lo, hi)
            k = max(len(st["slab"]), 1)
            ctx.charge(len(st["slab"]) * max(1, k.bit_length()) * 4)
            ctx.send(0, ["E", ctx.pid] + [c for p in pieces for c in p])
        elif rel_step == 1:
            if ctx.pid == 0:
                by_slab: dict[int, list[Piece]] = {}
                for m in ctx.incoming:
                    it = iter(m.payload)
                    tag = next(it)
                    assert tag == "E"
                    slab = next(it)
                    ps = []
                    for xa in it:
                        ps.append((xa, next(it), int(next(it))))
                    by_slab[slab] = ps
                merged: list[Piece] = []
                for slab in sorted(by_slab):
                    for xa, xb, sid in by_slab[slab]:
                        if merged and merged[-1][2] == sid and abs(
                            merged[-1][1] - xa
                        ) < 1e-12:
                            merged[-1] = (merged[-1][0], xb, sid)
                        else:
                            merged.append((xa, xb, sid))
                st["envelope"] = merged
                ctx.charge(len(merged))
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state.get("envelope", [])
