"""Sequential Delaunay kernel: Bowyer–Watson with a super-triangle.

Used inside the virtual processors of
:class:`~repro.algorithms.geometry.delaunay.CGMDelaunay` (and as a test
oracle cross-check against ``scipy.spatial``).  Points are expected in
general position (no 4 cocircular, no 3 collinear on the hull) — the
workload generators guarantee distinct coordinates and random placement.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["circumcircle", "delaunay_triangulation"]


def circumcircle(
    a: Sequence[float], b: Sequence[float], c: Sequence[float]
) -> tuple[float, float, float]:
    """Circumcenter (x, y) and squared radius of triangle ``abc``.

    Raises :class:`ValueError` for (near-)collinear points.
    """
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if abs(d) < 1e-12 * max(1.0, abs(ax) + abs(bx) + abs(cx)) ** 2:
        raise ValueError(f"collinear points {a}, {b}, {c}")
    a2 = ax * ax + ay * ay
    b2 = bx * bx + by * by
    c2 = cx * cx + cy * cy
    ux = (a2 * (by - cy) + b2 * (cy - ay) + c2 * (ay - by)) / d
    uy = (a2 * (cx - bx) + b2 * (ax - cx) + c2 * (bx - ax)) / d
    r2 = (ax - ux) ** 2 + (ay - uy) ** 2
    return ux, uy, r2


def delaunay_triangulation(
    points: Sequence[tuple[float, float]],
) -> list[tuple[int, int, int]]:
    """Delaunay triangles of ``points`` as sorted index triples.

    Classic Bowyer–Watson: insert points into a super-triangle one at a
    time, deleting every triangle whose circumcircle contains the new point
    and re-triangulating the star-shaped cavity.  ``O(n^2)`` worst case —
    the per-slab subproblems of the CGM algorithm are small.
    """
    n = len(points)
    if n < 3:
        return []
    if len({tuple(p) for p in points}) != n:
        raise ValueError("duplicate points")

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    cx, cy = (min(xs) + max(xs)) / 2, (min(ys) + max(ys)) / 2
    span = max(max(xs) - min(xs), max(ys) - min(ys), 1.0)
    # Super-triangle vertices, far enough to contain every circumcircle.
    sup = [
        (cx - 30 * span, cy - 10 * span),
        (cx + 30 * span, cy - 10 * span),
        (cx, cy + 30 * span),
    ]
    pts = [tuple(p) for p in points] + sup
    s0, s1, s2 = n, n + 1, n + 2

    # triangle -> circumcircle cache
    tris: dict[tuple[int, int, int], tuple[float, float, float]] = {}

    def add_tri(i: int, j: int, k: int) -> None:
        key = tuple(sorted((i, j, k)))
        tris[key] = circumcircle(pts[i], pts[j], pts[k])

    add_tri(s0, s1, s2)

    for pi in range(n):
        px, py = pts[pi]
        bad = []
        for key, (ux, uy, r2) in tris.items():
            if (px - ux) ** 2 + (py - uy) ** 2 <= r2 * (1 + 1e-12):
                bad.append(key)
        # Boundary of the cavity: edges appearing in exactly one bad triangle.
        edge_count: dict[tuple[int, int], int] = {}
        for i, j, k in bad:
            for e in ((i, j), (j, k), (i, k)):
                e = (min(e), max(e))
                edge_count[e] = edge_count.get(e, 0) + 1
        for key in bad:
            del tris[key]
        for (i, j), cnt in edge_count.items():
            if cnt == 1:
                add_tri(i, j, pi)

    out = [
        key
        for key in tris
        if key[0] < n and key[1] < n and key[2] < n
    ]
    return sorted(out)
