"""CGM matrix transpose (Table 1, Group A, "Matrix transpose").

The ``r x c`` matrix is stored row-major and block-distributed: vp ``i``
holds rows of global entry range ``share_bounds(r*c, v, i)``.  Transposition
is a fixed permutation ``(row, col) -> (col, row)``; on a CGM it is one
``h``-relation in which each vp computes, for every local entry, the owner of
its transposed position and routes it there.  ``lambda = O(1)``.

A matrix-multiplication helper (:class:`CGMMatrixMultiply`) is included as an
extension: it is the classical CGM dense multiply with ``sqrt(v) x sqrt(v)``
processor grid flavour collapsed to a broadcast-free two-round exchange,
used by the examples.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..bsp.collectives import owner_of_index, share_bounds
from ..bsp.program import BSPAlgorithm, VPContext

__all__ = ["CGMMatrixTranspose"]


class CGMMatrixTranspose(BSPAlgorithm):
    """Transpose an ``r x c`` matrix given as row-major ``entries``.

    Output ``j`` is vp ``j``'s row-major slice of the ``c x r`` transpose;
    concatenation over vp ids yields the full transposed matrix.
    """

    LAMBDA = 2

    def __init__(self, entries: Sequence[Any], r: int, c: int, v: int):
        if len(entries) != r * c:
            raise ValueError(f"expected {r * c} entries, got {len(entries)}")
        self.entries = list(entries)
        self.r = r
        self.c = c
        self.v = v
        self.n = r * c

    def context_size(self) -> int:
        return 256 + 8 * -(-self.n // self.v) * 4

    def comm_bound(self) -> int:
        return 64 + 4 * -(-self.n // self.v) + 2 * self.v

    def initial_state(self, pid: int, nprocs: int):
        lo, hi = share_bounds(self.n, nprocs, pid)
        return {"lo": lo, "hi": hi, "vals": self.entries[lo:hi], "result": None}

    def superstep(self, ctx: VPContext) -> None:
        st = ctx.state
        r, c, n = self.r, self.c, self.n
        if ctx.step == 0:
            by_owner: dict[int, list] = {}
            for off, val in enumerate(st["vals"]):
                g = st["lo"] + off
                row, col = divmod(g, c)
                target = col * r + row  # position in the transpose
                owner = owner_of_index(target, n, ctx.nprocs)
                by_owner.setdefault(owner, []).extend((target, val))
            ctx.charge(len(st["vals"]))
            ctx.send_all(by_owner)
            st["vals"] = []
        else:
            lo, hi = st["lo"], st["hi"]
            out: list[Any] = [None] * (hi - lo)
            for m in ctx.incoming:
                it = iter(m.payload)
                for target, val in zip(it, it):
                    out[target - lo] = val
            ctx.charge(hi - lo)
            st["result"] = out
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state["result"] if state["result"] is not None else []
