"""CGM permutation routing (Table 1, Group A, "Permutation").

Given values ``x_0..x_{n-1}`` and a permutation ``pi``, produce the sequence
``y`` with ``y[pi[i]] = x[i]``.  On a CGM this is a single ``h``-relation
with ``h = n/v``: every virtual processor knows the target position of each
of its items, sends each to the owner of that position, and the owner places
arrivals by offset.  ``lambda = O(1)``; via the simulation this becomes the
Table 1 EM permutation bound ``T_I/O = O~(G n/(pBD))``, beating the naive
one-record-per-I/O approach by a factor of ``~BD`` (see the T1-A-PERM
benchmark).

**Record planes.**  With int64 values *and* perm (and only then) the per-vp
state holds the ``(target, value)`` pairs as one flat canonical ``i64``
byte string ``[t0, x0, t1, x1, ...]`` in both record modes, so context
images and counted costs agree with the object plane by construction.  The
vector mode groups pairs by owner with a stable argsort and scatters
arrivals by fancy indexing; message payloads stay flat interleaved arrays,
preserving the legacy record count of ``2 * npairs`` per message.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..bsp.collectives import owner_of_index, share_bounds
from ..bsp.program import BSPAlgorithm, VPContext
from ..emio.codec import get_codec
from ._vec import I64, as_i64, int64_array, owners_of_indices

__all__ = ["CGMPermutation"]


class CGMPermutation(BSPAlgorithm):
    """Route ``values[i]`` to global position ``perm[i]``.

    Output ``j`` is vp ``j``'s slice of the permuted sequence; the
    concatenation over vp ids is ``y`` with ``y[perm[i]] = values[i]``.
    """

    LAMBDA = 2

    def __init__(self, values: Sequence[Any], perm: Sequence[int], v: int):
        if len(values) != len(perm):
            raise ValueError("values and perm must have equal length")
        perm_arr = int64_array(perm)
        if perm_arr is not None:
            valid = np.array_equal(np.sort(perm_arr), np.arange(len(perm_arr)))
        else:
            valid = sorted(perm) == list(range(len(perm)))
        if not valid:
            raise ValueError("perm is not a permutation of 0..n-1")
        vals_arr = int64_array(values)
        if vals_arr is not None and perm_arr is not None:
            self._codec = "i64"
            self.values = vals_arr
            self.perm = perm_arr
            self.RECORD_MODES = ("object", "vector")
        else:
            self._codec = None
            self.values = list(values)
            self.perm = list(perm)
        self.v = v
        self.n = len(values)

    def context_size(self) -> int:
        return 256 + 8 * -(-self.n // self.v) * 4

    def comm_bound(self) -> int:
        return 64 + 4 * -(-self.n // self.v) + 2 * self.v

    def initial_state(self, pid: int, nprocs: int):
        lo, hi = share_bounds(self.n, nprocs, pid)
        if self._codec is None:
            return {
                "pairs": [(self.perm[i], self.values[i]) for i in range(lo, hi)],
                "lo": lo,
                "hi": hi,
                "result": None,
            }
        flat = np.empty(2 * (hi - lo), I64)
        flat[0::2] = self.perm[lo:hi]
        flat[1::2] = self.values[lo:hi]
        return {
            "enc": self._codec,
            "pairs": flat.tobytes(),
            "lo": lo,
            "hi": hi,
            "result": None,
        }

    def superstep(self, ctx: VPContext) -> None:
        if self._codec is None:
            self._superstep_legacy(ctx)
        elif self.record_mode == "vector":
            self._superstep_vector(ctx)
        else:
            self._superstep_object(ctx)

    def _superstep_legacy(self, ctx: VPContext) -> None:
        st = ctx.state
        if ctx.step == 0:
            by_owner: dict[int, list] = {}
            for target, val in st["pairs"]:
                owner = owner_of_index(target, self.n, ctx.nprocs)
                by_owner.setdefault(owner, []).extend((target, val))
            ctx.charge(len(st["pairs"]))
            ctx.send_all(by_owner)
            st["pairs"] = []
        else:
            lo, hi = st["lo"], st["hi"]
            out: list[Any] = [None] * (hi - lo)
            for m in ctx.incoming:
                it = iter(m.payload)
                for target, val in zip(it, it):
                    out[target - lo] = val
            ctx.charge(hi - lo)
            st["result"] = out
            ctx.vote_halt()

    def _superstep_object(self, ctx: VPContext) -> None:
        """Codec-eligible reference plane over decoded flat pairs."""
        st = ctx.state
        codec = get_codec(st["enc"])
        if ctx.step == 0:
            flat = codec.decode(codec.from_bytes(st["pairs"]))
            by_owner: dict[int, list] = {}
            it = iter(flat)
            for target, val in zip(it, it):
                owner = owner_of_index(target, self.n, ctx.nprocs)
                by_owner.setdefault(owner, []).extend((target, val))
            ctx.charge(len(flat) // 2)
            ctx.send_all(by_owner)
            st["pairs"] = b""
        else:
            lo, hi = st["lo"], st["hi"]
            out: list = [0] * (hi - lo)
            for m in ctx.incoming:
                it = iter(m.payload)
                for target, val in zip(it, it):
                    out[target - lo] = val
            ctx.charge(hi - lo)
            st["result"] = codec.to_bytes(out)
            ctx.vote_halt()

    def _superstep_vector(self, ctx: VPContext) -> None:
        """The same routing over stable-argsort grouping and fancy indexing."""
        st = ctx.state
        codec = get_codec(st["enc"])
        if ctx.step == 0:
            flat = codec.from_bytes(st["pairs"])
            targets = flat[0::2]
            owners = owners_of_indices(targets, self.n, ctx.nprocs)
            # Stable sort keeps original pair order within each owner group —
            # the setdefault/extend order of the object plane.
            order = np.argsort(owners, kind="stable")
            by_owner: dict[int, np.ndarray] = {}
            keys, starts = np.unique(owners[order], return_index=True)
            for k, lo_i, hi_i in zip(
                keys.tolist(), starts.tolist(), [*starts[1:].tolist(), len(order)]
            ):
                idx = order[lo_i:hi_i]
                part = np.empty(2 * len(idx), I64)
                part[0::2] = targets[idx]
                part[1::2] = flat[1::2][idx]
                by_owner[k] = part
            ctx.charge(len(flat) // 2)
            ctx.send_all(by_owner)
            st["pairs"] = b""
        else:
            lo, hi = st["lo"], st["hi"]
            out = np.zeros(hi - lo, I64)
            for m in ctx.incoming:
                arr = as_i64(m.payload)
                out[arr[0::2] - lo] = arr[1::2]
            ctx.charge(hi - lo)
            st["result"] = out.tobytes()
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        if self._codec is None:
            return state["result"] if state["result"] is not None else []
        if state["result"] is None:
            return []
        codec = get_codec(state["enc"])
        return codec.decode(codec.from_bytes(state["result"]))
