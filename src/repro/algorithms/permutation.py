"""CGM permutation routing (Table 1, Group A, "Permutation").

Given values ``x_0..x_{n-1}`` and a permutation ``pi``, produce the sequence
``y`` with ``y[pi[i]] = x[i]``.  On a CGM this is a single ``h``-relation
with ``h = n/v``: every virtual processor knows the target position of each
of its items, sends each to the owner of that position, and the owner places
arrivals by offset.  ``lambda = O(1)``; via the simulation this becomes the
Table 1 EM permutation bound ``T_I/O = O~(G n/(pBD))``, beating the naive
one-record-per-I/O approach by a factor of ``~BD`` (see the T1-A-PERM
benchmark).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..bsp.collectives import owner_of_index, share_bounds
from ..bsp.program import BSPAlgorithm, VPContext

__all__ = ["CGMPermutation"]


class CGMPermutation(BSPAlgorithm):
    """Route ``values[i]`` to global position ``perm[i]``.

    Output ``j`` is vp ``j``'s slice of the permuted sequence; the
    concatenation over vp ids is ``y`` with ``y[perm[i]] = values[i]``.
    """

    LAMBDA = 2

    def __init__(self, values: Sequence[Any], perm: Sequence[int], v: int):
        if len(values) != len(perm):
            raise ValueError("values and perm must have equal length")
        if sorted(perm) != list(range(len(perm))):
            raise ValueError("perm is not a permutation of 0..n-1")
        self.values = list(values)
        self.perm = list(perm)
        self.v = v
        self.n = len(values)

    def context_size(self) -> int:
        return 256 + 8 * -(-self.n // self.v) * 4

    def comm_bound(self) -> int:
        return 64 + 4 * -(-self.n // self.v) + 2 * self.v

    def initial_state(self, pid: int, nprocs: int):
        lo, hi = share_bounds(self.n, nprocs, pid)
        return {
            "pairs": [(self.perm[i], self.values[i]) for i in range(lo, hi)],
            "lo": lo,
            "hi": hi,
            "result": None,
        }

    def superstep(self, ctx: VPContext) -> None:
        st = ctx.state
        if ctx.step == 0:
            by_owner: dict[int, list] = {}
            for target, val in st["pairs"]:
                owner = owner_of_index(target, self.n, ctx.nprocs)
                by_owner.setdefault(owner, []).extend((target, val))
            ctx.charge(len(st["pairs"]))
            ctx.send_all(by_owner)
            st["pairs"] = []
        else:
            lo, hi = st["lo"], st["hi"]
            out: list[Any] = [None] * (hi - lo)
            for m in ctx.incoming:
                it = iter(m.payload)
                for target, val in zip(it, it):
                    out[target - lo] = val
            ctx.charge(hi - lo)
            st["result"] = out
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state["result"] if state["result"] is not None else []
