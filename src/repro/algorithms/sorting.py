"""CGM sorting by deterministic regular sampling (Table 1, Group A, "Sorting").

A single-sample-round CGM sort in the style of communication-efficient
parallel sorting [Goodrich 96] / parallel sorting by regular sampling:

* **Superstep 0** — each virtual processor sorts its ``n/v`` local items and
  sends ``v`` regularly spaced samples to vp 0.
* **Superstep 1** — vp 0 sorts the ``v^2`` samples, selects ``v-1`` splitters,
  and broadcasts them.
* **Superstep 2** — each vp partitions its sorted run by the splitters and
  routes partition ``j`` to vp ``j`` (the single ``h``-relation with
  ``h = O(n/v)``; regular sampling guarantees no vp receives more than
  ``2n/v`` items).
* **Superstep 3** — each vp merges the received sorted runs; the
  concatenation of the outputs over vp ids is the sorted sequence.

``lambda = O(1)`` supersteps, ``T_comp = O((n/v) log n)``, ``M = O(n/v)``
— the Table 1 row.  Requires ``n >= v^2`` (the usual CGM coarseness
condition ``n/p >= p``).

**Record planes.**  When the input is exactly int64 (plain ints or a signed
integer ndarray) and no ``key`` is given, the algorithm is *codec-eligible*
and its per-vp state holds the share as canonical ``i64`` codec bytes in
**both** record modes — so context pickles, and therefore every counted
I/O cost derived from them, are equal by construction.  The ``"object"``
mode decodes the bytes and runs the per-record reference logic; the
``"vector"`` mode runs ``np.sort``/``searchsorted`` kernels over zero-copy
views and ships ndarray message payloads.  Ineligible inputs (custom keys,
non-int records) keep the historical list-state path untouched.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..bsp.collectives import (
    merge_sorted,
    partition_by_splitters,
    regular_samples,
    share_bounds,
)
from ..bsp.program import BSPAlgorithm, VPContext
from ..emio.codec import get_codec
from ._vec import I64, as_i64, int64_array, sample_positions

__all__ = ["CGMSampleSort"]


class CGMSampleSort(BSPAlgorithm):
    """Sort ``data`` with ``v`` virtual processors; output ``i`` is vp ``i``'s
    sorted slice (global order = concatenation over vp ids).

    Parameters
    ----------
    data:
        The records to sort (any totally ordered values, or use ``key``).
        Plain int64 data (or a signed integer ndarray) enables the
        vectorized record plane (``RECORD_MODES`` grows ``"vector"``).
    v:
        Number of virtual processors; ``len(data) >= v*v`` is required for
        the regular-sampling balance guarantee.
    key:
        Optional sort key (disables codec eligibility).
    """

    LAMBDA = 4  # supersteps (communication rounds lambda = 3 + final halt)

    def __init__(self, data: Sequence[Any], v: int, key: Callable | None = None):
        if v < 1:
            raise ValueError("v must be >= 1")
        if len(data) < v * v:
            raise ValueError(
                f"CGM sort needs n >= v^2 (n={len(data)}, v={v}); "
                "use fewer virtual processors"
            )
        self.v = v
        self.key = key
        self.n = len(data)
        arr = int64_array(data) if key is None else None
        if arr is not None:
            self._codec = "i64"
            self.data = arr
            self.RECORD_MODES = ("object", "vector")
        else:
            self._codec = None
            self.data = list(data)

    # -- resource declarations ------------------------------------------------------

    def context_size(self) -> int:
        # Local share (<= 2n/v after balancing) plus vp 0's v^2 samples,
        # in 8-byte records with pickle overhead headroom.
        per_item = 4
        return 256 + per_item * (4 * -(-self.n // self.v) + 2 * self.v * self.v)

    def comm_bound(self) -> int:
        per_item = 2
        return 64 + per_item * max(
            self.v * self.v, 4 * -(-self.n // self.v) + self.v
        )

    # -- the algorithm -----------------------------------------------------------

    def initial_state(self, pid: int, nprocs: int):
        lo, hi = share_bounds(self.n, nprocs, pid)
        if self._codec is None:
            return {"items": self.data[lo:hi], "result": None}
        # Canonical codec bytes: identical state image in both record modes.
        return {
            "enc": self._codec,
            "items": self.data[lo:hi].tobytes(),
            "result": None,
        }

    def superstep(self, ctx: VPContext) -> None:
        if self._codec is None:
            self._superstep_legacy(ctx)
        elif self.record_mode == "vector":
            self._superstep_vector(ctx)
        else:
            self._superstep_object(ctx)

    def _superstep_legacy(self, ctx: VPContext) -> None:
        v, key = ctx.nprocs, self.key
        st = ctx.state
        if ctx.step == 0:
            st["items"].sort(key=key)
            ctx.charge(len(st["items"]) * max(1, len(st["items"]).bit_length()))
            samples = regular_samples(
                [key(x) for x in st["items"]] if key else st["items"], v
            )
            ctx.send(0, samples)
        elif ctx.step == 1:
            if ctx.pid == 0:
                allsamples = sorted(r for m in ctx.incoming for r in m.payload)
                ctx.charge(len(allsamples) * max(1, len(allsamples).bit_length()))
                splitters = regular_samples(allsamples, v - 1)
                for dest in range(v):
                    ctx.send(dest, splitters)
        elif ctx.step == 2:
            splitters = list(ctx.incoming[0].payload)
            parts = partition_by_splitters(st["items"], splitters, key=key)
            ctx.charge(len(st["items"]))
            for dest, part in enumerate(parts):
                if dest < v and part:
                    ctx.send(dest, part)
            st["items"] = []
        else:
            runs = [list(m.payload) for m in ctx.incoming]
            st["result"] = merge_sorted(runs, key=key)
            ctx.charge(sum(len(r) for r in runs) * max(1, v.bit_length()))
            ctx.vote_halt()

    def _superstep_object(self, ctx: VPContext) -> None:
        """Codec-eligible reference plane: decode bytes, run per-record logic."""
        v = ctx.nprocs
        st = ctx.state
        codec = get_codec(st["enc"])
        if ctx.step == 0:
            items = codec.decode(codec.from_bytes(st["items"]))
            items.sort()
            ctx.charge(len(items) * max(1, len(items).bit_length()))
            ctx.send(0, regular_samples(items, v))
            st["items"] = codec.to_bytes(items)
        elif ctx.step == 1:
            if ctx.pid == 0:
                allsamples = sorted(r for m in ctx.incoming for r in m.payload)
                ctx.charge(len(allsamples) * max(1, len(allsamples).bit_length()))
                splitters = regular_samples(allsamples, v - 1)
                for dest in range(v):
                    ctx.send(dest, splitters)
        elif ctx.step == 2:
            splitters = list(ctx.incoming[0].payload)
            items = codec.decode(codec.from_bytes(st["items"]))
            parts = partition_by_splitters(items, splitters)
            ctx.charge(len(items))
            for dest, part in enumerate(parts):
                if dest < v and part:
                    ctx.send(dest, part)
            st["items"] = b""
        else:
            runs = [list(m.payload) for m in ctx.incoming]
            result = merge_sorted(runs)
            ctx.charge(sum(len(r) for r in runs) * max(1, v.bit_length()))
            st["result"] = codec.to_bytes(result)
            ctx.vote_halt()

    def _superstep_vector(self, ctx: VPContext) -> None:
        """The same supersteps over array kernels and zero-copy payloads."""
        v = ctx.nprocs
        st = ctx.state
        codec = get_codec(st["enc"])
        if ctx.step == 0:
            arr = np.sort(codec.from_bytes(st["items"]))
            n_loc = len(arr)
            ctx.charge(n_loc * max(1, n_loc.bit_length()))
            ctx.send(0, arr[sample_positions(n_loc, v)])
            st["items"] = arr.tobytes()
        elif ctx.step == 1:
            if ctx.pid == 0:
                allsamples = np.sort(
                    np.concatenate([as_i64(m.payload) for m in ctx.incoming])
                )
                n_s = len(allsamples)
                ctx.charge(n_s * max(1, n_s.bit_length()))
                splitters = allsamples[sample_positions(n_s, v - 1)]
                for dest in range(v):
                    ctx.send(dest, splitters)
        elif ctx.step == 2:
            splitters = as_i64(ctx.incoming[0].payload)
            arr = codec.from_bytes(st["items"])
            bounds = np.searchsorted(arr, splitters, side="left").tolist()
            ctx.charge(len(arr))
            prev = 0
            for dest, hi in enumerate([*bounds, len(arr)]):
                part = arr[prev:hi]
                if dest < v and len(part):
                    ctx.send(dest, part)
                prev = hi
            st["items"] = b""
        else:
            runs = [as_i64(m.payload) for m in ctx.incoming]
            total = np.concatenate(runs) if runs else np.empty(0, I64)
            result = np.sort(total)
            ctx.charge(sum(len(r) for r in runs) * max(1, v.bit_length()))
            st["result"] = result.tobytes()
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        if self._codec is None:
            return state["result"] if state["result"] is not None else []
        if state["result"] is None:
            return []
        codec = get_codec(state["enc"])
        return codec.decode(codec.from_bytes(state["result"]))
