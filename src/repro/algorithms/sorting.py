"""CGM sorting by deterministic regular sampling (Table 1, Group A, "Sorting").

A single-sample-round CGM sort in the style of communication-efficient
parallel sorting [Goodrich 96] / parallel sorting by regular sampling:

* **Superstep 0** — each virtual processor sorts its ``n/v`` local items and
  sends ``v`` regularly spaced samples to vp 0.
* **Superstep 1** — vp 0 sorts the ``v^2`` samples, selects ``v-1`` splitters,
  and broadcasts them.
* **Superstep 2** — each vp partitions its sorted run by the splitters and
  routes partition ``j`` to vp ``j`` (the single ``h``-relation with
  ``h = O(n/v)``; regular sampling guarantees no vp receives more than
  ``2n/v`` items).
* **Superstep 3** — each vp merges the received sorted runs; the
  concatenation of the outputs over vp ids is the sorted sequence.

``lambda = O(1)`` supersteps, ``T_comp = O((n/v) log n)``, ``M = O(n/v)``
— the Table 1 row.  Requires ``n >= v^2`` (the usual CGM coarseness
condition ``n/p >= p``).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..bsp.collectives import (
    merge_sorted,
    partition_by_splitters,
    regular_samples,
    share_bounds,
)
from ..bsp.program import BSPAlgorithm, VPContext

__all__ = ["CGMSampleSort"]


class CGMSampleSort(BSPAlgorithm):
    """Sort ``data`` with ``v`` virtual processors; output ``i`` is vp ``i``'s
    sorted slice (global order = concatenation over vp ids).

    Parameters
    ----------
    data:
        The records to sort (any totally ordered values, or use ``key``).
    v:
        Number of virtual processors; ``len(data) >= v*v`` is required for
        the regular-sampling balance guarantee.
    key:
        Optional sort key.
    """

    LAMBDA = 4  # supersteps (communication rounds lambda = 3 + final halt)

    def __init__(self, data: Sequence[Any], v: int, key: Callable | None = None):
        if v < 1:
            raise ValueError("v must be >= 1")
        if len(data) < v * v:
            raise ValueError(
                f"CGM sort needs n >= v^2 (n={len(data)}, v={v}); "
                "use fewer virtual processors"
            )
        self.data = list(data)
        self.v = v
        self.key = key
        self.n = len(data)

    # -- resource declarations ------------------------------------------------------

    def context_size(self) -> int:
        # Local share (<= 2n/v after balancing) plus vp 0's v^2 samples,
        # in 8-byte records with pickle overhead headroom.
        per_item = 4
        return 256 + per_item * (4 * -(-self.n // self.v) + 2 * self.v * self.v)

    def comm_bound(self) -> int:
        per_item = 2
        return 64 + per_item * max(
            self.v * self.v, 4 * -(-self.n // self.v) + self.v
        )

    # -- the algorithm -----------------------------------------------------------

    def initial_state(self, pid: int, nprocs: int):
        lo, hi = share_bounds(self.n, nprocs, pid)
        return {"items": self.data[lo:hi], "result": None}

    def superstep(self, ctx: VPContext) -> None:
        v, key = ctx.nprocs, self.key
        st = ctx.state
        if ctx.step == 0:
            st["items"].sort(key=key)
            ctx.charge(len(st["items"]) * max(1, len(st["items"]).bit_length()))
            samples = regular_samples(
                [key(x) for x in st["items"]] if key else st["items"], v
            )
            ctx.send(0, samples)
        elif ctx.step == 1:
            if ctx.pid == 0:
                allsamples = sorted(r for m in ctx.incoming for r in m.payload)
                ctx.charge(len(allsamples) * max(1, len(allsamples).bit_length()))
                splitters = regular_samples(allsamples, v - 1)
                for dest in range(v):
                    ctx.send(dest, splitters)
        elif ctx.step == 2:
            splitters = list(ctx.incoming[0].payload)
            parts = partition_by_splitters(st["items"], splitters, key=key)
            ctx.charge(len(st["items"]))
            for dest, part in enumerate(parts):
                if dest < v and part:
                    ctx.send(dest, part)
            st["items"] = []
        else:
            runs = [list(m.payload) for m in ctx.incoming]
            st["result"] = merge_sorted(runs, key=key)
            ctx.charge(sum(len(r) for r in runs) * max(1, v.bit_length()))
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state["result"] if state["result"] is not None else []
