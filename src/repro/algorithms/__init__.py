"""CGM algorithm library — the rows of Table 1.

Group A (fundamental): :class:`CGMSampleSort`, :class:`CGMPermutation`,
:class:`CGMMatrixTranspose`.
Group B (GIS / computational geometry): see :mod:`repro.algorithms.geometry`.
Group C (graphs): see :mod:`repro.algorithms.graphs`.

Every algorithm is an ordinary :class:`~repro.bsp.program.BSPAlgorithm` and
runs unchanged on the in-memory reference runner and on both EM simulation
engines.
"""

from .matrix import CGMMatrixTranspose
from .multisearch import CGMMultisearch
from .prefix import CGMPrefixSums
from .permutation import CGMPermutation
from .sorting import CGMSampleSort

__all__ = [
    "CGMSampleSort",
    "CGMPermutation",
    "CGMMatrixTranspose",
    "CGMPrefixSums",
    "CGMMultisearch",
]
