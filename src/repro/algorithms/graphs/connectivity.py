"""CGM connected components and spanning forest (Table 1, Group C).

Forest-merging in a binary-combining tree, the coarse-grained strategy of
Cáceres et al. [11]: every vp reduces its local edge set to a spanning forest
(union-find), then ``T = ceil(log2 v)`` merge rounds combine pairs of forests
— in round ``t`` the vps with ``pid mod 2^t == 2^(t-1)`` send their forests
to ``pid - 2^(t-1)``; each merge keeps at most ``V - 1`` edges, so message
sizes stay bounded by the vertex count.  After round ``T`` vp 0 holds a
global spanning forest, labels each vertex with the smallest vertex id of
its component, and scatters the labels to the vertices' owners.

``lambda = O(log p)`` communication rounds — the Group C row — with local
memory ``O(V + E/v)`` (the usual CGM graph assumption that the vertex set
fits in one processor's memory while the edge set is distributed).

:class:`CGMConnectedComponents` outputs per-vertex component labels;
:class:`CGMSpanningForest` outputs the edge ids of a spanning forest.
"""

from __future__ import annotations

from typing import Sequence

from ...bsp.collectives import owner_of_index, share_bounds
from ...bsp.program import BSPAlgorithm, VPContext

__all__ = ["CGMConnectedComponents", "CGMSpanningForest"]


class _UnionFind:
    """Path-compressing union-find used for the local forest reductions.

    ``union`` keeps the smaller root, so component representatives are the
    minimum vertex ids — the labels the algorithm reports.
    """

    def __init__(self):
        self.parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        root = x
        while self.parent.setdefault(root, root) != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if rb < ra:
            ra, rb = rb, ra
        self.parent[rb] = ra
        return True


class _ForestMergeBase(BSPAlgorithm):
    """Shared machinery: local reduction + binary-tree forest merging."""

    #: subclasses needing a label-delivery superstep after the merge set this
    NEEDS_COLLECT = False

    def __init__(self, nvertices: int, edges: Sequence[tuple[int, int]], v: int):
        self.nvertices = nvertices
        self.edges = [tuple(e) for e in edges]
        self.v = v
        self.nedges = len(edges)
        for a, b in self.edges:
            if not (0 <= a < nvertices and 0 <= b < nvertices):
                raise ValueError(f"edge ({a},{b}) outside vertex range [0,{nvertices})")
        self.merge_rounds = max(0, (v - 1).bit_length())

    @property
    def LAMBDA(self) -> int:
        return self.merge_rounds + (2 if self.NEEDS_COLLECT else 1)

    def context_size(self) -> int:
        per = 16
        return 2048 + per * (
            4 * self.nvertices + 4 * -(-max(self.nedges, 1) // self.v)
        )

    def comm_bound(self) -> int:
        return 512 + 8 * (2 * self.nvertices + -(-max(self.nedges, 1) // self.v))

    def initial_state(self, pid: int, nprocs: int):
        lo, hi = share_bounds(self.nedges, nprocs, pid)
        uf = _UnionFind()
        forest = []
        for eid in range(lo, hi):
            a, b = self.edges[eid]
            if uf.union(a, b):
                forest.append((a, b, eid))
        return {"forest": forest, "result": None}

    def superstep(self, ctx: VPContext) -> None:
        st = ctx.state
        s, T = ctx.step, self.merge_rounds
        if 1 <= s <= T:
            self._absorb(ctx)  # forests sent in round s arrive now
        t = s + 1  # merge round whose sends happen in this superstep
        if t <= T:
            half, stride = 1 << (t - 1), 1 << t
            if ctx.pid % stride == half:
                payload = []
                for a, b, eid in st["forest"]:
                    payload.extend((a, b, eid))
                ctx.send(ctx.pid - half, payload)
                st["forest"] = []
        if s == T:
            if ctx.pid == 0:
                self._finish(ctx)
            if not self.NEEDS_COLLECT:
                ctx.vote_halt()
        elif s > T:
            self._collect(ctx)
            ctx.vote_halt()

    def _absorb(self, ctx: VPContext) -> None:
        st = ctx.state
        if not ctx.incoming:
            return
        uf = _UnionFind()
        merged = []
        for a, b, eid in st["forest"]:
            if uf.union(a, b):  # pragma: no branch - local forest is acyclic
                merged.append((a, b, eid))
        for m in ctx.incoming:
            it = iter(m.payload)
            for a in it:
                b, eid = next(it), next(it)
                if uf.union(a, b):
                    merged.append((a, b, eid))
        ctx.charge(len(merged) + len(st["forest"]))
        st["forest"] = merged

    # -- subclass hooks ------------------------------------------------------------

    def _finish(self, ctx: VPContext) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self, ctx: VPContext) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class CGMConnectedComponents(_ForestMergeBase):
    """Label every vertex with the smallest vertex id of its component.

    Output ``j`` is the list of ``(vertex, label)`` pairs for the vertices
    vp ``j`` owns (block distribution of vertex ids); isolated vertices get
    their own id.
    """

    NEEDS_COLLECT = True

    def _finish(self, ctx: VPContext) -> None:
        uf = _UnionFind()
        for a, b, _eid in ctx.state["forest"]:
            uf.union(a, b)
        by_dest: dict[int, list] = {}
        for vertex in range(self.nvertices):
            owner = owner_of_index(vertex, self.nvertices, ctx.nprocs)
            by_dest.setdefault(owner, []).extend((vertex, uf.find(vertex)))
        ctx.charge(self.nvertices)
        ctx.send_all(by_dest)

    def _collect(self, ctx: VPContext) -> None:
        labels = []
        for m in ctx.incoming:
            it = iter(m.payload)
            for vertex in it:
                labels.append((vertex, next(it)))
        ctx.state["result"] = sorted(labels)

    def output(self, pid: int, state) -> list[tuple[int, int]]:
        return state["result"] or []


class CGMSpanningForest(_ForestMergeBase):
    """Compute a spanning forest; vp 0 outputs the original edge ids.

    Output 0 is the sorted list of edge ids forming a spanning forest of
    maximum size; other vps output empty lists.
    """

    NEEDS_COLLECT = False

    def _finish(self, ctx: VPContext) -> None:
        ctx.state["result"] = sorted(eid for _a, _b, eid in ctx.state["forest"])

    def _collect(self, ctx: VPContext) -> None:  # pragma: no cover - unused
        pass

    def output(self, pid: int, state) -> list[int]:
        return state["result"] if state["result"] is not None else []
