"""CGM tree contraction / expression-tree evaluation (Table 1, Group C).

Evaluates an arithmetic expression tree (operators ``+`` and ``*`` at
internal nodes, numbers at leaves) by coarse-grained tree contraction:

* **Rake** — every resolved node sends its value to its parent; a parent
  folds arriving values into its accumulator and, once a single child
  remains unresolved, becomes a *unary* node whose value is a linear
  function ``a*y + b`` of that child (both ``+`` and ``*`` with one known
  operand are linear — the classical trick that keeps contraction closed).
* **Compress** — unary chains compose their linear functions pairwise,
  using the same deterministic-coin independent-set trick as
  :class:`~repro.algorithms.graphs.listranking.CGMListRanking` to avoid
  conflicts.
* **Gather** — once the active tree fits in one virtual processor's memory
  (``O(n/v)`` nodes), it is shipped to vp 0 and finished sequentially; only
  the root value is needed, so no expansion phase follows.

Rake halves the leaves of bushy trees and compress shortens caterpillars,
so the active size drops by an expected constant factor per round:
``lambda = O(log v)`` rounds whp — the Group C "tree contraction,
expression tree evaluation" row.
"""

from __future__ import annotations

from typing import Any, Sequence

from ...bsp.program import BSPAlgorithm, VPContext
from .listranking import _coin

__all__ = ["CGMExpressionEval"]


def _compose(outer: tuple, inner: tuple) -> tuple:
    """(a1, b1) o (a2, b2): first apply inner, then outer."""
    a1, b1 = outer
    a2, b2 = inner
    return (a1 * a2, a1 * b2 + b1)


class CGMExpressionEval(BSPAlgorithm):
    """Evaluate a binary (or general) expression tree over ``(+, *)``.

    Parameters
    ----------
    edges:
        ``(parent, child)`` pairs; node 0 (or ``root``) is the root.
    ops:
        Operator per internal node: ``"+"`` or ``"*"``.
    leaf_values:
        Number per leaf node.
    v:
        Number of virtual processors.
    root:
        The root node id.
    seed:
        Seed of the compression coins.

    Output ``j`` is ``[value]`` for every vp (the root value is broadcast).
    """

    def __init__(
        self,
        edges: Sequence[tuple[int, int]],
        ops: dict[int, str],
        leaf_values: dict[int, Any],
        v: int,
        root: int = 0,
        seed: int = 2024,
    ):
        self.edges = [tuple(e) for e in edges]
        self.ops = dict(ops)
        self.leaf_values = dict(leaf_values)
        self.v = v
        self.root = root
        self.seed = seed
        nodes = {root} | {c for _p, c in edges} | {p for p, _c in edges}
        self.nnodes = len(nodes)
        if nodes != set(range(self.nnodes)):
            raise ValueError("node ids must be 0..n-1")
        for op in self.ops.values():
            if op not in ("+", "*"):
                raise ValueError(f"unsupported operator {op!r}")
        self.gather_threshold = max(64, 2 * -(-self.nnodes // v), 2 * v)

    def context_size(self) -> int:
        per = 16
        return 2048 + per * (
            3 * -(-self.nnodes // self.v) + self.gather_threshold
        )

    def comm_bound(self) -> int:
        return 512 + 8 * (2 * -(-self.nnodes // self.v) + self.gather_threshold)

    # -- state -------------------------------------------------------------------

    def _owner(self, node: int, v: int) -> int:
        from ...bsp.collectives import owner_of_index

        return owner_of_index(node, self.nnodes, v)

    def initial_state(self, pid: int, nprocs: int):
        from ...bsp.collectives import share_bounds

        child_lists: dict[int, list[int]] = {}
        parent: dict[int, int] = {}
        for p_, c in self.edges:
            child_lists.setdefault(p_, []).append(c)
            parent[c] = p_
        lo, hi = share_bounds(self.nnodes, nprocs, pid)
        nodes = {}
        for node in range(lo, hi):
            if node in self.leaf_values:
                nodes[node] = {
                    "parent": parent.get(node, -1),
                    "value": self.leaf_values[node],
                    "sent": False,
                    "unresolved": 0,
                    "op": None,
                    "acc": None,
                    "fn": None,  # linear (a, b) once unary
                    "pending": None,
                    "active": True,
                }
            else:
                op = self.ops[node]
                kids = child_lists.get(node, [])
                nodes[node] = {
                    "parent": parent.get(node, -1),
                    "value": None,
                    "sent": False,
                    "unresolved": len(kids),
                    "remaining": list(kids),  # unresolved child ids
                    "op": op,
                    "acc": 0 if op == "+" else 1,
                    "fn": None,
                    "pending": None,
                    "active": True,
                }
        return {
            "nodes": nodes,
            "phase": "R1",
            "round": 0,
            "result": None,
        }

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _fold(nd: dict, child: int, val: Any) -> None:
        """Fold a resolved child's value into an internal node."""
        if nd["fn"] is not None:
            # unary node: pending child resolved
            a, b = nd["fn"]
            nd["value"] = a * val + b
            nd["fn"] = None
            nd["pending"] = None
            nd["unresolved"] = 0
            return
        nd["acc"] = nd["acc"] + val if nd["op"] == "+" else nd["acc"] * val
        nd["unresolved"] -= 1
        if child in nd["remaining"]:
            nd["remaining"].remove(child)
        if nd["unresolved"] == 0:
            nd["value"] = nd["acc"]

    @staticmethod
    def _to_unary(nd: dict) -> None:
        """Switch a one-child-left internal node to linear-function form."""
        if nd["op"] == "+":
            nd["fn"] = (1, nd["acc"])
        else:
            nd["fn"] = (nd["acc"], 0)
        nd["pending"] = nd["remaining"][0]

    # -- superstep machine ------------------------------------------------------------

    def superstep(self, ctx: VPContext) -> None:
        phase = ctx.state["phase"]
        if phase == "R1":
            self._round_send(ctx)
        elif phase == "R2":
            self._round_process(ctx)
        elif phase == "R3":
            self._round_apply(ctx)
        elif phase == "SOLVE":
            self._solve(ctx)
        elif phase == "BCAST":
            self._bcast(ctx)
        elif phase == "DONE":
            ctx.vote_halt()
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown phase {phase}")

    def _round_send(self, ctx: VPContext) -> None:
        st = ctx.state
        rnd = st["round"]
        by_dest: dict[int, list] = {}
        nactive = 0
        for node, nd in st["nodes"].items():
            if not nd["active"]:
                continue
            nactive += 1
            if nd["value"] is not None:
                if nd["parent"] < 0:
                    # resolved root: report to vp 0
                    by_dest.setdefault(0, []).extend(("ROOT", nd["value"]))
                    nd["active"] = False
                    nactive -= 1
                elif not nd["sent"]:
                    by_dest.setdefault(
                        self._owner(nd["parent"], ctx.nprocs), []
                    ).extend(("L", nd["parent"], node, nd["value"]))
                    nd["sent"] = True
                    nd["active"] = False
                    nactive -= 1
            elif (
                nd["fn"] is not None
                and nd["pending"] is not None
                and _coin(node, rnd, self.seed) == 1
                and _coin(nd["pending"], rnd, self.seed) == 0
            ):
                # compression request to the pending (possibly unary) child
                by_dest.setdefault(
                    self._owner(nd["pending"], ctx.nprocs), []
                ).extend(("C", node, nd["pending"]))
        by_dest.setdefault(0, []).extend(("N", ctx.pid, nactive))
        ctx.charge(len(st["nodes"]))
        ctx.send_all(by_dest)
        st["phase"] = "R2"

    def _round_process(self, ctx: VPContext) -> None:
        st = ctx.state
        nodes = st["nodes"]
        total_active = 0
        root_value = None
        compress_reqs = []
        # First pass: apply leaf values (they take precedence over
        # compression: a child that just resolved refuses absorption).
        for m in ctx.incoming:
            it = iter(m.payload)
            for tag in it:
                if tag == "L":
                    p_, child, val = next(it), next(it), next(it)
                    nd = nodes[p_]
                    self._fold(nd, child, val)
                    if nd["fn"] is None and nd["value"] is None and nd["unresolved"] == 1:
                        self._to_unary(nd)
                elif tag == "C":
                    compress_reqs.append((next(it), next(it)))
                elif tag == "N":
                    _pid, cnt = next(it), next(it)
                    total_active += cnt
                elif tag == "ROOT":
                    root_value = next(it)
        by_dest: dict[int, list] = {}
        for u, c in compress_reqs:
            nd = nodes[c]
            if nd["active"] and nd["value"] is None and nd["fn"] is not None \
                    and nd["pending"] is not None:
                # c agrees to be absorbed into u.
                by_dest.setdefault(self._owner(u, ctx.nprocs), []).extend(
                    ("A", u, nd["fn"][0], nd["fn"][1], nd["pending"])
                )
                by_dest.setdefault(
                    self._owner(nd["pending"], ctx.nprocs), []
                ).extend(("P", nd["pending"], u))
                nd["active"] = False
        if ctx.pid == 0:
            if root_value is not None:
                decision = ["F", root_value]
            elif total_active <= self.gather_threshold:
                decision = ["G"]
            else:
                decision = ["C"]
            for dest in range(ctx.nprocs):
                ctx.send(dest, ["D"] + decision)
        ctx.charge(len(nodes))
        ctx.send_all(by_dest)
        st["phase"] = "R3"

    def _round_apply(self, ctx: VPContext) -> None:
        st = ctx.state
        nodes = st["nodes"]
        decision = None
        value = None
        for m in ctx.incoming:
            it = iter(m.payload)
            for tag in it:
                if tag == "A":
                    u, a, b, g = next(it), next(it), next(it), next(it)
                    nd = nodes[u]
                    nd["fn"] = _compose(nd["fn"], (a, b))
                    nd["pending"] = g
                elif tag == "P":
                    g, newp = next(it), next(it)
                    nodes[g]["parent"] = newp
                elif tag == "D":
                    decision = next(it)
                    if decision == "F":
                        value = next(it)
        ctx.charge(len(nodes))
        if decision == "F":
            st["result"] = value
            st["phase"] = "DONE"
            ctx.vote_halt()
        elif decision == "G":
            payload = []
            for node, nd in nodes.items():
                if not nd["active"]:
                    continue
                if nd["value"] is not None:
                    desc = ("V", node, nd["parent"], nd["value"])
                elif nd["fn"] is not None:
                    desc = (
                        "U", node, nd["parent"], nd["fn"][0], nd["fn"][1],
                        nd["pending"] if nd["pending"] is not None else -1,
                    )
                else:
                    desc = ("M", node, nd["parent"], nd["op"], nd["acc"],
                            nd["unresolved"])
                payload.extend(desc)
            ctx.send(0, payload)
            st["phase"] = "SOLVE"
        else:
            st["round"] += 1
            self._round_send(ctx)

    def _solve(self, ctx: VPContext) -> None:
        st = ctx.state
        if ctx.pid == 0:
            vals: dict[int, Any] = {}
            unary: dict[int, tuple] = {}
            multi: dict[int, tuple] = {}
            parent: dict[int, int] = {}
            for m in ctx.incoming:
                it = iter(m.payload)
                for tag in it:
                    node = next(it)
                    parent[node] = next(it)
                    if tag == "V":
                        vals[node] = next(it)
                    elif tag == "U":
                        unary[node] = (next(it), next(it), next(it))
                    else:
                        multi[node] = (next(it), next(it), next(it))
            children: dict[int, list[int]] = {}
            for node, p_ in parent.items():
                children.setdefault(p_, []).append(node)

            def evaluate(node: int) -> Any:
                if node in vals:
                    return vals[node]
                if node in unary:
                    a, b, pending = unary[node]
                    child = pending if pending >= 0 else children[node][0]
                    return a * evaluate(child) + b
                op, acc, _unres = multi[node]
                for c in children.get(node, []):
                    cv = evaluate(c)
                    acc = acc + cv if op == "+" else acc * cv
                return acc

            import sys

            old = sys.getrecursionlimit()
            sys.setrecursionlimit(max(old, 4 * self.gather_threshold + 100))
            try:
                result = evaluate(self._find_root(parent))
            finally:
                sys.setrecursionlimit(old)
            ctx.charge(len(parent))
            for dest in range(ctx.nprocs):
                ctx.send(dest, [result])
        st["phase"] = "BCAST"

    def _find_root(self, parent: dict[int, int]) -> int:
        cands = [n for n, p_ in parent.items() if p_ < 0 or p_ not in parent]
        roots = [n for n in cands if n == self.root or parent[n] < 0]
        return roots[0] if roots else cands[0]

    def _bcast(self, ctx: VPContext) -> None:
        st = ctx.state
        st["result"] = ctx.incoming[0].payload[0]
        st["phase"] = "DONE"
        ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return [state["result"]]
