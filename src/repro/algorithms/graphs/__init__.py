"""Group C of Table 1: CGM graph algorithms (``lambda = O(log p)`` rounds).

* :class:`CGMListRanking` — list ranking / weighted suffix sums over lists.
* :class:`CGMEulerTourSuccessor` — Euler tour construction for rooted trees.
* :mod:`~repro.algorithms.graphs.treealgos` — depths, preorder, subtree
  sizes via tour + ranking composition.
* :class:`CGMConnectedComponents`, :class:`CGMSpanningForest` — forest
  merging.
"""

from .biconnectivity import biconnected_components, root_tree
from .connectivity import CGMConnectedComponents, CGMSpanningForest
from .eardecomposition import ear_decomposition
from .eulertour import CGMEulerTourSuccessor, arc_endpoints
from .lca import batched_lca
from .listranking import CGMListRanking
from .rmq import CGMBatchedRMQ
from .treealgos import (
    euler_tour_positions,
    preorder_numbers,
    subtree_sizes,
    tree_depths,
)
from .treecontraction import CGMExpressionEval

__all__ = [
    "CGMListRanking",
    "CGMEulerTourSuccessor",
    "arc_endpoints",
    "CGMConnectedComponents",
    "CGMSpanningForest",
    "CGMBatchedRMQ",
    "CGMExpressionEval",
    "batched_lca",
    "biconnected_components",
    "root_tree",
    "ear_decomposition",
    "euler_tour_positions",
    "tree_depths",
    "preorder_numbers",
    "subtree_sizes",
]
