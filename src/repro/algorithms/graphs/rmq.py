"""CGM batched range-minimum queries (the LCA substrate, Table 1, Group C).

Given an array ``a[0..n-1]`` and a batch of index ranges, find for every
range the position of its minimum.  Coarse-grained, ``lambda = O(1)``:

0. the array is block-distributed; every vp computes its segment minimum
   and sends it to vp 0; queries are block-distributed by query id and each
   is routed to the vp holding its *left* endpoint;
1. vp 0 broadcasts the ``v`` segment minima; left-endpoint vps compute the
   in-segment suffix part and the full middle part (from the broadcast) and
   forward the partial result to the vp holding the *right* endpoint;
2. right-endpoint vps finish with their in-segment prefix part and return
   the answer to the query's home vp;
3. home vps collect.

Each ``h``-relation carries ``O(n/v + q/v + v)`` records.  Used by
:func:`~repro.algorithms.graphs.lca.batched_lca` on the Euler tour's depth
sequence.
"""

from __future__ import annotations

from typing import Sequence

from ...bsp.collectives import owner_of_index, share_bounds
from ...bsp.program import BSPAlgorithm, VPContext

__all__ = ["CGMBatchedRMQ"]

INF = float("inf")


class CGMBatchedRMQ(BSPAlgorithm):
    """Positions of range minima for a batch of ``[lo, hi]`` (inclusive) queries.

    Ties resolve to the smallest position.  Output ``j`` is the list of
    ``(query_index, argmin_position)`` pairs for the queries whose indices
    fall in vp ``j``'s block share.
    """

    LAMBDA = 5

    def __init__(
        self,
        values: Sequence,
        queries: Sequence[tuple[int, int]],
        v: int,
    ):
        n = len(values)
        for lo, hi in queries:
            if not (0 <= lo <= hi < n):
                raise ValueError(f"query [{lo},{hi}] outside [0,{n})")
        self.values = list(values)
        self.queries = [tuple(q) for q in queries]
        self.v = v
        self.n = n
        self.nq = len(queries)

    def context_size(self) -> int:
        per = 8
        return 1024 + per * (
            2 * -(-max(self.n, 1) // self.v)
            + 4 * -(-max(self.nq, 1) // self.v)
            + 2 * self.v
        )

    def comm_bound(self) -> int:
        return 256 + 8 * (4 * -(-max(self.nq, 1) // self.v) + 2 * self.v)

    def initial_state(self, pid: int, nprocs: int):
        alo, ahi = share_bounds(self.n, nprocs, pid)
        qlo, qhi = share_bounds(self.nq, nprocs, pid)
        return {
            "alo": alo,
            "vals": self.values[alo:ahi],
            "myqueries": [(qi, *self.queries[qi]) for qi in range(qlo, qhi)],
            "segmins": None,
            "answers": [],
        }

    def _seg_of(self, idx: int, v: int) -> int:
        return owner_of_index(idx, self.n, v)

    def superstep(self, ctx: VPContext) -> None:
        st = ctx.state
        v = ctx.nprocs
        if ctx.step == 0:
            # Segment minimum (value, absolute position) to vp 0; route each
            # query to the vp holding its left endpoint.
            if st["vals"]:
                pos = min(range(len(st["vals"])), key=lambda i: (st["vals"][i], i))
                ctx.send(0, ["M", ctx.pid, st["vals"][pos], st["alo"] + pos])
            else:
                ctx.send(0, ["M", ctx.pid, INF, -1])
            by_dest: dict[int, list] = {}
            for qi, lo, hi in st["myqueries"]:
                by_dest.setdefault(self._seg_of(lo, v), []).extend(
                    ("Q", qi, lo, hi)
                )
            ctx.charge(len(st["vals"]) + len(st["myqueries"]))
            ctx.send_all(by_dest)
            st["myqueries"] = []
        elif ctx.step == 1:
            queries = []
            for m in ctx.incoming:
                it = iter(m.payload)
                for tag in it:
                    if tag == "M":
                        pid_, val, pos = next(it), next(it), next(it)
                        if ctx.pid == 0:
                            if st["segmins"] is None:
                                st["segmins"] = [None] * v
                            st["segmins"][pid_] = (val, pos)
                    else:
                        queries.append((next(it), next(it), next(it)))
            st["pending"] = queries
            if ctx.pid == 0:
                flat = [c for sm in st["segmins"] for c in sm]
                for dest in range(v):
                    ctx.send(dest, flat)
                ctx.charge(v)
        elif ctx.step == 2:
            # Receive the broadcast minima; answer the left-segment suffix
            # plus middle segments; forward to the right-endpoint vp.
            it = iter(ctx.incoming[0].payload)
            segmins = []
            for val in it:
                segmins.append((val, next(it)))
            st["segmins"] = segmins
            by_dest: dict[int, list] = {}
            alo, vals = st["alo"], st["vals"]
            for qi, lo, hi in st["pending"]:
                lseg = self._seg_of(lo, v)
                rseg = self._seg_of(hi, v)
                best = (INF, self.n)
                # suffix of the left segment (possibly clipped by hi)
                end = min(hi, alo + len(vals) - 1)
                for i in range(lo, end + 1):
                    cand = (vals[i - alo], i)
                    if cand < best:
                        best = cand
                # full middle segments
                for seg in range(lseg + 1, rseg):
                    val, pos = segmins[seg]
                    if (val, pos) < best:
                        best = (val, pos)
                if rseg == lseg:
                    # entire query inside this segment: answer directly
                    home = owner_of_index(qi, self.nq, v)
                    by_dest.setdefault(home, []).extend(("A", qi, best[1]))
                else:
                    by_dest.setdefault(rseg, []).extend(
                        ("P", qi, hi, best[0], best[1])
                    )
            ctx.charge(
                sum(1 for _ in st["pending"]) * max(1, v)
                + len(st["vals"])
            )
            ctx.send_all(by_dest)
            st["pending"] = []
        elif ctx.step == 3:
            # Right-endpoint vps finish with their prefix part; home vps
            # may already receive direct answers.
            by_dest: dict[int, list] = {}
            alo, vals = st["alo"], st["vals"]
            for m in ctx.incoming:
                it = iter(m.payload)
                for tag in it:
                    if tag == "A":
                        qi, pos = next(it), next(it)
                        st["answers"].append((qi, pos))
                    else:
                        qi, hi, bval, bpos = next(it), next(it), next(it), next(it)
                        best = (bval, bpos)
                        for i in range(alo, hi + 1):
                            cand = (vals[i - alo], i)
                            if cand < best:
                                best = cand
                        home = owner_of_index(qi, self.nq, ctx.nprocs)
                        by_dest.setdefault(home, []).extend(("A", qi, best[1]))
            ctx.charge(len(st["vals"]))
            ctx.send_all(by_dest)
        else:
            for m in ctx.incoming:
                it = iter(m.payload)
                for tag in it:
                    assert tag == "A"
                    qi, pos = next(it), next(it)
                    st["answers"].append((qi, pos))
            st["answers"].sort()
            ctx.vote_halt()

    def output(self, pid: int, state) -> list[tuple[int, int]]:
        return sorted(state["answers"])
