"""CGM Euler tour construction (Table 1, Group C, "Euler tour (tree)").

Given a rooted tree, build the successor function of its Euler tour: every
tree edge ``{u, v}`` contributes the two directed arcs ``u->v`` and ``v->u``,
and the tour successor of arc ``(u, v)`` is ``(v, w)`` where ``w`` follows
``u`` in the circular ordering of ``v``'s neighbours.  The arc closing the
tour back into the root is made the list *tail* (self-loop), so the result
feeds directly into :class:`~repro.algorithms.graphs.listranking.CGMListRanking`
— ranking the tour with suitable arc weights yields depths, preorder numbers
and subtree sizes (see :mod:`repro.algorithms.graphs.treealgos`).

Three communication rounds (``lambda = O(1)``):

0. every vp routes each of its arcs ``(u, v)`` to the owner of ``v``
   (building the adjacency structure where it is needed);
1. owners compute, for each arriving arc, the cyclic-next neighbour of
   ``v`` and reply to the arc's home vp;
2. home vps record the successor arc ids and halt.

Arc ids: input edge ``k = (parent, child)`` yields arc ``2k`` (down,
``parent->child``) and arc ``2k+1`` (up, ``child->parent``); arcs are
block-distributed by id.
"""

from __future__ import annotations

from typing import Sequence

from ...bsp.collectives import owner_of_index, share_bounds
from ...bsp.program import BSPAlgorithm, VPContext

__all__ = ["CGMEulerTourSuccessor", "arc_endpoints"]


def arc_endpoints(arc: int, edges: Sequence[tuple[int, int]]) -> tuple[int, int]:
    """(from, to) endpoints of arc ``arc`` under the 2k/2k+1 id scheme."""
    parent, child = edges[arc // 2]
    return (parent, child) if arc % 2 == 0 else (child, parent)


class CGMEulerTourSuccessor(BSPAlgorithm):
    """Compute ``etsucc[arc]`` for all ``2*(n-1)`` arcs of a rooted tree.

    Parameters
    ----------
    edges:
        Tree edges as ``(parent, child)`` pairs; node ids are arbitrary
        non-negative ints; ``root`` must have no parent.
    root:
        The root node (tour starts and ends here).
    v:
        Number of virtual processors.

    Output ``j`` is a list of ``(arc, succ_arc)`` pairs for vp ``j``'s arcs;
    the tail arc (the last ``x -> root`` arc of the tour) maps to itself.
    """

    LAMBDA = 3

    def __init__(
        self,
        edges: Sequence[tuple[int, int]],
        root: int,
        v: int,
        oriented: bool = True,
    ):
        """With ``oriented=False`` the edge pairs may be arbitrarily directed
        (an unrooted tree); the tour still starts and ends at ``root``, and
        the first-visited direction of each edge is the downward one — the
        basis of the :func:`~repro.algorithms.graphs.biconnectivity.root_tree`
        driver."""
        self.edges = [tuple(e) for e in edges]
        self.root = root
        self.v = v
        self.narcs = 2 * len(edges)
        nodes = {root}
        for a, b in self.edges:
            nodes.add(a)
            nodes.add(b)
        if oriented:
            children = {c for _p, c in edges}
            if root in children:
                raise ValueError(f"root {root} appears as a child")
            parents = {}
            for p_, c in edges:
                if c in parents:
                    raise ValueError(f"node {c} has two parents")
                parents[c] = p_
        self.nnodes = len(nodes)

    def context_size(self) -> int:
        return 1024 + 32 * (4 * -(-max(self.narcs, 1) // self.v))

    def comm_bound(self) -> int:
        return 256 + 8 * (4 * -(-max(self.narcs, 1) // self.v))

    def initial_state(self, pid: int, nprocs: int):
        lo, hi = share_bounds(self.narcs, nprocs, pid)
        return {"lo": lo, "hi": hi, "succ": {}}

    def _owner_of_node(self, node: int, v: int) -> int:
        # Nodes are hashed onto vps (node ids need not be dense).
        return node % v

    def superstep(self, ctx: VPContext) -> None:
        st = ctx.state
        if ctx.step == 0:
            # Route each local arc (u, v) to the owner of its head v.
            by_dest: dict[int, list] = {}
            for arc in range(st["lo"], st["hi"]):
                u, vv = arc_endpoints(arc, self.edges)
                by_dest.setdefault(self._owner_of_node(vv, ctx.nprocs), []).extend(
                    (arc, u, vv)
                )
            ctx.charge(st["hi"] - st["lo"])
            ctx.send_all(by_dest)
        elif ctx.step == 1:
            # Build the adjacency rings of the nodes this vp owns, then
            # answer next-arc queries.  The ring of node v is its neighbour
            # list in sorted order; out-arc ids are reconstructed from the
            # incoming arcs themselves (arc (u,v) pairs with arc (v,u) = arc^1).
            arrivals = []  # (arc, u, v) with head v owned here
            for m in ctx.incoming:
                it = iter(m.payload)
                for arc in it:
                    arrivals.append((arc, next(it), next(it)))
            # adjacency: for node v, neighbours u with the arc id of v->u.
            # arc (u, v) has partner (v, u) = arc ^ 1.
            adj: dict[int, list[tuple[int, int]]] = {}
            for arc, u, vv in arrivals:
                adj.setdefault(vv, []).append((u, arc ^ 1))
            for vv in adj:
                adj[vv].sort()
            by_dest: dict[int, list] = {}
            for arc, u, vv in arrivals:
                ring = adj[vv]
                idx = next(i for i, (nb, _a) in enumerate(ring) if nb == u)
                nxt_arc = ring[(idx + 1) % len(ring)][1]
                # The tour ends when it would re-enter the root through the
                # ring's wrap-around: that arc becomes the list tail.
                if vv == self.root and (idx + 1) == len(ring):
                    nxt_arc = arc
                home = owner_of_index(arc, self.narcs, ctx.nprocs)
                by_dest.setdefault(home, []).extend((arc, nxt_arc))
            ctx.charge(len(arrivals))
            ctx.send_all(by_dest)
        else:
            for m in ctx.incoming:
                it = iter(m.payload)
                for arc in it:
                    st["succ"][arc] = next(it)
            ctx.charge(len(st["succ"]))
            ctx.vote_halt()

    def output(self, pid: int, state) -> list[tuple[int, int]]:
        return sorted(state["succ"].items())
