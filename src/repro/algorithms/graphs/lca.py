"""Batched lowest common ancestors (Table 1, Group C, "Lowest common ancestor").

The classical reduction: the LCA of ``u`` and ``v`` is the minimum-depth
node on the Euler tour between the first occurrences of ``u`` and ``v``.
The driver composes three CGM algorithms —

1. :class:`~repro.algorithms.graphs.eulertour.CGMEulerTourSuccessor`
   (tour construction, ``lambda = O(1)``),
2. :class:`~repro.algorithms.graphs.listranking.CGMListRanking`
   (tour positions and prefix depths, ``lambda = O(log p)``),
3. :class:`~repro.algorithms.graphs.rmq.CGMBatchedRMQ`
   (range minima over the depth sequence, ``lambda = O(1)``)

— so the generated EM algorithm inherits the Group C complexity row.  Like
the other drivers it accepts a ``run`` callable to execute on the reference
runner (default) or through an EM engine.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ...bsp.runner import run_reference
from .eulertour import arc_endpoints
from .rmq import CGMBatchedRMQ
from .treealgos import _prefix_inclusive, _ranks, _tour_successors

__all__ = ["batched_lca"]


def _default_run(alg, v):
    return run_reference(alg, v)[0]


def batched_lca(
    edges: Sequence[tuple[int, int]],
    root: int,
    queries: Sequence[tuple[int, int]],
    v: int,
    run: Callable = _default_run,
) -> list[int]:
    """LCA of every query pair in the rooted tree given by ``edges``.

    ``edges`` are ``(parent, child)`` pairs; node ids must be the integers
    ``0..n-1`` with ``root`` among them.  Returns ``answers[i]`` = LCA of
    ``queries[i]``.
    """
    n = len(edges) + 1
    if n == 1:
        return [root] * len(queries)

    succ = _tour_successors(edges, root, v, run)
    narcs = len(succ)

    # Tour positions (0-based along the tour) and depth-after-arc values.
    pos_ranks = _ranks(succ, v, run)  # unit weights
    positions = [narcs - 1 - r for r in pos_ranks]
    weights = [1 if a % 2 == 0 else -1 for a in range(narcs)]
    depth_ranks = _ranks(succ, v, run, values=weights)
    depth_after = _prefix_inclusive(succ, weights, depth_ranks)

    # The tour visit sequence: entry t (for t >= 1) is the node reached by
    # the arc at position t-1; entry 0 is the root.  The depth sequence is
    # depth_after over arcs in position order, prefixed with depth 0.
    arc_at = [0] * narcs
    for a, p in enumerate(positions):
        arc_at[p] = a
    visit_node = [root] + [arc_endpoints(arc_at[p], edges)[1] for p in range(narcs)]
    depth_seq = [0] + [depth_after[arc_at[p]] for p in range(narcs)]

    # First occurrence of each node in the visit sequence: the root at 0,
    # node u at position(down-arc into u) + 1.
    first = {root: 0}
    for k, (_p, child) in enumerate(edges):
        first[child] = positions[2 * k] + 1

    rmq_queries = []
    for a, b in queries:
        fa, fb = first[a], first[b]
        rmq_queries.append((min(fa, fb), max(fa, fb)))

    answers_pos = {}
    for part in run(CGMBatchedRMQ(depth_seq, rmq_queries, v), v):
        for qi, p in part:
            answers_pos[qi] = p
    return [visit_node[answers_pos[qi]] for qi in range(len(queries))]
