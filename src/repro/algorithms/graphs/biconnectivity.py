"""Biconnected components via the Tarjan–Vishkin reduction (Table 1, Group C).

The classical parallel technique, composed entirely from this package's CGM
building blocks — which is exactly how the paper envisages Group C rows
("Ear and open ear decomposition, Biconnected components"):

1. a **spanning tree** of the graph (:class:`CGMSpanningForest`),
2. **rooting** it — an Euler tour over the unrooted tree; the direction of
   each edge visited first is the downward one (:func:`root_tree`),
3. **preorder numbers** and **subtree sizes** (Euler tour + list ranking),
4. per-vertex extremes ``m(u)/M(u)`` over incident non-tree edges, then
   ``low(v)/high(v)`` — preorder extremes over each subtree — by **batched
   range-minimum queries** over the preorder sequence
   (:class:`CGMBatchedRMQ`),
5. the Tarjan–Vishkin **auxiliary graph** on the tree edges, whose
   connected components (:class:`CGMConnectedComponents`) are the
   biconnected components of ``G``.

Every constituent is a CGM algorithm with ``lambda = O(1)`` or
``O(log p)``, so the composition inherits the Group C complexity row.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ...bsp.runner import run_reference
from .connectivity import CGMConnectedComponents, CGMSpanningForest
from .eulertour import CGMEulerTourSuccessor
from .listranking import CGMListRanking
from .rmq import CGMBatchedRMQ
from .treealgos import preorder_numbers, subtree_sizes

__all__ = ["root_tree", "biconnected_components"]


def _default_run(alg, v):
    return run_reference(alg, v)[0]


def root_tree(
    edges: Sequence[tuple[int, int]],
    root: int,
    v: int,
    run: Callable = _default_run,
) -> list[tuple[int, int]]:
    """Orient an unrooted tree: return ``(parent, child)`` pairs rooted at ``root``.

    The Euler tour from ``root`` visits each edge's downward direction
    first; one tour construction plus one list ranking.
    """
    if not edges:
        return []
    narcs = 2 * len(edges)
    succ = [0] * narcs
    for part in run(CGMEulerTourSuccessor(edges, root, v, oriented=False), v):
        for arc, nxt in part:
            succ[arc] = nxt
    ranks = [0] * narcs
    for part in run(CGMListRanking(succ, v), v):
        for node, r in part:
            ranks[node] = r
    # Larger rank = earlier tour position.
    rooted = []
    for k, (a, b) in enumerate(edges):
        if ranks[2 * k] > ranks[2 * k + 1]:
            rooted.append((a, b))  # a -> b visited first: a is the parent
        else:
            rooted.append((b, a))
    return rooted


def biconnected_components(
    nverts: int,
    edges: Sequence[tuple[int, int]],
    v: int,
    run: Callable = _default_run,
) -> list[frozenset[tuple[int, int]]]:
    """Biconnected components of an undirected graph, as edge sets.

    ``edges`` are undirected pairs over vertices ``0..nverts-1``; the graph
    may be disconnected (each component is processed by the same machinery —
    the spanning forest and the auxiliary graph handle it uniformly).
    Self-loops are rejected; parallel edges are merged.

    Returns a list of frozensets of (normalized) edges, one per biconnected
    component, in deterministic order.
    """
    edges = sorted({(min(a, b), max(a, b)) for a, b in edges})
    for a, b in edges:
        if a == b:
            raise ValueError(f"self-loop ({a},{b}) not allowed")
    if not edges:
        return []

    # 1. spanning forest
    forest_ids = run(CGMSpanningForest(nverts, edges, v), v)[0]
    tree_edges = [edges[i] for i in forest_ids]
    tree_set = set(tree_edges)
    nontree = [e for e in edges if e not in tree_set]

    # 2. root every tree of the forest.  Components are independent; we
    # root each at its smallest vertex.  (The drivers need a single tree,
    # so we link the forest roots under a virtual super-root: a standard
    # trick that adds |roots| edges and changes no biconnectivity — the
    # super-root's edges are bridges and are dropped at the end.)
    comp_label = {}
    for part in run(CGMConnectedComponents(nverts, tree_edges, v), v):
        comp_label.update(dict(part))
    roots = sorted({comp_label[u] for u in range(nverts)})
    superroot = nverts
    linked = list(tree_edges) + [(superroot, r) for r in roots]
    rooted = root_tree(linked, superroot, v, run)

    # 3. preorder and subtree sizes on the rooted (super-)tree
    pre = preorder_numbers(rooted, superroot, v, run)
    size = subtree_sizes(rooted, superroot, v, run)
    parent = {c: p for p, c in rooted}

    # 4. m(u)/M(u): preorder extremes over {u} and non-tree neighbours;
    # low/high per vertex via RMQ over the preorder-ordered sequence.
    n_all = nverts + 1
    m_val = [pre[u] for u in range(n_all)]
    M_val = [pre[u] for u in range(n_all)]
    for a, b in nontree:
        m_val[a] = min(m_val[a], pre[b])
        m_val[b] = min(m_val[b], pre[a])
        M_val[a] = max(M_val[a], pre[b])
        M_val[b] = max(M_val[b], pre[a])
    # Sequence indexed by preorder position.
    by_pre = [0] * n_all
    for u in range(n_all):
        by_pre[pre[u]] = u
    m_seq = [m_val[by_pre[i]] for i in range(n_all)]
    M_neg_seq = [-M_val[by_pre[i]] for i in range(n_all)]
    queries = [(pre[u], pre[u] + size[u] - 1) for u in range(n_all)]
    low = [0] * n_all
    high = [0] * n_all
    for part in run(CGMBatchedRMQ(m_seq, queries, v), v):
        for qi, pos in part:
            low[qi] = m_seq[pos]
    for part in run(CGMBatchedRMQ(M_neg_seq, queries, v), v):
        for qi, pos in part:
            high[qi] = -M_neg_seq[pos]

    # 5. auxiliary graph on tree edges: vertex of Phi = child endpoint.
    def is_ancestor(u: int, w: int) -> bool:
        return pre[u] <= pre[w] < pre[u] + size[u]

    phi_edges = []
    for a, b in nontree:
        u, w = (a, b) if pre[a] < pre[b] else (b, a)
        if not is_ancestor(u, w):
            # Rule 1: unrelated endpoints join their parent edges.
            phi_edges.append((u, w))
    for p_, c in rooted:
        if p_ == superroot:
            continue
        # Rule 2: tree edge (p, c) joins (parent(p), p) iff subtree(c)
        # escapes p's subtree via a non-tree edge.
        if parent[p_] == superroot:
            continue
        if low[c] < pre[p_] or high[c] >= pre[p_] + size[p_]:
            phi_edges.append((c, p_))

    labels = {}
    for part in run(CGMConnectedComponents(n_all, phi_edges, v), v):
        labels.update(dict(part))

    # 6. assemble components: tree edge (p, c) belongs to labels[c];
    # non-tree edge {u, w} (w deeper) belongs to labels[w].
    comps: dict[int, set] = {}
    for p_, c in rooted:
        if p_ == superroot:
            continue
        comps.setdefault(labels[c], set()).add((min(p_, c), max(p_, c)))
    for a, b in nontree:
        w = a if pre[a] > pre[b] else b
        comps.setdefault(labels[w], set()).add((a, b))
    return sorted(
        (frozenset(es) for es in comps.values()),
        key=lambda s: sorted(s),
    )
