"""Ear decomposition of 2-edge-connected graphs (Table 1, Group C).

The classical parallel construction (Maon–Schieber–Vishkin), composed from
this package's CGM building blocks:

1. spanning tree + rooting (:func:`root_tree` over
   :class:`CGMSpanningForest`),
2. depths and LCAs of the non-tree edges (:func:`tree_depths`,
   :func:`batched_lca`),
3. every non-tree edge ``e = {x, y}`` gets the label
   ``(depth(lca(e)), serial)`` and defines the ear
   ``x -> lca -> y`` plus ``e`` itself,
4. each tree edge belongs to the smallest-labelled non-tree edge whose
   tree path covers it.  Key observation: a non-tree edge covering the tree
   edge ``(p(v), v)`` has its LCA *strictly above* ``v``, hence a strictly
   smaller depth-label than any non-tree edge internal to ``subtree(v)`` —
   so the covering minimum equals the subtree minimum of the per-vertex
   label minima, a batched range-minimum query over the preorder sequence
   (:class:`CGMBatchedRMQ`), exactly as in
   :mod:`~repro.algorithms.graphs.biconnectivity`.

A tree edge covered by no non-tree edge is a bridge; the input is then not
2-edge-connected and a :class:`ValueError` is raised.

Every stage is a CGM algorithm with ``lambda = O(1)`` or ``O(log p)`` —
the Group C row.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ...bsp.runner import run_reference
from .biconnectivity import root_tree
from .connectivity import CGMSpanningForest
from .lca import batched_lca
from .rmq import CGMBatchedRMQ
from .treealgos import preorder_numbers, subtree_sizes, tree_depths

__all__ = ["ear_decomposition"]


def _default_run(alg, v):
    return run_reference(alg, v)[0]


def ear_decomposition(
    nverts: int,
    edges: Sequence[tuple[int, int]],
    v: int,
    run: Callable = _default_run,
) -> list[list[tuple[int, int]]]:
    """Decompose a 2-edge-connected graph into ears.

    Returns a list of ears; each ear is an edge list forming a simple path
    (or, for the first ear, a cycle).  Ear 0 is a cycle through the root;
    every later ear's endpoints lie on earlier ears.  Raises
    :class:`ValueError` if the graph has a bridge (not 2-edge-connected).
    """
    edges = sorted({(min(a, b), max(a, b)) for a, b in edges})
    for a, b in edges:
        if a == b:
            raise ValueError(f"self-loop ({a},{b}) not allowed")
    if not edges:
        return []

    # 1. spanning tree, rooted at vertex 0.
    forest_ids = run(CGMSpanningForest(nverts, edges, v), v)[0]
    tree_edges = [edges[i] for i in forest_ids]
    if len(tree_edges) != nverts - 1:
        raise ValueError("graph is disconnected; ears need 2-edge-connectivity")
    tree_set = set(tree_edges)
    nontree = [e for e in edges if e not in tree_set]
    if not nontree:
        raise ValueError("a tree has bridges everywhere; not 2-edge-connected")
    rooted = root_tree(tree_edges, 0, v, run)
    parent = {c: p for p, c in rooted}

    # 2. depths + LCA labels of the non-tree edges.
    depth = tree_depths(rooted, 0, v, run)
    lcas = batched_lca(rooted, 0, nontree, v, run)
    nlabels = len(nontree)
    labels = [depth[lcas[i]] * (nlabels + 1) + i for i in range(nlabels)]

    # 3. per-vertex minimum incident label; subtree minima by RMQ.
    pre = preorder_numbers(rooted, 0, v, run)
    size = subtree_sizes(rooted, 0, v, run)
    INF = (max(depth.values()) + 2) * (nlabels + 1)
    h = [INF] * nverts
    for i, (x, y) in enumerate(nontree):
        h[x] = min(h[x], labels[i])
        h[y] = min(h[y], labels[i])
    by_pre = [0] * nverts
    for u in range(nverts):
        by_pre[pre[u]] = u
    h_seq = [h[by_pre[i]] for i in range(nverts)]
    children = sorted(parent)  # every non-root vertex has a tree edge
    queries = [(pre[c], pre[c] + size[c] - 1) for c in children]
    ear_of_tree_edge: dict[tuple[int, int], int] = {}
    for part in run(CGMBatchedRMQ(h_seq, queries, v), v):
        for qi, pos in part:
            c = children[qi]
            label = h_seq[pos]
            if label == INF or label // (nlabels + 1) >= depth[c]:
                raise ValueError(
                    f"tree edge ({parent[c]},{c}) is a bridge; "
                    "graph is not 2-edge-connected"
                )
            e = (min(parent[c], c), max(parent[c], c))
            ear_of_tree_edge[e] = label

    # 4. assemble: ear i = its non-tree edge plus every tree edge whose
    # minimum covering label is labels[i]; emitted in label order.  The
    # classical theorem guarantees each such set is a simple path (the
    # smallest-labelled ear a cycle) — verified structurally by the tests.
    by_label: dict[int, list[tuple[int, int]]] = {}
    for e, label in ear_of_tree_edge.items():
        by_label.setdefault(label, []).append(e)
    ears: list[list[tuple[int, int]]] = []
    for i in sorted(range(nlabels), key=lambda i: labels[i]):
        x, y = nontree[i]
        ears.append(
            sorted(by_label.get(labels[i], [])) + [(min(x, y), max(x, y))]
        )
    return ears
