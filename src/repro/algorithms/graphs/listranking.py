"""CGM list ranking (Table 1, Group C) — contract, solve small, expand.

The coarse-grained list-ranking strategy of Cáceres et al. [11]: repeatedly
contract the list by randomized independent-set absorption until the reduced
list fits in a single virtual processor's memory (``O(n/v)`` nodes), solve it
locally there, then undo the contractions in reverse order.  Each contraction
round removes an expected constant fraction of the nodes, so ``O(log v)``
rounds suffice to shrink by the factor ``v`` — the ``lambda = O(log p)``
behaviour of Table 1's Group C (compare the PRAM baseline's
``Theta(log n)`` full sort-and-scan passes).

Per node ``u`` the algorithm maintains a successor ``succ(u)`` and an edge
weight ``w(u)`` (the weight of the edge ``u -> succ(u)``); the *rank* of
``u`` is the total edge weight on the path from ``u`` to the list tail.
With unit weights that is the distance to the tail; with arbitrary weights
this computes suffix sums over the list — the primitive the Euler-tour
applications (:mod:`repro.algorithms.graphs.treealgos`) build on.

Contraction round ``r``: every node gets a deterministic pseudo-random coin
``coin(u, r)``; a node ``u`` with ``coin = 1`` whose successor ``s`` has
``coin = 0`` (and is not the tail) *absorbs* ``s``: ``succ(u) <- succ(s)``
and ``w(u) <- w(u) + w(s)``; ``s`` records ``(round, x = succ(s), w(s))``
for the expansion phase, where its rank becomes ``rank(x) + w(s)``.

Contexts are stored as parallel lists indexed by ``node - lo`` — an order
of magnitude tighter under pickling than per-node dicts, which directly
reduces the generated EM algorithm's I/O volume.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ...bsp.collectives import owner_of_index, share_bounds
from ...bsp.program import BSPAlgorithm, VPContext

__all__ = ["CGMListRanking"]


def _coin(node: int, rnd: int, seed: int) -> int:
    """Deterministic pseudo-random coin, computable by every vp without
    communication (both endpoints of an edge can evaluate it)."""
    x = (node * 0x9E3779B97F4A7C15 + rnd * 0xBF58476D1CE4E5B9 + seed * 0x94D049BB) \
        & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    x = (x * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    return (x >> 17) & 1


def _coin_arr(nodes: np.ndarray, rnd: int, seed: int) -> np.ndarray:
    """:func:`_coin` over a node array — bit-identical, uint64 wraparound
    plays the role of the ``& 0xFFFF...`` masks (mod-2**64 arithmetic is
    associative, so hoisting the round/seed term out is exact)."""
    add = np.uint64(
        (rnd * 0xBF58476D1CE4E5B9 + seed * 0x94D049BB) & 0xFFFFFFFFFFFFFFFF
    )
    with np.errstate(over="ignore"):
        x = nodes.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15) + add
        x ^= x >> np.uint64(31)
        x *= np.uint64(0x9E3779B97F4A7C15)
    return ((x >> np.uint64(17)) & np.uint64(1)).astype(np.int64)


class CGMListRanking(BSPAlgorithm):
    """Rank every node of a linked list given as a ``succ`` array.

    Parameters
    ----------
    succ:
        ``succ[i]`` is node ``i``'s successor; the tail satisfies
        ``succ[tail] == tail``.
    v:
        Number of virtual processors (nodes are block-distributed by id).
    values:
        Optional per-node edge weights (``w(u)`` for the edge out of ``u``);
        default is 1 for every non-tail node.  The tail's value is ignored.
    seed:
        Seed of the contraction coins.

    Output ``j`` is the list of ``(node, rank)`` pairs for vp ``j``'s nodes.

    The ``"vector"`` record mode swaps the per-node coin and removal-round
    scans for numpy kernels; contexts and message payloads are untouched
    (the mixed-tag payloads are not codec-encodable), so golden identity
    with the object plane is structural.
    """

    RECORD_MODES = ("object", "vector")

    def __init__(
        self,
        succ: Sequence[int],
        v: int,
        values: Sequence[Any] | None = None,
        seed: int = 12345,
    ):
        n = len(succ)
        if values is not None and len(values) != n:
            raise ValueError("values must have one entry per node")
        tails = [i for i in range(n) if succ[i] == i]
        if n and len(tails) != 1:
            raise ValueError(f"expected exactly one tail (succ[t]==t), got {len(tails)}")
        self.succ = list(succ)
        self.values = list(values) if values is not None else None
        self.v = v
        self.n = n
        self.seed = seed
        # The reduced list must fit in one vp's memory.
        self.gather_threshold = max(64, 2 * -(-n // v), 2 * v)

    # -- resource declarations -----------------------------------------------------

    def context_size(self) -> int:
        per_node = 8
        return 1024 + per_node * (2 * -(-self.n // self.v) + self.gather_threshold)

    def comm_bound(self) -> int:
        per_node = 4
        return 256 + per_node * (2 * -(-self.n // self.v) + self.gather_threshold)

    # -- state -----------------------------------------------------------------------

    def initial_state(self, pid: int, nprocs: int):
        # Parallel lists indexed by (node - lo): far tighter under pickle
        # than per-node dicts, and the simulation's I/O tracks pickle size.
        lo, hi = share_bounds(self.n, nprocs, pid)
        succ, w = [], []
        for i in range(lo, hi):
            is_tail = self.succ[i] == i
            succ.append(self.succ[i])
            w.append(0 if is_tail else (self.values[i] if self.values else 1))
        m = hi - lo
        return {
            "lo": lo,
            "m": m,
            "succ": succ,
            "w": w,
            "active": [True] * m,
            "rem_round": [-1] * m,  # contraction round at which removed
            "rem_x": [0] * m,  # successor at removal
            "rem_w": [0] * m,  # weight at removal
            "rank": [None] * m,
            "phase": "C1",
            "round": 0,
            "R": None,  # contraction rounds executed (set at gather)
            "eround": None,
        }

    # -- superstep machine ------------------------------------------------------------

    def superstep(self, ctx: VPContext) -> None:
        phase = ctx.state["phase"]
        if phase == "C1":
            self._contract_request(ctx)
        elif phase == "C2":
            self._contract_reply(ctx)
        elif phase == "C3":
            self._contract_apply(ctx)
        elif phase == "SOLVE":
            self._solve(ctx)
        elif phase == "EINIT":
            self._expand_init(ctx)
        elif phase == "EB":
            self._expand_reply(ctx)
        elif phase == "EC":
            self._expand_apply(ctx)
        elif phase == "DONE":
            ctx.vote_halt()
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown phase {phase}")

    def _owner(self, node: int, v: int) -> int:
        return owner_of_index(node, self.n, v)

    def _contract_request(self, ctx: VPContext) -> None:
        st = ctx.state
        rnd, lo = st["round"], st["lo"]
        by_dest: dict[int, list] = {}
        if self.record_mode == "vector":
            active_idx = np.flatnonzero(np.asarray(st["active"], bool))
            nactive = len(active_idx)
            u_arr = active_idx + lo
            s_arr = np.asarray(st["succ"], np.int64)[active_idx]
            nontail = s_arr != u_arr
            u_arr, s_arr = u_arr[nontail], s_arr[nontail]
            hit = (_coin_arr(u_arr, rnd, self.seed) == 1) & (
                _coin_arr(s_arr, rnd, self.seed) == 0
            )
            for u, s in zip(u_arr[hit].tolist(), s_arr[hit].tolist()):
                by_dest.setdefault(self._owner(s, ctx.nprocs), []).extend(
                    ("A", u, s)
                )
        else:
            nactive = 0
            for li in range(st["m"]):
                if not st["active"][li]:
                    continue
                nactive += 1
                u = lo + li
                s = st["succ"][li]
                if s == u:
                    continue  # tail
                if _coin(u, rnd, self.seed) == 1 and _coin(s, rnd, self.seed) == 0:
                    by_dest.setdefault(self._owner(s, ctx.nprocs), []).extend(
                        ("A", u, s)
                    )
        # Piggyback the active count for vp 0's gather decision.
        by_dest.setdefault(0, []).extend(("N", ctx.pid, nactive))
        ctx.charge(st["m"])
        ctx.send_all(by_dest)
        st["phase"] = "C2"

    def _contract_reply(self, ctx: VPContext) -> None:
        st = ctx.state
        rnd, lo = st["round"], st["lo"]
        by_dest: dict[int, list] = {}
        total_active = 0
        for m in ctx.incoming:
            it = iter(m.payload)
            for tag in it:
                if tag == "A":
                    u, s = next(it), next(it)
                    li = s - lo
                    if st["active"][li] and st["succ"][li] != s:
                        # s is absorbed: record undo info, deactivate.
                        st["rem_round"][li] = rnd
                        st["rem_x"][li] = st["succ"][li]
                        st["rem_w"][li] = st["w"][li]
                        st["active"][li] = False
                        by_dest.setdefault(self._owner(u, ctx.nprocs), []).extend(
                            ("R", u, st["succ"][li], st["w"][li])
                        )
                elif tag == "N":
                    _pid, cnt = next(it), next(it)
                    total_active += cnt
        if ctx.pid == 0:
            decision = "G" if total_active <= self.gather_threshold else "C"
            for dest in range(ctx.nprocs):
                ctx.send(dest, ["D", decision])
        ctx.charge(st["m"])
        ctx.send_all(by_dest)
        st["phase"] = "C3"

    def _contract_apply(self, ctx: VPContext) -> None:
        st = ctx.state
        lo = st["lo"]
        decision = None
        for m in ctx.incoming:
            it = iter(m.payload)
            for tag in it:
                if tag == "R":
                    u, x, w_s = next(it), next(it), next(it)
                    li = u - lo
                    st["succ"][li] = x
                    st["w"][li] += w_s
                elif tag == "D":
                    decision = next(it)
        ctx.charge(st["m"])
        if decision == "G":
            # Ship the reduced list to vp 0 for the sequential solve.
            st["R"] = st["round"] + 1
            payload = []
            for li in range(st["m"]):
                if st["active"][li]:
                    payload.extend((lo + li, st["succ"][li], st["w"][li]))
            ctx.send(0, payload)
            st["phase"] = "SOLVE"
        else:
            st["round"] += 1
            self._contract_request(ctx)  # emits C1 messages; sets phase C2

    def _solve(self, ctx: VPContext) -> None:
        st = ctx.state
        if ctx.pid == 0:
            reduced: dict[int, tuple[int, Any]] = {}
            for m in ctx.incoming:
                it = iter(m.payload)
                for u in it:
                    reduced[u] = (next(it), next(it))
            ctx.charge(len(reduced))
            # Rank the reduced list by walking backwards from the tail.
            pred: dict[int, int] = {}
            tail = None
            for u, (s, _w) in reduced.items():
                if s == u:
                    tail = u
                else:
                    pred[s] = u
            ranks: dict[int, Any] = {}
            if tail is not None:
                ranks[tail] = 0
                cur = tail
                while cur in pred:
                    p_ = pred[cur]
                    ranks[p_] = ranks[cur] + reduced[p_][1]
                    cur = p_
            if len(ranks) != len(reduced):  # pragma: no cover - defensive
                raise AssertionError("reduced list is not a single chain")
            by_dest: dict[int, list] = {}
            for u, r in ranks.items():
                by_dest.setdefault(self._owner(u, ctx.nprocs), []).extend((u, r))
            ctx.send_all(by_dest)
        st["phase"] = "EINIT"

    def _expand_init(self, ctx: VPContext) -> None:
        st = ctx.state
        for m in ctx.incoming:
            it = iter(m.payload)
            for u in it:
                st["rank"][u - st["lo"]] = next(it)
        st["eround"] = st["R"] - 1
        self._expand_request(ctx)

    def _expand_request(self, ctx: VPContext) -> None:
        """Emit rank requests for nodes removed in the current expansion round."""
        st = ctx.state
        if st["eround"] is not None and st["eround"] >= 0:
            er, lo = st["eround"], st["lo"]
            by_dest: dict[int, list] = {}
            if self.record_mode == "vector":
                removed = np.flatnonzero(
                    np.asarray(st["rem_round"], np.int64) == er
                ).tolist()
            else:
                removed = [
                    li for li in range(st["m"]) if st["rem_round"][li] == er
                ]
            for li in removed:
                x = st["rem_x"][li]
                by_dest.setdefault(self._owner(x, ctx.nprocs), []).extend(
                    (lo + li, x)
                )
            ctx.charge(st["m"])
            ctx.send_all(by_dest)
            # Even with zero local requests the vp must stay in lockstep:
            # other vps may have requests for *it* in this round.
            st["phase"] = "EB"
            return
        st["phase"] = "DONE"
        ctx.vote_halt()

    def _expand_reply(self, ctx: VPContext) -> None:
        st = ctx.state
        lo = st["lo"]
        by_dest: dict[int, list] = {}
        for m in ctx.incoming:
            it = iter(m.payload)
            for s in it:
                x = next(it)
                r = st["rank"][x - lo]
                if r is None:  # pragma: no cover - defensive
                    raise AssertionError(f"rank of {x} unknown during expansion")
                by_dest.setdefault(self._owner(s, ctx.nprocs), []).extend((s, r))
        ctx.charge(st["m"])
        ctx.send_all(by_dest)
        st["phase"] = "EC"

    def _expand_apply(self, ctx: VPContext) -> None:
        st = ctx.state
        lo = st["lo"]
        for m in ctx.incoming:
            it = iter(m.payload)
            for s in it:
                rank_x = next(it)
                li = s - lo
                st["rank"][li] = rank_x + st["rem_w"][li]
        st["eround"] -= 1
        self._expand_request(ctx)

    def output(self, pid: int, state) -> list[tuple[int, Any]]:
        lo = state["lo"]
        return [(lo + li, state["rank"][li]) for li in range(state["m"])]
