"""Tree computations via Euler tour + list ranking (Table 1, Group C).

The classical applications of the Euler-tour technique: node depths, preorder
numbers, and subtree sizes all reduce to ranking the Euler tour with suitable
arc weights.  Lowest common ancestors reduce further to range-minimum queries
over the depth sequence of the tour (see
:class:`~repro.algorithms.graphs.rmq.CGMBatchedRMQ`).

Each driver composes two or three CGM algorithms; since every constituent has
``lambda = O(log p)`` (list ranking) or ``lambda = O(1)`` (tour construction,
RMQ), the compositions inherit the Group C complexity row.  Drivers accept a
``run`` callable so the same code executes on the in-memory reference runner
(default) or through either EM simulation engine::

    run = lambda alg, v: simulate(alg, machine, v)[0]   # EM execution
    depths = tree_depths(edges, root, v, run=run)
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ...bsp.runner import run_reference
from .eulertour import CGMEulerTourSuccessor, arc_endpoints
from .listranking import CGMListRanking

__all__ = [
    "euler_tour_positions",
    "tree_depths",
    "preorder_numbers",
    "subtree_sizes",
]

Runner = Callable[[Any, int], list]


def _default_run(alg, v):
    return run_reference(alg, v)[0]


def _tour_successors(
    edges: Sequence[tuple[int, int]], root: int, v: int, run: Runner
) -> list[int]:
    """Euler-tour successor array over arc ids (tail maps to itself)."""
    narcs = 2 * len(edges)
    succ = [0] * narcs
    for part in run(CGMEulerTourSuccessor(edges, root, v), v):
        for arc, nxt in part:
            succ[arc] = nxt
    return succ


def _ranks(
    succ: list[int], v: int, run: Runner, values: Sequence | None = None
) -> list:
    ranks = [0] * len(succ)
    for part in run(CGMListRanking(succ, v, values=values), v):
        for node, r in part:
            ranks[node] = r
    return ranks


def euler_tour_positions(
    edges: Sequence[tuple[int, int]], root: int, v: int, run: Runner = _default_run
) -> list[int]:
    """Position (0-based) of every arc in the Euler tour.

    ``positions[arc]`` is the arc's index along the tour starting at the
    root's first departure.
    """
    succ = _tour_successors(edges, root, v, run)
    ranks = _ranks(succ, v, run)  # unit weights: distance to tail
    narcs = len(succ)
    return [narcs - 1 - r for r in ranks]


def _prefix_inclusive(
    succ: list[int], weights: list, ranks: list
) -> list:
    """Prefix sums (inclusive) over the tour from suffix-sum ranks.

    ``rank(e)`` covers arcs ``e..tail`` excluding the tail's own weight, so
    ``prefix_incl(e) = S - rank(e) + w(e)`` with ``S = rank(head)``; the tail
    arc gets ``S + w(tail)``.
    """
    narcs = len(succ)
    tail = next(e for e in range(narcs) if succ[e] == e)
    heads = set(range(narcs)) - set(s for e, s in enumerate(succ) if s != e)
    head = heads.pop() if heads else tail
    S = ranks[head]
    out = [0] * narcs
    for e in range(narcs):
        out[e] = S + weights[e] if e == tail else S - ranks[e] + weights[e]
    return out


def tree_depths(
    edges: Sequence[tuple[int, int]], root: int, v: int, run: Runner = _default_run
) -> dict[int, int]:
    """Depth of every node (root = 0) via tour weights +1 (down) / -1 (up)."""
    succ = _tour_successors(edges, root, v, run)
    weights = [1 if arc % 2 == 0 else -1 for arc in range(len(succ))]
    ranks = _ranks(succ, v, run, values=weights)
    prefix = _prefix_inclusive(succ, weights, ranks)
    depths = {root: 0}
    for k, (_p, child) in enumerate(edges):
        depths[child] = prefix[2 * k]  # the down arc into `child`
    return depths


def preorder_numbers(
    edges: Sequence[tuple[int, int]], root: int, v: int, run: Runner = _default_run
) -> dict[int, int]:
    """Preorder number of every node (root = 0), via down-arc counting."""
    succ = _tour_successors(edges, root, v, run)
    weights = [1 if arc % 2 == 0 else 0 for arc in range(len(succ))]
    ranks = _ranks(succ, v, run, values=weights)
    prefix = _prefix_inclusive(succ, weights, ranks)
    order = {root: 0}
    for k, (_p, child) in enumerate(edges):
        order[child] = prefix[2 * k]
    return order


def subtree_sizes(
    edges: Sequence[tuple[int, int]], root: int, v: int, run: Runner = _default_run
) -> dict[int, int]:
    """Number of nodes in every node's subtree (the root's is ``n``)."""
    positions = euler_tour_positions(edges, root, v, run)
    nnodes = len(edges) + 1
    sizes = {root: nnodes}
    for k, (_p, child) in enumerate(edges):
        down, up = positions[2 * k], positions[2 * k + 1]
        sizes[child] = (up - down + 1) // 2
    return sizes
