"""Vectorized-plane helpers shared by the codec-eligible CGM algorithms.

Each function here is the numpy twin of a pure-Python helper in
:mod:`repro.bsp.collectives` and must agree with it *exactly* — the golden
matrix compares object- and vector-mode runs element for element.  The
equivalences relied on:

* ``np.sort`` on integers == ``list.sort()`` (same total order, and ties
  are indistinguishable values).
* ``np.searchsorted(items, splitters, side="left")`` on sorted inputs ==
  the cumulative ``bisect_left`` of ``partition_by_splitters``.
* ``np.argsort(kind="stable")`` grouping == dict ``setdefault``/append
  insertion order (stability preserves original order within a group).
* :func:`owners_of_indices` == ``owner_of_index`` mapped over an array.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

I64 = np.dtype("<i8")

__all__ = ["I64", "int64_array", "as_i64", "sample_positions", "owners_of_indices"]


def int64_array(data: Sequence[Any]) -> np.ndarray | None:
    """``data`` as a 1-D ``<i8`` array, or ``None`` if not *exactly* int64.

    This is the codec-eligibility gate: only data whose every record is a
    plain Python ``int`` (``bool`` excluded — its repr differs) within the
    int64 range, or an ndarray of a signed integer dtype, may run on the
    vectorized plane.  Anything else keeps the legacy object path with
    byte-identical behaviour.
    """
    if isinstance(data, np.ndarray):
        if data.ndim == 1 and data.dtype.kind == "i" and data.dtype.itemsize <= 8:
            return np.ascontiguousarray(data.astype(I64, copy=False))
        return None
    if isinstance(data, list):
        if not all(type(x) is int for x in data):
            return None
        try:
            return np.asarray(data, dtype=I64)
        except OverflowError:
            return None
    return None


def as_i64(payload: Any) -> np.ndarray:
    """A message payload as an ``<i8`` array.

    Vector-mode payloads arrive as ndarrays already; the empty-message
    marker (an empty list, from the one-empty-block convention) converts
    for free.
    """
    if isinstance(payload, np.ndarray):
        return payload
    return np.asarray(payload, dtype=I64)


def sample_positions(n: int, count: int) -> list[int]:
    """The index set :func:`~repro.bsp.collectives.regular_samples` picks."""
    if n == 0 or count <= 0:
        return []
    return sorted({min(n - 1, (i + 1) * n // (count + 1)) for i in range(count)})


def owners_of_indices(idx: np.ndarray, n: int, v: int) -> np.ndarray:
    """:func:`~repro.bsp.collectives.owner_of_index` over an index array."""
    base, extra = divmod(n, v)
    boundary = extra * (base + 1)
    # base == 0 makes the else-branch unreachable (boundary == n bounds every
    # index); max(base, 1) only keeps the dead lane division-safe.
    return np.where(
        idx < boundary,
        idx // (base + 1),
        extra + (idx - boundary) // max(base, 1),
    )
