"""FIG2 — reorganization of message blocks (Figure 2 / Algorithm 2).

Figure 2 shows SimulateRouting turning the randomly-scattered bucket blocks
(standard linked format) into per-destination standard consecutive format.
The benchmark measures the reorganization's parallel I/O operations against
the paper's bound ``O(l * v*gamma / (D*B))`` — i.e. linear in the number of
blocks divided by ``D`` — and verifies the output layout invariant.
"""

import random

import pytest

from repro.core.routing import simulate_routing
from repro.emio.disk import Block
from repro.emio.diskarray import DiskArray
from repro.emio.layout import RegionAllocator
from repro.emio.linked import LinkedBuckets

from .common import emit


def reorganize(nblocks: int, v: int, D: int, B: int, seed: int = 1):
    array = DiskArray(D, B)
    alloc = RegionAllocator(array)
    store = LinkedBuckets(array, alloc, D, lambda d: d * D // v, random.Random(seed))
    store.append_blocks(
        [Block(records=[i], dest=i % v, src=0, msg=i) for i in range(nblocks)]
    )
    write_ops = array.parallel_ops
    region, stats = simulate_routing(array, alloc, store, v, lambda d: d)
    return write_ops, stats, region


def test_fig2_reorganization_cost(benchmark):
    v, B = 64, 16
    rows = []
    for D in (1, 2, 4, 8):
        for nblocks in (256, 1024):
            write_ops, stats, region = reorganize(nblocks, v, D, B)
            bound = 4 * nblocks / D  # 2 phases x (read+write) per block / D
            rows.append(
                (
                    D,
                    nblocks,
                    write_ops,
                    stats.phase1_ops,
                    stats.phase2_ops,
                    f"{stats.io_ops / (nblocks / D):.2f}",
                    f"{stats.max_load_ratio:.2f}",
                )
            )
            assert stats.io_ops <= 2 * bound
            region.check_standard_consecutive()
    emit(
        "FIG2",
        "SimulateRouting: linked buckets -> standard consecutive format",
        ["D", "blocks", "write ops", "phase1 ops", "phase2 ops",
         "ops/(blocks/D)", "max load ratio"],
        rows,
    )
    benchmark(reorganize, 512, v, 4, B)


def test_fig2_output_readable_at_full_parallelism(benchmark):
    """After reorganization each destination's blocks read back fully packed."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    v, D, B = 32, 4, 16
    _, _, region = reorganize(512, v, D, B)
    array = region.array
    array.reset_stats()
    blocks = region.read_slots(list(range(8)))  # one group of destinations
    total = sum(len(bs) for bs in blocks)
    assert array.parallel_ops == -(-total // D)
