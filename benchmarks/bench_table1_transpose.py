"""T1-A-TRANS — Table 1, Group A, row "Matrix transpose".

Previous sequential EM result: ``Theta(G (n/BD) log min(M,r,c,n/B) /
log(M/B))``; the generated parallel EM algorithm: ``O~(G n/(pBD))`` —
transpose is just a fixed one-round ``h``-relation on a CGM, so the
simulation pays a constant number of data scans regardless of the matrix
shape.  The benchmark sweeps shapes at fixed ``n = r*c`` and compares with
the sort-based sequential baseline.
"""

import pytest

from repro import workloads
from repro.algorithms import CGMMatrixTranspose
from repro.baselines import EMTranspose
from repro.core.simulator import simulate
from repro.params import MachineParams

from .common import emit

V, D, B = 8, 4, 32


def machine_for(n: int) -> MachineParams:
    mu = CGMMatrixTranspose(list(range(n)), 1, n, V).context_size()
    return MachineParams(p=1, M=max(2 * mu, D * B), D=D, B=B, b=B)


def run_cgm_transpose(r, c, seed=0):
    entries = workloads.matrix_entries(r, c, seed=seed)
    out, report = simulate(
        CGMMatrixTranspose(entries, r, c, V), machine_for(r * c), v=V, seed=seed
    )
    got = [x for part in out for x in part]
    assert got[0] == entries[0]
    return report


def test_table1_transpose(benchmark):
    n = 4096
    rows = []
    for r, c in ((4, 1024), (64, 64), (1024, 4)):
        machine = machine_for(n)
        entries = workloads.matrix_entries(r, c, seed=r)

        _, report = simulate(
            CGMMatrixTranspose(entries, r, c, V), machine, v=V, seed=r
        )
        baseline = EMTranspose(machine)
        base_out, base_stats = baseline.transpose(entries, r, c)
        for row in range(0, r, max(1, r // 8)):
            assert base_out[0 * r + row] == entries[row * c + 0]

        rows.append(
            (
                f"{r}x{c}",
                report.io_ops,
                base_stats.io_ops,
                f"{baseline.predicted_io_ops(r, c):.0f}",
            )
        )
    emit(
        "T1-A-TRANS",
        f"matrix transpose, n={n}, D={D}, B={B}, v={V}",
        ["shape", "CGM-sim io", "EM sort-based io", "AV transpose bound"],
        rows,
    )
    # Shape independence: the generated algorithm's I/O varies little with
    # the aspect ratio at fixed n (it is one h-relation either way).
    ops = [r[1] for r in rows]
    assert max(ops) <= 1.6 * min(ops)
    benchmark(run_cgm_transpose, 64, 64)


def test_table1_transpose_scales_linearly(benchmark):
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    small = run_cgm_transpose(32, 32, seed=1).io_ops
    large = run_cgm_transpose(64, 64, seed=1).io_ops  # 4x entries
    assert 2.0 <= large / small <= 8.0
