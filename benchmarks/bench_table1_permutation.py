"""T1-A-PERM — Table 1, Group A, row "Permutation".

The paper's row: previous sequential EM permutation costs
``Theta(G min(n/D, (n/DB) log_{M/B}(n/B)))`` — the ``n/D`` branch is the
naive record-at-a-time method, the other the sort-based one; the generated
parallel EM permutation costs ``O~(G n/(pBD))``.

The benchmark measures all three on the same substrate: for a random
permutation the naive method pays ~2 I/O operations *per record* (the
blocking-factor disaster of the introduction: "the runtime can typically be
up to a factor of 10^3 (the blocking factor) too high"), while the
generated algorithm moves whole blocks.
"""

import pytest

from repro import workloads
from repro.algorithms import CGMPermutation
from repro.baselines import NaiveEMPermute, SortBasedEMPermute
from repro.core.simulator import simulate
from repro.params import MachineParams

from .common import emit

V, D, B = 8, 4, 32


def machine_for(n: int, p: int = 1) -> MachineParams:
    mu = CGMPermutation(list(range(max(n, V))), list(range(max(n, V))), V).context_size()
    return MachineParams(p=p, M=max(2 * mu, D * B), D=D, B=B, b=B)


def run_cgm_perm(n, seed=0):
    vals = list(range(n))
    perm = workloads.random_permutation(n, seed=seed)
    out, report = simulate(
        CGMPermutation(vals, perm, V), machine_for(n), v=V, seed=seed
    )
    y = [x for part in out for x in part]
    assert all(y[perm[i]] == vals[i] for i in range(n))
    return report


def test_table1_permutation(benchmark):
    rows = []
    for n in (512, 2048, 8192):
        machine = machine_for(n)
        vals = list(range(n))
        perm = workloads.random_permutation(n, seed=n)

        report = run_cgm_perm(n, seed=n)
        cgm_io = report.io_ops

        naive_out, naive = NaiveEMPermute(machine).permute(vals, perm)
        assert all(naive_out[perm[i]] == vals[i] for i in range(n))

        sort_out, sortb = SortBasedEMPermute(machine).permute(vals, perm)
        assert all(sort_out[perm[i]] == vals[i] for i in range(n))

        rows.append(
            (
                n,
                cgm_io,
                naive.io_ops,
                sortb.io_ops,
                f"{naive.io_ops / cgm_io:.1f}x",
                f"{sortb.io_ops / cgm_io:.1f}x",
            )
        )
    emit(
        "T1-A-PERM",
        f"permutation, D={D}, B={B}, v={V}",
        ["n", "CGM-sim io", "naive io", "sort-based io",
         "naive/CGM", "sort/CGM"],
        rows,
    )
    # Shape: naive pays ~per-record; the generated algorithm pays per-block.
    # The gap grows with n towards Theta(B*D / lambda).
    gaps = [r[1] and r[2] / r[1] for r in rows]
    assert gaps[-1] > gaps[0]
    assert rows[-1][2] > 10 * rows[-1][1]  # >=10x at the largest size
    benchmark(run_cgm_perm, 512)


def test_table1_permutation_structured_inputs(benchmark):
    """Bit-reversal (the classical worst case) behaves like random for the
    generated algorithm — blocking is oblivious to the permutation."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    log_n = 12
    perm = workloads.bit_reversal_permutation(log_n)
    n = len(perm)
    vals = list(range(n))
    out, report = simulate(
        CGMPermutation(vals, perm, V), machine_for(n), v=V, seed=1
    )
    y = [x for part in out for x in part]
    assert all(y[perm[i]] == i for i in range(n))
    rnd = run_cgm_perm(n, seed=3)
    emit(
        "T1-A-PERM-BITREV",
        "bit-reversal vs random permutation (generated algorithm)",
        ["input", "io_ops"],
        [("bit-reversal", report.io_ops), ("random", rnd.io_ops)],
    )
    assert report.io_ops <= 1.5 * rnd.io_ops
