"""ABL — ablations of the design choices DESIGN.md calls out.

* **Blocking** (B): the same algorithm on ``B = 1`` (record-at-a-time disks)
  versus a realistic ``B`` — the introduction's "factor of B" claim.
* **Random vs round-robin writes** (Lemma 2's randomization): with
  structured traffic, deterministic rotation can leave buckets skewed
  across disks; the random permutation keeps the Lemma 2 guarantee
  input-obliviously.
* **Dummy-block padding** (pad_to_gamma): the analysis-mode worst case
  versus measured traffic.
* **Group size k**: swapping contexts one-at-a-time (k=1, the
  Sibeyn–Kaufmann regime) versus memory-filling groups.
"""

import pytest

from repro import workloads
from repro.algorithms import CGMPermutation
from repro.core.simulator import simulate
from repro.params import MachineParams

from .common import emit

V = 8


def run_perm(n, D=4, B=32, k=None, seed=0, **kw):
    vals = list(range(n))
    perm = workloads.random_permutation(n, seed=seed)
    alg = CGMPermutation(vals, perm, V)
    machine = MachineParams(
        p=1,
        M=max((k or 2) * alg.context_size(), D * max(B, 1)),
        D=D,
        B=B,
        b=max(B, 16),
    )
    _, report = simulate(
        CGMPermutation(vals, perm, V), machine, v=V, k=k, seed=seed, **kw
    )
    return report


def test_ablation_blocking_factor(benchmark):
    n = 2048
    rows = []
    for B in (1, 8, 32, 128):
        report = run_perm(n, B=B)
        rows.append((B, report.io_ops))
    emit(
        "ABL-BLOCKING",
        f"permutation n={n}: I/O ops vs block size (B=1 is unblocked I/O)",
        ["B", "io_ops"],
        rows,
    )
    ops = dict(rows)
    # "if I/O is not fully blocked, the runtime can typically be up to a
    # factor of B too high": B=1 pays ~an order of magnitude more than B=32.
    assert ops[1] >= 10 * ops[32]
    benchmark(run_perm, 512)


def test_ablation_random_vs_roundrobin_writes(benchmark):
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    n = 2048
    rnd = run_perm(n, seed=3, round_robin_writes=False)
    rr = run_perm(n, seed=3, round_robin_writes=True)
    worst_rnd = rnd.max_load_ratio
    worst_rr = rr.max_load_ratio
    emit(
        "ABL-RANDWRITE",
        "Lemma 2 randomization: worst per-disk bucket deviation",
        ["mode", "io_ops", "max load ratio"],
        [
            ("random permutation", rnd.io_ops, f"{worst_rnd:.2f}"),
            ("round-robin", rr.io_ops, f"{worst_rr:.2f}"),
        ],
    )
    # Both are correct; randomization's value is the input-oblivious
    # guarantee (round-robin can be adversarially skewed; see the unit
    # tests), not a win on benign traffic.
    assert worst_rnd <= 2.5


def test_ablation_pad_to_gamma(benchmark):
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    n = 1024
    plain = run_perm(n, seed=5)
    padded = run_perm(n, seed=5, pad_to_gamma=True)
    emit(
        "ABL-PAD",
        "dummy-block padding to the analytic worst case (Lemma 3)",
        ["mode", "io_ops"],
        [("measured traffic", plain.io_ops), ("padded to gamma", padded.io_ops)],
    )
    assert padded.io_ops >= plain.io_ops


def test_ablation_group_size(benchmark):
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    n = 1024
    rows = []
    for k in (1, 2, 4, 8):
        report = run_perm(n, k=k, seed=7)
        rows.append((k, report.io_ops))
    emit(
        "ABL-GROUPK",
        "group size k (k=1 = one context at a time, the prior-work regime)",
        ["k", "io_ops"],
        rows,
    )
    ops = dict(rows)
    # Grouping packs context transfers into fuller parallel operations.
    assert ops[8] <= ops[1]


def test_ablation_deterministic_balance_schedule(benchmark):
    """The paper's CGM determinization: schedule="balance" achieves the
    Lemma 2 guarantee deterministically for predetermined traffic."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    n = 2048
    rnd = run_perm(n, seed=9, write_schedule="random")
    bal = run_perm(n, seed=9, write_schedule="balance")
    emit(
        "ABL-DETERMINISTIC",
        "deterministic balance schedule vs randomized (CGM traffic)",
        ["schedule", "io_ops", "max load ratio"],
        [
            ("random (Lemma 2)", rnd.io_ops, f"{rnd.max_load_ratio:.2f}"),
            ("balance (deterministic)", bal.io_ops, f"{bal.max_load_ratio:.2f}"),
        ],
    )
    assert bal.max_load_ratio <= rnd.max_load_ratio + 1e-9
    assert abs(bal.io_ops - rnd.io_ops) <= 0.2 * rnd.io_ops
