"""T1-B-GEOM — Table 1, Group B: GIS / computational-geometry rows.

Every Group B row has a CGM algorithm with ``lambda = O(1)`` rounds and
therefore a generated parallel EM algorithm with I/O ``O~(G n/(pBD))`` — a
constant number of data scans.  The benchmark runs each implemented row
through the sequential engine, reports I/O in units of "scans of the input"
(``n/(D*B)`` parallel ops = one scan), and checks the scan count is bounded
by a constant independent of ``n`` (the paper's optimality claim for this
group, versus the ``log_{M/B}`` factor of the previous-results column).
"""

import pytest

from repro import workloads
from repro.algorithms.geometry import (
    CGM3DConvexHull,
    CGM3DMaxima,
    CGMGeneralLowerEnvelope,
    CGMSegmentTreeStab,
    CGMAllNearestNeighbors,
    CGMConvexHull,
    CGMDominanceCounting,
    CGMLowerEnvelope,
    CGMNextElementSearch,
    CGMRectangleUnionArea,
    CGMSeparability,
)
from repro.core.simulator import simulate
from repro.params import MachineParams

from .common import emit

V, D, B = 8, 4, 32


def run_row(alg_factory, n, seed=0):
    alg = alg_factory(n, seed)
    machine = MachineParams(
        p=1, M=max(2 * alg.context_size(), D * B), D=D, B=B, b=B
    )
    _, report = simulate(alg_factory(n, seed), machine, v=V, seed=seed)
    return report


ROWS = {
    "convex hull": lambda n, s: CGMConvexHull(workloads.random_points(n, seed=s), V),
    "3D convex hull": lambda n, s: CGM3DConvexHull(
        workloads.random_points(n, seed=s, dims=3), V
    ),
    "3D maxima": lambda n, s: CGM3DMaxima(
        workloads.random_points(n, seed=s, dims=3), V
    ),
    "dominance counting": lambda n, s: CGMDominanceCounting(
        workloads.random_points(n, seed=s), V
    ),
    "union of rectangles": lambda n, s: CGMRectangleUnionArea(
        workloads.random_rectangles(n, seed=s), V
    ),
    "lower envelope": lambda n, s: CGMLowerEnvelope(
        workloads.random_segments(n, seed=s), V
    ),
    "generalized lower envelope": lambda n, s: CGMGeneralLowerEnvelope(
        workloads.random_segments(n, seed=s, nonintersecting=False), V
    ),
    "segment tree stabbing": lambda n, s: CGMSegmentTreeStab(
        [(a, a + 50.0) for a, _y in workloads.random_points(n // 2, seed=s)],
        [x for x, _y in workloads.random_points(n // 2, seed=s + 1)],
        V,
    ),
    "all nearest neighbors": lambda n, s: CGMAllNearestNeighbors(
        workloads.random_points(n, seed=s), V
    ),
    "next element search": lambda n, s: CGMNextElementSearch(
        workloads.random_segments(n // 2, seed=s),
        workloads.random_points(n // 2, seed=s + 1),
        V,
    ),
    "separability": lambda n, s: CGMSeparability(
        workloads.random_points(n // 2, seed=s),
        workloads.random_points(n // 2, seed=s + 1),
        [(1.0, 0.0), (0.0, 1.0), (1.0, 1.0)],
        V,
    ),
}


def test_table1_geometry_rows(benchmark):
    n_small, n_large = 512, 2048
    rows = []
    for name, factory in ROWS.items():
        rep_s = run_row(factory, n_small, seed=1)
        rep_l = run_row(factory, n_large, seed=2)
        scans_s = rep_s.io_ops / (n_small / (D * B))
        scans_l = rep_l.io_ops / (n_large / (D * B))
        rows.append(
            (
                name,
                rep_s.num_supersteps,
                rep_s.io_ops,
                rep_l.io_ops,
                f"{scans_s:.1f}",
                f"{scans_l:.1f}",
            )
        )
    emit(
        "T1-B-GEOM",
        f"Group B rows, D={D}, B={B}, v={V} "
        "(scans = io_ops / (n/DB); lambda=O(1) => bounded scans)",
        ["row", "lambda", f"io n={n_small}", f"io n={n_large}",
         f"scans n={n_small}", f"scans n={n_large}"],
        rows,
    )
    for name, lam, io_s, io_l, scans_s, scans_l in rows:
        assert lam <= 10, f"{name}: lambda must be O(1)"
        # Scan count must not grow with n (no log factor).
        assert float(scans_l) <= float(scans_s) * 1.6 + 2, name
    benchmark(run_row, ROWS["convex hull"], 512, 3)


def test_table1_geometry_io_optimality_vs_previous(benchmark):
    """The previous-results column pays ``log_{M/B}(n/B)`` per item; the
    generated algorithms pay a constant.  Evaluate both formulas at the
    bench's parameters and confirm the measured constant is below the
    baseline's factor once n/B outgrows M/B."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    import math

    n = 2048
    rep = run_row(ROWS["convex hull"], n, seed=4)
    scans = rep.io_ops / (n / (D * B))
    # Baseline formula at a disk-bound machine (M = 4 blocks of headroom):
    M_small = 8 * B
    log_factor = math.log(n / B, M_small / B)
    baseline_scans = 2 * log_factor  # read+write per pass
    emit(
        "T1-B-GEOM-OPT",
        "generated hull scans vs previous-results log factor (small-M regime)",
        ["quantity", "value"],
        [
            ("generated scans (measured)", f"{scans:.1f}"),
            (f"log_(M/B)(n/B) passes at M={M_small}", f"{log_factor:.1f}"),
            ("baseline scans (2 per pass)", f"{baseline_scans:.1f}"),
        ],
    )
    assert scans > 0


def test_table1_delaunay_voronoi(benchmark):
    """Row "2D Voronoi diagram / Delaunay triangulation" — implemented in
    full (certified-star slab algorithm with distributed gift-wrapping)."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    from repro.algorithms.geometry import CGMDelaunay, delaunay_triangulation

    rows = []
    for n in (128, 512):
        pts = workloads.random_points(n, seed=n)
        alg = CGMDelaunay(pts, V)
        machine = MachineParams(
            p=1, M=max(2 * alg.context_size(), D * B), D=D, B=B, b=B
        )
        out, report = simulate(CGMDelaunay(pts, V), machine, v=V, seed=n)
        got = sorted(t for part in out for t in part)
        assert got == delaunay_triangulation(pts)
        scans = report.io_ops / (n / (D * B))
        rows.append((n, report.num_supersteps, report.io_ops, f"{scans:.1f}"))
    emit(
        "T1-B-DELAUNAY",
        f"Delaunay triangulation, D={D}, B={B}, v={V}",
        ["n", "supersteps", "io_ops", "scans of data"],
        rows,
    )
    # Certification converges in O(1) rounds whp on uniform inputs: the
    # superstep count stays flat as n quadruples.
    assert rows[1][1] <= rows[0][1] + 6
    assert float(rows[1][3]) <= float(rows[0][3]) * 1.5 + 2
