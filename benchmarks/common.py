"""Shared benchmark infrastructure.

Every benchmark regenerates one table/figure of the paper (see DESIGN.md's
per-experiment index).  Because the paper's claims are theorems about
*counted* model costs (parallel I/O operations, h-relation packets,
computation operations), each benchmark

1. runs the relevant algorithms on the simulated EM machine,
2. prints a measured-vs-predicted table (also appended to
   ``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md), and
3. times a representative kernel with pytest-benchmark as a secondary,
   wall-clock signal.

Shape assertions (who wins, how costs scale) are made with generous
constants so the suite stays robust across seeds.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.params import MachineParams

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: default single-processor EM machine for Table 1 benches
SEQ_MACHINE = MachineParams(p=1, M=1 << 14, D=4, B=64, b=64)

#: default multiprocessor EM machine
PAR_MACHINE = MachineParams(p=4, M=1 << 14, D=4, B=64, b=64)


def emit(experiment: str, title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned table, print it, and append it to the results file."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {experiment}: {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(_fmt(c).ljust(w) for c, w in zip(r, widths)))
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{experiment}.txt"), "w") as fh:
        fh.write(text)
    return text


def _fmt(x) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1000 or abs(x) < 0.01:
            return f"{x:.3g}"
        return f"{x:.2f}"
    return str(x)
