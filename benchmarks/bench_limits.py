"""LIMITS — the boundary of the technique (Section 7 / Observation 2).

"Note that our technique applies only to BSP-like algorithms for which
``T_comp`` is at least ``lambda * M`` ...  Algorithms which do not fall into
this category are typically for problems with sublinear time complexity.
An example of such an algorithm is multisearch."

The benchmark contrasts a *compute-dense* workload (sorting:
``T_comp = Theta(n log n) = omega(lambda * M)``) with a *multisearch-like*
sublinear workload (a few binary searches per superstep over a large
resident table): for the former the simulated I/O time is a vanishing
fraction of computation (c-optimality preserved, OBS2); for the latter the
simulation spends almost all model time swapping contexts — the open
problem the paper states.  Also checks Observation 1's direction: the CGM
rounds simulate as BSP* supersteps with communication packets within the
``O(g * lambda * n/(p*b))`` budget.
"""

import pytest

from repro import workloads
from repro.algorithms import CGMSampleSort
from repro.bsp.collectives import share_bounds
from repro.bsp.program import BSPAlgorithm, VPContext
from repro.core.simulator import simulate
from repro.params import MachineParams

from .common import emit

V, D, B = 8, 4, 32


class MultisearchLike(BSPAlgorithm):
    """Each vp holds a big sorted table; each superstep binary-searches a
    handful of keys and forwards them — Theta(log n) work per superstep
    against Theta(n/v) context: T_comp << lambda * M."""

    def __init__(self, n: int, v: int, rounds: int = 6):
        self.n = n
        self.v = v
        self.rounds = rounds

    def context_size(self) -> int:
        return 512 + 2 * -(-self.n // self.v)

    def comm_bound(self) -> int:
        return 64

    def initial_state(self, pid: int, nprocs: int):
        lo, hi = share_bounds(self.n, nprocs, pid)
        return {"table": list(range(lo * 7, hi * 7, 7)), "hits": 0}

    def superstep(self, ctx: VPContext) -> None:
        import bisect

        st = ctx.state
        if ctx.step > 0:
            for m in ctx.incoming:
                for key in m.payload:
                    bisect.bisect_left(st["table"], key)
                    st["hits"] += 1
            ctx.charge(4 * max(1, len(st["table"]).bit_length()))
        if ctx.step < self.rounds:
            ctx.send((ctx.pid + 1) % ctx.nprocs, [ctx.step * 13 + ctx.pid] * 4)
        else:
            ctx.vote_halt()

    def output(self, pid: int, state):
        return state["hits"]


def test_limits_sublinear_vs_compute_dense(benchmark):
    n = 4096
    machine_for = lambda alg: MachineParams(
        p=1, M=max(2 * alg.context_size(), D * B), D=D, B=B, b=B, G=10.0
    )

    sort_alg = CGMSampleSort(workloads.uniform_keys(n, seed=1), V)
    _, sort_rep = simulate(
        CGMSampleSort(workloads.uniform_keys(n, seed=1), V),
        machine_for(sort_alg),
        v=V,
        seed=1,
    )
    ms_alg = MultisearchLike(n, V)
    _, ms_rep = simulate(MultisearchLike(n, V), machine_for(ms_alg), v=V, seed=1)

    rows = []
    for name, rep in (("sorting (T_comp >> lambda*M)", sort_rep),
                      ("multisearch-like (T_comp << lambda*M)", ms_rep)):
        led = rep.ledger
        io_share = led.total_io_time() / max(led.total_time(), 1e-9)
        rows.append(
            (
                name,
                rep.num_supersteps,
                f"{led.total_comp:.0f}",
                rep.io_ops,
                f"{io_share:.2f}",
            )
        )
    emit(
        "LIMITS",
        f"where the technique stops helping (n={n}, G=10)",
        ["workload", "lambda", "comp ops", "io_ops", "io share of model time"],
        rows,
    )
    # The compute-dense workload amortizes its I/O; the sublinear one is
    # swallowed by context swapping — the paper's open problem, measured.
    assert float(rows[0][4]) < 0.3
    assert float(rows[1][4]) > 0.5
    assert float(rows[1][4]) > 5 * float(rows[0][4])
    benchmark(
        lambda: simulate(MultisearchLike(512, V), machine_for(MultisearchLike(512, V)), v=V)
    )


def test_observation1_cgm_comm_budget(benchmark):
    """Observation 1: a CGM round simulates as BSP* communication
    ``O(g * (n/(p*b)) + L)`` per round — the ledger's packet counts for the
    sample sort stay within that budget times a small constant."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    n = 4096
    alg = CGMSampleSort(workloads.uniform_keys(n, seed=2), V)
    machine = MachineParams(p=1, M=2 * alg.context_size(), D=D, B=B, b=B)
    _, rep = simulate(
        CGMSampleSort(workloads.uniform_keys(n, seed=2), V), machine, v=V, seed=2
    )
    lam = rep.num_supersteps
    budget_packets = lam * (n / machine.b)  # h = n/v per vp, v vps, packets of b
    measured = rep.ledger.total_comm_packets
    emit(
        "OBS1",
        "CGM -> BSP* communication budget (Observation 1)",
        ["lambda", "measured packets (max/vp basis)", "budget lambda*n/b"],
        [(lam, measured, f"{budget_packets:.0f}")],
    )
    assert measured <= 4 * budget_packets


def test_limits_multisearch_open_problem(benchmark):
    """The paper's named example, measured: simulated CGM multisearch
    (Theta(log n) supersteps of sublinear work) vs the direct EM batched
    search (sort + one merge scan)."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    import bisect

    from repro.algorithms import CGMMultisearch
    from repro.baselines import EMBatchedSearch

    n, m = 4096, 256
    keys = sorted(workloads.uniform_keys(n, seed=3, hi=100 * n))
    queries = workloads.uniform_keys(m, seed=4, hi=110 * n)

    alg = CGMMultisearch(keys, queries, V)
    machine = MachineParams(
        p=1, M=max(2 * alg.context_size(), D * B), D=D, B=B, b=B
    )
    out, rep = simulate(CGMMultisearch(keys, queries, V), machine, v=V, seed=3)
    got = {}
    for part in out:
        got.update(dict(part))
    assert [got[i] for i in range(m)] == [
        bisect.bisect_right(keys, q) - 1 for q in queries
    ]

    ans, base = EMBatchedSearch(machine).search(keys, queries)
    assert ans == [bisect.bisect_right(keys, q) - 1 for q in queries]

    emit(
        "LIMITS-MULTISEARCH",
        f"multisearch, n={n} keys, m={m} queries (the Section 7 open problem)",
        ["method", "supersteps", "io_ops"],
        [
            ("simulated CGM multisearch", rep.num_supersteps, rep.io_ops),
            ("direct EM batched search", "-", base.io_ops),
        ],
    )
    # The direct EM method wins decisively: the simulation pays a context
    # sweep per tree level — sublinear search does not amortize (Section 7).
    assert rep.num_supersteps >= (n).bit_length() - 2
    assert base.io_ops * 5 < rep.io_ops
